"""CLI tests (fast settings)."""

import pytest

from repro.cli import POLICIES, main

FAST = ["--samples", "300", "--epochs", "2", "--batch-size", "64"]


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "cifar10-like" in out
    assert "resnet18" in out
    assert "spidercache" in out


def test_policies_registry_complete():
    assert {"spidercache", "shade", "icache", "icache-imp", "coordl",
            "baseline", "lfu", "spidercache-imp"} <= set(POLICIES)


def test_train_command(capsys):
    assert main(["train", "--policy", "spidercache"] + FAST) == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "mean hit" in out


def test_train_each_policy_smoke(capsys):
    for name in ["shade", "coordl", "baseline"]:
        assert main(["train", "--policy", name] + FAST) == 0


def test_compare_command(capsys):
    assert main(
        ["compare", "--policies", "spidercache", "baseline"] + FAST
    ) == 0
    out = capsys.readouterr().out
    assert "spidercache" in out
    assert "baseline" in out
    assert "speedup" in out


def test_trace_command(capsys):
    assert main(["trace", "--policy", "baseline", "--capacity", "0.2"] + FAST) == 0
    out = capsys.readouterr().out
    assert "Belady OPT" in out
    assert "LRU" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["train", "--policy", "nonexistent"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_train_with_trace_dir_and_report(tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(
        ["train", "--policy", "spidercache", "--trace-dir", str(run_dir)]
        + FAST
    ) == 0
    out = capsys.readouterr().out
    assert "run artifacts written" in out
    assert (run_dir / "trace.jsonl").is_file()
    assert (run_dir / "epochs.jsonl").is_file()
    assert (run_dir / "summary.json").is_file()

    assert main(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "policy=spidercache" in out
    assert "trace vs per-epoch metrics: OK" in out


def test_report_missing_dir(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nothing")]) == 2
    assert "not found" in capsys.readouterr().err


# -- repro load ---------------------------------------------------------
LOAD_FAST = ["load", "--requests", "4000", "--keys", "300",
             "--capacity", "128", "--window", "400"]


def test_load_command_smoke(capsys):
    assert main(LOAD_FAST) == 0
    out = capsys.readouterr().out
    assert "p50" in out and "p99" in out and "p999" in out
    assert "SLO:" in out
    assert "autoscaler:" in out
    assert "digest:" in out


def test_load_command_is_deterministic(capsys):
    assert main(LOAD_FAST + ["--seed", "5"]) == 0
    first = capsys.readouterr().out
    assert main(LOAD_FAST + ["--seed", "5"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_load_no_autoscale_keeps_fleet_fixed(capsys):
    assert main(LOAD_FAST + ["--no-autoscale", "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "0 grow(s), 0 shrink(s); shards 3 -> 3" in out


def test_load_with_trace_dir_and_report(tmp_path, capsys):
    run_dir = tmp_path / "load-run"
    assert main(LOAD_FAST + ["--trace-dir", str(run_dir)]) == 0
    capsys.readouterr()
    assert (run_dir / "load.json").is_file()
    assert (run_dir / "trace.jsonl").is_file()
    assert main(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "load / SLO:" in out
    assert "p99=" in out


def test_load_prints_burn_rate_alerts(capsys):
    # A 2ms SLO this tier cannot meet: the alert rules must fire.
    assert main(LOAD_FAST + ["--slo-ms", "2"]) == 0
    out = capsys.readouterr().out
    assert "burn-rate alerts: FIRING:" in out
    assert "transition(s)" in out
    assert "burn short=" in out and "long=" in out


def test_load_healthy_slo_reports_none_firing(capsys):
    assert main(LOAD_FAST + ["--slo-ms", "1000"]) == 0
    out = capsys.readouterr().out
    assert "burn-rate alerts: none firing (0 transition(s))" in out


# -- repro metrics ------------------------------------------------------
def test_metrics_command_exports_prometheus_text(tmp_path, capsys):
    run_dir = tmp_path / "load-run"
    assert main(LOAD_FAST + ["--trace-dir", str(run_dir)]) == 0
    capsys.readouterr()
    assert main(["metrics", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_rpc_calls_total counter" in out
    assert 'repro_rpc_latency_s_bucket{le="+Inf"}' in out
    assert "repro_load_windows_total 10" in out
    assert out.endswith("\n")
    # Every sample line parses as `name value`.
    for line in out.splitlines():
        if line and not line.startswith("#"):
            float(line.rsplit(" ", 1)[1])


def test_metrics_command_custom_prefix(tmp_path, capsys):
    run_dir = tmp_path / "load-run"
    assert main(LOAD_FAST + ["--trace-dir", str(run_dir)]) == 0
    capsys.readouterr()
    assert main(["metrics", str(run_dir), "--prefix", "spider_"]) == 0
    out = capsys.readouterr().out
    assert "spider_rpc_calls_total" in out
    assert "repro_" not in out


def test_metrics_command_training_run(tmp_path, capsys):
    run_dir = tmp_path / "train-run"
    assert main(
        ["train", "--policy", "spidercache", "--trace-dir", str(run_dir)]
        + FAST
    ) == 0
    capsys.readouterr()
    assert main(["metrics", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "repro_cache_fetches_total" in out
    assert "# TYPE repro_train_epoch_time_s histogram" in out


def test_metrics_command_without_snapshot(tmp_path, capsys):
    assert main(["metrics", str(tmp_path)]) == 2
    assert "no metrics snapshot" in capsys.readouterr().err


@pytest.mark.parametrize(
    "flags,message",
    [
        (["--requests", "0"], "--requests"),
        (["--keys", "4"], "--keys"),
        (["--zipf-skew", "-0.5"], "--zipf-skew"),
        (["--put-fraction", "1.5"], "--put-fraction"),
        (["--base-rate", "0"], "--base-rate"),
        (["--burst-rate", "-10"], "--burst-rate"),
        (["--mean-on-s", "0"], "--mean-on-s"),
        (["--diurnal-amplitude", "1.0"], "--diurnal-amplitude"),
        (["--slo-ms", "0"], "--slo-ms"),
        (["--slo-goal", "0"], "--slo-goal"),
        (["--slo-goal", "1.2"], "--slo-goal"),
        (["--service-rate", "0"], "--service-rate"),
        (["--imp-ratio", "2.0"], "--imp-ratio"),
        (["--min-shards", "4", "--max-shards", "2"], "--min-shards"),
        (["--p99-high-ms", "2", "--p99-low-ms", "3"], "hysteresis"),
        (["--util-high", "0.2", "--util-low", "0.3"], "hysteresis"),
        (["--breach-windows", "0"], "--breach-windows"),
        (["--growth-factor", "1.0"], "--growth-factor"),
    ],
)
def test_load_rejects_bad_flags(flags, message, capsys):
    assert main(["load"] + flags) == 2
    assert message in capsys.readouterr().err
