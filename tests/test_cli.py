"""CLI tests (fast settings)."""

import pytest

from repro.cli import POLICIES, main

FAST = ["--samples", "300", "--epochs", "2", "--batch-size", "64"]


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "cifar10-like" in out
    assert "resnet18" in out
    assert "spidercache" in out


def test_policies_registry_complete():
    assert {"spidercache", "shade", "icache", "icache-imp", "coordl",
            "baseline", "lfu", "spidercache-imp"} <= set(POLICIES)


def test_train_command(capsys):
    assert main(["train", "--policy", "spidercache"] + FAST) == 0
    out = capsys.readouterr().out
    assert "accuracy" in out
    assert "mean hit" in out


def test_train_each_policy_smoke(capsys):
    for name in ["shade", "coordl", "baseline"]:
        assert main(["train", "--policy", name] + FAST) == 0


def test_compare_command(capsys):
    assert main(
        ["compare", "--policies", "spidercache", "baseline"] + FAST
    ) == 0
    out = capsys.readouterr().out
    assert "spidercache" in out
    assert "baseline" in out
    assert "speedup" in out


def test_trace_command(capsys):
    assert main(["trace", "--policy", "baseline", "--capacity", "0.2"] + FAST) == 0
    out = capsys.readouterr().out
    assert "Belady OPT" in out
    assert "LRU" in out


def test_unknown_policy_rejected():
    with pytest.raises(SystemExit):
        main(["train", "--policy", "nonexistent"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_train_with_trace_dir_and_report(tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(
        ["train", "--policy", "spidercache", "--trace-dir", str(run_dir)]
        + FAST
    ) == 0
    out = capsys.readouterr().out
    assert "run artifacts written" in out
    assert (run_dir / "trace.jsonl").is_file()
    assert (run_dir / "epochs.jsonl").is_file()
    assert (run_dir / "summary.json").is_file()

    assert main(["report", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "policy=spidercache" in out
    assert "trace vs per-epoch metrics: OK" in out


def test_report_missing_dir(tmp_path, capsys):
    assert main(["report", str(tmp_path / "nothing")]) == 2
    assert "not found" in capsys.readouterr().err
