"""IndexedMinHeap unit + property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import IndexedMinHeap


def test_empty_heap():
    h = IndexedMinHeap()
    assert len(h) == 0
    assert "x" not in h
    with pytest.raises(IndexError):
        h.peek()
    with pytest.raises(IndexError):
        h.pop()


def test_push_pop_ordering():
    h = IndexedMinHeap()
    for k, p in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
        h.push(k, p)
    assert h.pop() == (1.0, "b")
    assert h.pop() == (2.0, "c")
    assert h.pop() == (3.0, "a")


def test_duplicate_key_rejected():
    h = IndexedMinHeap()
    h.push("a", 1.0)
    with pytest.raises(KeyError):
        h.push("a", 2.0)


def test_peek_does_not_remove():
    h = IndexedMinHeap()
    h.push(1, 5.0)
    h.push(2, 3.0)
    assert h.peek() == (3.0, 2)
    assert len(h) == 2
    assert h.min_priority() == 3.0


def test_contains_and_priority():
    h = IndexedMinHeap()
    h.push("k", 7.5)
    assert "k" in h
    assert h.priority("k") == 7.5
    with pytest.raises(KeyError):
        h.priority("missing")


def test_update_decrease_moves_to_top():
    h = IndexedMinHeap()
    for i in range(10):
        h.push(i, float(i + 10))
    h.update(9, 0.5)
    assert h.peek() == (0.5, 9)


def test_update_increase_moves_down():
    h = IndexedMinHeap()
    for i in range(10):
        h.push(i, float(i))
    h.update(0, 100.0)
    assert h.peek() == (1.0, 1)
    # The updated key is still present with its new priority.
    assert h.priority(0) == 100.0


def test_remove_middle_element():
    h = IndexedMinHeap()
    for i in range(7):
        h.push(i, float(i))
    assert h.remove(3) == 3.0
    assert 3 not in h
    popped = [h.pop()[1] for _ in range(len(h))]
    assert popped == [0, 1, 2, 4, 5, 6]


def test_remove_missing_raises():
    h = IndexedMinHeap()
    with pytest.raises(KeyError):
        h.remove("nope")


def test_push_or_update():
    h = IndexedMinHeap()
    h.push_or_update("a", 2.0)
    h.push_or_update("a", 1.0)
    assert len(h) == 1
    assert h.priority("a") == 1.0


def test_get_with_default():
    h = IndexedMinHeap()
    h.push("a", 1.0)
    assert h.get("a") == 1.0
    assert h.get("b") is None
    assert h.get("b", -1.0) == -1.0


def test_ties_broken_by_insertion_order():
    h = IndexedMinHeap()
    h.push("first", 1.0)
    h.push("second", 1.0)
    assert h.pop()[1] == "first"
    assert h.pop()[1] == "second"


def test_clear_and_keys():
    h = IndexedMinHeap()
    h.push(1, 1.0)
    h.push(2, 2.0)
    assert sorted(h.keys()) == [1, 2]
    h.clear()
    assert len(h) == 0


def test_iteration_yields_all_keys():
    h = IndexedMinHeap()
    for i in range(5):
        h.push(i, float(-i))
    assert sorted(h) == [0, 1, 2, 3, 4]


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(-1e6, 1e6)), max_size=200))
@settings(max_examples=100)
def test_property_pop_order_sorted(ops):
    """Whatever the insert/update sequence, pops come out sorted."""
    h = IndexedMinHeap()
    for key, pri in ops:
        h.push_or_update(key, pri)
    h.check_invariants()
    out = []
    while len(h):
        out.append(h.pop()[0])
    assert out == sorted(out)


@given(
    st.lists(
        st.tuples(st.sampled_from(["push", "pop", "remove", "update"]),
                  st.integers(0, 20), st.floats(-100, 100)),
        max_size=150,
    )
)
@settings(max_examples=100)
def test_property_invariants_under_mixed_ops(ops):
    """Heap order + position map stay consistent under arbitrary ops."""
    h = IndexedMinHeap()
    model = {}
    for op, key, pri in ops:
        if op == "push":
            if key not in model:
                h.push(key, pri)
                model[key] = pri
        elif op == "pop":
            if model:
                p, k = h.pop()
                assert p == min(model.values())
                del model[k]
        elif op == "remove":
            if key in model:
                assert h.remove(key) == model.pop(key)
        else:  # update
            if key in model:
                h.update(key, pri)
                model[key] = pri
        h.check_invariants()
        assert len(h) == len(model)
    for k, v in model.items():
        assert h.priority(k) == v
