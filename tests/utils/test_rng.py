"""RNG plumbing tests."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn_rngs


def test_resolve_from_seed_is_deterministic():
    a = resolve_rng(42).random(5)
    b = resolve_rng(42).random(5)
    assert np.array_equal(a, b)


def test_resolve_passthrough_generator():
    gen = np.random.default_rng(0)
    assert resolve_rng(gen) is gen


def test_resolve_none_gives_generator():
    assert isinstance(resolve_rng(None), np.random.Generator)


def test_resolve_numpy_integer():
    assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)


def test_resolve_rejects_bad_type():
    with pytest.raises(TypeError):
        resolve_rng("seed")


def test_spawn_independent_streams():
    children = spawn_rngs(0, 3)
    assert len(children) == 3
    draws = [c.random(4) for c in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_deterministic():
    a = [g.random(3) for g in spawn_rngs(5, 2)]
    b = [g.random(3) for g in spawn_rngs(5, 2)]
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_spawn_zero():
    assert spawn_rngs(0, 0) == []


def test_spawn_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
