"""Stage-accounting invariants for clean and fault-recovered runs.

The per-epoch identity (``epoch_time_s`` is exactly the sum of its four
stage components) and the run-level consistency between
``TrainResult.stage_totals()`` and the trainer's ``SimClock`` breakdown
are what every time-related figure rests on — they must hold for a plain
``Trainer`` and for a ``ResilientTrainer`` that restored mid-epoch.
"""

import numpy as np
import pytest

from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.data.transforms import Compose, GaussianNoise
from repro.nn.models import build_model
from repro.resilience.preemption import PreemptionSchedule
from repro.resilience.trainer import ResilientTrainer
from repro.storage.backends import RemoteStore
from repro.train.trainer import Trainer, TrainerConfig


def _build(cls=Trainer, epochs=3, transform=None, **kw):
    ds = make_clustered_dataset(240, n_classes=4, dim=16, rng=0)
    train, test = train_test_split(ds, test_fraction=0.25, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    policy = SpiderCachePolicy(cache_fraction=0.25, rng=3)
    cfg = TrainerConfig(epochs=epochs, batch_size=32, transform=transform)
    return cls(model, train, test, policy, cfg, **kw)


def _assert_invariants(trainer, result):
    cfg = trainer.config
    clock = trainer.clock
    for e in result.epochs:
        # Per-epoch identity: the reported epoch time is exactly its parts.
        assert e.epoch_time_s == pytest.approx(
            e.data_load_s + e.compute_s + e.is_visible_s + e.preprocess_s,
            abs=1e-12,
        )
    totals = result.stage_totals()
    assert set(totals) == {
        "data_load_s", "compute_s", "is_visible_s", "preprocess_s"
    }
    # Run totals reconcile with the simulated clock: compute and
    # preprocess are charged per batch as-is; raw data_load divides over
    # the io_workers plus one hit latency per cache serve.
    assert totals["compute_s"] == pytest.approx(
        clock.stage_seconds("compute"), abs=1e-9
    )
    assert totals["preprocess_s"] == pytest.approx(
        clock.stage_seconds("preprocess"), abs=1e-9
    )
    assert totals["is_visible_s"] == pytest.approx(
        clock.stage_seconds("is_visible"), abs=1e-9
    )
    stats = trainer.policy.stats()
    hits = stats.hits + stats.substitute_hits + stats.degraded_serves
    expected_load = (
        clock.stage_seconds(RemoteStore.STAGE) / cfg.io_workers
        + hits * cfg.hit_latency_s
    )
    assert totals["data_load_s"] == pytest.approx(expected_load, abs=1e-9)
    # Total time identity at the run level.
    assert result.total_time_s == pytest.approx(
        sum(totals.values()), abs=1e-9
    )


def test_trainer_stage_accounting_invariants():
    trainer = _build(epochs=3)
    result = trainer.run()
    _assert_invariants(trainer, result)


def test_trainer_accounting_with_preprocess_stage():
    transform = Compose([GaussianNoise(0.05, rng=5)])
    trainer = _build(epochs=2, transform=transform)
    result = trainer.run()
    assert all(e.preprocess_s > 0 for e in result.epochs)
    _assert_invariants(trainer, result)


@pytest.mark.resilience
def test_resilient_trainer_resumed_run_keeps_invariants(tmp_path):
    trainer = _build(
        ResilientTrainer,
        epochs=3,
        checkpoint_dir=tmp_path,
        checkpoint_every_batches=3,
        preemptions=PreemptionSchedule(at=[(1, 2)]),
    )
    result = trainer.run()
    assert trainer.recovery.restarts == 1
    assert len(result.epochs) == 3
    _assert_invariants(trainer, result)


@pytest.mark.resilience
def test_resumed_run_metrics_match_uninterrupted(tmp_path):
    clean = _build(epochs=3)
    clean_result = clean.run()
    faulted = _build(
        ResilientTrainer,
        epochs=3,
        checkpoint_dir=tmp_path,
        checkpoint_every_batches=3,
        preemptions=PreemptionSchedule(at=[(1, 2)]),
    )
    faulted_result = faulted.run()
    for ce, fe in zip(clean_result.epochs, faulted_result.epochs):
        assert fe.epoch_time_s == pytest.approx(ce.epoch_time_s, abs=1e-9)
        assert fe.data_load_s == pytest.approx(ce.data_load_s, abs=1e-9)
        assert fe.hit_ratio == pytest.approx(ce.hit_ratio, abs=1e-12)
        assert fe.train_loss == pytest.approx(ce.train_loss, abs=1e-12)
