"""Multi-GPU simulation tests (Fig. 17 shape)."""

import pytest

from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.multigpu import MultiGPUSimulator


def _result(load=2.0, compute=1.0, epochs=3):
    r = TrainResult("p", "m", "d")
    for e in range(epochs):
        r.epochs.append(
            EpochMetrics(
                epoch=e, train_loss=0.0, val_accuracy=0.0, hit_ratio=0.0,
                exact_hit_ratio=0.0, substitute_ratio=0.0,
                data_load_s=load, compute_s=compute, is_visible_s=0.0,
                epoch_time_s=load + compute,
            )
        )
    return r


def test_single_gpu_identity_no_comm():
    sim = MultiGPUSimulator()
    ep = sim.scale_epoch(2.0, 1.0, gpus=1)
    assert ep.comm_s == 0.0
    assert ep.compute_s == 1.0
    assert ep.data_load_s == 2.0


def test_epoch_time_decreases_with_gpus():
    sim = MultiGPUSimulator(comm_ms_per_step=5.0)
    times = [sim.scale_epoch(10.0, 5.0, k).epoch_time_s for k in (1, 2, 3, 4)]
    assert all(a > b for a, b in zip(times, times[1:]))


def test_sublinear_scaling_due_to_comm():
    """Fig. 17's caveat: communication keeps speedup below linear."""
    sim = MultiGPUSimulator(comm_ms_per_step=20.0, steps_per_epoch=100)
    t1 = sim.scale_epoch(10.0, 5.0, 1).epoch_time_s
    t4 = sim.scale_epoch(10.0, 5.0, 4).epoch_time_s
    assert t1 / t4 < 4.0


def test_straggler_inflates_load():
    sim = MultiGPUSimulator(straggler_alpha=0.5, comm_ms_per_step=0.0)
    ep = sim.scale_epoch(8.0, 0.0, 4)
    assert ep.data_load_s > 8.0 / 4


def test_cached_policy_gains_more_from_gpus():
    """A policy with low I/O (SpiderCache) scales better than one dominated
    by loading (baseline) — the Fig. 17 separation grows with K."""
    sim = MultiGPUSimulator()
    base = _result(load=10.0, compute=2.0)
    cached = _result(load=2.0, compute=2.0)
    tb = sim.per_epoch_times(base, [1, 4])
    tc = sim.per_epoch_times(cached, [1, 4])
    assert tc[1] < tb[1] and tc[4] < tb[4]
    assert (tb[1] - tc[1]) > (tb[4] - tc[4])  # absolute gap shrinks with K
    assert tc[4] / tc[1] < 1.0


def test_invalid_params():
    with pytest.raises(ValueError):
        MultiGPUSimulator(comm_ms_per_step=-1)
    with pytest.raises(ValueError):
        MultiGPUSimulator(steps_per_epoch=0)
    with pytest.raises(ValueError):
        MultiGPUSimulator().scale_epoch(1.0, 1.0, gpus=0)


def test_per_epoch_times_averages():
    sim = MultiGPUSimulator(comm_ms_per_step=0.0, straggler_alpha=0.0)
    r = _result(load=4.0, compute=2.0, epochs=5)
    t = sim.per_epoch_times(r, [2])
    assert t[2] == pytest.approx((4.0 + 2.0) / 2)
