"""Trainer LR-schedule integration tests."""

import pytest

from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.nn.optim import CosineLR
from repro.train.policy_base import TrainingPolicy
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(300, n_classes=4, dim=8, rng=0)
    return train_test_split(ds, rng=1)


def _trainer(data, **cfg_kw):
    train, test = data
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    return Trainer(model, train, test, TrainingPolicy(rng=3),
                   TrainerConfig(epochs=4, batch_size=64, **cfg_kw))


def test_default_constant_lr(data):
    t = _trainer(data)
    t.optimizer.set_epoch(3)
    assert t.optimizer.current_lr == t.config.lr


def test_cosine_string(data):
    t = _trainer(data, lr_schedule="cosine")
    t.optimizer.set_epoch(4)
    assert t.optimizer.current_lr == pytest.approx(0.0, abs=1e-12)


def test_step_string(data):
    t = _trainer(data, lr_schedule="step")
    t.optimizer.set_epoch(0)
    lr0 = t.optimizer.current_lr
    t.optimizer.set_epoch(3)
    assert t.optimizer.current_lr < lr0


def test_schedule_object_passthrough(data):
    sched = CosineLR(0.2, total_epochs=4)
    t = _trainer(data, lr=0.2, lr_schedule=sched)
    assert t.optimizer.schedule is sched


def test_unknown_string_rejected(data):
    with pytest.raises(ValueError):
        _trainer(data, lr_schedule="exponential")


def test_run_with_schedule_trains(data):
    t = _trainer(data, lr_schedule="cosine")
    res = t.run()
    assert res.final_accuracy > 0.5
