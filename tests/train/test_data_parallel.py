"""Data-parallel trainer tests: replica sync, learning, time shape."""

import numpy as np
import pytest

from repro.baselines.baseline import LRUBaselinePolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.train.data_parallel import DataParallelTrainer
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(600, n_classes=5, dim=16, rng=0)
    return train_test_split(ds, test_fraction=0.25, rng=1)


def _dp(data, world_size, policy_cls=LRUBaselinePolicy, epochs=4, **kw):
    train, test = data
    return DataParallelTrainer(
        model_factory=lambda: build_model("resnet18", train.dim,
                                          train.num_classes, rng=7),
        train_set=train,
        test_set=test,
        policy_factory=lambda rank: policy_cls(cache_fraction=0.3,
                                               rng=100 + rank),
        world_size=world_size,
        config=TrainerConfig(epochs=epochs, batch_size=64),
        rng=5,
        **kw,
    )


def test_invalid_world_size(data):
    with pytest.raises(ValueError):
        _dp(data, 0)


def test_shards_partition_dataset(data):
    dp = _dp(data, 3)
    all_ids = np.concatenate([w.shard for w in dp.workers])
    assert sorted(all_ids.tolist()) == list(range(len(data[0])))


def test_replicas_identical_at_init(data):
    dp = _dp(data, 3)
    assert dp.replicas_in_sync()


def test_replicas_stay_in_sync_through_training(data):
    dp = _dp(data, 2, epochs=3)
    dp.run()
    assert dp.replicas_in_sync(atol=1e-8)


def test_dp_learns(data):
    res = _dp(data, 2, epochs=8).run()
    # The easy 5-class task converges within the first epoch; the averaged
    # gradients must be driving the shared replicas to high accuracy.
    assert res.final_accuracy > 0.85
    assert res.best_accuracy > 0.9


def test_world_size_one_matches_single_trainer_accuracy(data):
    """K=1 DP is the same algorithm as the plain trainer (modulo the
    sampler's RNG stream); accuracies land close."""
    train, test = data
    dp_res = _dp(data, 1, epochs=6).run()
    model = build_model("resnet18", train.dim, train.num_classes, rng=7)
    single = Trainer(
        model, train, test, LRUBaselinePolicy(cache_fraction=0.3, rng=100),
        TrainerConfig(epochs=6, batch_size=64),
    ).run()
    assert abs(dp_res.final_accuracy - single.final_accuracy) < 0.1


def test_more_workers_faster_epochs(data):
    t2 = _dp(data, 2, epochs=3).run()
    t4 = _dp(data, 4, epochs=3).run()
    assert t4.epochs[-1].epoch_time_s < t2.epochs[-1].epoch_time_s


def test_communication_grows_with_workers(data):
    """Per-epoch time includes a comm term that makes scaling sublinear."""
    t1 = _dp(data, 1, epochs=2).run().epochs[-1].epoch_time_s
    t4 = _dp(data, 4, epochs=2).run().epochs[-1].epoch_time_s
    assert t1 / t4 < 4.0


def test_spider_policy_per_worker_caches(data):
    dp = _dp(data, 2, policy_cls=SpiderCachePolicy, epochs=5)
    res = dp.run()
    assert res.epochs[-1].hit_ratio > 0.15
    # Each worker's cache only holds ids from its own shard space.
    for w in dp.workers:
        local_n = len(w.shard)
        for key in w.policy.cache.importance.keys():
            assert 0 <= key < local_n


def test_policy_name_tagged(data):
    res = _dp(data, 2, epochs=1).run()
    assert res.policy_name == "baseline-lru@dp2"
