"""Time-to-accuracy metric and user-goal preset tests."""

import numpy as np
import pytest

from repro.core.policy import SpiderCachePolicy
from repro.train.metrics import EpochMetrics, TrainResult


def _result(accs, time_per_epoch=2.0):
    r = TrainResult("p", "m", "d")
    for e, a in enumerate(accs):
        r.epochs.append(EpochMetrics(
            epoch=e, train_loss=0.0, val_accuracy=a, hit_ratio=0.0,
            exact_hit_ratio=0.0, substitute_ratio=0.0,
            data_load_s=time_per_epoch, compute_s=0.0, is_visible_s=0.0,
            epoch_time_s=time_per_epoch,
        ))
    return r


# ----------------------------------------------------------------------
# time_to_accuracy
# ----------------------------------------------------------------------
def test_tta_first_crossing():
    r = _result([0.3, 0.5, 0.7, 0.9])
    assert r.time_to_accuracy(0.6) == pytest.approx(6.0)  # end of epoch 2


def test_tta_immediate():
    r = _result([0.8, 0.9])
    assert r.time_to_accuracy(0.5) == pytest.approx(2.0)


def test_tta_never_reached():
    r = _result([0.3, 0.4])
    assert r.time_to_accuracy(0.9) is None


def test_tta_not_fooled_by_regression():
    """The first crossing counts even if accuracy later dips below."""
    r = _result([0.3, 0.7, 0.4, 0.8])
    assert r.time_to_accuracy(0.6) == pytest.approx(4.0)


def test_tta_invalid_threshold():
    with pytest.raises(ValueError):
        _result([0.5]).time_to_accuracy(1.5)


# ----------------------------------------------------------------------
# SpiderCachePolicy.from_goal
# ----------------------------------------------------------------------
def test_goal_accuracy_static_high_ratio():
    p = SpiderCachePolicy.from_goal("accuracy", rng=0)
    assert p.r_start == p.r_end == 0.9
    assert not p.elastic
    assert p.hom_radius_scale == 0.5


def test_goal_balanced_matches_paper_recommendation():
    p = SpiderCachePolicy.from_goal("balanced", rng=0)
    assert (p.r_start, p.r_end) == (0.9, 0.8)
    assert p.elastic


def test_goal_speed_aggressive():
    p = SpiderCachePolicy.from_goal("speed", rng=0)
    assert p.r_end == 0.5
    assert p.hom_neighbor_limit > SpiderCachePolicy.GOALS["accuracy"]["hom_neighbor_limit"]


def test_goal_overrides_win():
    p = SpiderCachePolicy.from_goal("speed", cache_fraction=0.4, r_end=0.6, rng=0)
    assert p.r_end == 0.6
    assert p.cache_fraction == 0.4


def test_unknown_goal():
    with pytest.raises(KeyError):
        SpiderCachePolicy.from_goal("turbo")


def test_goals_end_to_end_tradeoff():
    """Speed goal yields higher hit ratio than accuracy goal."""
    from repro.data.synthetic import make_clustered_dataset, train_test_split
    from repro.nn.models import build_model
    from repro.train.trainer import Trainer, TrainerConfig

    ds = make_clustered_dataset(600, n_classes=6, dim=16, rng=0)
    train, test = train_test_split(ds, rng=1)
    results = {}
    for goal in ["accuracy", "speed"]:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy.from_goal(goal, rng=3)
        results[goal] = Trainer(model, train, test, policy,
                                TrainerConfig(epochs=8, batch_size=64)).run()
    assert results["speed"].mean_hit_ratio > results["accuracy"].mean_hit_ratio
    assert results["speed"].total_time_s < results["accuracy"].total_time_s
