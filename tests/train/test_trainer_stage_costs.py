"""Trainer stage-cost resolution tests."""

import pytest

from repro.baselines.shade import ShadePolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_cnn_model, build_model
from repro.train.policy_base import TrainingPolicy
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(200, n_classes=4, dim=8, rng=0)
    return train_test_split(ds, rng=1)


def _trainer(data, model_name, policy):
    train, test = data
    model = build_model(model_name, train.dim, train.num_classes, rng=2)
    return Trainer(model, train, test, policy, TrainerConfig(epochs=1))


def test_spec_costs_used(data):
    t = _trainer(data, "vgg16", SpiderCachePolicy(rng=3))
    c = t._stage_costs()
    assert (c.stage1_ms, c.stage2_ms, c.is_ms) == (56.0, 28.0, 31.0)


def test_cheap_policy_overrides_is_cost(data):
    """SHADE's 1ms loss-rank IS replaces the graph-IS cost in the model."""
    t = _trainer(data, "resnet18", ShadePolicy(rng=3))
    c = t._stage_costs()
    assert c.is_ms == 1.0
    assert c.stage1_ms == 42.0


def test_no_cache_policy_zero_is(data):
    t = _trainer(data, "resnet18", TrainingPolicy(rng=3))
    assert t._stage_costs().is_ms == 0.0


def test_custom_model_fallback_costs(data):
    train, test = data

    import numpy as np

    class Flat:
        def __init__(self, inner):
            self.inner = inner
            self.spec = None
            self.embedding_dim = 16

        def params(self):
            return self.inner.params()

        def train_batch(self, x, y, w=None):
            return self.inner.train_batch(x.reshape(-1, 1, 4, 2), y, w)

        def evaluate(self, x, y, batch_size=256):
            return self.inner.evaluate(x.reshape(-1, 1, 4, 2), y)

    model = Flat(build_cnn_model((1, 4, 2), 4, channels=(2,),
                                 embedding_dim=16, rng=0))
    t = Trainer(model, train, test, TrainingPolicy(rng=3), TrainerConfig(epochs=1))
    c = t._stage_costs()
    # Fallback: resnet18-like stage costs with the policy's IS.
    assert (c.stage1_ms, c.stage2_ms) == (42.0, 35.0)
