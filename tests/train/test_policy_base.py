"""Base TrainingPolicy contract tests."""

import numpy as np
import pytest

from repro.cache.base import CacheStats
from repro.core.semantic_cache import FetchSource
from repro.data.synthetic import make_clustered_dataset
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext, TrainingPolicy


def _ctx(n=50):
    ds = make_clustered_dataset(n, n_classes=4, dim=8, rng=0)
    store = RemoteStore(ds.X)
    return PolicyContext(
        dataset=ds, store=store, batch_size=16, total_epochs=3,
        embedding_dim=8, rng=np.random.default_rng(1),
    )


def test_unbound_policy_raises():
    p = TrainingPolicy(rng=0)
    with pytest.raises(RuntimeError):
        p.epoch_order(0)
    with pytest.raises(RuntimeError):
        p.fetch(0)


def test_default_epoch_order_permutation():
    p = TrainingPolicy(rng=0)
    p.setup(_ctx())
    order = p.epoch_order(0)
    assert sorted(order.tolist()) == list(range(50))
    assert not np.array_equal(p.epoch_order(1), order)


def test_default_fetch_always_remote():
    p = TrainingPolicy(rng=0)
    ctx = _ctx()
    p.setup(ctx)
    for _ in range(3):
        out = p.fetch(7)
        assert out.source == FetchSource.REMOTE
        assert out.served_id == 7
    assert ctx.store.fetch_count == 3


def test_default_hooks_are_noops():
    p = TrainingPolicy(rng=0)
    p.setup(_ctx())
    p.before_epoch(0)
    p.after_batch(np.arange(4), np.arange(4), np.ones(4), np.zeros((4, 8)), 0)
    p.after_epoch(0, 0.5)
    assert p.backprop_mask(np.arange(4), np.ones(4)) is None


def test_default_stats_empty():
    p = TrainingPolicy(rng=0)
    s = p.stats()
    assert isinstance(s, CacheStats)
    assert s.requests == 0
    assert p.imp_ratio is None
    assert p.is_ms_per_batch == 0.0


def test_context_num_samples():
    ctx = _ctx(37)
    assert ctx.num_samples == 37
