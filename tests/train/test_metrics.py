"""TrainResult / EpochMetrics tests."""

import numpy as np
import pytest

from repro.train.metrics import EpochMetrics, TrainResult


def _em(epoch, acc=0.5, hit=0.3, load=1.0, compute=2.0, is_v=0.1):
    return EpochMetrics(
        epoch=epoch, train_loss=1.0, val_accuracy=acc, hit_ratio=hit,
        exact_hit_ratio=hit, substitute_ratio=0.0,
        data_load_s=load, compute_s=compute, is_visible_s=is_v,
        epoch_time_s=load + compute + is_v,
    )


def test_empty_run_raises():
    r = TrainResult("p", "m", "d")
    with pytest.raises(ValueError):
        _ = r.final_accuracy
    assert r.mean_hit_ratio == 0.0


def test_final_and_best_accuracy():
    r = TrainResult("p", "m", "d", epochs=[_em(0, 0.3), _em(1, 0.9), _em(2, 0.7)])
    assert r.final_accuracy == 0.7
    assert r.best_accuracy == 0.9


def test_total_time():
    r = TrainResult("p", "m", "d", epochs=[_em(0), _em(1)])
    assert r.total_time_s == pytest.approx(2 * 3.1)


def test_series_extraction():
    r = TrainResult("p", "m", "d", epochs=[_em(0, 0.1), _em(1, 0.2)])
    np.testing.assert_allclose(r.series("val_accuracy"), [0.1, 0.2])


def test_stage_totals_and_summary():
    r = TrainResult("p", "m", "d", epochs=[_em(0), _em(1)])
    st = r.stage_totals()
    assert st["data_load_s"] == 2.0
    assert st["compute_s"] == 4.0
    s = r.summary()
    assert s["final_accuracy"] == 0.5
    assert s["total_time_s"] == pytest.approx(6.2)
    assert s["mean_hit_ratio"] == pytest.approx(0.3)
