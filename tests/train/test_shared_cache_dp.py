"""Shared-cache data-parallel tests (the paper's multi-GPU deployment)."""

import numpy as np
import pytest

from repro.baselines.coordl import CoorDLPolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.train.data_parallel import DataParallelTrainer
from repro.train.trainer import TrainerConfig


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(600, n_classes=5, dim=16, rng=0)
    return train_test_split(ds, test_fraction=0.25, rng=1)


def _dp(data, world_size, shared, policy_cls=SpiderCachePolicy, epochs=5):
    train, test = data
    return DataParallelTrainer(
        model_factory=lambda: build_model("resnet18", train.dim,
                                          train.num_classes, rng=7),
        train_set=train,
        test_set=test,
        policy_factory=lambda rank: policy_cls(cache_fraction=0.2,
                                               rng=100 + rank),
        world_size=world_size,
        shared_cache=shared,
        config=TrainerConfig(epochs=epochs, batch_size=64),
        rng=5,
    )


def test_single_policy_instance(data):
    dp = _dp(data, 3, shared=True)
    assert dp.workers[0].policy is dp.workers[1].policy is dp.workers[2].policy
    assert dp.workers[0].store is dp.workers[2].store


def test_sharded_mode_distinct_policies(data):
    dp = _dp(data, 3, shared=False)
    assert dp.workers[0].policy is not dp.workers[1].policy


def test_shared_workers_cover_global_order(data):
    """Round-robin split partitions every epoch's global order exactly."""
    dp = _dp(data, 3, shared=True)
    order = dp.workers[0].policy.epoch_order(0)
    parts = [order[r::3] for r in range(3)]
    recombined = np.concatenate(parts)
    assert sorted(recombined.tolist()) == sorted(order.tolist())


def test_shared_mode_trains_and_syncs(data):
    dp = _dp(data, 2, shared=True)
    res = dp.run()
    assert res.final_accuracy > 0.8
    assert dp.replicas_in_sync(atol=1e-8)
    assert res.epochs[-1].hit_ratio > 0.2


def test_shared_cache_beats_sharded_caches(data):
    """One global cache sees every worker's accesses, so the pooled hit
    ratio is at least as good as isolated per-shard caches."""
    shared = _dp(data, 4, shared=True).run()
    sharded = _dp(data, 4, shared=False).run()
    assert shared.epochs[-1].hit_ratio >= sharded.epochs[-1].hit_ratio - 0.05


def test_shared_mode_with_coordl(data):
    res = _dp(data, 2, shared=True, policy_cls=CoorDLPolicy).run()
    # Warm MinIO over the global id space: hit -> cache fraction.
    assert res.epochs[-1].hit_ratio == pytest.approx(0.2, abs=0.03)


def test_shared_epoch_time_scales(data):
    t1 = _dp(data, 1, shared=True, epochs=2).run().epochs[-1].epoch_time_s
    t4 = _dp(data, 4, shared=True, epochs=2).run().epochs[-1].epoch_time_s
    assert t4 < t1
