"""Pipeline overlap-model tests (Table 1 / Fig. 12)."""

import pytest

from repro.train.pipeline import PipelineSimulator, StageCostModel


def test_from_model_names():
    c = StageCostModel.for_model("resnet18")
    assert (c.stage1_ms, c.stage2_ms, c.is_ms) == (42.0, 35.0, 16.0)


def test_serial_cost():
    c = StageCostModel(40, 30, 10)
    assert c.serial_ms == 80


def test_recommended_modes_match_paper():
    """Fig. 12: ResNets overlap Stage2 only; AlexNet/VGG16 need the extended
    window into the next batch's Stage1."""
    assert StageCostModel.for_model("resnet18").recommended_mode() == "stage2"
    assert StageCostModel.for_model("resnet50").recommended_mode() == "stage2"
    assert StageCostModel.for_model("alexnet").recommended_mode() == "stage2+next_stage1"
    assert StageCostModel.for_model("vgg16").recommended_mode() == "stage2+next_stage1"


def test_visible_is_fully_hidden_when_it_fits():
    c = StageCostModel(40, 30, 10)
    assert c.visible_is_ms("stage2") == 0.0
    assert c.visible_is_ms("none") == 10.0


def test_visible_is_partial():
    c = StageCostModel(40, 30, 50)
    assert c.visible_is_ms("stage2") == 20.0
    assert c.visible_is_ms("stage2+next_stage1") == 0.0


def test_schedule_serial_makespan():
    c = StageCostModel(10, 5, 3)
    sim = PipelineSimulator(c, mode="none")
    assert sim.makespan_ms(4) == pytest.approx(4 * 18)


def test_schedule_stage2_overlap_hides_is():
    c = StageCostModel(10, 5, 3)  # IS fits in stage2
    sim = PipelineSimulator(c, mode="stage2")
    assert sim.makespan_ms(8) == pytest.approx(8 * 15)
    assert sim.visible_overhead_ms(8) == pytest.approx(0.0)


def test_schedule_stage2_overlap_partial():
    c = StageCostModel(10, 5, 9)  # IS exceeds stage2 by 4
    sim = PipelineSimulator(c, mode="stage2")
    # Each batch after the first delayed by 4ms.
    assert sim.per_batch_visible_ms(64) > 0


def test_extended_overlap_hides_long_is():
    c = StageCostModel.for_model("alexnet")  # is=35 > stage2=33
    # Only the final batch's IS tail (2ms) sticks out past the last Stage2 —
    # amortized per-batch overhead is negligible.
    hidden = PipelineSimulator(c, mode="stage2+next_stage1")
    assert hidden.visible_overhead_ms(32) <= c.is_ms - c.stage2_ms + 1e-9
    assert hidden.per_batch_visible_ms(32) < 0.5
    partial = PipelineSimulator(c, mode="stage2")
    assert partial.visible_overhead_ms(32) > hidden.visible_overhead_ms(32)


def test_paper_claim_all_models_fully_hidden():
    """§5: with the recommended mode, the amortized IS overhead is hidden
    for every model in the zoo (at most one IS tail across the whole run)."""
    for name in ["resnet18", "resnet50", "alexnet", "vgg16"]:
        c = StageCostModel.for_model(name)
        sim = PipelineSimulator(c, mode=c.recommended_mode())
        assert sim.per_batch_visible_ms(64) < 0.5, name
        assert c.visible_is_ms(c.recommended_mode()) == 0.0, name


def test_schedule_intervals_well_formed():
    c = StageCostModel(10, 5, 3)
    sim = PipelineSimulator(c, mode="stage2")
    sched = sim.schedule(5)
    assert len(sched) == 15  # 3 intervals per batch
    for iv in sched:
        assert iv.end_ms > iv.start_ms
        assert iv.duration_ms == pytest.approx(
            {"stage1": 10, "stage2": 5, "is": 3}[iv.stage]
        )
    # Stage1(b) precedes Stage2(b); IS(b) starts at Stage1(b) end.
    by_batch = {}
    for iv in sched:
        by_batch.setdefault(iv.batch, {})[iv.stage] = iv
    for b, stages in by_batch.items():
        assert stages["stage2"].start_ms == stages["stage1"].end_ms
        assert stages["is"].start_ms == stages["stage1"].end_ms


def test_invalid_batches():
    sim = PipelineSimulator(StageCostModel(1, 1, 1))
    import pytest as _pt

    with _pt.raises(ValueError):
        sim.schedule(0)


def test_stage_table_row():
    c = StageCostModel.for_model("vgg16")
    row = PipelineSimulator(c, mode="stage2+next_stage1").stage_table()
    assert row["is_ms"] == 31.0
    assert row["visible_is_ms"] == 0.0
