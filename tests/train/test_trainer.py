"""Trainer tests: time accounting, policy integration, learning."""

import numpy as np
import pytest

from repro.baselines.baseline import LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.baselines.icache import ICacheImpPolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.storage.latency import ConstantLatency
from repro.train.policy_base import TrainingPolicy
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(400, n_classes=4, dim=16, rng=0)
    return train_test_split(ds, test_fraction=0.25, rng=1)


def _train(data, policy, epochs=3, **cfg_kw):
    train, test = data
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    cfg = TrainerConfig(epochs=epochs, batch_size=64, **cfg_kw)
    return Trainer(model, train, test, policy, cfg).run()


def test_run_produces_epoch_metrics(data):
    res = _train(data, TrainingPolicy(rng=3), epochs=3)
    assert len(res.epochs) == 3
    assert res.policy_name == "no-cache"
    assert res.model_name == "resnet18"
    for e in res.epochs:
        assert e.epoch_time_s > 0
        assert e.data_load_s > 0
        assert e.compute_s > 0


def test_model_learns_through_trainer(data):
    res = _train(data, TrainingPolicy(rng=3), epochs=8)
    assert res.epochs[-1].val_accuracy > res.epochs[0].val_accuracy
    assert res.final_accuracy > 0.5


def test_no_cache_policy_zero_hits(data):
    res = _train(data, TrainingPolicy(rng=3))
    assert all(e.hit_ratio == 0.0 for e in res.epochs)


def test_cache_policy_nonzero_hits(data):
    res = _train(data, CoorDLPolicy(cache_fraction=0.5, rng=3), epochs=3)
    assert res.epochs[-1].hit_ratio > 0.3


def test_hits_reduce_data_load_time(data):
    slow = _train(data, TrainingPolicy(rng=3), epochs=3)
    fast = _train(data, CoorDLPolicy(cache_fraction=0.8, rng=3), epochs=3)
    assert fast.epochs[-1].data_load_s < slow.epochs[-1].data_load_s


def test_io_workers_divide_load(data):
    a = _train(data, TrainingPolicy(rng=3), epochs=1, io_workers=1)
    b = _train(data, TrainingPolicy(rng=3), epochs=1, io_workers=4)
    assert b.epochs[0].data_load_s == pytest.approx(
        a.epochs[0].data_load_s / 4, rel=0.05
    )


def test_selective_backprop_reduces_compute(data):
    full = _train(data, ICacheImpPolicy(cache_fraction=0.0, skip_quantile=0.0, rng=3))
    skip = _train(data, ICacheImpPolicy(cache_fraction=0.0, skip_quantile=0.5, rng=3))
    assert skip.epochs[-1].compute_s < full.epochs[-1].compute_s


def test_is_visible_time_hidden_for_resnet(data):
    """ResNet18's 16ms IS fits inside its 35ms Stage2 (Fig. 12(a))."""
    res = _train(data, SpiderCachePolicy(cache_fraction=0.2, rng=3))
    assert all(e.is_visible_s == 0.0 for e in res.epochs)


def test_spider_policy_full_integration(data):
    res = _train(data, SpiderCachePolicy(cache_fraction=0.3, rng=3), epochs=6)
    assert res.epochs[-1].hit_ratio > 0.2
    assert res.epochs[-1].imp_ratio is not None
    assert res.epochs[-1].score_std is not None
    assert res.final_accuracy > 0.4


def test_latency_model_injected(data):
    fast = _train(data, TrainingPolicy(rng=3), epochs=1)
    train, test = data
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    slow = Trainer(
        model, train, test, TrainingPolicy(rng=3),
        TrainerConfig(epochs=1, batch_size=64),
        latency=ConstantLatency(base_s=0.01),
    ).run()
    assert slow.epochs[0].data_load_s > fast.epochs[0].data_load_s


def test_epoch_time_is_sum_of_stages(data):
    res = _train(data, LRUBaselinePolicy(cache_fraction=0.2, rng=3))
    for e in res.epochs:
        assert e.epoch_time_s == pytest.approx(
            e.data_load_s + e.compute_s + e.is_visible_s
        )


def test_eval_every(data):
    res = _train(data, TrainingPolicy(rng=3), epochs=4, eval_every=2)
    # Epochs 1 and 3 reuse the previous accuracy (except the final epoch).
    assert res.epochs[0].val_accuracy == res.epochs[1].val_accuracy
    assert len(res.epochs) == 4
