"""Corrupt-checkpoint handling: clear errors instead of stack-trace soup."""

import json

import numpy as np
import pytest

from repro.nn.models import build_model
from repro.resilience.state import load_state, save_state
from repro.train.checkpoint import CheckpointError, load_checkpoint, save_checkpoint


@pytest.fixture
def checkpoint(tmp_path):
    model = build_model("resnet18", 16, 4, rng=0)
    return save_checkpoint(tmp_path / "good.npz", model, epoch=2)


def test_truncated_archive_raises_checkpoint_error(checkpoint, tmp_path):
    blob = checkpoint.read_bytes()
    bad = tmp_path / "truncated.npz"
    bad.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        load_checkpoint(bad)


def test_garbage_bytes_raise_checkpoint_error(tmp_path):
    bad = tmp_path / "garbage.npz"
    bad.write_bytes(b"this is definitely not a zip archive" * 10)
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        load_checkpoint(bad)


def test_missing_header_raises_checkpoint_error(tmp_path):
    bad = tmp_path / "headerless.npz"
    np.savez(bad, some_array=np.arange(4))
    with pytest.raises(CheckpointError, match="__header__"):
        load_checkpoint(bad)


def test_unreadable_header_raises_checkpoint_error(tmp_path):
    bad = tmp_path / "badheader.npz"
    np.savez(bad, __header__=np.frombuffer(b"\xff\xfenot json", dtype=np.uint8))
    with pytest.raises(CheckpointError, match="JSON"):
        load_checkpoint(bad)


def test_future_format_version_raises_checkpoint_error(checkpoint, tmp_path):
    data = dict(np.load(checkpoint))
    header = json.loads(bytes(data["__header__"]).decode())
    header["format_version"] = 999
    data["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    bad = tmp_path / "future.npz"
    np.savez(bad, **data)
    with pytest.raises(CheckpointError, match="newer"):
        load_checkpoint(bad)


def test_missing_file_still_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(tmp_path / "nope.npz")


def test_checkpoint_error_is_also_value_error(checkpoint):
    # Pre-CheckpointError callers caught ValueError; keep that working.
    assert issubclass(CheckpointError, ValueError)
    assert issubclass(CheckpointError, RuntimeError)


# ---------------------------------------------------------------------------
# The resilience state serializer shares the same error contract.


def test_state_archive_garbage_raises(tmp_path):
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"\x00\x01\x02 nothing useful here")
    with pytest.raises(CheckpointError, match="truncated or corrupt"):
        load_state(bad)


def test_state_archive_missing_tree_raises(tmp_path):
    bad = tmp_path / "noTree.npz"
    np.savez(bad, a0=np.arange(3))
    with pytest.raises(CheckpointError, match="__tree__"):
        load_state(bad)


def test_state_archive_truncated_raises(tmp_path):
    path = save_state(tmp_path / "s.npz", {"x": np.arange(10), "y": 3})
    blob = path.read_bytes()
    bad = tmp_path / "strunc.npz"
    bad.write_bytes(blob[: len(blob) // 3])
    with pytest.raises(CheckpointError):
        load_state(bad)
