"""Checkpoint save/restore tests, including exact resume equivalence."""

import numpy as np
import pytest

from repro.data.synthetic import make_clustered_dataset
from repro.nn.models import build_model
from repro.nn.optim import SGD
from repro.train.checkpoint import load_checkpoint, restore_into, save_checkpoint


@pytest.fixture
def setup(tmp_path):
    ds = make_clustered_dataset(200, n_classes=4, dim=8, rng=0)
    model = build_model("resnet18", 8, 4, rng=1)
    opt = SGD(model.params(), lr=0.05, momentum=0.9)
    return tmp_path, ds, model, opt


def _train_steps(model, opt, ds, steps, rng_seed=2):
    rng = np.random.default_rng(rng_seed)
    for _ in range(steps):
        idx = rng.integers(0, len(ds), 32)
        model.zero_grad()
        model.train_batch(ds.X[idx], ds.y[idx])
        opt.step()


def test_roundtrip_model_state(setup):
    tmp, ds, model, opt = setup
    _train_steps(model, opt, ds, 5)
    path = save_checkpoint(tmp / "ckpt.npz", model, opt, epoch=3,
                           metadata={"note": "hello"})
    ck = load_checkpoint(path)
    assert ck["epoch"] == 3
    assert ck["metadata"] == {"note": "hello"}
    for k, v in model.state_dict().items():
        np.testing.assert_array_equal(ck["model"][k], v)


def test_restore_into_fresh_model(setup):
    tmp, ds, model, opt = setup
    _train_steps(model, opt, ds, 5)
    path = save_checkpoint(tmp / "ckpt.npz", model, opt, epoch=2)

    model2 = build_model("resnet18", 8, 4, rng=99)
    opt2 = SGD(model2.params(), lr=0.05, momentum=0.9)
    epoch = restore_into(load_checkpoint(path), model2, opt2)
    assert epoch == 2
    x = np.random.default_rng(3).normal(size=(6, 8))
    np.testing.assert_allclose(
        model.forward(x, training=False)[0],
        model2.forward(x, training=False)[0],
    )


def test_exact_resume_equivalence(setup):
    """checkpoint-at-k + resume == uninterrupted run, parameter for
    parameter (momentum buffers included)."""
    tmp, ds, model, opt = setup

    # Uninterrupted: 10 steps.
    _train_steps(model, opt, ds, 10, rng_seed=7)
    final_uninterrupted = {k: v.copy() for k, v in model.state_dict().items()}

    # Interrupted: fresh identical model, 5 steps, checkpoint, restore into
    # a third model, 5 more steps with the same data stream.
    m2 = build_model("resnet18", 8, 4, rng=1)
    o2 = SGD(m2.params(), lr=0.05, momentum=0.9)
    rng = np.random.default_rng(7)
    batches = [rng.integers(0, len(ds), 32) for _ in range(10)]
    for idx in batches[:5]:
        m2.zero_grad()
        m2.train_batch(ds.X[idx], ds.y[idx])
        o2.step()
    path = save_checkpoint(tmp / "mid.npz", m2, o2, epoch=5)

    m3 = build_model("resnet18", 8, 4, rng=42)
    o3 = SGD(m3.params(), lr=0.05, momentum=0.9)
    restore_into(load_checkpoint(path), m3, o3)
    for idx in batches[5:]:
        m3.zero_grad()
        m3.train_batch(ds.X[idx], ds.y[idx])
        o3.step()

    for k, v in m3.state_dict().items():
        np.testing.assert_allclose(v, final_uninterrupted[k], atol=1e-12)


def test_checkpoint_without_optimizer(setup):
    tmp, ds, model, opt = setup
    path = save_checkpoint(tmp / "noopt.npz", model, epoch=1)
    ck = load_checkpoint(path)
    assert ck["optimizer_velocity"] is None
    model2 = build_model("resnet18", 8, 4, rng=9)
    restore_into(ck, model2)  # model-only restore is fine
    opt2 = SGD(model2.params(), lr=0.05)
    with pytest.raises(ValueError):
        restore_into(ck, model2, opt2)


def test_architecture_mismatch_rejected(setup):
    tmp, ds, model, opt = setup
    path = save_checkpoint(tmp / "ckpt.npz", model, opt, epoch=0)
    other = build_model("resnet50", 8, 4, rng=0)
    with pytest.raises((KeyError, ValueError)):
        restore_into(load_checkpoint(path), other)


def test_suffix_normalization(setup):
    tmp, ds, model, opt = setup
    path = save_checkpoint(tmp / "bare", model, epoch=0)
    assert path.suffix == ".npz"
    assert path.exists()


def test_version_check(setup, tmp_path):
    tmp, ds, model, opt = setup
    path = save_checkpoint(tmp / "v.npz", model, epoch=0)
    # Corrupt the version.
    import json

    import numpy as np

    data = dict(np.load(path))
    header = json.loads(bytes(data["__header__"]).decode())
    header["format_version"] = 999
    data["__header__"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_checkpoint(path)
