"""SimClock/DataLoader race regressions.

The deterministic tests replay (via :class:`DeterministicScheduler`) the
exact read-modify-write interleaving that made the *pre-fix*
``SimClock.advance`` and ``DataLoader.skipped_count`` lose updates; the
threaded tests hammer the fixed, locked implementations with real threads
and assert exact totals.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.concurrency import DeterministicScheduler
from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.data.loader import DataLoader
from repro.storage.clock import SimClock


# ---------------------------------------------------------------------------
# Deterministic replay of the pre-fix lost-update race


def _racy_advance(clock, stage, seconds):
    """The pre-fix ``advance`` body, with the RMW split at a yield.

    ``self._stage_s[stage] += seconds`` compiles to a read, an add, and a
    store; a thread switch between read and store loses the other
    thread's update. The generator makes that window an explicit
    preemption point so the scheduler can (deterministically) hit it.
    """
    tmp = clock._stage_s[stage]  # read
    yield  # the OS could preempt here
    clock._stage_s[stage] = tmp + seconds  # store


def _find_losing_seed(n_workers=2, n_advances=4):
    for seed in range(300):
        clock = SimClock()

        def worker():
            for _ in range(n_advances):
                yield from _racy_advance(clock, "data_load", 1.0)
                yield

        sched = DeterministicScheduler(seed=seed)
        for _ in range(n_workers):
            sched.spawn(worker)
        sched.run()
        if clock.stage_seconds("data_load") < n_workers * n_advances:
            return seed
    return None


def test_prefix_advance_race_replays_deterministically():
    """A seeded interleaving loses clock time — and does so on every replay."""
    seed = _find_losing_seed()
    assert seed is not None, "no interleaving exposed the RMW race"
    totals = set()
    for _ in range(3):
        clock = SimClock()

        def worker():
            for _ in range(4):
                yield from _racy_advance(clock, "data_load", 1.0)
                yield

        sched = DeterministicScheduler(seed=seed)
        sched.spawn(worker)
        sched.spawn(worker)
        sched.run()
        totals.add(clock.stage_seconds("data_load"))
    assert len(totals) == 1
    assert totals.pop() < 8.0  # updates were lost, reproducibly


def test_prefix_skipped_count_race_replays_deterministically():
    """Same RMW shape on ``DataLoader.skipped_count`` (the second fix)."""

    def racy_count(loader, skipped):
        tmp = loader.skipped_count
        yield
        loader.skipped_count = tmp + skipped

    losing = None
    for seed in range(300):
        loader = DataLoader(np.zeros(8, dtype=np.int64), fetch_fn=None)

        def worker():
            for _ in range(4):
                yield from racy_count(loader, 1)
                yield

        sched = DeterministicScheduler(seed=seed)
        sched.spawn(worker)
        sched.spawn(worker)
        sched.run()
        if loader.skipped_count < 8:
            losing = seed
            break
    assert losing is not None


# ---------------------------------------------------------------------------
# The fixed implementations are exact under real threads


def test_locked_advance_exact_under_threads():
    clock = SimClock()

    def hammer():
        for _ in range(1000):
            clock.advance("data_load", 0.5)

    with ThreadPoolExecutor(max_workers=8) as pool:
        for f in [pool.submit(hammer) for _ in range(8)]:
            f.result()
    assert clock.stage_seconds("data_load") == pytest.approx(8 * 1000 * 0.5)


def test_locked_skip_count_exact_under_threads():
    loader = DataLoader(np.zeros(8, dtype=np.int64), fetch_fn=None)
    skipped = FetchOutcome(0, 0, None, FetchSource.SKIPPED)

    def hammer():
        for _ in range(500):
            assert loader._collate_outcomes([skipped]) is None

    with ThreadPoolExecutor(max_workers=8) as pool:
        for f in [pool.submit(hammer) for _ in range(8)]:
            f.result()
    assert loader.skipped_count == 8 * 500


# ---------------------------------------------------------------------------
# advance_parallel / deferred semantics


def test_advance_parallel_charges_window_max():
    clock = SimClock()
    charged = clock.advance_parallel("data_load", [0.2, 0.9, 0.4])
    assert charged == pytest.approx(0.9)
    assert clock.stage_seconds("data_load") == pytest.approx(0.9)


def test_advance_parallel_empty_and_negative():
    clock = SimClock()
    assert clock.advance_parallel("data_load", []) == 0.0
    assert clock.total_seconds == 0.0
    with pytest.raises(ValueError):
        clock.advance_parallel("data_load", [0.1, -0.1])


def test_deferred_captures_instead_of_charging():
    clock = SimClock()
    with clock.deferred("data_load") as cell:
        clock.advance("data_load", 1.5)
        clock.advance("data_load", 0.5)
        clock.advance("compute", 2.0)  # other stages charge normally
    assert cell.seconds == pytest.approx(2.0)
    assert clock.stage_seconds("data_load") == 0.0
    assert clock.stage_seconds("compute") == pytest.approx(2.0)
    clock.advance("data_load", 1.0)  # capture scope is over
    assert clock.stage_seconds("data_load") == pytest.approx(1.0)


def test_deferred_nests_innermost_wins():
    clock = SimClock()
    with clock.deferred("s") as outer:
        clock.advance("s", 1.0)
        with clock.deferred("s") as inner:
            clock.advance("s", 2.0)
        clock.advance("s", 4.0)
    assert inner.seconds == pytest.approx(2.0)
    assert outer.seconds == pytest.approx(5.0)
    assert clock.stage_seconds("s") == 0.0


def test_deferred_is_thread_local():
    clock = SimClock()
    started = threading.Event()
    release = threading.Event()

    def other_thread():
        started.set()
        release.wait(timeout=5)
        clock.advance("s", 3.0)  # must NOT land in main thread's cell

    t = threading.Thread(target=other_thread)
    with clock.deferred("s") as cell:
        t.start()
        started.wait(timeout=5)
        clock.advance("s", 1.0)
        release.set()
        t.join(timeout=5)
    assert cell.seconds == pytest.approx(1.0)
    assert clock.stage_seconds("s") == pytest.approx(3.0)
