"""Hypothesis property tests: the lock-striped cache under concurrency.

Random operation programs (fetches, homophily refreshes, elastic
rebalances) run through a worker pool whose effects commit in program
order via :class:`~repro.concurrency.sequencer.Sequencer` — exactly the
prefetching loader's execution shape. The committed state must

* satisfy the serial conservation invariants
  (``hits + misses + substitute_hits == requests``,
  ``insertions - evictions == occupancy``, heap min is the true minimum,
  capacities within budget), and
* equal a fresh cache's *serial* replay of the same program, bit for bit.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.concurrency import Sequencer  # noqa: E402
from repro.core.semantic_cache import SemanticCache  # noqa: E402

N_IDS = 24


def _payload(i):
    return np.full(3, float(i))


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("fetch"),
            st.integers(min_value=0, max_value=N_IDS - 1),
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
        ),
        st.tuples(
            st.just("homophily"),
            st.integers(min_value=0, max_value=N_IDS - 1),
            st.lists(st.integers(min_value=0, max_value=N_IDS - 1),
                     min_size=0, max_size=4),
        ),
        st.tuples(
            st.just("ratio"),
            st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    min_size=1,
    max_size=60,
)


def _apply(cache, op):
    kind = op[0]
    if kind == "fetch":
        _, idx, score = op
        out = cache.fetch(idx, score, _payload)
        return (out.requested_id, out.served_id, str(out.source))
    if kind == "homophily":
        _, key, neighbors = op
        return cache.update_homophily(key, _payload(key), list(neighbors))
    _, ratio = op
    cache.set_imp_ratio(ratio)
    return None


def _run_concurrent(ops, workers=4):
    cache = SemanticCache(total_capacity=8, imp_ratio=0.5)
    seq = Sequencer()
    results = [None] * len(ops)

    def slot(i):
        with seq.turn(i):
            results[i] = _apply(cache, ops[i])

    with ThreadPoolExecutor(max_workers=workers) as pool:
        for f in [pool.submit(slot, i) for i in range(len(ops))]:
            f.result()
    return cache, results


def _run_serial(ops):
    cache = SemanticCache(total_capacity=8, imp_ratio=0.5)
    return cache, [_apply(cache, op) for op in ops]


def _check_invariants(cache, n_fetches):
    s = cache.stats
    assert s.hits + s.misses + s.substitute_hits == s.requests
    assert s.requests == n_fetches
    imp = cache.importance
    assert imp.stats.insertions - imp.stats.evictions == len(imp)
    assert len(imp) <= imp.capacity
    assert len(cache.homophily) <= cache.homophily.capacity
    assert imp.capacity + cache.homophily.capacity == cache.total_capacity
    snapshot = imp.scores_snapshot()
    if snapshot:
        assert imp.min_score() == pytest.approx(
            min(score for _, score in snapshot)
        )
    else:
        assert imp.min_score() is None


@given(ops=ops_strategy, workers=st.integers(min_value=2, max_value=6))
@settings(deadline=None)
def test_concurrent_commits_match_serial_replay(ops, workers):
    concurrent_cache, concurrent_results = _run_concurrent(ops, workers)
    serial_cache, serial_results = _run_serial(ops)

    n_fetches = sum(1 for op in ops if op[0] == "fetch")
    _check_invariants(concurrent_cache, n_fetches)

    # Bit-identical to the serial replay: every outcome, both layers'
    # contents (including order), and every counter.
    assert concurrent_results == serial_results
    cs, ss = concurrent_cache.stats, serial_cache.stats
    assert (cs.hits, cs.misses, cs.substitute_hits,
            cs.insertions, cs.evictions) == (
        ss.hits, ss.misses, ss.substitute_hits, ss.insertions, ss.evictions
    )
    assert list(concurrent_cache.importance._values) == list(
        serial_cache.importance._values
    )
    assert concurrent_cache.importance.scores_snapshot() == (
        serial_cache.importance.scores_snapshot()
    )
    assert list(concurrent_cache.homophily._entries) == list(
        serial_cache.homophily._entries
    )
