"""DeterministicScheduler harness tests: replayable interleavings."""

import pytest

from repro.concurrency import (
    CooperativeLock,
    DeterministicScheduler,
    SchedulerDeadlock,
)


def _counter_workers(sched, counter, lock=None, rounds=5):
    """Two workers incrementing a shared counter via racy or locked RMW."""

    def worker():
        for _ in range(rounds):
            if lock is not None:
                yield lock
            tmp = counter["n"]  # read
            yield  # preemption point between read and write
            counter["n"] = tmp + 1  # write
            if lock is not None:
                lock.release()
            yield

    sched.spawn(worker, name="a")
    sched.spawn(worker, name="b")


def test_same_seed_same_trace():
    traces = []
    for _ in range(2):
        sched = DeterministicScheduler(seed=42)
        counter = {"n": 0}
        _counter_workers(sched, counter)
        traces.append((sched.run(), counter["n"]))
    assert traces[0] == traces[1]


def test_seeds_explore_different_interleavings():
    outcomes = set()
    for seed in range(20):
        sched = DeterministicScheduler(seed=seed)
        counter = {"n": 0}
        _counter_workers(sched, counter)
        sched.run()
        outcomes.add(tuple(name for _, name in sched.trace))
    assert len(outcomes) > 1


def test_racy_rmw_loses_updates_under_some_seed():
    """The harness can *find* a lost-update interleaving, then replay it."""
    losing_seed = None
    for seed in range(200):
        sched = DeterministicScheduler(seed=seed)
        counter = {"n": 0}
        _counter_workers(sched, counter)
        sched.run()
        if counter["n"] < 10:  # 2 workers x 5 increments
            losing_seed = seed
            break
    assert losing_seed is not None, "no seed exposed the race"
    # Replay: the same seed reproduces the same lost count, every time.
    results = []
    for _ in range(3):
        sched = DeterministicScheduler(seed=losing_seed)
        counter = {"n": 0}
        _counter_workers(sched, counter)
        sched.run()
        results.append(counter["n"])
    assert len(set(results)) == 1 and results[0] < 10


def test_cooperative_lock_makes_rmw_exact_under_every_seed():
    for seed in range(50):
        sched = DeterministicScheduler(seed=seed)
        lock = sched.lock("counter")
        counter = {"n": 0}
        _counter_workers(sched, counter, lock=lock)
        sched.run()
        assert counter["n"] == 10, f"seed {seed} lost updates despite lock"


def test_lock_provides_mutual_exclusion():
    sched = DeterministicScheduler(seed=7)
    lock = sched.lock()
    in_critical = {"n": 0, "max": 0}

    def worker():
        for _ in range(4):
            yield lock
            in_critical["n"] += 1
            in_critical["max"] = max(in_critical["max"], in_critical["n"])
            yield  # stay inside the critical section across a preemption
            in_critical["n"] -= 1
            lock.release()
            yield

    sched.spawn(worker)
    sched.spawn(worker)
    sched.spawn(worker)
    sched.run()
    assert in_critical["max"] == 1


def test_deadlock_detected():
    sched = DeterministicScheduler()
    lock = sched.lock("leaked")

    def holder():
        yield lock  # acquires, never releases

    def waiter():
        yield lock

    sched.spawn(holder)
    sched.spawn(waiter)
    with pytest.raises(SchedulerDeadlock):
        sched.run()


def test_release_unheld_lock_raises():
    with pytest.raises(RuntimeError):
        CooperativeLock("x").release()


def test_spawn_rejects_plain_function():
    sched = DeterministicScheduler()
    with pytest.raises(TypeError):
        sched.spawn(lambda: None)


def test_run_guards_against_runaway_workers():
    sched = DeterministicScheduler()

    def forever():
        while True:
            yield

    sched.spawn(forever)
    with pytest.raises(RuntimeError, match="exceeded"):
        sched.run(max_steps=100)
