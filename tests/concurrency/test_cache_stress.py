"""Real-thread stress tests for the lock-striped SemanticCache.

Unlike the sequenced property tests, these run *unordered* concurrent
operations — outcomes are nondeterministic, but the conservation
invariants must survive any interleaving: no lost stat updates, no
capacity overflow, no heap/dict divergence, no exceptions.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.semantic_cache import SemanticCache

pytestmark = pytest.mark.concurrency

N_THREADS = 8
OPS_PER_THREAD = 400


def _payload(i):
    return np.full(3, float(i))


def test_unordered_hammer_preserves_conservation():
    cache = SemanticCache(total_capacity=16, imp_ratio=0.5)
    barrier = threading.Barrier(N_THREADS)
    rngs = [np.random.default_rng(1000 + t) for t in range(N_THREADS)]

    def hammer(t):
        rng = rngs[t]
        barrier.wait()  # maximize overlap
        for k in range(OPS_PER_THREAD):
            roll = rng.random()
            idx = int(rng.integers(0, 48))
            if roll < 0.70:
                out = cache.fetch(idx, float(rng.random()), _payload)
                assert out.payload is not None
            elif roll < 0.90:
                neighbors = [int(n) for n in rng.integers(0, 48, size=3)]
                cache.update_homophily(idx, _payload(idx), neighbors)
            else:
                cache.set_imp_ratio(float(rng.random()))

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        for f in [pool.submit(hammer, t) for t in range(N_THREADS)]:
            f.result()  # re-raises any worker exception

    s = cache.stats
    # No lost aggregate updates: every fetch incremented exactly one bucket.
    total_fetches = s.hits + s.misses + s.substitute_hits
    expected = sum(
        1 for rng in [np.random.default_rng(1000 + t) for t in range(N_THREADS)]
        for _ in range(OPS_PER_THREAD) if _roll_is_fetch(rng)
    )
    assert total_fetches == expected
    assert s.degraded_serves == 0

    imp = cache.importance
    assert imp.stats.insertions - imp.stats.evictions == len(imp)
    assert len(imp) <= imp.capacity
    assert len(cache.homophily) <= cache.homophily.capacity
    assert imp.capacity + cache.homophily.capacity == cache.total_capacity
    # Heap and payload dict still agree.
    assert sorted(imp.keys()) == sorted(k for k, _ in imp.scores_snapshot())
    if len(imp):
        assert imp.min_score() == min(sc for _, sc in imp.scores_snapshot())


def _roll_is_fetch(rng):
    """Replay one hammer iteration's RNG draws; True if it was a fetch."""
    roll = rng.random()
    int(rng.integers(0, 48))
    if roll < 0.70:
        rng.random()  # score draw
        return True
    if roll < 0.90:
        rng.integers(0, 48, size=3)
        return False
    rng.random()  # ratio draw
    return False


def test_resize_storm_against_fetchers():
    """Elastic resizes racing fetches never break the capacity budget."""
    cache = SemanticCache(total_capacity=12, imp_ratio=0.5)
    stop = threading.Event()
    errors = []

    def fetcher(seed):
        rng = np.random.default_rng(seed)
        try:
            while not stop.is_set():
                cache.fetch(int(rng.integers(0, 64)), float(rng.random()),
                            _payload)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def resizer():
        ratios = [0.0, 0.25, 0.5, 0.75, 1.0]
        for i in range(300):
            cache.set_imp_ratio(ratios[i % len(ratios)])
        stop.set()

    threads = [threading.Thread(target=fetcher, args=(s,)) for s in range(4)]
    threads.append(threading.Thread(target=resizer))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    imp, hom = cache.importance, cache.homophily
    assert imp.capacity + hom.capacity == cache.total_capacity
    assert len(imp) <= imp.capacity and len(hom) <= hom.capacity
    assert imp.stats.insertions - imp.stats.evictions == len(imp)
