"""PrefetchingDataLoader: bit-identical results, overlapped accounting."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.concurrency import Sequencer, SequencerAborted
from repro.core.semantic_cache import SemanticCache
from repro.data.loader import DataLoader
from repro.data.prefetch import PrefetchingDataLoader
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.trace import InMemoryRecorder
from repro.storage.clock import SimClock

N = 40


def _make_fetch(clock):
    """A cache-backed fetch whose remote cost varies per id."""
    cache = SemanticCache(total_capacity=8, imp_ratio=0.5)
    rng = np.random.default_rng(5)
    scores = rng.random(N)

    def remote_get(i):
        clock.advance("data_load", 0.010 + 0.001 * (i % 7))
        return np.full(4, float(i))

    def fetch(i):
        return cache.fetch(i, float(scores[i]), remote_get)

    return fetch, cache


def _epoch_order():
    return np.random.default_rng(9).integers(0, N, size=96).astype(np.int64)


def _run(loader):
    order = _epoch_order()
    batches = []
    for start in range(0, len(order), loader.batch_size):
        batches.append(loader.collate(order[start:start + loader.batch_size]))
    return batches


@pytest.mark.parametrize("executor", ["threads", "deterministic"])
@pytest.mark.parametrize("workers", [2, 3, 5])
def test_bit_identical_to_serial_loader(workers, executor):
    """The loader's core promise, proven under BOTH slot executors: real
    threads and the seeded deterministic scheduler must each land on the
    serial loader's exact bits."""
    labels = np.arange(N, dtype=np.int64) % 4

    serial_clock = SimClock()
    serial_fetch, serial_cache = _make_fetch(serial_clock)
    serial = DataLoader(labels, serial_fetch, batch_size=16)
    serial_batches = _run(serial)

    clock = SimClock()
    fetch, cache = _make_fetch(clock)
    loader = PrefetchingDataLoader(
        labels, fetch, batch_size=16, workers=workers, clock=clock,
        executor=executor, seed=workers,
    )
    try:
        batches = _run(loader)
    finally:
        loader.close()

    assert len(batches) == len(serial_batches)
    for b, sb in zip(batches, serial_batches):
        np.testing.assert_array_equal(b.requested, sb.requested)
        np.testing.assert_array_equal(b.served, sb.served)
        np.testing.assert_array_equal(b.X, sb.X)
        np.testing.assert_array_equal(b.y, sb.y)
        assert b.sources == sb.sources
    cs, ss = cache.stats, serial_cache.stats
    assert (cs.hits, cs.misses, cs.substitute_hits) == (
        ss.hits, ss.misses, ss.substitute_hits
    )
    assert list(cache.importance._values) == list(serial_cache.importance._values)


def test_overlap_charges_strictly_less_time():
    labels = np.zeros(N, dtype=np.int64)
    serial_clock = SimClock()
    serial = DataLoader(labels, _make_fetch(serial_clock)[0], batch_size=16)
    _run(serial)
    serial_s = serial_clock.stage_seconds("data_load")

    clock = SimClock()
    # Pinned to the deterministic executor: the assertion is exact charge
    # math, so keep the OS thread scheduler out of the loop entirely.
    loader = PrefetchingDataLoader(
        labels, _make_fetch(clock)[0], batch_size=16, workers=4, clock=clock,
        executor="deterministic",
    )
    try:
        _run(loader)
    finally:
        loader.close()
    overlapped_s = clock.stage_seconds("data_load")

    assert overlapped_s < serial_s
    assert loader.overlap_saved_s == pytest.approx(serial_s - overlapped_s)
    assert loader.windows_committed > 0


def test_workers_one_degenerates_to_serial_accounting():
    labels = np.zeros(N, dtype=np.int64)
    clock = SimClock()
    loader = PrefetchingDataLoader(
        labels, _make_fetch(clock)[0], batch_size=16, workers=1, clock=clock,
        executor="deterministic",
    )
    try:
        _run(loader)
    finally:
        loader.close()
    serial_clock = SimClock()
    serial = DataLoader(labels, _make_fetch(serial_clock)[0], batch_size=16)
    _run(serial)
    assert clock.stage_seconds("data_load") == pytest.approx(
        serial_clock.stage_seconds("data_load")
    )
    assert loader.windows_committed == 0


def test_observer_sees_windows():
    labels = np.zeros(N, dtype=np.int64)
    clock = SimClock()
    obs = Observer(recorder=InMemoryRecorder(), metrics=MetricsRegistry())
    # Pinned: the exact event stream is the assertion, so run it seeded.
    loader = PrefetchingDataLoader(
        labels, _make_fetch(clock)[0], batch_size=16, workers=4,
        clock=clock, observer=obs, executor="deterministic",
    )
    try:
        _run(loader)
    finally:
        loader.close()
    events = [e for e in obs.recorder.events if e["kind"] == "prefetch_window"]
    assert len(events) == loader.windows_committed
    saved = sum(e["saved_s"] for e in events)
    assert saved == pytest.approx(loader.overlap_saved_s)
    for e in events:
        assert e["charged_s"] <= e["sum_s"]
        assert 1 <= e["size"] <= 4
    assert obs.metrics.counter("prefetch.windows").value == len(events)


@pytest.mark.parametrize("executor", ["threads", "deterministic"])
def test_fetch_error_propagates_and_aborts_later_slots(executor):
    """Abort shape is part of the SlotExecutor contract — check it on
    both implementations."""
    labels = np.zeros(N, dtype=np.int64)
    calls = []

    def fetch(i):
        calls.append(i)
        if i == 5:
            raise KeyError("boom")
        from repro.core.semantic_cache import FetchOutcome, FetchSource
        return FetchOutcome(i, i, np.zeros(2), FetchSource.REMOTE)

    loader = PrefetchingDataLoader(labels, fetch, batch_size=16, workers=4,
                                   executor=executor)
    ids = np.array([1, 2, 5, 7, 8, 9], dtype=np.int64)
    try:
        with pytest.raises(KeyError):
            loader.collate(ids)
    finally:
        loader.close()
    # Slots after the failed one never ran their fetch (serial semantics:
    # the loop would have stopped at id 5).
    assert set(calls) <= {1, 2, 5}


def test_sequencer_orders_and_aborts():
    seq = Sequencer()
    committed = []

    def slot(i):
        if i == 3:
            with pytest.raises(SequencerAborted):
                with seq.turn(i):
                    pass  # never runs
            return
        try:
            with seq.turn(i):
                committed.append(i)
                if i == 2:
                    raise ValueError("slot 2 fails")
        except ValueError:
            pass

    with ThreadPoolExecutor(max_workers=4) as pool:
        for f in [pool.submit(slot, i) for i in range(4)]:
            f.result()
    assert committed == [0, 1, 2]
    assert seq.aborted


def test_close_is_idempotent_and_pool_restarts():
    labels = np.zeros(N, dtype=np.int64)
    clock = SimClock()
    loader = PrefetchingDataLoader(
        labels, _make_fetch(clock)[0], batch_size=8, workers=2, clock=clock
    )
    assert loader.collate(np.arange(8, dtype=np.int64)) is not None
    loader.drain()
    loader.close()
    loader.close()
    # A post-close collate lazily rebuilds the pool.
    assert loader.collate(np.arange(8, dtype=np.int64)) is not None
    loader.close()


def test_deterministic_executor_is_seed_reproducible():
    """Same seed -> same interleaving trace AND same batches; different
    seed -> possibly different interleaving, *provably* same batches
    (the slot-order commit protocol, not luck, carries the bits)."""
    labels = np.zeros(N, dtype=np.int64)

    def run_once(seed):
        clock = SimClock()
        loader = PrefetchingDataLoader(
            labels, _make_fetch(clock)[0], batch_size=16, workers=4,
            clock=clock, executor="deterministic", seed=seed,
        )
        batches = _run(loader)
        return batches, list(loader._executor.last_trace)

    b1, t1 = run_once(seed=7)
    b2, t2 = run_once(seed=7)
    b3, t3 = run_once(seed=8)
    assert t1 == t2
    for a, b in zip(b1, b2):
        np.testing.assert_array_equal(a.X, b.X)
        assert a.sources == b.sources
    for a, b in zip(b1, b3):
        np.testing.assert_array_equal(a.X, b.X)
        assert a.sources == b.sources


def test_executor_kind_is_surfaced():
    labels = np.zeros(4, dtype=np.int64)
    ld = PrefetchingDataLoader(labels, None, workers=2)
    assert ld.executor_kind == "threads"
    ld = PrefetchingDataLoader(labels, None, workers=2,
                               executor="deterministic")
    assert ld.executor_kind == "deterministic"
    with pytest.raises(ValueError):
        PrefetchingDataLoader(labels, None, workers=2, executor="bogus")


def test_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        PrefetchingDataLoader(np.zeros(4, dtype=np.int64), None, workers=0)
