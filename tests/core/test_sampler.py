"""Sampler tests."""

import numpy as np
import pytest

from repro.core.sampler import MultinomialSampler, SequentialSampler, UniformSampler


def test_uniform_is_permutation():
    s = UniformSampler(100, rng=0)
    order = s.epoch_order(0)
    assert sorted(order.tolist()) == list(range(100))


def test_uniform_differs_across_epochs():
    s = UniformSampler(50, rng=0)
    assert not np.array_equal(s.epoch_order(0), s.epoch_order(1))


def test_uniform_invalid():
    with pytest.raises(ValueError):
        UniformSampler(0)


def test_sequential_identity():
    s = SequentialSampler(10)
    np.testing.assert_array_equal(s.epoch_order(3), np.arange(10))


def test_multinomial_respects_weights():
    """High-weight samples appear far more often (the Fig. 5 skew)."""
    n = 100
    w = np.ones(n)
    w[:10] = 50.0
    s = MultinomialSampler(n, weight_fn=lambda: w, epoch_size=20000, rng=0)
    order = s.epoch_order(0)
    counts = np.bincount(order, minlength=n)
    assert counts[:10].mean() > 20 * counts[10:].mean()


def test_multinomial_epoch_size_default():
    s = MultinomialSampler(37, weight_fn=lambda: np.ones(37), rng=0)
    assert len(s.epoch_order(0)) == 37


def test_multinomial_with_replacement():
    w = np.zeros(10)
    w[3] = 1.0
    s = MultinomialSampler(10, weight_fn=lambda: w, epoch_size=5, rng=0)
    np.testing.assert_array_equal(s.epoch_order(0), [3] * 5)


def test_multinomial_degenerate_weights_uniform():
    s = MultinomialSampler(20, weight_fn=lambda: np.zeros(20), epoch_size=1000, rng=0)
    order = s.epoch_order(0)
    counts = np.bincount(order, minlength=20)
    assert counts.min() > 10  # every sample drawn


def test_multinomial_negative_weights_rejected():
    s = MultinomialSampler(3, weight_fn=lambda: np.array([1.0, -1.0, 1.0]), rng=0)
    with pytest.raises(ValueError):
        s.epoch_order(0)


def test_multinomial_wrong_length_rejected():
    s = MultinomialSampler(3, weight_fn=lambda: np.ones(4), rng=0)
    with pytest.raises(ValueError):
        s.epoch_order(0)


def test_multinomial_weights_reread_each_epoch():
    state = {"w": np.ones(10)}
    s = MultinomialSampler(10, weight_fn=lambda: state["w"], epoch_size=500, rng=0)
    s.epoch_order(0)
    state["w"] = np.zeros(10)
    state["w"][0] = 1.0
    order = s.epoch_order(1)
    assert np.all(order == 0)
