"""SemanticCache composite tests — the four Fig. 9 cases."""

import numpy as np
import pytest

from repro.core.semantic_cache import FetchSource, SemanticCache


def _remote(payloads, calls):
    def get(i):
        calls.append(i)
        return payloads[i]

    return get


@pytest.fixture
def cache():
    return SemanticCache(total_capacity=10, imp_ratio=0.8)


def test_capacity_split(cache):
    assert cache.importance.capacity == 8
    assert cache.homophily.capacity == 2
    assert cache.imp_ratio == 0.8


def test_invalid_params():
    with pytest.raises(ValueError):
        SemanticCache(-1)
    with pytest.raises(ValueError):
        SemanticCache(10, imp_ratio=1.5)


def test_case1_importance_hit(cache):
    calls = []
    payloads = {i: f"p{i}" for i in range(20)}
    get = _remote(payloads, calls)
    cache.fetch(1, 0.4, get)  # miss -> fetched, admitted
    out = cache.fetch(1, 0.4, get)
    assert out.source == FetchSource.IMPORTANCE
    assert out.payload == "p1"
    assert not out.substituted
    assert calls == [1]  # remote touched only once


def test_case2_miss_no_admission():
    c = SemanticCache(2, imp_ratio=1.0)
    calls = []
    get = _remote({i: i for i in range(10)}, calls)
    c.fetch(1, 0.5, get)
    c.fetch(2, 0.4, get)
    out = c.fetch(3, 0.3, get)  # below min (0.4): fetched, not admitted
    assert out.source == FetchSource.REMOTE
    assert 3 not in c.importance
    assert calls == [1, 2, 3]


def test_case3_homophily_substitution(cache):
    calls = []
    get = _remote({i: f"p{i}" for i in range(20)}, calls)
    cache.update_homophily(10, "p10", [5, 6])
    out = cache.fetch(5, 0.1, get)
    assert out.source == FetchSource.HOMOPHILY
    assert out.served_id == 10
    assert out.payload == "p10"
    assert out.substituted
    assert calls == []  # no remote fetch
    assert cache.stats.substitute_hits == 1


def test_case4_admission_evicts_minimum():
    c = SemanticCache(2, imp_ratio=1.0)
    get = _remote({i: i for i in range(10)}, [])
    c.fetch(1, 0.5, get)
    c.fetch(2, 0.3, get)
    c.fetch(3, 0.6, get)  # evicts 2
    assert 2 not in c.importance
    assert 3 in c.importance


def test_lookup_order_importance_first(cache):
    get = _remote({i: f"p{i}" for i in range(20)}, [])
    cache.fetch(5, 0.9, get)  # 5 resident in importance cache
    cache.update_homophily(10, "p10", [5])  # 5 also covered by homophily
    out = cache.fetch(5, 0.9, get)
    assert out.source == FetchSource.IMPORTANCE  # checked first
    assert out.served_id == 5


def test_homophily_node_exact_hit_counts_as_hit(cache):
    get = _remote({i: f"p{i}" for i in range(20)}, [])
    cache.update_homophily(10, "p10", [5])
    out = cache.fetch(10, 0.1, get)
    assert out.source == FetchSource.HOMOPHILY
    assert not out.substituted
    assert cache.stats.hits == 1


def test_set_imp_ratio_rebalances(cache):
    get = _remote({i: i for i in range(30)}, [])
    for i in range(8):
        cache.fetch(i, 0.5 + i / 100, get)
    assert len(cache.importance) == 8
    cache.set_imp_ratio(0.5)
    assert cache.importance.capacity == 5
    assert cache.homophily.capacity == 5
    assert len(cache.importance) == 5  # least-important evicted


def test_set_imp_ratio_grow_importance(cache):
    cache.set_imp_ratio(0.5)
    cache.set_imp_ratio(0.9)
    assert cache.importance.capacity == 9
    assert cache.homophily.capacity == 1
    with pytest.raises(ValueError):
        cache.set_imp_ratio(2.0)


def test_total_capacity_conserved_under_ratio_sweep(cache):
    for r in [0.9, 0.5, 0.2, 0.7, 1.0, 0.0]:
        cache.set_imp_ratio(r)
        assert cache.importance.capacity + cache.homophily.capacity == 10


def test_update_score_propagates(cache):
    get = _remote({i: i for i in range(30)}, [])
    cache.fetch(1, 0.5, get)
    cache.update_score(1, 0.05)
    assert cache.importance._heap.priority(1) == 0.05


def test_hit_ratio_aggregate(cache):
    get = _remote({i: i for i in range(30)}, [])
    cache.fetch(1, 0.5, get)   # miss
    cache.fetch(1, 0.5, get)   # hit
    cache.update_homophily(10, "x", [7])
    cache.fetch(7, 0.1, get)   # substitute hit
    assert cache.stats.requests == 3
    assert cache.hit_ratio == pytest.approx(2 / 3)


def test_len_and_reset(cache):
    get = _remote({i: i for i in range(30)}, [])
    cache.fetch(1, 0.5, get)
    cache.update_homophily(10, "x", [7])
    assert len(cache) == 2
    cache.reset_stats()
    assert cache.stats.requests == 0
    assert cache.importance.stats.requests == 0


# ----------------------------------------------------------------------
# Capacity split determinism (regression for banker's rounding)
# ----------------------------------------------------------------------
def test_split_capacity_half_always_rounds_up():
    """Regression: ``round()`` banker's rounding made .5 splits flip
    between adjacent totals (round(2.5)=2 but round(3.5)=4)."""
    from repro.core.semantic_cache import split_capacity

    assert split_capacity(5, 0.5) == 3
    assert split_capacity(7, 0.5) == 4
    # Every exact .5 product rounds the same direction.
    for total in range(1, 50):
        assert split_capacity(total, 0.5) == (total + 1) // 2


def test_split_capacity_monotone_in_ratio():
    """Raising imp_ratio never shrinks the importance share."""
    from repro.core.semantic_cache import split_capacity

    for total in (1, 7, 10, 33, 100):
        prev = -1
        for r in np.linspace(0.0, 1.0, 201):
            cap = split_capacity(total, float(r))
            assert 0 <= cap <= total
            assert cap >= prev
            prev = cap
        assert split_capacity(total, 0.0) == 0
        assert split_capacity(total, 1.0) == total


def test_set_imp_ratio_split_matches_constructor():
    """Rebalancing to ratio r yields the same split as building at r."""
    for r in (0.0, 0.25, 0.5, 0.65, 0.9, 1.0):
        built = SemanticCache(total_capacity=10, imp_ratio=r)
        moved = SemanticCache(total_capacity=10, imp_ratio=0.8)
        moved.set_imp_ratio(r)
        assert moved.importance.capacity == built.importance.capacity
        assert moved.homophily.capacity == built.homophily.capacity
        assert (
            moved.importance.capacity + moved.homophily.capacity == 10
        )
