"""Graph-based importance scoring tests (Eq. 1-4 semantics)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph_is import (
    GraphImportanceScorer,
    edge_radius,
    importance_score,
)


# ----------------------------------------------------------------------
# Eq. 2-3: similarity / edge radius
# ----------------------------------------------------------------------
def test_edge_radius_equivalence():
    lam, alpha = 2.0, 0.3
    r = edge_radius(lam, alpha)
    # sim(r) == alpha exactly at the radius.
    assert math.exp(-lam * r) == pytest.approx(alpha)


def test_edge_radius_invalid():
    with pytest.raises(ValueError):
        edge_radius(0.0, 0.5)
    with pytest.raises(ValueError):
        edge_radius(1.0, 1.0)
    with pytest.raises(ValueError):
        edge_radius(1.0, 0.0)


def test_similarity_monotone_decreasing():
    s = GraphImportanceScorer(4, np.zeros(4, dtype=int), auto_calibrate=False)
    d = np.array([0.0, 1.0, 2.0])
    sim = s.similarity(d)
    assert sim[0] == 1.0
    assert np.all(np.diff(sim) < 0)
    assert np.all((sim >= 0) & (sim <= 1))


# ----------------------------------------------------------------------
# Eq. 4: importance score
# ----------------------------------------------------------------------
def test_score_four_states_ordering():
    """Paper Fig. 8(b): misclassified > {boundary, isolated} > well."""
    nm = 500
    well = importance_score([50], [0], nm)[0]
    boundary = importance_score([50], [40], nm)[0]
    isolated = importance_score([1], [0], nm)[0]
    misclassified = importance_score([0], [40], nm)[0]
    assert misclassified > boundary > well
    assert misclassified > isolated > well


def test_score_zero_same_capped():
    s = importance_score([0], [0], 500, zero_same_part1=2.0)[0]
    assert s == pytest.approx(math.log(3.0))
    # Strictly above the one-neighbor case.
    assert s > importance_score([1], [0], 500)[0]


def test_score_formula_exact():
    # score = ln(1/4 + 100/500 + 1)
    s = importance_score([4], [100], 500)[0]
    assert s == pytest.approx(math.log(0.25 + 0.2 + 1.0))


def test_score_negative_counts_rejected():
    with pytest.raises(ValueError):
        importance_score([-1], [0])


def test_score_vectorized():
    s = importance_score([1, 2, 4], [0, 10, 100], 500)
    assert s.shape == (3,)
    assert np.all(np.isfinite(s))


@given(same=st.integers(0, 500), other=st.integers(0, 500))
@settings(max_examples=200)
def test_property_score_finite_nonneg(same, other):
    s = importance_score([same], [other], 500)[0]
    assert np.isfinite(s)
    assert s >= 0.0


@given(same=st.integers(1, 500), other=st.integers(0, 499))
@settings(max_examples=100)
def test_property_score_monotonicity(same, other):
    """More other-class neighbors -> higher score; more same-class -> lower."""
    base = importance_score([same], [other], 500)[0]
    assert importance_score([same], [other + 1], 500)[0] > base
    assert importance_score([same + 1], [other], 500)[0] < base


# ----------------------------------------------------------------------
# GraphImportanceScorer end-to-end
# ----------------------------------------------------------------------
def _two_cluster_scorer(auto=False):
    """20 points in two tight, well-separated clusters."""
    rng = np.random.default_rng(0)
    labels = np.array([0] * 10 + [1] * 10)
    emb = np.concatenate(
        [rng.normal(0, 0.1, (10, 4)), rng.normal(5, 0.1, (10, 4)) ]
    )
    s = GraphImportanceScorer(
        4, labels, lam=1.0, alpha=0.1, auto_calibrate=auto
    )
    return s, emb, labels


def test_score_batch_clusters():
    s, emb, labels = _two_cluster_scorer()
    results = s.score_batch(np.arange(20), emb)
    assert len(results) == 20
    for ns in results:
        # Tight clusters: every point sees its 9 same-class mates within
        # radius 2.3 and no other-class points.
        assert ns.x_same == 9
        assert ns.x_other == 0


def test_misclassified_point_scores_highest():
    s, emb, labels = _two_cluster_scorer()
    emb = emb.copy()
    emb[0] = emb[15] + 0.01  # class-0 point inside class-1 cluster
    results = s.score_batch(np.arange(20), emb)
    scores = {ns.index: ns.score for ns in results}
    assert scores[0] == max(scores.values())
    r0 = [ns for ns in results if ns.index == 0][0]
    assert r0.x_same == 0
    assert r0.x_other == 10


def test_top_degree_node():
    s, emb, _ = _two_cluster_scorer()
    results = s.score_batch(np.arange(20), emb)
    top = s.top_degree_node(results)
    assert top is not None
    assert top.degree == max(ns.degree for ns in results)
    assert s.top_degree_node([]) is None


def test_neighbor_ids_exclude_self():
    s, emb, _ = _two_cluster_scorer()
    results = s.score_batch(np.arange(20), emb)
    for ns in results:
        assert ns.index not in ns.neighbor_ids


def test_dynamic_update_changes_counts():
    s, emb, _ = _two_cluster_scorer()
    s.score_batch(np.arange(20), emb)
    # Move point 0 into the other cluster and re-score it.
    moved = emb.copy()
    moved[0] = emb[15] + 0.01
    results = s.score_batch(np.array([0]), moved[0:1])
    assert results[0].x_other > 0


def test_auto_calibration_adapts_radius():
    s, emb, _ = _two_cluster_scorer(auto=True)
    fixed_r = s._fixed_radius
    s.score_batch(np.arange(20), emb * 100)  # huge scale
    assert s.radius != fixed_r
    assert s.radius > fixed_r  # scaled up with the data


def test_effective_lam_consistent():
    s, emb, _ = _two_cluster_scorer(auto=True)
    s.score_batch(np.arange(20), emb)
    r = s.radius
    assert edge_radius(s.effective_lam, s.alpha) == pytest.approx(r)


def test_hnsw_backend_equivalent_on_clusters():
    rng = np.random.default_rng(1)
    labels = np.array([0] * 15 + [1] * 15)
    emb = np.concatenate(
        [rng.normal(0, 0.1, (15, 4)), rng.normal(5, 0.1, (15, 4))]
    )
    exact = GraphImportanceScorer(4, labels, auto_calibrate=False)
    hnsw = GraphImportanceScorer(
        4, labels, auto_calibrate=False, backend="hnsw",
        hnsw_kwargs={"rng": 0, "ef_search": 64},
    )
    re = exact.score_batch(np.arange(30), emb)
    rh = hnsw.score_batch(np.arange(30), emb)
    # Tight clusters: both backends find the same neighbor counts.
    for a, b in zip(re, rh):
        assert a.x_same == b.x_same
        assert a.x_other == b.x_other


def test_unknown_backend():
    with pytest.raises(ValueError):
        GraphImportanceScorer(4, np.zeros(2, dtype=int), backend="faiss")


def test_mismatched_batch_rejected():
    s, emb, _ = _two_cluster_scorer()
    with pytest.raises(ValueError):
        s.score_batch(np.arange(3), emb[:2])


def test_neighbormax_caps_range_results():
    rng = np.random.default_rng(2)
    labels = np.zeros(50, dtype=int)
    emb = rng.normal(0, 0.01, (50, 4))  # all mutually close
    s = GraphImportanceScorer(4, labels, neighbormax=10, auto_calibrate=False)
    results = s.score_batch(np.arange(50), emb)
    for ns in results:
        assert len(ns.neighbor_ids) <= 10


@pytest.mark.parametrize("backend", ["exact", "hnsw"])
def test_score_batch_matches_per_query_range_search(backend):
    """The batched neighbor-list path (``neighbors_within_batch``) must
    return, per sample, exactly what a single ``neighbors_within`` call
    against the same post-update index state returns — so vectorizing
    ``score_batch`` changes throughput, never scores."""
    rng = np.random.default_rng(4)
    labels = rng.integers(3, size=24)
    emb = rng.normal(0.0, 1.0, (24, 4))
    kwargs = {"hnsw_kwargs": {"rng": 0, "ef_search": 64}} if backend == "hnsw" else {}
    s = GraphImportanceScorer(
        4, labels, lam=0.8, alpha=0.2, auto_calibrate=False,
        backend=backend, **kwargs,
    )
    results = s.score_batch(np.arange(24), emb)
    for ns in results:
        ids, dists = s.index.neighbors_within(
            emb[ns.index], s.radius, exclude=ns.index,
            max_neighbors=s.neighbormax,
        )
        np.testing.assert_array_equal(np.sort(ns.neighbor_ids), np.sort(ids))
        same = int(np.sum(labels[ids] == labels[ns.index])) if ids.size else 0
        assert ns.x_same == same
        assert ns.x_other == ids.size - same
