"""Property-based tests for the SemanticCache protocol invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantic_cache import FetchSource, SemanticCache

KEYS = st.integers(0, 40)


@st.composite
def op_sequences(draw):
    """A mixed sequence of fetches, homophily updates, and ratio changes."""
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("fetch"), KEYS, st.floats(0, 2, allow_nan=False)),
            st.tuples(st.just("hom"), KEYS,
                      st.lists(KEYS, min_size=1, max_size=5)),
            st.tuples(st.just("ratio"),
                      st.floats(0, 1, allow_nan=False), st.none()),
        ),
        max_size=120,
    ))
    return ops


@given(ops=op_sequences(), capacity=st.integers(0, 20),
       start_ratio=st.floats(0, 1, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_property_semantic_cache_invariants(ops, capacity, start_ratio):
    cache = SemanticCache(capacity, imp_ratio=start_ratio)
    fetches = 0
    remote_calls = [0]

    def remote(i):
        remote_calls[0] += 1
        return ("payload", i)

    for op in ops:
        if op[0] == "fetch":
            _, key, score = op
            out = cache.fetch(key, score, remote)
            fetches += 1
            # A fetch always returns the requested payload or a substitute
            # whose payload matches its served id.
            assert out.payload == ("payload", out.served_id) or \
                out.payload[1] == out.served_id
            if out.source == FetchSource.REMOTE:
                assert out.served_id == out.requested_id
        elif op[0] == "hom":
            _, key, neigh = op
            cache.update_homophily(key, ("payload", key), neigh)
        else:
            _, ratio, _ = op
            cache.set_imp_ratio(ratio)

        # Budget invariants hold after every operation.
        assert len(cache.importance) <= cache.importance.capacity
        assert len(cache.homophily) <= cache.homophily.capacity
        assert (cache.importance.capacity + cache.homophily.capacity
                == cache.total_capacity)

    # Accounting: every fetch is exactly one hit, substitute hit, or miss,
    # and misses equal remote calls.
    s = cache.stats
    assert s.requests == fetches
    assert s.misses == remote_calls[0]


@given(
    keys=st.lists(KEYS, min_size=1, max_size=150),
    capacity=st.integers(1, 15),
)
@settings(max_examples=60, deadline=None)
def test_property_importance_only_matches_reference(keys, capacity):
    """With a 100% importance ratio and constant scores, the cache behaves
    like insert-until-full with no replacement (scores never beat the min)."""
    cache = SemanticCache(capacity, imp_ratio=1.0)
    resident = set()
    for k in keys:
        out = cache.fetch(k, 1.0, lambda i: i)
        if k in resident:
            assert out.source == FetchSource.IMPORTANCE
        else:
            assert out.source == FetchSource.REMOTE
            if len(resident) < capacity:
                resident.add(k)
    assert set(cache.importance.keys()) == resident
