"""GlobalScoreTable tests."""

import numpy as np
import pytest

from repro.core.scores import GlobalScoreTable


def test_initial_scores_uniform():
    t = GlobalScoreTable(10, initial_score=1.0)
    assert len(t) == 10
    np.testing.assert_array_equal(t.scores, np.ones(10))
    assert t.coverage == 0.0


def test_invalid_init():
    with pytest.raises(ValueError):
        GlobalScoreTable(0)
    with pytest.raises(ValueError):
        GlobalScoreTable(5, initial_score=0.0)


def test_update_and_get():
    t = GlobalScoreTable(5)
    t.update(np.array([1, 3]), np.array([0.5, 2.0]), epoch=0)
    assert t.get(1) == 0.5
    assert t.get(3) == 2.0
    assert t.get(0) == 1.0
    assert t.coverage == pytest.approx(0.4)


def test_update_shape_mismatch():
    t = GlobalScoreTable(5)
    with pytest.raises(ValueError):
        t.update(np.array([1]), np.array([0.5, 1.0]))


def test_negative_scores_rejected():
    t = GlobalScoreTable(5)
    with pytest.raises(ValueError):
        t.update(np.array([0]), np.array([-0.1]))


def test_scores_view_readonly():
    t = GlobalScoreTable(3)
    with pytest.raises(ValueError):
        t.scores[0] = 2.0


def test_staleness():
    t = GlobalScoreTable(4)
    t.update(np.array([0]), np.array([1.0]), epoch=2)
    st = t.staleness(epoch=5)
    assert st[0] == 3
    assert st[1] == 6  # never updated: epoch + 1


def test_sampling_weights_normalized():
    t = GlobalScoreTable(8)
    t.update(np.arange(8), np.linspace(0.1, 2.0, 8), epoch=0)
    w = t.sampling_weights()
    assert w.sum() == pytest.approx(1.0)
    assert np.all(w > 0)
    assert w.argmax() == 7


def test_sampling_weights_floor():
    t = GlobalScoreTable(3)
    t.update(np.array([0]), np.array([0.0]), epoch=0)
    w = t.sampling_weights(floor=1e-6)
    assert w[0] > 0


def test_snapshot_std_only_updated():
    t = GlobalScoreTable(10)
    # Before any update: zero (all defaults).
    assert t.snapshot_std() == 0.0
    t.update(np.array([0, 1]), np.array([1.0, 3.0]), epoch=0)
    std = t.snapshot_std()
    assert std == pytest.approx(1.0)  # std of [1, 3]
    assert t.std_history == [0.0, std]


def test_recent_std_slope():
    t = GlobalScoreTable(2)
    t.std_history.extend([1.0, 2.0, 3.0, 4.0, 5.0])
    assert t.recent_std_slope(window=5) == pytest.approx(1.0)
    t.std_history.extend([4.0, 3.0, 2.0, 1.0, 0.0])
    assert t.recent_std_slope(window=5) == pytest.approx(-1.0)


def test_recent_std_slope_insufficient():
    t = GlobalScoreTable(2)
    t.std_history.append(1.0)
    assert t.recent_std_slope(window=5) is None
    with pytest.raises(ValueError):
        t.recent_std_slope(window=1)
