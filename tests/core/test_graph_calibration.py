"""Auto-calibration internals of the graph scorer."""

import numpy as np
import pytest

from repro.core.graph_is import GraphImportanceScorer


def _clustered(seed=0, n=32, d=8, sep=5.0):
    rng = np.random.default_rng(seed)
    labels = np.array([0] * (n // 2) + [1] * (n // 2))
    emb = np.concatenate([
        rng.normal(0, 0.2, (n // 2, d)),
        rng.normal(sep, 0.2, (n // 2, d)),
    ])
    return labels, emb


def test_fixed_radius_before_first_batch():
    labels, _ = _clustered()
    s = GraphImportanceScorer(8, labels, lam=2.0, alpha=0.2)
    # No EMA yet: radius falls back to -ln(alpha)/lam.
    assert s.radius == pytest.approx(-np.log(0.2) / 2.0)


def test_ema_updates_with_decay():
    labels, emb = _clustered()
    s = GraphImportanceScorer(8, labels, ema_decay=0.5)
    s.score_batch(np.arange(32), emb)
    first = s._dist_ema
    # Second batch at 10x the scale: EMA moves halfway-ish toward it.
    s.score_batch(np.arange(32), emb * 10)
    assert s._dist_ema > first
    assert s._dist_ema < 10 * first


def test_radius_scale_proportional():
    labels, emb = _clustered()
    a = GraphImportanceScorer(8, labels, radius_scale=0.5)
    b = GraphImportanceScorer(8, labels, radius_scale=1.0)
    a.score_batch(np.arange(32), emb)
    b.score_batch(np.arange(32), emb)
    assert b.radius == pytest.approx(2 * a.radius)


def test_auto_calibrate_off_keeps_fixed():
    labels, emb = _clustered()
    s = GraphImportanceScorer(8, labels, lam=1.0, alpha=0.1,
                              auto_calibrate=False)
    r0 = s.radius
    s.score_batch(np.arange(32), emb * 100)
    assert s.radius == r0


def test_single_class_batch_uses_same_class_median():
    """An all-same-class batch still calibrates (all pairs are same-class)."""
    rng = np.random.default_rng(1)
    labels = np.zeros(16, dtype=int)
    emb = rng.normal(0, 1.0, (16, 8))
    s = GraphImportanceScorer(8, labels)
    s.score_batch(np.arange(16), emb)
    assert s._dist_ema is not None
    assert s._dist_ema > 0


def test_tiny_batch_no_crash():
    labels = np.zeros(4, dtype=int)
    s = GraphImportanceScorer(8, labels)
    out = s.score_batch(np.array([0]), np.zeros((1, 8)))
    assert len(out) == 1  # single sample: no pairs, EMA untouched
    assert s._dist_ema is None


def test_zero_same_part1_ordering():
    """Higher caps rank fully-isolated samples even higher."""
    from repro.core.graph_is import importance_score

    low = importance_score([0], [0], 500, zero_same_part1=1.5)[0]
    high = importance_score([0], [0], 500, zero_same_part1=3.0)[0]
    assert high > low
