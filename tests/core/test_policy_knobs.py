"""Tests for SpiderCachePolicy's calibration knobs (DESIGN.md §6)."""

import numpy as np
import pytest

from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext


def _ctx(n=200, classes=4, seed=0):
    ds = make_clustered_dataset(n, n_classes=classes, dim=8, rng=seed)
    store = RemoteStore(ds.X, item_nbytes=ds.item_nbytes)
    return PolicyContext(
        dataset=ds, store=store, batch_size=32, total_epochs=10,
        embedding_dim=16, rng=np.random.default_rng(1),
    )


def test_invalid_knobs():
    with pytest.raises(ValueError):
        SpiderCachePolicy(uniform_mix=1.5)
    with pytest.raises(ValueError):
        SpiderCachePolicy(score_floor=-0.1)
    with pytest.raises(ValueError):
        SpiderCachePolicy(hom_radius_scale=0.0)
    with pytest.raises(ValueError):
        SpiderCachePolicy(hom_radius_scale=1.5)


def test_mixed_weights_sum_to_near_one():
    p = SpiderCachePolicy(uniform_mix=0.3, rng=0)
    p.setup(_ctx())
    w = p._mixed_weights()
    assert w.shape == (200,)
    assert w.sum() == pytest.approx(1.0, abs=1e-9)
    assert np.all(w > 0)


def test_uniform_mix_one_is_uniform():
    p = SpiderCachePolicy(uniform_mix=1.0, rng=0)
    p.setup(_ctx())
    # Skew the scores heavily; mix=1.0 must ignore them.
    p.score_table.update(np.array([0]), np.array([100.0]), epoch=0)
    w = p._mixed_weights()
    np.testing.assert_allclose(w, 1.0 / 200, atol=1e-12)


def test_score_floor_bounds_oversampling():
    p = SpiderCachePolicy(uniform_mix=0.0, score_floor=0.1, rng=0)
    p.setup(_ctx())
    scores = np.full(200, 0.001)
    scores[0] = 1.0
    p.score_table.update(np.arange(200), scores, epoch=0)
    w = p._mixed_weights()
    # Floor guarantees max/min ratio <= 1/score_floor.
    assert w.max() / w.min() <= 1.0 / 0.1 + 1e-9


def test_score_floor_zero_keeps_raw_ratio():
    p = SpiderCachePolicy(uniform_mix=0.0, score_floor=0.0, rng=0)
    p.setup(_ctx())
    scores = np.full(200, 0.001)
    scores[0] = 1.0
    p.score_table.update(np.arange(200), scores, epoch=0)
    w = p._mixed_weights()
    assert w.max() / w.min() > 100


def test_hom_radius_scale_gates_neighbors():
    """Only neighbors within hom_radius_scale x radius enter the entry."""
    ctx = _ctx()
    tight = SpiderCachePolicy(cache_fraction=0.5, hom_radius_scale=0.05,
                              hom_same_class_only=False, rng=2)
    loose = SpiderCachePolicy(cache_fraction=0.5, hom_radius_scale=1.0,
                              hom_same_class_only=False, rng=2)
    rng = np.random.default_rng(5)
    # Two sub-clusters: near-duplicates within, spread across.
    emb = np.concatenate([
        rng.normal(0.0, 0.02, size=(10, 16)),
        rng.normal(1.0, 0.4, size=(10, 16)),
    ])
    ids = np.arange(20)
    for p in (tight, loose):
        p.setup(_ctx())
        p.after_batch(ids, ids, np.ones(20), emb, epoch=0)
    def covered(p):
        return sum(
            len(p.cache.homophily.neighbor_list(k))
            for k in p.cache.homophily.keys()
        )
    assert covered(loose) >= covered(tight)


def test_neighbor_dists_sorted_and_within_radius():
    from repro.core.graph_is import GraphImportanceScorer

    rng = np.random.default_rng(0)
    labels = np.zeros(30, dtype=int)
    emb = np.concatenate([rng.normal(0, 0.1, (15, 4)), rng.normal(4, 0.1, (15, 4))])
    s = GraphImportanceScorer(4, labels, auto_calibrate=False)
    for ns in s.score_batch(np.arange(30), emb):
        assert len(ns.neighbor_dists) == len(ns.neighbor_ids)
        assert np.all(np.diff(ns.neighbor_dists) >= 0)
        assert np.all(ns.neighbor_dists <= s.radius + 1e-9)


def test_same_class_scale_calibration():
    """The EMA scale tracks same-class distances, not the overall median."""
    from repro.core.graph_is import GraphImportanceScorer

    rng = np.random.default_rng(1)
    labels = np.array([0] * 16 + [1] * 16)
    # Same-class pairs tight (0.1), cross-class far (10).
    emb = np.concatenate([rng.normal(0, 0.1, (16, 4)), rng.normal(10, 0.1, (16, 4))])
    s = GraphImportanceScorer(4, labels)
    s.score_batch(np.arange(32), emb)
    # Overall median pairwise distance ~ 17 (cross pairs dominate or split);
    # same-class median ~ 0.1 * sqrt(8) ~ 0.4. Radius must track the latter.
    assert s.radius < 2.0


def test_elastic_monotone_clamp():
    from repro.core.elastic import ElasticCacheManager

    mgr = ElasticCacheManager(total_epochs=30, r_start=0.9, r_end=0.5)
    # Declining std activates beta; oscillating accuracy would make Eq. 8
    # bounce without the clamp.
    rngacc = [0.2, 0.8, 0.2, 0.8, 0.2, 0.8] * 5
    stds = np.linspace(1.0, 0.1, 30)
    ratios = [mgr.step(e, stds[e], rngacc[e]) for e in range(30)]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))


def test_icache_uniform_mix_validation():
    from repro.baselines.icache import ICacheImpPolicy

    with pytest.raises(ValueError):
        ICacheImpPolicy(uniform_mix=-0.1)
    p = ICacheImpPolicy(uniform_mix=0.7, rng=0)
    p.setup(_ctx())
    w = p._mixed_weights()
    assert w.sum() == pytest.approx(1.0, abs=1e-9)
    # The uniform component floors every weight at 0.7/n, and the
    # importance component is bounded by 0.3 even for an extreme score.
    p.score_table.update(np.array([0]), np.array([50.0]), epoch=0)
    w = p._mixed_weights()
    assert w.min() >= 0.7 / 200 - 1e-12
    assert w.max() <= 0.3 + 0.7 / 200 + 1e-12
