"""Property tests for the Elastic Cache Manager (Eq. 5-8 invariants).

Hypothesis drives random score-std / accuracy trajectories and checks the
structural guarantees the rest of the system builds on: the applied ratio
is always within ``[r_end, r_start]``, the annealing is monotone
non-increasing, beta latches one-way, the penalty stays in ``[0, 1]`` for
any accuracy series, and :meth:`coordinate` pushes one global decision to
every cache tier (monolithic and sharded alike).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elastic import (
    AccuracyMonitor,
    ElasticCacheManager,
    ImportanceMonitor,
    RatioController,
)
from repro.core.semantic_cache import SemanticCache
from repro.dist import ShardedCacheClient

_std = st.floats(0.0, 10.0, allow_nan=False)
_acc = st.floats(0.0, 1.0, allow_nan=False)
_trajectory = st.lists(st.tuples(_std, _acc), min_size=1, max_size=40)
_endpoints = st.tuples(
    st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
).map(lambda t: (max(t), min(t)))  # r_start >= r_end


@given(endpoints=_endpoints, traj=_trajectory)
@settings(max_examples=60, deadline=None)
def test_ratio_clamped_and_monotone_nonincreasing(endpoints, traj):
    r_start, r_end = endpoints
    mgr = ElasticCacheManager(total_epochs=len(traj), r_start=r_start,
                              r_end=r_end)
    ratios = [mgr.step(e, std, acc) for e, (std, acc) in enumerate(traj)]
    assert all(r_end - 1e-12 <= r <= r_start + 1e-12 for r in ratios)
    assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))
    assert mgr.current_ratio == ratios[-1]


@given(traj=st.lists(_std, min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_beta_latches_one_way(traj):
    mon = ImportanceMonitor(slope_window=3)
    betas = [mon.observe(s) for s in traj]
    assert all(b in (0, 1) for b in betas)
    # Once 1, never back to 0.
    assert all(a <= b for a, b in zip(betas, betas[1:]))
    if mon.activation_epoch is not None:
        assert betas[mon.activation_epoch] == 1


@given(series=st.lists(_acc, min_size=1, max_size=40),
       gamma=st.floats(1e-4, 1.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_penalty_always_in_unit_interval(series, gamma):
    mon = AccuracyMonitor(gamma=gamma)
    for a in series:
        u = mon.observe(a)
        assert 0.0 <= u <= 1.0


@given(t=st.integers(-5, 200), beta=st.sampled_from([0, 1]),
       u=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_controller_edges_and_clamps(t, beta, u):
    c = RatioController(r_start=0.9, r_end=0.8, total_epochs=50)
    r = c.ratio(t, beta, u)
    assert 0.8 <= r <= 0.9
    if beta == 0:
        assert r == 0.9  # no annealing before activation
    if beta == 1 and t >= 50:
        assert r == pytest.approx(0.8)  # fully annealed past T


def test_controller_validation():
    c = RatioController()
    with pytest.raises(ValueError):
        c.ratio(1, beta=2, u=0.0)
    with pytest.raises(ValueError):
        c.ratio(1, beta=1, u=1.5)
    with pytest.raises(ValueError):
        RatioController(r_start=0.5, r_end=0.8)
    with pytest.raises(ValueError):
        ImportanceMonitor().observe(-1.0)


@given(traj=_trajectory)
@settings(max_examples=25, deadline=None)
def test_coordinate_applies_one_ratio_to_every_tier(traj):
    """One decision, pushed to a monolithic cache AND a sharded client —
    the multi-worker coordination contract."""
    mgr = ElasticCacheManager(total_epochs=len(traj), r_start=0.9, r_end=0.5)
    mono = SemanticCache(20, imp_ratio=0.9)
    client = ShardedCacheClient(20, imp_ratio=0.9, n_shards=2)
    for e, (std, acc) in enumerate(traj):
        ratio = mgr.coordinate(e, std, acc, [mono, client])
        assert mono.imp_ratio == ratio
        assert client.imp_ratio == ratio
        # Both tiers agree on the floor-based capacity split.
        assert mono.importance.capacity == client.importance.capacity


@given(traj=st.lists(st.tuples(_std, _acc), min_size=2, max_size=12))
@settings(max_examples=15, deadline=None)
def test_coordinate_mid_resize_keeps_tiers_in_lockstep(traj):
    """The elastic decision lands while the sharded client is mid ring
    resize (migration stalled by an outage): the split must still apply
    identically to both tiers, and the later drain must not disturb it."""
    import numpy as np

    from repro.resilience.faults import FaultPlan, OutageWindow

    mgr = ElasticCacheManager(total_epochs=len(traj), r_start=0.9, r_end=0.5)
    mono = SemanticCache(20, imp_ratio=0.9)
    client = ShardedCacheClient(20, imp_ratio=0.9, n_shards=2)
    payload = lambda i: np.full(2, float(i), dtype=np.float32)
    for k in range(16):
        mono.fetch(k, float(k + 1), payload)
        client.fetch(k, float(k + 1), payload)

    # Start growing the ring; shard 0's batches stall on an outage.
    client.set_fault_plan(0, FaultPlan(outages=[OutageWindow(0.0, 1e9)]))
    client.resize(4, drain=False)
    client.continue_migration()

    for e, (std, acc) in enumerate(traj):
        ratio = mgr.coordinate(e, std, acc, [mono, client])
        assert mono.imp_ratio == ratio == client.imp_ratio
        assert mono.importance.capacity == client.importance.capacity
        assert mono.homophily.capacity == client.homophily.capacity
        assert len(client.importance) <= client.importance.capacity

    # Recovery: drain with compute time passing between passes (breaker
    # cooldowns only elapse when the clock moves).
    client.set_fault_plan(0, None)
    for _ in range(50):
        if client.migration is None:
            break
        client.clock.advance("compute", 0.1)
        client.continue_migration()
    assert client.migration is None
    assert client.verify_placement() == []
    assert mono.importance.capacity == client.importance.capacity
    assert sorted(mono.importance.keys()) == sorted(client.importance.keys())
