"""HomophilyCache tests."""

import pytest

from repro.core.homophily_cache import HomophilyCache


def test_update_and_cover():
    c = HomophilyCache(2)
    assert c.update(10, "payload10", [1, 2, 3])
    assert c.covers(1) and c.covers(2) and c.covers(10)
    assert not c.covers(99)


def test_lookup_substitute():
    """Fig. 9 case 3: a neighbor request returns the high-degree node."""
    c = HomophilyCache(2)
    c.update(10, "p10", [1, 2])
    key, payload = c.lookup(1)
    assert key == 10
    assert payload == "p10"
    assert c.stats.substitute_hits == 1


def test_lookup_node_itself_exact_hit():
    c = HomophilyCache(2)
    c.update(10, "p10", [1])
    key, payload = c.lookup(10)
    assert key == 10
    assert c.stats.hits == 1
    assert c.stats.substitute_hits == 0


def test_lookup_miss():
    c = HomophilyCache(2)
    c.update(10, "p10", [1])
    assert c.lookup(5) is None
    assert c.stats.misses == 1


def test_fifo_eviction():
    c = HomophilyCache(2)
    c.update(1, "a", [10])
    c.update(2, "b", [20])
    c.update(3, "c", [30])  # evicts 1
    assert 1 not in c
    assert not c.covers(10)
    assert c.covers(20) and c.covers(30)
    assert c.stats.evictions == 1


def test_duplicate_node_skipped():
    """Paper: only nodes 'not previously in the Homophily Cache' enter."""
    c = HomophilyCache(2)
    assert c.update(1, "a", [10])
    assert not c.update(1, "a2", [99])
    key, payload = c.lookup(10)
    assert payload == "a"
    assert not c.covers(99)


def test_most_recent_cover_wins():
    c = HomophilyCache(3)
    c.update(1, "a", [10])
    c.update(2, "b", [10])  # 10 covered by both
    key, payload = c.lookup(10)
    assert key == 2 and payload == "b"


def test_eviction_cleans_neighbor_map():
    c = HomophilyCache(1)
    c.update(1, "a", [10, 11])
    c.update(2, "b", [10])
    # 1 evicted: 11 uncovered, 10 still covered by 2.
    assert not c.covers(11)
    key, _ = c.lookup(10)
    assert key == 2


def test_shrink_and_grow():
    c = HomophilyCache(3)
    for i in range(3):
        c.update(i, f"p{i}", [100 + i])
    evicted = c.shrink_to(1)
    assert evicted == [0, 1]  # oldest first
    assert c.capacity == 1
    assert 2 in c
    c.grow_to(5)
    assert c.capacity == 5
    with pytest.raises(ValueError):
        c.grow_to(2)
    with pytest.raises(ValueError):
        c.shrink_to(-1)


def test_zero_capacity_rejects():
    c = HomophilyCache(0)
    assert not c.update(1, "a", [2])
    assert c.lookup(2) is None


def test_neighbor_list_accessor():
    c = HomophilyCache(2)
    c.update(1, "a", [5, 6])
    assert c.neighbor_list(1) == (5, 6)
    with pytest.raises(KeyError):
        c.neighbor_list(99)


def test_covered_count():
    c = HomophilyCache(2)
    c.update(1, "a", [5, 6])
    c.update(2, "b", [6, 7])
    # nodes {1,2} + neighbors {5,6,7}
    assert c.covered_count == 5


def test_keys_in_fifo_order():
    c = HomophilyCache(3)
    c.update(3, "x", [1])
    c.update(1, "y", [2])
    assert c.keys() == [3, 1]
