"""ImportanceCache (min-heap cache) tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.importance_cache import ImportanceCache


def test_admit_until_full():
    c = ImportanceCache(3)
    assert c.admit(1, "a", 0.5)
    assert c.admit(2, "b", 0.1)
    assert c.admit(3, "c", 0.9)
    assert len(c) == 3
    assert c.min_score() == 0.1


def test_admit_rejects_below_minimum():
    """Fig. 9 case 2: incoming score below heap minimum is rejected."""
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    c.admit(2, "b", 0.3)
    assert not c.admit(3, "c", 0.2)
    assert 3 not in c
    assert len(c) == 2


def test_admit_evicts_minimum():
    """Fig. 9 case 4: higher score evicts the current minimum."""
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    c.admit(2, "b", 0.3)
    assert c.admit(3, "c", 0.6)
    assert 2 not in c
    assert 1 in c and 3 in c
    assert c.stats.evictions == 1


def test_admit_equal_score_rejected():
    c = ImportanceCache(1)
    c.admit(1, "a", 0.3)
    assert not c.admit(2, "b", 0.3)  # strict inequality required


def test_get_hit_miss_stats():
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    assert c.get(1) == "a"
    assert c.get(2) is None
    assert c.stats.hits == 1
    assert c.stats.misses == 1


def test_admit_existing_refreshes():
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    assert c.admit(1, "a2", 0.7)
    assert c.get(1) == "a2"
    assert len(c) == 1


def test_zero_capacity():
    c = ImportanceCache(0)
    assert not c.admit(1, "a", 1.0)
    assert c.min_score() is None


def test_negative_capacity():
    with pytest.raises(ValueError):
        ImportanceCache(-1)


def test_update_score_changes_eviction_order():
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    c.admit(2, "b", 0.6)
    c.update_score(2, 0.1)  # now 2 is least important
    c.admit(3, "c", 0.4)
    assert 2 not in c
    assert 1 in c


def test_update_score_absent_noop():
    c = ImportanceCache(2)
    c.update_score(99, 1.0)  # must not raise
    assert len(c) == 0


def test_shrink_evicts_least_important():
    c = ImportanceCache(4)
    for i, s in enumerate([0.4, 0.1, 0.9, 0.5]):
        c.admit(i, i, s)
    evicted = c.shrink_to(2)
    assert set(evicted) == {1, 0}  # lowest scores out first
    assert c.capacity == 2
    assert 2 in c and 3 in c


def test_grow_after_shrink():
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    c.shrink_to(1)
    c.grow_to(3)
    assert c.capacity == 3
    with pytest.raises(ValueError):
        c.grow_to(1)


def test_scores_snapshot():
    c = ImportanceCache(2)
    c.admit(1, "a", 0.5)
    c.admit(2, "b", 0.3)
    snap = dict(c.scores_snapshot())
    assert snap == {1: 0.5, 2: 0.3}


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 30), st.floats(0, 10, allow_nan=False)),
        max_size=150,
    ),
    cap=st.integers(1, 8),
)
@settings(max_examples=50, deadline=None)
def test_property_resident_scores_dominate(ops, cap):
    """After any admit sequence, every resident's score >= every rejected
    final admission attempt, and size never exceeds capacity."""
    c = ImportanceCache(cap)
    for key, score in ops:
        c.admit(key, key, score)
        assert len(c) <= cap
        if len(c) == cap:
            m = c.min_score()
            # Heap minimum is really the minimum.
            assert all(s >= m for _, s in c.scores_snapshot())
