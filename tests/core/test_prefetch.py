"""Importance-driven prefetching tests (paper §4.2)."""

import numpy as np
import pytest

from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext
from repro.train.trainer import Trainer, TrainerConfig


def _ctx(n=200, seed=0):
    ds = make_clustered_dataset(n, n_classes=4, dim=8, rng=seed)
    store = RemoteStore(ds.X, item_nbytes=ds.item_nbytes)
    return PolicyContext(
        dataset=ds, store=store, batch_size=32, total_epochs=10,
        embedding_dim=16, rng=np.random.default_rng(1),
    )


def test_invalid_fraction():
    with pytest.raises(ValueError):
        SpiderCachePolicy(prefetch_fraction=1.5)


def test_no_prefetch_at_epoch_zero():
    p = SpiderCachePolicy(cache_fraction=0.5, prefetch_fraction=1.0, rng=0)
    ctx = _ctx()
    p.setup(ctx)
    p.before_epoch(0)
    assert p.prefetch_count == 0
    assert len(p.cache.importance) == 0


def test_prefetch_fills_with_top_scores():
    p = SpiderCachePolicy(cache_fraction=0.5, prefetch_fraction=1.0, rng=0)
    ctx = _ctx()
    p.setup(ctx)
    scores = np.linspace(0.01, 1.0, 200)
    p.score_table.update(np.arange(200), scores, epoch=0)
    p.before_epoch(1)
    imp = p.cache.importance
    assert len(imp) == imp.capacity
    # The cached set is exactly the top-capacity scored samples.
    expected = set(range(200 - imp.capacity, 200))
    assert set(imp.keys()) == expected
    assert p.prefetch_count == imp.capacity
    assert ctx.store.fetch_count == imp.capacity  # prefetches are real I/O


def test_prefetch_budget_respected():
    p = SpiderCachePolicy(cache_fraction=0.5, prefetch_fraction=0.2, rng=0)
    ctx = _ctx()
    p.setup(ctx)
    p.score_table.update(np.arange(200), np.linspace(0.01, 1.0, 200), epoch=0)
    p.before_epoch(1)
    assert p.prefetch_count == int(0.2 * p.cache.importance.capacity)


def test_prefetch_skips_resident_samples():
    p = SpiderCachePolicy(cache_fraction=0.5, prefetch_fraction=1.0, rng=0)
    ctx = _ctx()
    p.setup(ctx)
    p.score_table.update(np.arange(200), np.linspace(0.01, 1.0, 200), epoch=0)
    p.fetch(199)  # already resident with top score
    before = ctx.store.fetch_count
    p.before_epoch(1)
    assert 199 in p.cache.importance
    # 199 was not fetched twice.
    assert ctx.store.fetch_count == before + p.prefetch_count


def test_prefetch_zero_fraction_noop():
    p = SpiderCachePolicy(cache_fraction=0.5, prefetch_fraction=0.0, rng=0)
    ctx = _ctx()
    p.setup(ctx)
    p.score_table.update(np.arange(200), np.linspace(0.01, 1.0, 200), epoch=0)
    p.before_epoch(3)
    assert ctx.store.fetch_count == 0


def test_prefetch_improves_early_hit_ratio():
    """End to end: prefetching raises hit ratio in the epochs right after
    scores first populate."""
    ds = make_clustered_dataset(600, n_classes=6, dim=16, rng=0)
    train, test = train_test_split(ds, test_fraction=0.25, rng=1)

    def run(pf):
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.2, prefetch_fraction=pf,
                                   rng=3)
        res = Trainer(model, train, test, policy,
                      TrainerConfig(epochs=6, batch_size=64)).run()
        return res

    plain = run(0.0)
    prefetched = run(0.5)
    early_plain = float(np.mean(plain.series("hit_ratio")[1:4]))
    early_pref = float(np.mean(prefetched.series("hit_ratio")[1:4]))
    assert early_pref > early_plain
