"""End-to-end SpiderCache with the HNSW neighbor-search backend.

The default backend is exact search (fastest at simulator scale); the
paper's actual index is HNSW. These tests confirm the full policy trains
correctly through the approximate backend and behaves like the exact one.
"""

import numpy as np
import pytest

from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def runs():
    ds = make_clustered_dataset(400, n_classes=4, dim=16, rng=0)
    train, test = train_test_split(ds, test_fraction=0.25, rng=1)
    out = {}
    for backend in ["exact", "hnsw"]:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.3, backend=backend, rng=3)
        res = Trainer(model, train, test, policy,
                      TrainerConfig(epochs=6, batch_size=64)).run()
        out[backend] = (res, policy)
    return out


def test_hnsw_backend_trains(runs):
    res, _ = runs["hnsw"]
    assert res.final_accuracy > 0.6


def test_hnsw_backend_hit_ratio_close_to_exact(runs):
    exact, _ = runs["exact"]
    hnsw, _ = runs["hnsw"]
    assert abs(hnsw.mean_hit_ratio - exact.mean_hit_ratio) < 0.15
    assert hnsw.mean_hit_ratio > 0.2


def test_hnsw_backend_scores_meaningful(runs):
    _, policy = runs["hnsw"]
    scores = policy.score_table.scores
    # Scores differentiated (graph found neighbors, not all ln(3)).
    assert len(np.unique(np.round(scores, 4))) > 20
    assert policy.score_table.coverage > 0.5


def test_hnsw_index_tracks_dataset(runs):
    _, policy = runs["hnsw"]
    # Index holds one entry per distinct trained sample.
    assert policy.scorer.indexed_count <= 300
    assert policy.scorer.indexed_count > 100
