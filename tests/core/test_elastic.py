"""Elastic Cache Manager tests (Eq. 5-8)."""

import numpy as np
import pytest

from repro.core.elastic import (
    AccuracyMonitor,
    ElasticCacheManager,
    ImportanceMonitor,
    RatioController,
)


# ----------------------------------------------------------------------
# ImportanceMonitor (Eq. 5)
# ----------------------------------------------------------------------
def test_beta_zero_while_rising():
    m = ImportanceMonitor(slope_window=3)
    for std in [0.1, 0.2, 0.3, 0.4]:
        assert m.observe(std) == 0


def test_beta_latches_on_decline():
    m = ImportanceMonitor(slope_window=3)
    for std in [0.1, 0.3, 0.5]:
        m.observe(std)
    assert m.observe(0.4) == 0 or True  # slope may still be positive
    m.observe(0.3)
    m.observe(0.2)
    assert m.beta == 1
    assert m.activation_epoch is not None
    # Latched: later increases don't reset it.
    m.observe(0.9)
    m.observe(1.5)
    assert m.beta == 1


def test_beta_needs_window():
    m = ImportanceMonitor(slope_window=5)
    for std in [0.5, 0.4, 0.3, 0.2]:  # only 4 points
        assert m.observe(std) == 0


def test_negative_std_rejected():
    with pytest.raises(ValueError):
        ImportanceMonitor().observe(-0.1)


def test_invalid_window():
    with pytest.raises(ValueError):
        ImportanceMonitor(slope_window=1)


# ----------------------------------------------------------------------
# AccuracyMonitor (Eq. 6-7)
# ----------------------------------------------------------------------
def test_penalty_zero_before_history():
    m = AccuracyMonitor(m=5)
    for a in [0.1, 0.2, 0.3]:
        assert m.observe(a) == 0.0


def test_penalty_near_one_when_growing_fast():
    m = AccuracyMonitor(m=5, gamma=0.001)
    for a in np.linspace(0.1, 0.9, 10):
        u = m.observe(a)
    assert u > 0.9


def test_penalty_near_zero_on_plateau():
    m = AccuracyMonitor(m=5, gamma=0.01)
    for a in [0.5, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9]:
        u = m.observe(a)
    assert u < 0.1


def test_penalty_zero_on_regression():
    m = AccuracyMonitor(m=5, gamma=0.01)
    for a in np.linspace(0.9, 0.1, 10):
        u = m.observe(a)
    assert u == 0.0


def test_penalty_bounded():
    m = AccuracyMonitor(m=3, gamma=0.001)
    rng = np.random.default_rng(0)
    for a in rng.random(30):
        u = m.observe(a)
        assert 0.0 <= u <= 1.0


def test_growth_rate_telescoping():
    m = AccuracyMonitor(m=5, savgol_window=1, savgol_polyorder=0)
    # With no smoothing (window 1) the growth rate is (a_t - a_{t-m}) / m.
    for a in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]:
        m.observe(a)
    assert m.growth_rate() == pytest.approx(0.1)


def test_invalid_params():
    with pytest.raises(ValueError):
        AccuracyMonitor(m=0)
    with pytest.raises(ValueError):
        AccuracyMonitor(gamma=0.0)


def test_savgol_config_validated_at_construction():
    """Regression: a bad filter config used to pass ``__init__`` and only
    blow up inside ``growth_rate()`` at epoch m+1, mid-training."""
    with pytest.raises(ValueError, match="odd"):
        AccuracyMonitor(savgol_window=4)  # even window
    with pytest.raises(ValueError, match="odd"):
        AccuracyMonitor(savgol_window=0)
    with pytest.raises(ValueError, match="non-negative"):
        AccuracyMonitor(savgol_polyorder=-1)
    with pytest.raises(ValueError, match="less than"):
        AccuracyMonitor(savgol_window=5, savgol_polyorder=5)
    with pytest.raises(ValueError, match="less than"):
        AccuracyMonitor(savgol_window=3, savgol_polyorder=4)


def test_savgol_valid_config_survives_long_history():
    """A constructor-accepted config never fails later in the run."""
    m = AccuracyMonitor(m=3, savgol_window=5, savgol_polyorder=2)
    for i in range(20):
        m.observe(0.1 + 0.02 * i)  # must not raise at any epoch
    assert m.growth_rate() > 0.0


# ----------------------------------------------------------------------
# RatioController (Eq. 8)
# ----------------------------------------------------------------------
def test_ratio_inactive_stays_at_start():
    c = RatioController(0.9, 0.8, 100)
    for t in [0, 50, 100]:
        assert c.ratio(t, beta=0, u=0.5) == 0.9


def test_ratio_endpoints():
    c = RatioController(0.9, 0.8, 100)
    assert c.ratio(0, 1, 0.5) == pytest.approx(0.9)
    assert c.ratio(100, 1, 0.5) == pytest.approx(0.8)


def test_ratio_monotone_decreasing_in_t():
    c = RatioController(0.9, 0.5, 100)
    rs = [c.ratio(t, 1, 0.3) for t in range(0, 101, 10)]
    assert all(a >= b for a, b in zip(rs, rs[1:]))


def test_high_u_slows_adjustment():
    """Fig. 11: u -> 1 keeps the ratio higher mid-training than u -> 0."""
    c = RatioController(0.9, 0.8, 100)
    assert c.ratio(50, 1, 1.0) > c.ratio(50, 1, 0.0)


def test_ratio_clamped():
    c = RatioController(0.9, 0.8, 100)
    assert c.ratio(500, 1, 0.0) == 0.8  # past T: clamped at r_end
    assert c.ratio(-5, 1, 0.0) == 0.9


def test_invalid_controller():
    with pytest.raises(ValueError):
        RatioController(0.8, 0.9, 100)  # r_end > r_start
    with pytest.raises(ValueError):
        RatioController(0.9, 0.8, 0)
    c = RatioController(0.9, 0.8, 100)
    with pytest.raises(ValueError):
        c.ratio(10, beta=2, u=0.5)
    with pytest.raises(ValueError):
        c.ratio(10, beta=1, u=1.5)


# ----------------------------------------------------------------------
# ElasticCacheManager end-to-end
# ----------------------------------------------------------------------
def test_manager_full_trajectory():
    """Rise-then-fall std activates annealing; ratio reaches r_end."""
    mgr = ElasticCacheManager(total_epochs=40, r_start=0.9, r_end=0.8)
    stds = np.concatenate([np.linspace(0.1, 0.5, 10), np.linspace(0.5, 0.1, 30)])
    accs = np.concatenate([np.linspace(0.2, 0.8, 20), np.full(20, 0.8)])
    ratios = [mgr.step(e, stds[e], accs[e]) for e in range(40)]
    assert ratios[0] == 0.9
    # Activation happened somewhere after the std peak.
    assert mgr.importance_monitor.beta == 1
    assert ratios[-1] < 0.9
    assert all(r >= 0.8 for r in ratios)
    assert mgr.current_ratio == ratios[-1]


def test_manager_never_activates_on_rising_std():
    mgr = ElasticCacheManager(total_epochs=20)
    for e in range(20):
        r = mgr.step(e, 0.1 + 0.01 * e, 0.5)
        assert r == 0.9
    assert mgr.importance_monitor.beta == 0


def test_manager_history_recorded():
    mgr = ElasticCacheManager(total_epochs=5)
    for e in range(5):
        mgr.step(e, 0.1, 0.5)
    assert len(mgr.history) == 5
    assert mgr.history[2].epoch == 2


def test_manager_annealing_time_starts_at_activation():
    """Eq. 8's t/T counts from activation, not epoch 0: two managers whose
    std peaks at different epochs should track the same post-activation
    trajectory."""
    def run(peak):
        mgr = ElasticCacheManager(total_epochs=30, r_start=0.9, r_end=0.8,
                                  slope_window=3)
        stds = np.concatenate([
            np.linspace(0.1, 0.5, peak), np.linspace(0.5, 0.1, 30 - peak)
        ])
        return [mgr.step(e, stds[e], 0.9) for e in range(30)], mgr

    r1, m1 = run(5)
    r2, m2 = run(15)
    a1 = m1.importance_monitor.activation_epoch
    a2 = m2.importance_monitor.activation_epoch
    assert a1 < a2
    # Same offset from activation -> same ratio.
    assert r1[a1 + 3] == pytest.approx(r2[a2 + 3], abs=1e-6)


def test_manager_current_ratio_default():
    mgr = ElasticCacheManager(total_epochs=10)
    assert mgr.current_ratio == 0.9
