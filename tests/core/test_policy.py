"""SpiderCachePolicy tests against a real trainer context."""

import numpy as np
import pytest

from repro.core.policy import SpiderCachePolicy
from repro.core.semantic_cache import FetchSource
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext


def _ctx(n=200, classes=4, seed=0):
    ds = make_clustered_dataset(n, n_classes=classes, dim=8, rng=seed)
    store = RemoteStore(ds.X, item_nbytes=ds.item_nbytes)
    return PolicyContext(
        dataset=ds, store=store, batch_size=32, total_epochs=10,
        embedding_dim=16, rng=np.random.default_rng(1),
    )


def _setup_policy(**kw):
    ctx = _ctx()
    p = SpiderCachePolicy(rng=2, **kw)
    p.setup(ctx)
    return p, ctx


def test_setup_builds_components():
    p, ctx = _setup_policy(cache_fraction=0.2)
    assert p.score_table is not None and len(p.score_table) == 200
    assert p.cache is not None and p.cache.total_capacity == 40
    assert p.scorer is not None
    assert p.manager is not None


def test_use_before_setup_raises():
    p = SpiderCachePolicy()
    with pytest.raises(RuntimeError):
        p._require_ctx()


def test_invalid_params():
    with pytest.raises(ValueError):
        SpiderCachePolicy(cache_fraction=1.5)
    with pytest.raises(ValueError):
        SpiderCachePolicy(hom_neighbor_limit=0)


def test_epoch_order_length_and_range():
    p, ctx = _setup_policy()
    order = p.epoch_order(0)
    assert len(order) == 200
    assert order.min() >= 0 and order.max() < 200


def test_fetch_miss_then_hit():
    p, ctx = _setup_policy(cache_fraction=0.5)
    o1 = p.fetch(3)
    assert o1.source == FetchSource.REMOTE
    o2 = p.fetch(3)
    assert o2.source == FetchSource.IMPORTANCE
    np.testing.assert_array_equal(o2.payload, ctx.dataset.X[3])


def test_after_batch_updates_scores():
    p, ctx = _setup_policy()
    ids = np.arange(32)
    emb = np.random.default_rng(3).normal(size=(32, 16))
    losses = np.ones(32)
    p.after_batch(ids, ids, losses, emb, epoch=0)
    assert p.score_table.coverage > 0
    assert p.scorer.indexed_count == 32


def test_after_batch_duplicate_served_ids():
    """With-replacement sampling repeats ids; scoring must deduplicate."""
    p, ctx = _setup_policy()
    ids = np.array([1, 2, 1, 3, 2, 1])
    emb = np.random.default_rng(4).normal(size=(6, 16))
    p.after_batch(ids, ids, np.ones(6), emb, epoch=0)
    assert p.scorer.indexed_count == 3


def test_homophily_updated_with_top_degree_node():
    p, ctx = _setup_policy(cache_fraction=0.5)
    # Two tight same-class sub-clusters far apart: the auto-calibrated
    # radius (a fraction of the median distance) then captures the
    # within-cluster neighbors.
    labels = ctx.dataset.y
    cls0 = np.flatnonzero(labels == labels[0])[:20]
    rng = np.random.default_rng(5)
    emb = np.concatenate([
        rng.normal(0.0, 0.01, size=(10, 16)),
        rng.normal(3.0, 0.01, size=(10, 16)),
    ])
    p.after_batch(cls0, cls0, np.ones(20), emb, epoch=0)
    assert len(p.cache.homophily) == 1


def test_homophily_neighbor_class_filter():
    p, ctx = _setup_policy(cache_fraction=0.5, hom_same_class_only=True)
    labels = ctx.dataset.y
    # Mixed-class tight cluster: filtered neighbor lists stay same-class.
    ids = np.arange(20)
    emb = np.random.default_rng(6).normal(0, 0.01, size=(20, 16))
    p.after_batch(ids, ids, np.ones(20), emb, epoch=0)
    for key in p.cache.homophily.keys():
        for n in p.cache.homophily.neighbor_list(key):
            assert labels[n] == labels[key]


def test_hom_neighbor_limit_respected():
    p, ctx = _setup_policy(cache_fraction=0.5, hom_neighbor_limit=3,
                           hom_same_class_only=False)
    ids = np.arange(30)
    emb = np.random.default_rng(7).normal(0, 0.01, size=(30, 16))
    p.after_batch(ids, ids, np.ones(30), emb, epoch=0)
    for key in p.cache.homophily.keys():
        assert len(p.cache.homophily.neighbor_list(key)) <= 3


def test_after_epoch_elastic_adjusts():
    p, ctx = _setup_policy(cache_fraction=0.5, elastic=True)
    # Feed a rise-then-fall std by direct injection + accuracy plateau.
    for e in range(10):
        ids = np.random.default_rng(e).integers(0, 200, 32)
        uniq = np.unique(ids)
        emb = np.random.default_rng(100 + e).normal(size=(len(ids), 16))
        p.after_batch(ids, ids, np.ones(len(ids)), emb, epoch=e)
        p.after_epoch(e, val_accuracy=0.5)
    assert len(p.score_table.std_history) == 10
    assert len(p.manager.history) == 10


def test_elastic_disabled_keeps_ratio():
    p, ctx = _setup_policy(cache_fraction=0.5, elastic=False, r_start=0.9)
    for e in range(5):
        p.after_epoch(e, 0.5)
    assert p.imp_ratio == 0.9


def test_stats_delegates_to_cache():
    p, ctx = _setup_policy(cache_fraction=0.5)
    p.fetch(0)
    p.fetch(0)
    s = p.stats()
    assert s.requests == 2
    assert s.hits == 1


def test_is_only_mode_zero_cache():
    p, ctx = _setup_policy(cache_fraction=0.0)
    out = p.fetch(5)
    assert out.source == FetchSource.REMOTE
    out = p.fetch(5)
    assert out.source == FetchSource.REMOTE  # nothing cached
    assert p.stats().hit_ratio == 0.0


def test_mixed_weights_all_zero_scores_uniform_fallback():
    """Regression: all-zero scores with score_floor=0 made
    ``_mixed_weights`` divide by zero and poison the multinomial draw
    with NaNs."""
    p, ctx = _setup_policy(score_floor=0.0)
    n = ctx.num_samples
    p.score_table.update(
        np.arange(n), np.zeros(n), epoch=0
    )
    w = p._mixed_weights()
    assert np.all(np.isfinite(w))
    np.testing.assert_allclose(w, np.full(n, 1.0 / n))
    # The epoch order still draws cleanly from the degenerate weights.
    order = p.epoch_order(1)
    assert len(order) == n


def test_mixed_weights_normal_scores_sum_to_one():
    p, ctx = _setup_policy()
    n = ctx.num_samples
    rng = np.random.default_rng(0)
    p.score_table.update(np.arange(n), rng.random(n) + 0.1, epoch=0)
    w = p._mixed_weights()
    assert np.all(w > 0)
    assert w.sum() == pytest.approx(1.0)
