"""iCache policy tests (both variants)."""

import numpy as np
import pytest

from repro.baselines.icache import ICacheFullPolicy, ICacheImpPolicy
from repro.core.semantic_cache import FetchSource
from repro.data.synthetic import make_clustered_dataset
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext


def _ctx(n=100, seed=0):
    ds = make_clustered_dataset(n, n_classes=4, dim=8, rng=seed)
    store = RemoteStore(ds.X)
    return PolicyContext(
        dataset=ds, store=store, batch_size=16, total_epochs=5,
        embedding_dim=8, rng=np.random.default_rng(1),
    )


# ----------------------------------------------------------------------
# iCache-imp
# ----------------------------------------------------------------------
def test_imp_invalid_params():
    with pytest.raises(ValueError):
        ICacheImpPolicy(cache_fraction=1.5)
    with pytest.raises(ValueError):
        ICacheImpPolicy(skip_quantile=1.0)


def test_imp_backprop_mask_skips_low_loss():
    p = ICacheImpPolicy(skip_quantile=0.5, rng=0)
    p.setup(_ctx())
    losses = np.linspace(0.1, 1.0, 10)
    mask = p.backprop_mask(np.arange(10), losses)
    # Lowest-loss half skipped.
    assert mask[:5].sum() == 0
    assert mask[5:].sum() == 5


def test_imp_mask_none_when_disabled():
    p = ICacheImpPolicy(skip_quantile=0.0, rng=0)
    p.setup(_ctx())
    assert p.backprop_mask(np.arange(4), np.ones(4)) is None


def test_imp_raw_losses_as_scores():
    p = ICacheImpPolicy(rng=0)
    p.setup(_ctx())
    ids = np.arange(8)
    losses = np.linspace(1.0, 8.0, 8)
    p.after_batch(ids, ids, losses, np.zeros((8, 8)), epoch=0)
    assert p.score_table.get(7) == pytest.approx(8.0)
    assert p.score_table.get(0) == pytest.approx(1.0)


def test_imp_fetch_hit_miss():
    p = ICacheImpPolicy(cache_fraction=0.5, rng=0)
    p.setup(_ctx())
    assert p.fetch(1).source == FetchSource.REMOTE
    assert p.fetch(1).source == FetchSource.IMPORTANCE


# ----------------------------------------------------------------------
# full iCache
# ----------------------------------------------------------------------
def test_full_invalid_params():
    with pytest.raises(ValueError):
        ICacheFullPolicy(h_fraction=1.5)
    with pytest.raises(ValueError):
        ICacheFullPolicy(substitute_prob=-0.1)


def test_full_sections_split_budget():
    p = ICacheFullPolicy(cache_fraction=0.4, h_fraction=0.7, rng=0)
    ctx = _ctx(n=100)
    p.setup(ctx)
    assert p.cache.capacity == 28
    assert p._l_capacity == 12


def test_full_l_section_exact_hit():
    p = ICacheFullPolicy(cache_fraction=0.4, h_fraction=0.5,
                         substitute_prob=0.0, rng=0)
    p.setup(_ctx())
    # Prime scores so sample 1 is low-importance.
    p.score_table.update(np.arange(100), np.full(100, 0.001), epoch=0)
    # Fill the H cache with higher-importance items first.
    p.score_table.update(np.arange(50, 80), np.full(30, 10.0), epoch=0)
    for i in range(50, 70):
        p.fetch(i)
    o = p.fetch(1)  # low score -> lands in L section
    assert o.source == FetchSource.REMOTE
    o2 = p.fetch(1)
    assert o2.source == FetchSource.HOMOPHILY  # L exact hit
    assert not o2.substituted


def test_full_random_substitution():
    """Low-importance misses get served arbitrary cached L-samples."""
    p = ICacheFullPolicy(cache_fraction=0.4, h_fraction=0.5,
                         substitute_prob=1.0, rng=0)
    p.setup(_ctx())
    p.score_table.update(np.arange(100), np.full(100, 0.001), epoch=0)
    p.score_table.update(np.arange(50, 80), np.full(30, 10.0), epoch=0)
    for i in range(50, 70):  # fill H
        p.fetch(i)
    p.fetch(1)  # seeds the L section
    o = p.fetch(2)  # L miss -> substituted by the only L resident (1)
    assert o.substituted
    assert o.served_id == 1
    assert p.stats().substitute_hits >= 1


def test_full_substitution_never_for_h_samples():
    p = ICacheFullPolicy(cache_fraction=0.2, h_fraction=0.5,
                         substitute_prob=1.0, rng=0)
    p.setup(_ctx())
    p.fetch(1)  # first fetch: H cache not full, 1 admitted to H
    o = p.fetch(2)
    # Score of 2 (default 1.0) > H threshold once H below capacity... the
    # key invariant: an H-grade sample is never substituted.
    assert o.requested_id == o.served_id or p.score_table.get(2) <= p._h_threshold()


def test_full_stats_request_count_consistent():
    p = ICacheFullPolicy(cache_fraction=0.3, rng=0)
    p.setup(_ctx())
    for i in range(50):
        p.fetch(i % 20)
    assert p.stats().requests == 50


def test_full_random_replacement_evicts():
    p = ICacheFullPolicy(cache_fraction=0.1, h_fraction=0.5,
                         substitute_prob=0.0, rng=0)
    p.setup(_ctx(n=100))  # L capacity = 5
    p.score_table.update(np.arange(100), np.full(100, 0.001), epoch=0)
    p.score_table.update(np.arange(50, 60), np.full(10, 5.0), epoch=0)
    for i in range(50, 55):  # fill H (capacity 5)
        p.fetch(i)
    for i in range(20):  # churn L
        p.fetch(i)
    assert len(p._l_keys) <= 5
    assert p._l_stats.evictions > 0
