"""SHADE policy tests."""

import numpy as np
import pytest

from repro.baselines.shade import ShadePolicy, loss_rank_scores
from repro.core.semantic_cache import FetchSource
from repro.data.synthetic import make_clustered_dataset
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext


def _ctx(n=100, seed=0):
    ds = make_clustered_dataset(n, n_classes=4, dim=8, rng=seed)
    store = RemoteStore(ds.X)
    return PolicyContext(
        dataset=ds, store=store, batch_size=16, total_epochs=5,
        embedding_dim=8, rng=np.random.default_rng(1),
    )


# ----------------------------------------------------------------------
# loss_rank_scores
# ----------------------------------------------------------------------
def test_rank_scores_order():
    s = loss_rank_scores(np.array([0.1, 5.0, 2.0]))
    assert s.argmax() == 1
    assert s.argmin() == 0
    assert s[1] == 1.0


def test_rank_scores_bounds():
    s = loss_rank_scores(np.random.default_rng(0).random(50), eps=0.05)
    assert s.min() == pytest.approx(0.05)
    assert s.max() == pytest.approx(1.0)


def test_rank_scores_edge_cases():
    assert loss_rank_scores(np.array([])).shape == (0,)
    np.testing.assert_array_equal(loss_rank_scores(np.array([3.0])), [1.0])


def test_rank_scores_scale_invariant():
    """Ranks ignore the loss scale — exactly why SHADE's scores are
    incomparable across epochs (paper Motivation 1)."""
    a = np.array([1.0, 2.0, 3.0])
    np.testing.assert_allclose(loss_rank_scores(a), loss_rank_scores(a * 100))


# ----------------------------------------------------------------------
# policy behaviour
# ----------------------------------------------------------------------
def test_setup_and_fetch():
    p = ShadePolicy(cache_fraction=0.5, rng=0)
    p.setup(_ctx())
    o1 = p.fetch(3)
    assert o1.source == FetchSource.REMOTE
    o2 = p.fetch(3)
    assert o2.source == FetchSource.IMPORTANCE


def test_after_batch_rank_updates():
    p = ShadePolicy(cache_fraction=0.5, rng=0)
    p.setup(_ctx())
    ids = np.arange(16)
    losses = np.linspace(0.1, 2.0, 16)
    p.after_batch(ids, ids, losses, np.zeros((16, 8)), epoch=0)
    assert p.score_table.get(15) == 1.0  # highest loss -> rank 1.0
    assert p.score_table.get(0) < 0.1


def test_duplicate_ids_last_occurrence_wins():
    p = ShadePolicy(cache_fraction=0.5, rng=0)
    p.setup(_ctx())
    ids = np.array([1, 2, 1])
    losses = np.array([5.0, 1.0, 0.1])  # sample 1 appears twice
    p.after_batch(ids, ids, losses, np.zeros((3, 8)), epoch=0)
    # Last occurrence of 1 had the lowest loss -> lowest rank score.
    assert p.score_table.get(1) < p.score_table.get(2)


def test_sampling_prefers_high_rank():
    p = ShadePolicy(cache_fraction=0.0, rng=0)
    p.setup(_ctx(n=50))
    ids = np.arange(50)
    losses = np.zeros(50)
    losses[7] = 100.0
    p.after_batch(ids, ids, losses, np.zeros((50, 8)), epoch=0)
    order = p.epoch_order(1)
    counts = np.bincount(order, minlength=50)
    assert counts[7] > counts.mean()


def test_after_epoch_snapshots_std():
    p = ShadePolicy(rng=0)
    p.setup(_ctx())
    p.after_epoch(0, 0.5)
    assert len(p.score_table.std_history) == 1


def test_invalid_fraction():
    with pytest.raises(ValueError):
        ShadePolicy(cache_fraction=-0.1)


def test_is_cost_nominal():
    assert ShadePolicy().is_ms_per_batch == 1.0
