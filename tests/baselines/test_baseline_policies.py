"""Classic-cache baseline policy tests."""

import numpy as np
import pytest

from repro.baselines.baseline import ClassicCachePolicy, LFUPolicy, LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.cache.fifo import FIFOCache
from repro.core.semantic_cache import FetchSource
from repro.data.synthetic import make_clustered_dataset
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext


def _ctx(n=100, seed=0):
    ds = make_clustered_dataset(n, n_classes=4, dim=8, rng=seed)
    store = RemoteStore(ds.X, item_nbytes=ds.item_nbytes)
    return PolicyContext(
        dataset=ds, store=store, batch_size=16, total_epochs=5,
        embedding_dim=8, rng=np.random.default_rng(1),
    )


def test_lru_baseline_name_and_cache():
    p = LRUBaselinePolicy(cache_fraction=0.3, rng=0)
    p.setup(_ctx())
    assert p.name == "baseline-lru"
    assert p.cache.capacity == 30


def test_classic_policy_custom_cache():
    p = ClassicCachePolicy(FIFOCache, cache_fraction=0.1, rng=0)
    p.setup(_ctx())
    assert p.name == "fifo-baseline"


def test_invalid_fraction():
    with pytest.raises(ValueError):
        LRUBaselinePolicy(cache_fraction=2.0)


def test_fetch_demand_fills():
    p = LRUBaselinePolicy(cache_fraction=0.5, rng=0)
    ctx = _ctx()
    p.setup(ctx)
    o1 = p.fetch(7)
    assert o1.source == FetchSource.REMOTE
    o2 = p.fetch(7)
    assert o2.source == FetchSource.IMPORTANCE
    np.testing.assert_array_equal(o2.payload, ctx.dataset.X[7])


def test_epoch_order_is_permutation():
    p = LRUBaselinePolicy(rng=0)
    p.setup(_ctx())
    order = p.epoch_order(0)
    assert sorted(order.tolist()) == list(range(100))


def test_lru_low_hit_rate_under_random_sampling():
    """The paper's core observation: LRU fails under random sampling.

    Expected hit ratio ~ (C/n)^2 / 2 for cache fraction C/n."""
    ctx = _ctx(n=500)
    p = LRUBaselinePolicy(cache_fraction=0.2, rng=0)
    p.setup(ctx)
    for epoch in range(5):
        for i in p.epoch_order(epoch):
            p.fetch(int(i))
    assert p.stats().hit_ratio < 0.1


def test_lfu_policy():
    p = LFUPolicy(cache_fraction=0.2, rng=0)
    p.setup(_ctx())
    assert p.name == "lfu"
    p.fetch(0)
    assert p.fetch(0) is not None


def test_coordl_steady_state_hit_equals_fraction():
    """MinIO: hit ratio == cache fraction once warm (CoorDL's guarantee)."""
    ctx = _ctx(n=400)
    p = CoorDLPolicy(cache_fraction=0.25, rng=0)
    p.setup(ctx)
    # Warm epoch.
    for i in p.epoch_order(0):
        p.fetch(int(i))
    p.stats().reset()
    for epoch in range(1, 4):
        for i in p.epoch_order(epoch):
            p.fetch(int(i))
    assert p.stats().hit_ratio == pytest.approx(0.25, abs=0.005)


def test_coordl_beats_lru():
    ctx_a, ctx_b = _ctx(n=300, seed=2), _ctx(n=300, seed=2)
    lru = LRUBaselinePolicy(cache_fraction=0.3, rng=0)
    lru.setup(ctx_a)
    coordl = CoorDLPolicy(cache_fraction=0.3, rng=0)
    coordl.setup(ctx_b)
    for epoch in range(4):
        for i in lru.epoch_order(epoch):
            lru.fetch(int(i))
        for i in coordl.epoch_order(epoch):
            coordl.fetch(int(i))
    assert coordl.stats().hit_ratio > lru.stats().hit_ratio
