"""Gradient-norm IS policy tests."""

import numpy as np
import pytest

from repro.baselines.gradnorm import GradNormISPolicy, gradnorm_scores
from repro.core.semantic_cache import FetchSource
from repro.data.synthetic import make_clustered_dataset
from repro.storage.backends import RemoteStore
from repro.train.policy_base import PolicyContext


def _ctx(n=100, seed=0):
    ds = make_clustered_dataset(n, n_classes=4, dim=8, rng=seed)
    store = RemoteStore(ds.X)
    return PolicyContext(
        dataset=ds, store=store, batch_size=16, total_epochs=5,
        embedding_dim=8, rng=np.random.default_rng(1),
    )


def test_scores_bounded_and_monotone():
    losses = np.array([0.0, 0.5, 1.0, 5.0])
    s = gradnorm_scores(losses)
    assert s[0] == 0.0
    assert np.all(np.diff(s) > 0)
    assert np.all((s >= 0) & (s < 1))


def test_scores_negative_loss_rejected():
    with pytest.raises(ValueError):
        gradnorm_scores(np.array([-0.1]))


def test_scores_saturate():
    """Like raw losses, the proxy saturates — high-loss samples become
    indistinguishable (part of the Motivation-1 weakness)."""
    a = gradnorm_scores(np.array([5.0]))[0]
    b = gradnorm_scores(np.array([10.0]))[0]
    assert b - a < 0.01


def test_policy_fetch_and_cache():
    p = GradNormISPolicy(cache_fraction=0.5, rng=0)
    p.setup(_ctx())
    assert p.fetch(3).source == FetchSource.REMOTE
    assert p.fetch(3).source == FetchSource.IMPORTANCE


def test_policy_score_updates():
    p = GradNormISPolicy(rng=0)
    p.setup(_ctx())
    ids = np.arange(8)
    losses = np.linspace(0.1, 3.0, 8)
    p.after_batch(ids, ids, losses, np.zeros((8, 8)), epoch=0)
    assert p.score_table.get(7) > p.score_table.get(0)
    assert p.score_table.get(7) == pytest.approx(1 - np.exp(-3.0))


def test_policy_trains_end_to_end():
    from repro.data.synthetic import train_test_split
    from repro.nn.models import build_model
    from repro.train.trainer import Trainer, TrainerConfig

    ds = make_clustered_dataset(400, n_classes=4, dim=16, rng=0)
    train, test = train_test_split(ds, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    res = Trainer(model, train, test, GradNormISPolicy(cache_fraction=0.2, rng=3),
                  TrainerConfig(epochs=6, batch_size=64)).run()
    assert res.final_accuracy > 0.5
    assert res.epochs[-1].hit_ratio > 0.1


def test_invalid_fraction():
    with pytest.raises(ValueError):
        GradNormISPolicy(cache_fraction=-0.1)
