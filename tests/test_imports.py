"""Import smoke: every ``repro.*`` module must import on its own.

The whole suite once failed *collection* because a deleted subpackage
was still imported at module scope by its consumers — an error no unit
test caught, because no unit test imports everything. This walk does:
any module whose import raises (missing sibling, stale re-export,
syntax error) fails here with the module named, instead of surfacing as
dozens of opaque collection errors.
"""

import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    mods = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mods.append(info.name)
    return sorted(mods)


MODULES = _all_modules()


def test_the_walk_found_the_tree():
    # Guard against the walker silently seeing an empty package.
    assert len(MODULES) > 30
    assert "repro.core.semantic_cache" in MODULES
    assert "repro.dist.client" in MODULES
    assert "repro.train.data_parallel" in MODULES
    assert "repro.load.replay" in MODULES
    assert "repro.dist.transport" in MODULES
    assert "repro.concurrency.executor" in MODULES


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_cleanly(name):
    importlib.import_module(name)


def test_dist_package_reexports_its_public_api():
    dist = importlib.import_module("repro.dist")
    for symbol in dist.__all__:
        assert getattr(dist, symbol) is not None


def test_train_package_imports_without_dist():
    """The trainers must not require repro.dist at import time — sharded
    mode lazy-imports it so a single-worker install works without the
    shard tier (and a missing tier fails with an actionable error at
    *use* time, not import time)."""
    import repro.train.data_parallel as dp

    src = open(dp.__file__).read()
    head = src.split("def ", 1)[0]  # module scope only
    assert "from repro.dist" not in head
    assert "import repro.dist" not in head
