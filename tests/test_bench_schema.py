"""Schema and soft-gate tests for the perf-trajectory harness.

A tiny (quick-config) trajectory run must produce a report that passes
``validate_report`` and lands as ``BENCH_<date>.json``; the committed
repo-root baseline must stay schema-valid; and ``compare_reports`` must
warn on throughput regressions and quality drops, stay quiet within the
threshold, and refuse to compare mismatched workload scales.
"""

import json
from pathlib import Path

import pytest

from repro.bench import (
    BenchConfig,
    compare_reports,
    format_report,
    latest_baseline,
    run_trajectory,
    validate_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

TINY = BenchConfig.quick(
    hnsw_n=400,
    n_queries=20,
    cache_ops=2_000,
    cache_capacity=100,
    key_space=400,
    epoch_samples=120,
)


@pytest.fixture(scope="module")
def tiny_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench")
    report, path = run_trajectory(TINY, out_dir=out, date="2026-01-02")
    return report, path


def test_tiny_run_schema_and_filename(tiny_run):
    report, path = tiny_run
    assert validate_report(report) == []
    assert path is not None and path.name == "BENCH_2026-01-02.json"
    on_disk = json.loads(path.read_text())
    assert on_disk == report
    assert report["config"]["hnsw_n"] == 400


def test_tiny_run_metric_sanity(tiny_run):
    report, _ = tiny_run
    m = report["metrics"]
    assert 0.0 <= m["hnsw_recall_at_10"] <= 1.0
    assert m["hnsw_query_qps"] > 0
    assert m["hnsw_batch_query_qps"] > 0
    assert m["cache_get_put_ops_per_s"] > 0
    assert m["epoch_time_s"] > 0


def test_no_write_mode():
    report, path = run_trajectory(TINY, out_dir=None)
    assert path is None
    assert validate_report(report) == []


def test_committed_baseline_is_valid():
    """The repo-root BENCH_*.json the CI soft gate compares against."""
    baseline = latest_baseline(REPO_ROOT)
    assert baseline is not None, "no committed BENCH_*.json at repo root"
    report = json.loads(baseline.read_text())
    assert validate_report(report) == []
    # The committed baseline runs at full scale with the acceptance floors.
    assert report["metrics"]["hnsw_recall_at_10"] >= 0.95
    assert report["metrics"]["hnsw_query_speedup_vs_seed"] >= 3.0


def test_validate_rejects_broken_reports(tiny_run):
    report, _ = tiny_run
    bad = json.loads(json.dumps(report))
    del bad["metrics"]["hnsw_query_qps"]
    bad["schema_version"] = 99
    problems = validate_report(bad)
    assert any("hnsw_query_qps" in p for p in problems)
    assert any("schema_version" in p for p in problems)
    assert validate_report({"schema_version": 1}) != []


def test_compare_warns_on_throughput_regression(tiny_run):
    report, _ = tiny_run
    slower = json.loads(json.dumps(report))
    slower["metrics"]["hnsw_query_qps"] *= 0.5
    slower["metrics"]["epoch_time_s"] *= 2.0
    warnings = compare_reports(slower, report)
    assert any("hnsw_query_qps" in w for w in warnings)
    assert any("epoch_time_s" in w for w in warnings)


def test_compare_quiet_within_threshold(tiny_run):
    report, _ = tiny_run
    near = json.loads(json.dumps(report))
    for name in near["metrics"]:
        near["metrics"][name] *= 0.95  # inside the 20% throughput band
    near["metrics"]["hnsw_recall_at_10"] = report["metrics"][
        "hnsw_recall_at_10"
    ]  # quality gate is absolute, keep it level
    near["metrics"]["hnsw_query_speedup_vs_seed"] = report["metrics"][
        "hnsw_query_speedup_vs_seed"
    ]
    assert compare_reports(near, report) == []


def test_compare_warns_on_quality_drop(tiny_run):
    report, _ = tiny_run
    worse = json.loads(json.dumps(report))
    worse["metrics"]["hnsw_recall_at_10"] = max(
        0.0, report["metrics"]["hnsw_recall_at_10"] - 0.2
    )
    warnings = compare_reports(worse, report)
    assert any("hnsw_recall_at_10" in w for w in warnings)


def test_compare_scale_mismatch_is_single_note(tiny_run):
    report, _ = tiny_run
    other = json.loads(json.dumps(report))
    other["config"]["hnsw_n"] = 999_999
    other["metrics"]["hnsw_query_qps"] = 0.001  # would warn if compared
    notes = compare_reports(report, other)
    assert len(notes) == 1
    assert "scale differs" in notes[0]


def test_latest_baseline_orders_and_excludes(tmp_path):
    old = tmp_path / "BENCH_2025-01-01.json"
    new = tmp_path / "BENCH_2026-01-01.json"
    old.write_text("{}")
    new.write_text("{}")
    assert latest_baseline(tmp_path) == new
    assert latest_baseline(tmp_path, exclude=new) == old
    assert latest_baseline(tmp_path / "empty") is None


def test_format_report_lists_every_metric(tiny_run):
    report, _ = tiny_run
    text = format_report(report)
    for name in report["metrics"]:
        assert name in text
    assert report["date"] in text
