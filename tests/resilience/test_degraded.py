"""Degraded-mode serving: widened substitution instead of crashing.

Includes the graceful-degradation acceptance test: a run whose remote
tier fails for a whole outage window completes training without raising,
serves degraded, and the breaker re-closes once the outage clears.
"""

import numpy as np
import pytest

from repro.core.semantic_cache import FetchSource, SemanticCache
from repro.data.loader import DataLoader
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerStore,
    FaultInjectingStore,
    FaultPlan,
    OutageWindow,
)
from repro.resilience.errors import DegradedModeError
from repro.storage.flaky import TransientFetchError
from repro.train.trainer import Trainer


def _boom(index):
    raise DegradedModeError("remote down")


def test_strict_mode_propagates_errors():
    cache = SemanticCache(total_capacity=4)
    with pytest.raises(DegradedModeError):
        cache.fetch(0, 1.0, _boom)


def test_degraded_skip_when_both_layers_empty():
    cache = SemanticCache(total_capacity=4)
    cache.enable_degraded_mode()
    out = cache.fetch(0, 1.0, _boom)
    assert out.source is FetchSource.SKIPPED
    assert out.payload is None
    assert cache.degraded.skipped == 1
    assert cache.degraded.errors_absorbed == 1


def test_degraded_serves_newest_homophily_entry():
    cache = SemanticCache(total_capacity=10, imp_ratio=0.5)
    cache.update_homophily(3, np.full(4, 3.0), [30, 31])
    cache.update_homophily(7, np.full(4, 7.0), [70])
    cache.enable_degraded_mode()
    out = cache.fetch(99, 1.0, _boom)  # 99 is nobody's neighbor
    assert out.source is FetchSource.DEGRADED
    assert out.served_id == 7  # freshest resident node stands in
    assert cache.degraded.substituted_homophily == 1


def test_degraded_falls_back_to_importance_min():
    cache = SemanticCache(total_capacity=4, imp_ratio=1.0)
    cache.importance.admit(1, np.full(4, 1.0), score=5.0)
    cache.importance.admit(2, np.full(4, 2.0), score=1.0)
    cache.enable_degraded_mode()
    out = cache.fetch(99, 1.0, _boom)
    assert out.source is FetchSource.DEGRADED
    assert out.served_id == 2  # least-important resident
    assert cache.degraded.substituted_importance == 1


def test_degraded_mode_default_errors_cover_transient():
    cache = SemanticCache(total_capacity=4)
    cache.enable_degraded_mode()

    def flaky(index):
        raise TransientFetchError("blip")

    out = cache.fetch(0, 1.0, flaky)
    assert out.source is FetchSource.SKIPPED
    cache.disable_degraded_mode()
    with pytest.raises(TransientFetchError):
        cache.fetch(0, 1.0, flaky)


def test_loader_drops_skipped_samples():
    labels = np.arange(10) % 3

    def fetch(i):
        from repro.core.semantic_cache import FetchOutcome

        if i % 2 == 0:
            return FetchOutcome(i, i, None, FetchSource.SKIPPED)
        return FetchOutcome(i, i, np.full(4, float(i)), FetchSource.REMOTE)

    loader = DataLoader(labels, fetch, batch_size=4)
    batch = loader.collate(np.arange(4))
    assert len(batch) == 2  # ids 1, 3 kept
    assert loader.skipped_count == 2
    # A fully-skipped batch collates to None but still occupies its slot.
    all_even = loader.collate(np.array([0, 2, 4]))
    assert all_even is None
    assert loader.n_batches(np.arange(10)) == 3
    np.testing.assert_array_equal(loader.batch_ids(np.arange(10), 2), [8, 9])


def test_graceful_degradation_acceptance(build_run):
    """Remote tier dead for an outage window; training survives end-to-end."""
    # Clean run to size the outage window in simulated seconds.
    clean, _, _ = build_run(epochs=3)
    clean.run()
    total = clean.clock.total_seconds

    trainer, _, policy = build_run(Trainer, epochs=3)
    # Early, short window: the degraded run's clock advances only via
    # compute while the outage is on (no I/O is charged), so a late or
    # long window would outlive the run itself.
    plan = FaultPlan(outages=[OutageWindow(0.05 * total, 0.10 * total)])
    faulty = FaultInjectingStore(trainer.store, plan)
    breaker = CircuitBreaker(failure_threshold=3, cooldown_s=0.01 * total)
    guarded = CircuitBreakerStore(faulty, breaker)
    trainer.store = guarded
    trainer.policy.ctx.store = guarded
    policy.cache.enable_degraded_mode()

    result = trainer.run()  # must not raise

    assert len(result.epochs) == 3
    # The outage actually hit and the cache served degraded.
    assert faulty.outage_failures > 0
    assert policy.cache.degraded.total > 0
    assert policy.cache.degraded.errors_absorbed > 0
    # The breaker opened during the outage and re-closed after it.
    assert breaker.opens > 0
    assert breaker.state is BreakerState.CLOSED
    pairs = breaker.reopen_close_pairs()
    assert pairs and pairs[-1][1] is not None
    # Fault counters stay visible through the wrapper stack.
    assert guarded.outage_failures == faulty.outage_failures
    assert guarded.fetch_count == trainer.store.unwrap().fetch_count


# ----------------------------------------------------------------------
# Regression: degraded serves must not count as substitute hits.
# They used to increment ``stats.substitute_hits``, inflating
# ``hit_ratio``/``substitute_ratio`` for every epoch overlapping an
# outage and making fault-campaign tables incomparable to clean runs.
# ----------------------------------------------------------------------
def test_degraded_serves_not_counted_as_substitute_hits():
    cache = SemanticCache(total_capacity=10, imp_ratio=0.5)
    cache.update_homophily(3, np.full(4, 3.0), [30])
    cache.enable_degraded_mode()
    before = cache.stats.requests
    for i in range(5):
        out = cache.fetch(90 + i, 1.0, _boom)
        assert out.source is FetchSource.DEGRADED
    assert cache.stats.substitute_hits == 0
    assert cache.stats.degraded_serves == 5
    assert cache.degraded.substituted == 5
    # Degraded serves stay out of the hit-ratio denominator entirely.
    assert cache.stats.requests == before
    assert cache.stats.hit_ratio == 0.0


def test_degraded_hit_ratio_unaffected_by_outage():
    """Hit ratio over mixed traffic counts only real cache activity."""
    cache = SemanticCache(total_capacity=10, imp_ratio=1.0)
    cache.enable_degraded_mode()
    payloads = {i: np.full(4, float(i)) for i in range(20)}
    # Two clean misses (admitted), then two importance hits: ratio 2/4.
    for i in (0, 1):
        cache.fetch(i, 5.0, payloads.__getitem__)
    for i in (0, 1):
        out = cache.fetch(i, 5.0, _boom)  # served from cache, not remote
        assert out.source is FetchSource.IMPORTANCE
    assert cache.stats.hit_ratio == pytest.approx(0.5)
    # An outage burst served degraded must leave the ratio untouched.
    for i in range(10, 15):
        assert cache.fetch(i, 1.0, _boom).source is FetchSource.DEGRADED
    assert cache.stats.hit_ratio == pytest.approx(0.5)
    assert cache.stats.degraded_serves == 5


def test_degraded_serves_round_trip_state_dict():
    cache = SemanticCache(total_capacity=10, imp_ratio=0.5)
    cache.update_homophily(3, np.full(4, 3.0), [30])
    cache.enable_degraded_mode()
    cache.fetch(99, 1.0, _boom)
    state = cache.stats.state_dict()
    assert state["degraded_serves"] == 1
    fresh = SemanticCache(total_capacity=10, imp_ratio=0.5)
    fresh.stats.load_state_dict(state)
    assert fresh.stats.degraded_serves == 1
    # Old snapshots without the counter still load (backward compat).
    del state["degraded_serves"]
    fresh.stats.load_state_dict(state)
    assert fresh.stats.degraded_serves == 0
