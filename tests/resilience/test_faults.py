"""Fault-model tests: outage/brownout windows and the injecting store."""

import numpy as np
import pytest

from repro.resilience.errors import StorageOutageError
from repro.resilience.faults import (
    BrownoutWindow,
    FaultInjectingStore,
    FaultPlan,
    OutageWindow,
)
from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.flaky import TransientFetchError
from repro.storage.latency import ConstantLatency


def _store(n=20, base_s=1e-3):
    return RemoteStore(
        np.arange(float(n))[:, None], item_nbytes=512,
        latency=ConstantLatency(base_s=base_s), clock=SimClock(),
    )


def test_window_validation():
    with pytest.raises(ValueError):
        OutageWindow(-1.0, 2.0)
    with pytest.raises(ValueError):
        OutageWindow(3.0, 2.0)
    with pytest.raises(ValueError):
        BrownoutWindow(0.0, 1.0, latency_multiplier=0.5)


def test_window_active_is_half_open_interval():
    w = OutageWindow(1.0, 2.0)
    assert not w.active(0.999)
    assert w.active(1.0)
    assert w.active(1.999)
    assert not w.active(2.0)
    assert w.duration_s == pytest.approx(1.0)


def test_plan_latency_multiplier_composes():
    plan = FaultPlan(brownouts=[
        BrownoutWindow(0.0, 10.0, 2.0),
        BrownoutWindow(5.0, 15.0, 3.0),
    ])
    assert plan.latency_multiplier(1.0) == pytest.approx(2.0)
    assert plan.latency_multiplier(7.0) == pytest.approx(6.0)
    assert plan.latency_multiplier(12.0) == pytest.approx(3.0)
    assert plan.latency_multiplier(20.0) == pytest.approx(1.0)


def test_plan_next_clear_time_chains_overlapping_outages():
    plan = FaultPlan(outages=[OutageWindow(1.0, 3.0), OutageWindow(2.5, 5.0)])
    assert plan.next_clear_time(0.0) == pytest.approx(0.0)
    assert plan.next_clear_time(1.5) == pytest.approx(5.0)
    assert plan.total_outage_s == pytest.approx(4.5)


def test_outage_raises_and_counts():
    store = _store()
    faulty = FaultInjectingStore(store, FaultPlan(outages=[OutageWindow(0.0, 1.0)]))
    with pytest.raises(StorageOutageError):
        faulty.get(0)
    # Outage errors are transient (retry layers and the breaker both see
    # the same taxonomy).
    with pytest.raises(TransientFetchError):
        faulty.get(1)
    assert faulty.outage_failures == 2
    assert store.fetch_count == 0  # never reached the backing store

    # Past the window the store works again.
    store.clock.advance("data_load", 1.0)
    np.testing.assert_array_equal(faulty.get(2), store.peek(2))
    assert faulty.fetch_count == 1


def test_brownout_charges_extra_latency():
    clean = _store(base_s=1e-3)
    clean.get(0)
    single = clean.clock.stage_seconds("data_load")  # one normal fetch

    store = _store(base_s=1e-3)
    plan = FaultPlan(brownouts=[BrownoutWindow(0.0, 100.0, 4.0)])
    faulty = FaultInjectingStore(store, plan)
    faulty.get(0)
    charged = store.clock.stage_seconds("data_load")
    # 4x multiplier: the normal fetch charge plus 3x extra.
    assert charged == pytest.approx(4 * single, rel=1e-9)
    assert faulty.brownout_fetches == 1
    assert faulty.brownout_extra_s == pytest.approx(3 * single, rel=1e-9)


def test_brownout_outside_window_is_free():
    store = _store(base_s=1e-3)
    plan = FaultPlan(brownouts=[BrownoutWindow(10.0, 20.0, 4.0)])
    faulty = FaultInjectingStore(store, plan)
    clean = _store(base_s=1e-3)
    clean.get(0)
    faulty.get(0)
    assert faulty.brownout_fetches == 0
    assert store.clock.stage_seconds("data_load") == pytest.approx(
        clean.clock.stage_seconds("data_load"), rel=1e-12
    )


def test_fault_counters_reset_through_wrapper():
    store = _store()
    faulty = FaultInjectingStore(store, FaultPlan(outages=[OutageWindow(0.0, 1.0)]))
    with pytest.raises(StorageOutageError):
        faulty.get(0)
    faulty.reset_counters()
    assert faulty.outage_failures == 0
    assert store.fetch_count == 0
