"""Shared builders for resilience tests: small, fully-deterministic runs."""

import pytest

from repro.core.policy import SpiderCachePolicy
from repro.data.registry import make_dataset
from repro.data.synthetic import train_test_split
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture
def build_run():
    """Factory for identically-seeded (trainer, model, policy) triples.

    Every call rebuilds the dataset, model, and policy from the same
    seeds, so two runs differ only in the trainer class / fault injection
    — the property the exact-recovery assertions need.
    """

    def _build(cls=Trainer, epochs=3, n_samples=160, batch_size=16,
               prefetch_workers=0, **kw):
        data = make_dataset("cifar10-like", rng=0, n_samples=n_samples)
        train, test = train_test_split(data, test_fraction=0.25, rng=1)
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.2, rng=3)
        cfg = TrainerConfig(epochs=epochs, batch_size=batch_size,
                            prefetch_workers=prefetch_workers)
        return cls(model, train, test, policy, cfg, **kw), model, policy

    return _build
