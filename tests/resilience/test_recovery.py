"""Exact-recovery tests: preempted runs resume bit-for-bit.

The acceptance property: a run killed mid-epoch and resumed from its
checkpoint produces the *identical* parameter trajectory, cache contents,
epoch metrics, and simulated clock as a run that was never interrupted.
"""

import numpy as np
import pytest

from repro.resilience import (
    PreemptionError,
    PreemptionSchedule,
    ResilientTrainer,
    load_state,
    save_state,
)
from repro.train.trainer import Trainer


def _params_equal(a, b):
    sa, sb = a.state_dict(), b.state_dict()
    assert sa.keys() == sb.keys()
    return all(np.array_equal(sa[k], sb[k]) for k in sa)


# ---------------------------------------------------------------------------
# State serializer


def test_save_state_round_trips_nested_trees(tmp_path):
    state = {
        "arrays": {"f64": np.linspace(0, 1, 7), "i64": np.arange(5),
                   "bool": np.array([True, False])},
        "rng_like": {"state": {"state": 2 ** 100 + 7, "inc": 2 ** 90 + 3}},
        "list": [1, 2.5, "three", None, {"deep": np.ones((2, 3))}],
        "tuple": (1, 2, "x"),
        "scalars": {"none": None, "flag": True, "f": 0.25},
    }
    path = save_state(tmp_path / "s.npz", state)
    back = load_state(path)
    np.testing.assert_array_equal(back["arrays"]["f64"], state["arrays"]["f64"])
    assert back["arrays"]["i64"].dtype == np.int64
    assert back["arrays"]["bool"].dtype == np.bool_
    # Big ints (PCG64 carries 128-bit words) survive exactly.
    assert back["rng_like"]["state"]["state"] == 2 ** 100 + 7
    assert back["list"][3] is None
    np.testing.assert_array_equal(back["list"][4]["deep"], np.ones((2, 3)))
    assert back["tuple"] == (1, 2, "x")
    assert back["scalars"] == state["scalars"]


def test_save_state_rejects_unserializable(tmp_path):
    with pytest.raises(TypeError):
        save_state(tmp_path / "bad.npz", {"f": lambda: None})
    with pytest.raises(TypeError):
        save_state(tmp_path / "bad.npz", {1: "non-string key"})


# ---------------------------------------------------------------------------
# Preemption schedule


def test_schedule_fires_each_point_once():
    sched = PreemptionSchedule(at=[(1, 3)])
    sched.check(0, 3, 0.0)  # wrong epoch: nothing
    with pytest.raises(PreemptionError) as ei:
        sched.check(1, 3, 2.5)
    assert (ei.value.epoch, ei.value.batch) == (1, 3)
    assert ei.value.at_s == pytest.approx(2.5)
    sched.check(1, 3, 2.6)  # replay passes through
    assert sched.fired == 1 and sched.pending == 0


def test_schedule_time_trigger():
    sched = PreemptionSchedule(at_times_s=[1.0])
    sched.check(0, 0, 0.5)
    with pytest.raises(PreemptionError):
        sched.check(0, 3, 1.2)
    sched.check(0, 4, 1.3)  # fired once, never again
    assert sched.total == 1 and sched.fired == 1


# ---------------------------------------------------------------------------
# Acceptance: exact recovery


def test_exact_recovery_acceptance(build_run, tmp_path):
    """Preempted twice mid-run; trajectory identical to uninterrupted."""
    base, base_model, base_policy = build_run(Trainer, epochs=3)
    r0 = base.run()

    trainer, model, policy = build_run(
        ResilientTrainer, epochs=3,
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every_batches=3,
        preemptions=PreemptionSchedule(at=[(1, 2), (2, 4)]),
    )
    r1 = trainer.run()

    assert trainer.recovery.restarts == 2
    assert trainer.recovery.replayed_batches > 0
    assert trainer.recovery.checkpoints_written > 0
    # Parameter trajectory: bit-for-bit.
    assert _params_equal(base_model, model)
    # Importance-cache contents: same keys in the same order, same
    # payloads, same heap eviction order next.
    bi, pi = base_policy.cache.importance, policy.cache.importance
    assert list(bi._values) == list(pi._values)
    for k in bi._values:
        np.testing.assert_array_equal(bi._values[k], pi._values[k])
    assert bi.peek_min()[0] == pi.peek_min()[0]
    # Homophily layer, score table, epoch metrics, and the clock too.
    assert list(base_policy.cache.homophily._entries) == list(
        policy.cache.homophily._entries
    )
    np.testing.assert_array_equal(
        base_policy.score_table.scores, policy.score_table.scores
    )
    assert r0.epochs == r1.epochs
    assert base.clock.state_dict() == trainer.clock.state_dict()


def test_fresh_process_resume_is_exact(build_run, tmp_path):
    """Kill the process (max_restarts=0), resume in a fresh trainer."""
    base, base_model, _ = build_run(Trainer, epochs=3)
    r0 = base.run()

    first, _, _ = build_run(
        ResilientTrainer, epochs=3,
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every_batches=4,
        preemptions=PreemptionSchedule(at=[(1, 5)]),
        max_restarts=0,
    )
    with pytest.raises(PreemptionError):
        first.run()

    second, model, _ = build_run(
        ResilientTrainer, epochs=3,
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every_batches=4,
        resume=True,
    )
    r2 = second.run()
    assert _params_equal(base_model, model)
    assert r0.epochs == r2.epochs
    assert base.clock.state_dict() == second.clock.state_dict()


def test_restart_penalty_charged_to_recovery_stage(build_run, tmp_path):
    trainer, _, _ = build_run(
        ResilientTrainer, epochs=2,
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every_batches=3,
        preemptions=PreemptionSchedule(at=[(1, 1)]),
        restart_penalty_s=7.5,
    )
    trainer.run()
    assert trainer.recovery.restarts == 1
    assert trainer.clock.stage_seconds("recovery") == pytest.approx(7.5)
    # The penalty is recovery overhead, not pipeline time: epoch metrics
    # must not absorb it.
    assert trainer.recovery.lost_s >= 0.0


def test_checkpoint_pruning_keeps_last_n(build_run, tmp_path):
    trainer, _, _ = build_run(
        ResilientTrainer, epochs=2,
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every_batches=2,
        keep_last=2,
    )
    trainer.run()
    kept = trainer.checkpoints()
    assert len(kept) == 2
    assert trainer.recovery.checkpoints_written > 2


def test_max_restarts_reraises(build_run, tmp_path):
    trainer, _, _ = build_run(
        ResilientTrainer, epochs=2,
        checkpoint_dir=tmp_path / "ckpts",
        preemptions=PreemptionSchedule(at=[(0, 1)]),
        max_restarts=0,
    )
    with pytest.raises(PreemptionError):
        trainer.run()


# ---------------------------------------------------------------------------
# Prefetching loader under preemption


def test_prefetch_recovery_is_exact(build_run, tmp_path):
    """Mid-epoch preemption with the prefetching loader resumes bit-exact.

    Windows never span a batch slot, so every checkpoint lands with no
    fetch in flight; the preempted prefetch run must match an
    uninterrupted prefetch run on everything, and an uninterrupted
    *serial* run on everything except the overlap-charged load times.
    """
    serial, serial_model, serial_policy = build_run(Trainer, epochs=3)
    rs = serial.run()

    base, base_model, base_policy = build_run(
        Trainer, epochs=3, prefetch_workers=3
    )
    r0 = base.run()

    trainer, model, policy = build_run(
        ResilientTrainer, epochs=3, prefetch_workers=3,
        checkpoint_dir=tmp_path / "ckpts",
        checkpoint_every_batches=3,
        preemptions=PreemptionSchedule(at=[(1, 2), (2, 4)]),
    )
    r1 = trainer.run()

    assert trainer.recovery.restarts == 2
    # Prefetch-vs-prefetch: fully identical (params, metrics, clock, caches).
    assert _params_equal(base_model, model)
    assert r0.epochs == r1.epochs
    assert base.clock.state_dict() == trainer.clock.state_dict()
    bi, pi = base_policy.cache.importance, policy.cache.importance
    assert list(bi._values) == list(pi._values)
    for k in bi._values:
        np.testing.assert_array_equal(bi._values[k], pi._values[k])
    # Prefetch-vs-serial: learning identical, only load accounting differs.
    assert _params_equal(serial_model, model)
    for es, ep in zip(rs.epochs, r1.epochs):
        assert es.val_accuracy == ep.val_accuracy
        assert es.train_loss == ep.train_loss
        assert es.hit_ratio == ep.hit_ratio
        assert es.substitute_ratio == ep.substitute_ratio
    si = serial_policy.cache.importance
    assert list(si._values) == list(pi._values)
    trainer.loader.close()
    base.loader.close()
