"""Circuit-breaker state machine and store-guard tests."""

import numpy as np
import pytest

from repro.resilience.breaker import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerStore,
)
from repro.resilience.errors import CircuitOpenError, StorageOutageError
from repro.resilience.faults import FaultInjectingStore, FaultPlan, OutageWindow
from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency


def _store(n=20):
    return RemoteStore(
        np.arange(float(n))[:, None], item_nbytes=512,
        latency=ConstantLatency(base_s=1e-3), clock=SimClock(),
    )


def test_opens_after_consecutive_failures():
    br = CircuitBreaker(failure_threshold=3, cooldown_s=1.0)
    assert not br.record_failure(0.0)
    assert not br.record_failure(0.1)
    assert br.record_failure(0.2)
    assert br.state is BreakerState.OPEN
    assert br.opens == 1
    assert not br.allow(0.5)  # cooling down


def test_success_resets_failure_streak():
    br = CircuitBreaker(failure_threshold=2)
    br.record_failure(0.0)
    br.record_success(0.1)
    assert not br.record_failure(0.2)  # streak restarted
    assert br.state is BreakerState.CLOSED


def test_half_open_after_cooldown_then_closes():
    br = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, close_threshold=2)
    br.record_failure(0.0)
    assert not br.allow(0.5)
    assert br.allow(1.0)  # cooldown elapsed -> half-open probe
    assert br.state is BreakerState.HALF_OPEN
    br.record_success(1.1)
    assert br.state is BreakerState.HALF_OPEN  # needs close_threshold successes
    br.record_success(1.2)
    assert br.state is BreakerState.CLOSED


def test_half_open_failure_reopens():
    br = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
    br.record_failure(0.0)
    assert br.allow(1.5)
    assert br.record_failure(1.6)
    assert br.state is BreakerState.OPEN
    assert br.opens == 2
    assert not br.allow(2.0)  # fresh cooldown from t=1.6
    assert br.allow(2.7)


def test_events_and_recovery_pairs():
    br = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
    br.record_failure(0.0)
    br.allow(1.0)
    br.record_success(1.1)
    pairs = br.reopen_close_pairs()
    assert pairs == [(0.0, 1.1)]
    br.record_failure(2.0)
    assert br.reopen_close_pairs()[-1] == (2.0, None)


def test_breaker_store_trips_then_fails_fast_then_recloses():
    store = _store()
    clock = store.clock
    faulty = FaultInjectingStore(
        store, FaultPlan(outages=[OutageWindow(0.0, 1.0)])
    )
    br = CircuitBreaker(failure_threshold=2, cooldown_s=0.5)
    guarded = CircuitBreakerStore(faulty, br)

    # Below threshold: the original outage error propagates.
    with pytest.raises(StorageOutageError):
        guarded.get(0)
    # Threshold reached: the breaker trips, surfacing CircuitOpenError.
    with pytest.raises(CircuitOpenError):
        guarded.get(1)
    assert br.state is BreakerState.OPEN

    # While open: fail-fast without touching the inner store.
    failures_before = faulty.outage_failures
    with pytest.raises(CircuitOpenError):
        guarded.get(2)
    assert faulty.outage_failures == failures_before
    assert br.fast_failures == 1

    # Cooldown elapses but the outage persists: the half-open probe fails
    # and the breaker reopens.
    clock.advance("data_load", 0.6)
    with pytest.raises(CircuitOpenError):
        guarded.get(3)
    assert br.state is BreakerState.OPEN
    assert br.opens == 2

    # Outage over + cooldown over: the probe succeeds and the breaker
    # re-closes.
    clock.advance("data_load", 1.0)
    np.testing.assert_array_equal(guarded.get(4), store.peek(4))
    assert br.state is BreakerState.CLOSED
    assert guarded.fetch_count == 1  # counters forward through the stack


def test_breaker_store_passthrough_when_healthy():
    store = _store()
    guarded = CircuitBreakerStore(store, CircuitBreaker())
    for i in range(5):
        guarded.get(i)
    assert guarded.breaker.state is BreakerState.CLOSED
    assert guarded.fetch_count == 5
    assert guarded.unwrap() is store
