"""Fault-campaign sweeps (tier-2: run with ``pytest -m resilience``)."""

import pytest

from repro.resilience import (
    DEFAULT_SCENARIOS,
    FaultCampaign,
    FaultScenario,
    ResilientTrainer,
)

pytestmark = pytest.mark.resilience


SMALL_SCENARIOS = (
    FaultScenario("outage", outages=((0.05, 0.10),), breaker_cooldown_frac=0.01),
    FaultScenario("brownout", brownouts=((0.10, 0.40, 6.0),)),
    FaultScenario("preempt", preempt_at=((1, 2),), restart_penalty_s=2.0),
)


@pytest.fixture
def campaign(build_run, tmp_path):
    def make_trainer(**kw):
        trainer, _, _ = build_run(
            ResilientTrainer, epochs=2, n_samples=96,
            checkpoint_every_batches=3, **kw,
        )
        return trainer

    return FaultCampaign(make_trainer, tmp_path, scenarios=SMALL_SCENARIOS)


def test_campaign_reports_every_scenario(campaign):
    result = campaign.run()
    assert result.clean_time_s > 0
    assert [r.scenario for r in result.reports] == [s.name for s in SMALL_SCENARIOS]
    assert all(r.completed for r in result.reports)

    outage = result.reports[0]
    assert outage.outage_failures > 0
    assert outage.breaker_opens > 0
    assert outage.degraded_substituted + outage.degraded_skipped > 0

    brownout = result.reports[1]
    assert brownout.brownout_extra_s > 0
    assert brownout.time_overhead_s > 0  # slower storage, same work

    preempt = result.reports[2]
    assert preempt.restarts == 1
    assert preempt.recovery_s == pytest.approx(2.0)
    assert preempt.checkpoints_written > 0
    # Exact recovery: a pure-preemption scenario lands on the clean
    # accuracy precisely.
    assert preempt.accuracy_delta == pytest.approx(0.0)


def test_campaign_records_scenario_failure_as_finding(build_run, tmp_path):
    class Boom(RuntimeError):
        pass

    calls = {"n": 0}

    def make_trainer(**kw):
        calls["n"] += 1
        trainer, _, _ = build_run(
            ResilientTrainer, epochs=1, n_samples=64, **kw
        )
        if calls["n"] > 1:  # sabotage the scenario run, not the baseline
            trainer.run = lambda: (_ for _ in ()).throw(Boom("nope"))
        return trainer

    campaign = FaultCampaign(
        make_trainer, tmp_path, scenarios=[FaultScenario("doomed")]
    )
    result = campaign.run()
    assert not result.reports[0].completed
    assert "Boom" in result.reports[0].error
    assert "doomed" in result.format_table()


def test_format_table_lists_all_scenarios(campaign):
    result = campaign.run()
    table = result.format_table()
    assert "clean baseline" in table
    for s in SMALL_SCENARIOS:
        assert s.name in table


def test_default_scenarios_cover_each_fault_class():
    kinds = set()
    for s in DEFAULT_SCENARIOS:
        if s.outages:
            kinds.add("outage")
        if s.brownouts:
            kinds.add("brownout")
        if s.preempt_at:
            kinds.add("preempt")
    assert kinds == {"outage", "brownout", "preempt"}


def test_cli_faults_subcommand(build_run, capsys, tmp_path):
    from repro.cli import main

    main([
        "faults", "--samples", "96", "--epochs", "2",
        "--scenarios", "preempt",
        "--checkpoint-dir", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert "clean baseline" in out
    assert "preempt" in out
