"""Every example script parses and its imports resolve."""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # deliverable: at least three runnable examples


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
    names = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main()"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every repro.* module an example imports must exist."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.split(".")[0] == "repro":
                mod = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(mod, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )
