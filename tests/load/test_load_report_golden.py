"""Golden regression test for the ``repro report`` load / SLO section.

The fixture under ``fixtures/golden-load-run/`` is the checked-in
``load.json`` from a small autoscaled replay::

    PYTHONPATH=src python -m repro load --requests 6000 --keys 400 \\
        --capacity 200 --window 300 --base-rate 300 --slo-ms 2 --seed 7 \\
        --trace-dir tests/load/fixtures/golden-load-run
    rm tests/load/fixtures/golden-load-run/trace.jsonl   # too big to pin
    PYTHONPATH=src python -m repro report tests/load/fixtures/golden-load-run \\
        > tests/load/fixtures/golden-load-report.txt

(The 2 ms SLO is deliberately unattainable for this tier so the
burn-rate alert rules fire and the report's alert block is pinned too;
the autoscaler's decision stream is SLO-independent.)

Any change to the load-report layout, the percentile math, the alert
evaluator, or the autoscaler's decision stream shows up here as a diff —
regenerate the fixture deliberately, with the commands above, when the
change is intended. Follows ``tests/obs/test_report_golden.py``.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

pytestmark = pytest.mark.load

FIXTURES = Path(__file__).parent / "fixtures"


def test_load_report_cli_matches_golden_fixture(capsys):
    assert main(["report", str(FIXTURES / "golden-load-run")]) == 0
    out = capsys.readouterr().out
    golden = (FIXTURES / "golden-load-report.txt").read_text()
    assert out.splitlines() == golden.splitlines()


def test_golden_fixture_has_the_slo_table():
    golden = (FIXTURES / "golden-load-report.txt").read_text()
    assert "load / SLO:" in golden
    assert "p50=" in golden and "p99=" in golden and "p999=" in golden
    # The 2 ms SLO is deliberately missed so the alert block is pinned.
    assert "-> MISSED" in golden
    assert "grow" in golden and "shrink" in golden
    assert "resize(s) verified" in golden


def test_golden_fixture_pins_the_burn_rate_block():
    golden = (FIXTURES / "golden-load-report.txt").read_text()
    assert "burn-rate alerts (goal 99.0%):" in golden
    assert "rule fast: >= 10x over 4w/1w" in golden
    assert "rule slow: >= 2x over 12w/3w" in golden
    # Both fire in window 0 and both eventually resolve.
    assert "fast  firing" in golden and "slow  firing" in golden
    assert "fast  resolved" in golden and "slow  resolved" in golden


def test_golden_fixture_is_replayable():
    """The pinned artifact reproduces from its own recorded config: the
    digest in load.json is the digest a fresh replay of the same seed
    and knobs produces (the bit-identical acceptance property, pinned)."""
    doc = json.loads((FIXTURES / "golden-load-run" / "load.json").read_text())
    from repro.load import (
        Autoscaler,
        AutoscalerConfig,
        BurstyArrivals,
        ReplayConfig,
        ReplayHarness,
        SloPolicy,
        TraceConfig,
        make_trace,
    )

    cfg = doc["config"]
    tmeta = doc["trace"]
    arr = tmeta["arrivals"]
    trace = make_trace(
        TraceConfig(
            n_requests=tmeta["n_requests"],
            n_keys=tmeta["n_keys"],
            zipf_exponent=tmeta["zipf_exponent"],
            put_fraction=tmeta["put_fraction"],
        ),
        BurstyArrivals(
            rate_low=arr["rate_low"],
            rate_high=arr["rate_high"],
            mean_on_s=arr["mean_on_s"],
            mean_off_s=arr["mean_off_s"],
        ),
        seed=tmeta["seed"],
    )
    harness = ReplayHarness(
        ReplayConfig(
            total_capacity=cfg["total_capacity"],
            imp_ratio=cfg["imp_ratio"],
            n_shards=cfg["n_shards"],
            window_requests=cfg["window_requests"],
            slo=SloPolicy(**cfg["slo"]),
            miss_latency_s=cfg["miss_latency_s"],
            service_rate_per_shard=cfg["service_rate_per_shard"],
            seed=cfg["seed"],
        ),
        autoscaler=Autoscaler(AutoscalerConfig()),
    )
    result = harness.run(trace)
    assert result.digest() == doc["digest"]
