"""Integration tests for the replay harness + autoscaler loop.

Covers the tentpole's acceptance behaviours at small scale: a bursty
zipfian replay drives at least one grow *and* one shrink, every resize
passes ``verify_placement()``, the whole run is bit-identical across
invocations (digest equality), artifacts render through ``repro
report``, and the harness survives replay under a shard outage plan.
"""

import json

import numpy as np
import pytest

from repro.load.autoscaler import Autoscaler, AutoscalerConfig
from repro.load.replay import (
    CongestionLatency,
    ReplayConfig,
    ReplayHarness,
    write_load_artifacts,
)
from repro.load.slo import LatencyStats, SloPolicy, nearest_rank
from repro.load.traces import BurstyArrivals, TraceConfig, make_trace
from repro.obs import MetricsRegistry, Observer
from repro.obs.report import LOAD_FILE, render_report
from repro.resilience.faults import FaultPlan, OutageWindow

pytestmark = pytest.mark.load


def bursty_trace(n=20000, seed=7):
    return make_trace(
        TraceConfig(n_requests=n, n_keys=500, zipf_exponent=1.1,
                    put_fraction=0.05),
        BurstyArrivals(rate_low=300.0, rate_high=7000.0,
                       mean_on_s=1.5, mean_off_s=3.0),
        seed=seed,
    )


def harness(autoscale=True, **kwargs):
    cfg = ReplayConfig(
        total_capacity=256, imp_ratio=0.8, n_shards=2, window_requests=500,
        slo=SloPolicy(target_s=0.02), service_rate_per_shard=2000.0,
        # Pinned: these assertions read simulated latencies/clock values
        # that only exist on the deterministic transport.
        transport="sim",
    )
    auto = Autoscaler(AutoscalerConfig(min_shards=1, max_shards=8)) \
        if autoscale else None
    return ReplayHarness(cfg, autoscaler=auto, **kwargs)


# ----------------------------------------------------------------------
# the headline behaviour
# ----------------------------------------------------------------------
def test_bursty_replay_grows_and_shrinks_with_verified_resizes():
    result = harness().run(bursty_trace())
    assert result.grows >= 1
    assert result.shrinks >= 1
    # Every completed migration re-ran the placement oracle.
    assert result.resizes_verified == len(result.decisions)
    assert result.moved_keys > 0
    # The harness itself never degrades the tier.
    assert result.cache["dropped_admits"] == 0
    assert result.cache["degraded_lookups"] == 0
    assert result.n_requests == 20000
    assert len(result.windows) == 40


def test_run_is_bit_identical_across_invocations():
    a = harness().run(bursty_trace())
    b = harness().run(bursty_trace())
    assert a.digest() == b.digest()
    np.testing.assert_array_equal(a.latencies, b.latencies)
    assert [d.as_dict() for d in a.decisions] == \
        [d.as_dict() for d in b.decisions]
    assert json.dumps(a.summary(), sort_keys=True) == \
        json.dumps(b.summary(), sort_keys=True)


def test_congestion_makes_scaling_matter():
    """With the fleet pinned at 1 shard the burst windows run hotter than
    the autoscaled run — the latency/shard-count feedback is real."""
    fixed = ReplayHarness(ReplayConfig(
        total_capacity=256, n_shards=1, window_requests=400,
        slo=SloPolicy(target_s=0.02),
    ))
    scaled = harness()
    trace = bursty_trace()
    r_fixed = fixed.run(trace)
    r_scaled = scaled.run(bursty_trace())
    assert r_scaled.overall.p99_s < r_fixed.overall.p99_s
    assert r_scaled.attainment >= r_fixed.attainment


# ----------------------------------------------------------------------
# observer + artifacts
# ----------------------------------------------------------------------
def test_observer_hooks_fire(tmp_path):
    registry = MetricsRegistry()
    obs = Observer(metrics=registry)
    result = harness(observer=obs).run(bursty_trace())
    snap = registry.snapshot()
    assert snap["counters"]["load.windows"] == len(result.windows)
    assert snap["counters"]["load.requests"] == result.n_requests
    assert snap["counters"]["autoscale.decisions"] == len(result.decisions)
    assert snap["counters"]["autoscale.grow"] == result.grows
    assert snap["counters"]["autoscale.shrink"] == result.shrinks
    assert snap["gauges"]["autoscale.n_shards"] == \
        result.decisions[-1].new_n


def test_artifacts_and_report_round_trip(tmp_path):
    result = harness().run(bursty_trace())
    path = write_load_artifacts(result, tmp_path)
    assert path.name == LOAD_FILE
    doc = json.loads(path.read_text())
    assert doc["digest"] == result.digest()
    assert doc["requests"] == result.n_requests
    text = render_report(tmp_path)
    assert "load / SLO:" in text
    assert "p99=" in text and "p999=" in text
    assert "autoscaler:" in text
    assert f"{result.grows} grow(s), {result.shrinks} shrink(s)" in text


def test_report_renders_alongside_epochs_artifacts(tmp_path):
    """A dir holding both training and load artifacts shows both."""
    (tmp_path / "epochs.jsonl").write_text(json.dumps({
        "policy": "spidercache", "model": "m", "dataset": "d",
        "epoch": 0, "val_accuracy": 0.5, "hit_ratio": 0.5,
        "exact_hit_ratio": 0.5, "substitute_ratio": 0.0,
        "data_load_s": 1.0, "compute_s": 1.0, "is_visible_s": 0.0,
        "preprocess_s": 0.0, "epoch_time_s": 2.0, "imp_ratio": 0.8,
    }) + "\n")
    write_load_artifacts(harness().run(bursty_trace(n=2000)), tmp_path)
    text = render_report(tmp_path)
    assert "epoch" in text
    assert "load / SLO:" in text


# ----------------------------------------------------------------------
# faults during replay
# ----------------------------------------------------------------------
def test_replay_survives_shard_outage():
    """An outage mid-replay degrades service but the run completes, and
    the tail drain still verifies placement."""
    plans = {0: FaultPlan([OutageWindow(start_s=0.5, end_s=1.5)])}
    h = harness(fault_plans=plans)
    result = h.run(bursty_trace(n=4000))
    assert result.n_requests == 4000
    assert h.client.verify_placement() == []
    # The outage shows up as degraded service, not as a crash.
    assert (result.cache["dropped_admits"] + result.cache["degraded_lookups"]
            + result.cache["rpc_retries"]) > 0


# ----------------------------------------------------------------------
# config + stats units
# ----------------------------------------------------------------------
def test_replay_config_validation():
    with pytest.raises(ValueError):
        ReplayConfig(total_capacity=0)
    with pytest.raises(ValueError):
        ReplayConfig(total_capacity=10, imp_ratio=1.5)
    with pytest.raises(ValueError):
        ReplayConfig(total_capacity=10, window_requests=0)
    with pytest.raises(ValueError):
        ReplayConfig(total_capacity=10, service_rate_per_shard=0.0)


def test_congestion_latency_factor():
    lat = CongestionLatency()
    base = lat.sample(1000)
    lat.utilization = 0.5
    assert lat.sample(1000) == pytest.approx(base * 2.0)
    lat.utilization = 5.0  # capped at max_utilization=0.9 -> 10x
    assert lat.sample(1000) == pytest.approx(base * 10.0)
    with pytest.raises(ValueError):
        CongestionLatency(max_utilization=1.0)


def test_nearest_rank_percentiles_are_exact_order_stats():
    s = np.sort(np.arange(1, 101, dtype=np.float64))  # 1..100
    assert nearest_rank(s, 50.0) == 50.0
    assert nearest_rank(s, 99.0) == 99.0
    assert nearest_rank(s, 100.0) == 100.0
    assert nearest_rank(np.array([]), 50.0) == 0.0
    stats = LatencyStats.from_samples(s)
    assert stats.p50_s == 50.0 and stats.p99_s == 99.0
    assert stats.p999_s == 100.0 and stats.max_s == 100.0
