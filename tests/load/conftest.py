"""Shared config for the load-harness suite.

Registers Hypothesis profiles when Hypothesis is installed (the tier-1
CI job installs only numpy+pytest; the property tests importorskip).
Select a profile with ``REPRO_HYPOTHESIS_PROFILE=ci`` — the CI load job
uses the bigger example budget.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - property tests skip themselves
    settings = None

if settings is not None:
    settings.register_profile("dev", max_examples=50, deadline=None)
    settings.register_profile("ci", max_examples=300, deadline=None)
    settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))
