"""Differential oracle: the replay harness adds no semantic drift.

Replaying any trace through :class:`ReplayHarness` with autoscaling
disabled must be *bit-identical* — same get/put outcome sequence (hits,
substitutions, misses), same final ``state_dict`` — to issuing the same
ops directly against a bare :class:`ShardedCacheClient`, for K∈{1,2,4}.
The harness only adds clock advances and measurement around each op, and
in a fault-free run simulated time never feeds back into policy state,
so any divergence is a harness bug. Extends the conventions of
``tests/dist/test_differential_oracle.py``.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.client import ShardedCacheClient
from repro.load.replay import (
    ReplayConfig,
    ReplayHarness,
    apply_request,
    payload_for,
)
from repro.load.slo import SloPolicy
from repro.load.traces import BurstyArrivals, TraceConfig, make_trace

pytestmark = pytest.mark.load

N_KEYS = 60
CAPACITY = 24


def make_replay_config(n_shards):
    return ReplayConfig(
        total_capacity=CAPACITY,
        imp_ratio=0.8,
        n_shards=n_shards,
        window_requests=25,
        slo=SloPolicy(target_s=0.02),
        payload_dim=4,
        # Pinned: the differential oracle depends on the deterministic
        # simulated transport; never let a default drift this to "real".
        transport="sim",
    )


def make_reference_client(cfg):
    """A bare client with the exact RPC stack the harness builds —
    latency/clock differ (irrelevant: fault-free policy state is
    time-independent)."""
    return ShardedCacheClient(
        cfg.total_capacity,
        imp_ratio=cfg.imp_ratio,
        n_shards=cfg.n_shards,
        deadline_s=cfg.rpc_deadline_s,
    )


def deep_equal(a, b, path=""):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=path)
    elif isinstance(a, dict):
        assert set(a) == set(b), path
        for k in a:
            deep_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            deep_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def replay_directly(cfg, trace):
    """Reference replay: the trace's ops applied straight to a client."""
    client = make_reference_client(cfg)
    remote = lambda i: payload_for(i, cfg.payload_dim)  # noqa: E731
    outcomes = [
        apply_request(
            client, int(op), int(key), float(score), remote,
            trace.n_keys, cfg.payload_dim,
        )
        for key, op, score in zip(trace.keys, trace.ops, trace.scores)
    ]
    return outcomes, client


@pytest.mark.parametrize("n_shards", [1, 2, 4])
@given(seed=st.integers(0, 2**31 - 1), n_requests=st.integers(10, 400))
@settings(max_examples=25, deadline=None)
def test_harness_replay_is_bit_identical_to_direct_ops(
    n_shards, seed, n_requests
):
    trace = make_trace(
        TraceConfig(n_requests=n_requests, n_keys=N_KEYS, put_fraction=0.15),
        BurstyArrivals(200.0, 4000.0, 0.5, 1.0),
        seed=seed,
    )
    cfg = make_replay_config(n_shards)

    harness = ReplayHarness(cfg)  # no autoscaler
    result = harness.run(trace, record_outcomes=True)
    want, reference = replay_directly(cfg, trace)

    assert result.outcomes == want
    deep_equal(harness.client.state_dict(), reference.state_dict())
    assert harness.client.hit_ratio == reference.hit_ratio
    assert len(harness.client) == len(reference)
    # The harness must not push the tier into degraded paths by itself.
    assert harness.client.dropped_admits == 0
    assert harness.client.degraded_lookups == 0
    assert result.final_shards == n_shards
    assert result.decisions == []


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_shard_count_is_invisible_to_outcomes(n_shards):
    """Corollary: every K produces the same outcome stream (the dist
    suite proves K == monolith; this pins the harness path)."""
    trace = make_trace(
        TraceConfig(n_requests=300, n_keys=N_KEYS, put_fraction=0.1),
        BurstyArrivals(200.0, 4000.0, 0.5, 1.0),
        seed=11,
    )
    res = ReplayHarness(make_replay_config(n_shards)).run(
        trace, record_outcomes=True
    )
    res1 = ReplayHarness(make_replay_config(1)).run(
        trace, record_outcomes=True
    )
    assert res.outcomes == res1.outcomes
    assert res.cache["hit_ratio"] == res1.cache["hit_ratio"]


def test_latency_recording_does_not_depend_on_outcome_capture():
    """record_outcomes must be pure observation."""
    trace = make_trace(
        TraceConfig(n_requests=200, n_keys=N_KEYS),
        BurstyArrivals(200.0, 4000.0, 0.5, 1.0),
        seed=5,
    )
    a = ReplayHarness(make_replay_config(2)).run(trace, record_outcomes=True)
    b = ReplayHarness(make_replay_config(2)).run(trace, record_outcomes=False)
    assert b.outcomes is None
    np.testing.assert_array_equal(a.latencies, b.latencies)
    assert a.digest() == b.digest()
