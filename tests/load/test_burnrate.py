"""Burn-rate math and multi-window alert evaluator tests."""

import pytest

from repro.load.burnrate import (
    DEFAULT_BURN_RULES,
    AlertEvent,
    BurnRateEvaluator,
    BurnRateRule,
    burn_rate,
)


def test_burn_rate_math():
    # 99% goal -> 1% budget; 98% attainment misses 2% -> 2x burn.
    assert burn_rate(0.98, 0.99) == pytest.approx(2.0)
    assert burn_rate(0.99, 0.99) == pytest.approx(1.0)  # exactly on budget
    assert burn_rate(1.0, 0.99) == pytest.approx(0.0)
    assert burn_rate(0.0, 0.99) == pytest.approx(100.0)


def test_burn_rate_goal_of_one_stays_finite():
    assert burn_rate(0.999, 1.0) > 1e5
    assert burn_rate(1.0, 1.0) == pytest.approx(0.0)


def test_rule_validation():
    with pytest.raises(ValueError):
        BurnRateRule("x", long_windows=0, short_windows=1, threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", long_windows=2, short_windows=3, threshold=1.0)
    with pytest.raises(ValueError):
        BurnRateRule("x", long_windows=4, short_windows=1, threshold=0.0)


def test_default_rules_are_fast_slow_pair():
    names = [r.name for r in DEFAULT_BURN_RULES]
    assert names == ["fast", "slow"]
    fast, slow = DEFAULT_BURN_RULES
    assert fast.threshold > slow.threshold
    assert fast.long_windows < slow.long_windows


def test_evaluator_goal_validation():
    with pytest.raises(ValueError):
        BurnRateEvaluator(goal=0.0)
    with pytest.raises(ValueError):
        BurnRateEvaluator(goal=1.5)


def _evaluator(threshold=2.0, long_windows=4, short_windows=2):
    rule = BurnRateRule(
        "r", long_windows=long_windows, short_windows=short_windows,
        threshold=threshold,
    )
    return BurnRateEvaluator(goal=0.99, rules=(rule,))


def test_fire_and_resolve_transitions_only():
    ev = _evaluator()
    # Healthy windows: no transitions.
    assert ev.observe(0, attainment=1.0, n=100) == []
    assert ev.observe(1, attainment=0.995, n=100) == []
    assert ev.firing() == []
    # Budget torched: 0.95 attainment = 5x burn >= 2x on both lookbacks.
    events = ev.observe(2, attainment=0.80, n=100)
    assert len(events) == 1
    fired = events[0]
    assert fired.state == "firing" and fired.window == 2
    assert fired.burn_short >= 2.0 and fired.burn_long >= 2.0
    # Still bad: firing already, so no repeat event.
    assert ev.observe(3, attainment=0.80, n=100) == []
    assert ev.firing() == ["r"]
    # Recovery: resolve once the short lookback falls back under.
    assert ev.observe(4, attainment=1.0, n=100) == []  # short still burnt
    events = ev.observe(5, attainment=1.0, n=100)
    assert [e.state for e in events] == ["resolved"]
    assert ev.firing() == []
    # Full history retained in order.
    assert [e.state for e in ev.events] == ["firing", "resolved"]


def test_first_window_can_fire_with_partial_lookback():
    ev = _evaluator(threshold=2.0, long_windows=12, short_windows=3)
    events = ev.observe(0, attainment=0.5, n=50)
    assert [e.state for e in events] == ["firing"]


def test_lookbacks_are_request_weighted():
    ev = _evaluator(threshold=2.0, long_windows=2, short_windows=2)
    # A huge healthy window dilutes a tiny terrible one below threshold.
    ev.observe(0, attainment=1.0, n=1000)
    assert ev.observe(1, attainment=0.80, n=10) == []
    assert ev.firing() == []
    # The same miss with the weights flipped fires.
    ev2 = _evaluator(threshold=2.0, long_windows=2, short_windows=2)
    ev2.observe(0, attainment=1.0, n=10)
    assert [e.state for e in ev2.observe(1, attainment=0.80, n=1000)] == [
        "firing"
    ]


def test_long_lookback_gates_the_fire():
    # One bad window trips the short lookback but not the long mean.
    ev = _evaluator(threshold=4.0, long_windows=4, short_windows=1)
    for w in range(3):
        ev.observe(w, attainment=1.0, n=100)
    assert ev.observe(3, attainment=0.96, n=100) == []  # short 4x, long 1x
    assert ev.firing() == []


def test_max_burn_tracks_peak_long_lookback():
    ev = _evaluator(threshold=100.0, long_windows=1, short_windows=1)
    ev.observe(0, attainment=0.97, n=10)  # 3x
    ev.observe(1, attainment=0.95, n=10)  # 5x
    ev.observe(2, attainment=1.0, n=10)
    assert ev.max_burn["r"] == pytest.approx(5.0)


def test_as_dict_is_json_shaped():
    ev = _evaluator()
    ev.observe(0, attainment=0.5, n=100)
    doc = ev.as_dict()
    assert doc["goal"] == pytest.approx(0.99)
    assert doc["rules"][0] == {
        "name": "r", "long_windows": 4, "short_windows": 2, "threshold": 2.0,
    }
    assert doc["firing"] == ["r"]
    assert doc["events"][0]["state"] == "firing"
    assert doc["max_burn"]["r"] > 2.0
    import json

    json.dumps(doc)  # fully serializable


def test_alert_event_as_dict_round_trip():
    e = AlertEvent(
        rule="fast", state="firing", window=3,
        burn_short=12.0, burn_long=11.0, threshold=10.0,
    )
    assert e.as_dict() == {
        "rule": "fast", "state": "firing", "window": 3,
        "burn_short": 12.0, "burn_long": 11.0, "threshold": 10.0,
    }
