"""Property suite for the trace generators (ISSUE 8 satellite 1).

Four families of invariants, Hypothesis-driven:

* **determinism** — identical seed ⇒ bit-identical trace (checksum,
  arrays, and save/load round trip);
* **monotone skew** — a higher zipf exponent concentrates more mass on
  the top-K keys, both in the exact theoretical distribution and in
  sampled traces with a comfortable exponent gap;
* **rate envelopes** — every arrival process's realized average rate
  stays inside its configured ``[min_rate, max_rate]`` envelope, and
  arrivals are nondecreasing from a nonnegative start;
* **mixer** — merging preserves the total request count, every key, and
  arrival-time ordering.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load.traces import (
    BurstyArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    LoadTrace,
    ModulatedArrivals,
    TraceConfig,
    expected_top_k_mass,
    make_trace,
    mix_traces,
    top_k_mass,
    zipfian_keys,
)

pytestmark = pytest.mark.load

_seed = st.integers(0, 2**31 - 1)
_exponent = st.floats(0.0, 2.5, allow_nan=False)


def _arrival_strategy():
    return st.one_of(
        st.builds(ConstantArrivals, rate=st.floats(10.0, 5000.0)),
        st.builds(
            BurstyArrivals,
            rate_low=st.floats(10.0, 500.0),
            rate_high=st.floats(500.0, 9000.0),
            mean_on_s=st.floats(0.05, 3.0),
            mean_off_s=st.floats(0.05, 3.0),
        ),
        st.builds(
            DiurnalArrivals,
            base_rate=st.floats(10.0, 5000.0),
            amplitude=st.floats(0.0, 0.95),
            period_s=st.floats(0.5, 60.0),
        ),
    )


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@given(seed=_seed, exponent=_exponent, arrivals=_arrival_strategy())
@settings(max_examples=25, deadline=None)
def test_same_seed_is_bit_identical(seed, exponent, arrivals):
    cfg = TraceConfig(n_requests=500, n_keys=64, zipf_exponent=exponent)
    a = make_trace(cfg, arrivals, seed=seed)
    b = make_trace(cfg, arrivals, seed=seed)
    assert a.checksum() == b.checksum()
    np.testing.assert_array_equal(a.keys, b.keys)
    np.testing.assert_array_equal(a.ops, b.ops)
    np.testing.assert_array_equal(a.scores, b.scores)
    np.testing.assert_array_equal(a.arrival_s, b.arrival_s)


@given(seed=_seed)
@settings(max_examples=25, deadline=None)
def test_different_seeds_differ(seed):
    cfg = TraceConfig(n_requests=400, n_keys=64)
    arr = ConstantArrivals(rate=1000.0)
    a = make_trace(cfg, arr, seed=seed)
    b = make_trace(cfg, arr, seed=seed + 1)
    assert a.checksum() != b.checksum()


@given(seed=_seed)
@settings(max_examples=10, deadline=None)
def test_save_load_round_trip(seed):
    import tempfile
    from pathlib import Path

    cfg = TraceConfig(n_requests=300, n_keys=32, put_fraction=0.1)
    trace = make_trace(
        cfg, BurstyArrivals(100.0, 2000.0, 0.5, 0.5), seed=seed
    )
    with tempfile.TemporaryDirectory() as d:
        path = trace.save(Path(d) / "t.npz")
        back = LoadTrace.load(path)
    assert back.checksum() == trace.checksum()
    assert back.meta == trace.meta
    assert back.n_keys == trace.n_keys


# ----------------------------------------------------------------------
# monotone skew
# ----------------------------------------------------------------------
@given(
    lo=st.floats(0.0, 1.5, allow_nan=False),
    gap=st.floats(0.1, 1.5, allow_nan=False),
    k=st.integers(1, 16),
)
@settings(max_examples=50, deadline=None)
def test_theoretical_top_k_mass_is_monotone_in_exponent(lo, gap, k):
    """Exact distribution check: strictly more top-K mass at higher skew."""
    n_keys = 128
    low = expected_top_k_mass(n_keys, lo, k)
    high = expected_top_k_mass(n_keys, lo + gap, k)
    assert high > low or (k >= n_keys and high == low)


@given(seed=_seed, lo=st.floats(0.0, 1.0), gap=st.floats(0.5, 1.5))
@settings(max_examples=25, deadline=None)
def test_sampled_top_k_mass_grows_with_exponent(seed, lo, gap):
    """Empirical check with a comfortable exponent gap and sample size."""
    n, n_keys, k = 4000, 64, 8
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    mass_lo = top_k_mass(zipfian_keys(n, n_keys, lo, rng_a), k)
    mass_hi = top_k_mass(zipfian_keys(n, n_keys, lo + gap, rng_b), k)
    assert mass_hi > mass_lo - 0.02  # small sampling-noise allowance


def test_uniform_exponent_zero_is_flat():
    keys = zipfian_keys(20000, 16, 0.0, np.random.default_rng(0))
    counts = np.bincount(keys, minlength=16)
    assert counts.min() > 0.7 * counts.max()


# ----------------------------------------------------------------------
# rate envelopes
# ----------------------------------------------------------------------
@given(seed=_seed, arrivals=_arrival_strategy())
@settings(max_examples=50, deadline=None)
def test_arrivals_respect_rate_envelope(seed, arrivals):
    """Average realized rate over the whole trace must sit inside the
    configured envelope (with Poisson sampling slack)."""
    n = 2000
    times = arrivals.sample_arrivals(n, np.random.default_rng(seed))
    assert len(times) == n
    assert times[0] >= 0.0
    assert np.all(np.diff(times) >= 0.0)
    duration = float(times[-1] - times[0])
    if duration > 0:
        realized = (n - 1) / duration
        assert realized >= arrivals.min_rate * 0.5
        assert realized <= arrivals.max_rate * 1.5


@given(seed=_seed, amplitude=st.floats(0.0, 0.9))
@settings(max_examples=25, deadline=None)
def test_modulated_envelope_brackets_base(seed, amplitude):
    base = BurstyArrivals(100.0, 1000.0, 0.5, 0.5)
    mod = ModulatedArrivals(base, amplitude=amplitude, period_s=10.0)
    assert mod.min_rate == pytest.approx(base.min_rate * (1 - amplitude))
    assert mod.max_rate == pytest.approx(base.max_rate * (1 + amplitude))
    times = mod.sample_arrivals(1000, np.random.default_rng(seed))
    assert np.all(np.diff(times) >= 0.0)


def test_constant_arrivals_hit_configured_rate():
    times = ConstantArrivals(rate=500.0).sample_arrivals(
        20000, np.random.default_rng(3)
    )
    realized = (len(times) - 1) / float(times[-1] - times[0])
    assert realized == pytest.approx(500.0, rel=0.05)


# ----------------------------------------------------------------------
# mixer
# ----------------------------------------------------------------------
@given(
    seed=_seed,
    sizes=st.lists(st.integers(1, 300), min_size=1, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_mixer_preserves_request_count_and_keys(seed, sizes):
    traces = [
        make_trace(
            TraceConfig(n_requests=sz, n_keys=32),
            ConstantArrivals(rate=200.0 * (i + 1)),
            seed=seed + i,
        )
        for i, sz in enumerate(sizes)
    ]
    mixed = mix_traces(traces)
    assert len(mixed) == sum(sizes)
    assert np.all(np.diff(mixed.arrival_s) >= 0.0)
    want = np.sort(np.concatenate([t.keys for t in traces]))
    np.testing.assert_array_equal(np.sort(mixed.keys), want)


def test_mixer_is_deterministic_and_stable():
    a = make_trace(
        TraceConfig(n_requests=100, n_keys=16), ConstantArrivals(100.0), seed=1
    )
    b = make_trace(
        TraceConfig(n_requests=100, n_keys=16), ConstantArrivals(100.0), seed=2
    )
    m1 = mix_traces([a, b])
    m2 = mix_traces([a, b])
    assert m1.checksum() == m2.checksum()
    # Same-timestamp ties resolve by input order, so swapping the inputs
    # of two identical traces still yields a well-formed merge.
    m3 = mix_traces([b, a])
    assert len(m3) == len(m1)


def test_mixer_rejects_all_empty():
    with pytest.raises(ValueError):
        mix_traces([])
