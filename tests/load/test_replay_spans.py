"""Acceptance: a sharded load replay's trace reconstructs full span trees.

The ISSUE-9 tentpole criterion — run the load harness with tracing on
(plus an injected shard outage) and show that one request's complete
causal story is recoverable from the flat JSONL stream: the fetch span,
its per-shard ``rpc`` spans, every ``rpc_attempt`` (including failed
ones and their classification), the backoff sleeps between retries, and
the breaker state the channel saw.
"""

import pytest

from repro.load.autoscaler import Autoscaler, AutoscalerConfig
from repro.load.replay import ReplayConfig, ReplayHarness
from repro.load.slo import SloPolicy
from repro.load.traces import BurstyArrivals, TraceConfig, make_trace
from repro.obs import (
    InMemoryRecorder,
    MetricsRegistry,
    Observer,
    build_span_forest,
    find_spans,
    format_span_tree,
)
from repro.resilience.faults import FaultPlan, OutageWindow

pytestmark = pytest.mark.load


def _trace(n=3000, seed=7):
    return make_trace(
        TraceConfig(n_requests=n, n_keys=300, zipf_exponent=1.1,
                    put_fraction=0.05),
        BurstyArrivals(rate_low=300.0, rate_high=5000.0,
                       mean_on_s=1.0, mean_off_s=2.0),
        seed=seed,
    )


def _traced_run(fault_plans=None, autoscale=False, n=3000):
    rec = InMemoryRecorder()
    obs = Observer(recorder=rec, metrics=MetricsRegistry(), span_seed=7)
    cfg = ReplayConfig(
        total_capacity=128, imp_ratio=0.8, n_shards=2, window_requests=500,
        slo=SloPolicy(target_s=0.02),
    )
    auto = Autoscaler(AutoscalerConfig(min_shards=1, max_shards=4)) \
        if autoscale else None
    harness = ReplayHarness(
        cfg, autoscaler=auto, fault_plans=fault_plans, observer=obs
    )
    result = harness.run(_trace(n=n))
    return result, rec.events


def test_span_hierarchy_covers_the_whole_run():
    result, events = _traced_run()
    roots, by_id = build_span_forest(events)
    # One load_run root; every span belongs to its tree.
    assert [r.name for r in roots] == ["load_run"]
    run = roots[0]
    assert run.event["requests"] == result.n_requests
    windows = [c for c in run.children if c.name == "window"]
    assert len(windows) == len(result.windows)
    assert [w.event["window"] for w in windows] == list(
        range(len(result.windows))
    )
    # Requests nest under their window; RPC attempts under their rpc.
    fetches = find_spans(roots, "fetch")
    assert len(fetches) > 0
    rpcs = find_spans(roots, "rpc")
    assert len(rpcs) > 0
    attempts = find_spans(roots, "rpc_attempt")
    assert len(attempts) >= len(rpcs)
    # Every attempt hangs off a request-side span: the retrying rpc
    # wrapper usually, or directly off fetch/put for one-shot calls
    # (best-effort deletes), or off a repair/drain batch.
    parent_names = {
        by_id[a.parent_id].name for a in attempts if a.parent_id in by_id
    }
    assert all(a.parent_id in by_id for a in attempts)
    assert parent_names <= {
        "rpc", "fetch", "put", "anti_entropy", "migration_drain"
    }
    assert "rpc" in parent_names


def test_outage_request_tree_tells_the_full_retry_story():
    plans = {0: FaultPlan([OutageWindow(start_s=0.2, end_s=0.9)])}
    result, events = _traced_run(fault_plans=plans)
    assert result.cache["rpc_retries"] > 0
    roots, by_id = build_span_forest(events)

    # Find the rpc that burned its whole retry budget against the outage.
    exhausted = [
        r for r in find_spans(roots, "rpc")
        if r.event.get("error") == "retry_exhausted"
    ]
    assert exhausted, "outage plan should exhaust at least one rpc"
    rpc = exhausted[0]
    kids = [(c.name, c.event) for c in rpc.children]
    attempts = [e for name, e in kids if name == "rpc_attempt"]
    backoffs = [e for name, e in kids if name == "backoff"]
    # Every attempt is present with its classification, retries are
    # separated by recorded backoff sleeps, and the count matches the
    # budget the rpc span reported on close.
    assert len(attempts) == rpc.event["attempts"] >= 2
    assert all(a["ok"] is False and a["error"] == "outage" for a in attempts)
    assert len(backoffs) == len(attempts) - 1
    # The span records the breaker state the client saw when it opened
    # (still closed here: this is the rpc that trips it).
    assert rpc.event["breaker"] == "closed"
    assert rpc.event["shard"] == 0
    # The trip then shows up as fast-fail rpcs seeing an open breaker.
    fast_failed = [
        r for r in find_spans(roots, "rpc")
        if r.event.get("error") == "circuit_open"
    ]
    assert fast_failed
    assert all(r.event["breaker"] == "open" for r in fast_failed)

    # The whole story climbs to the run root: rpc -> fetch/put -> window
    # -> load_run (client-internal repairs may nest one level deeper).
    chain = [rpc.name]
    cursor = rpc
    while cursor.parent_id is not None:
        cursor = by_id[cursor.parent_id]
        chain.append(cursor.name)
    assert chain[-1] == "load_run"
    assert "window" in chain

    # And the human-readable rendering shows every attempt.
    text = format_span_tree(by_id[rpc.parent_id])
    assert "rpc_attempt" in text and "error=outage" in text


def test_breaker_trips_correlate_to_the_causing_request():
    # A long outage with a tight breaker: trips happen inside requests.
    plans = {0: FaultPlan([OutageWindow(start_s=0.1, end_s=3.0)])}
    _, events = _traced_run(fault_plans=plans)
    breaker_events = [
        e for e in events if e["kind"] == "breaker" and e["new"] == "open"
    ]
    assert breaker_events, "outage should trip shard 0's breaker"
    _, by_id = build_span_forest(events)
    correlated = [e for e in breaker_events if "span" in e]
    assert correlated
    for ev in correlated:
        assert ev["trace"] == events[0].get("trace") or ev["trace"]
        # The stamped span is a real span in the forest, and walking up
        # from it reaches the request that tripped the breaker.
        node = by_id[ev["span"]]
        names = {node.name}
        while node.parent_id is not None:
            node = by_id[node.parent_id]
            names.add(node.name)
        assert "load_run" in names


def test_traced_replay_is_deterministic():
    _, events_a = _traced_run(n=1200)
    _, events_b = _traced_run(n=1200)
    assert events_a == events_b


def test_autoscaled_run_nests_migration_drains():
    result, events = _traced_run(autoscale=True, n=6000)
    if not result.decisions:
        pytest.skip("no autoscale decision at this scale")
    roots, _ = build_span_forest(events)
    drains = find_spans(roots, "migration_drain")
    assert drains
    assert all(d.event.get("moved") is not None for d in drains)
