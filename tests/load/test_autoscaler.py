"""Unit tests for the hysteresis autoscaler (pure decision rule)."""

import pytest

from repro.load.autoscaler import Autoscaler, AutoscalerConfig
from repro.load.slo import LatencyStats, WindowStats

pytestmark = pytest.mark.load


def make_window(idx, p99_s, utilization, n_shards, n=100):
    stats = LatencyStats(
        n=n, mean_s=p99_s / 2, p50_s=p99_s / 2, p99_s=p99_s,
        p999_s=p99_s, max_s=p99_s,
    )
    return WindowStats(
        window=idx, n=n, stats=stats, attainment=1.0,
        offered_rps=utilization * 2000.0 * n_shards,
        utilization=utilization, n_shards=n_shards,
    )


CFG = AutoscalerConfig(
    min_shards=1, max_shards=8, p99_high_s=8e-3, p99_low_s=3e-3,
    util_high=0.85, util_low=0.30, breach_windows=2, cooldown_windows=3,
)


def feed(scaler, specs, start=0):
    """Feed (p99, util, n_shards) windows; returns the decisions made."""
    out = []
    for i, (p99, util, n) in enumerate(specs, start=start):
        out.append(scaler.observe(make_window(i, p99, util, n)))
    return out


# ----------------------------------------------------------------------
# hysteresis + streaks
# ----------------------------------------------------------------------
def test_single_breach_window_does_not_trigger():
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(10e-3, 0.5, 2), (1e-3, 0.1, 2)])
    assert got == [None, None]  # streak broken before breach_windows


def test_sustained_p99_breach_grows():
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(10e-3, 0.5, 2), (10e-3, 0.5, 2)])
    assert got[0] is None
    d = got[1]
    assert d is not None and d.action == "grow"
    assert d.old_n == 2 and d.new_n == 4
    assert "p99" in d.reason


def test_sustained_util_breach_grows():
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(1e-3, 0.95, 2), (1e-3, 0.95, 2)])
    assert got[1] is not None and got[1].action == "grow"
    assert "util" in got[1].reason


def test_mid_band_is_stable():
    """Between the low and high thresholds nothing ever happens."""
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(5e-3, 0.5, 4)] * 10)
    assert got == [None] * 10


def test_shrink_requires_both_signals_low():
    scaler = Autoscaler(CFG)
    # p99 low but util mid-band: no shrink.
    assert feed(scaler, [(1e-3, 0.5, 4)] * 4) == [None] * 4
    # Both low: shrink after breach_windows.
    got = feed(Autoscaler(CFG), [(1e-3, 0.1, 4)] * 2)
    d = got[1]
    assert d is not None and d.action == "shrink"
    assert d.old_n == 4 and d.new_n == 2


# ----------------------------------------------------------------------
# cooldown + clamps
# ----------------------------------------------------------------------
def test_cooldown_blocks_consecutive_decisions():
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(10e-3, 0.95, 2)] * 8)
    decisions = [d for d in got if d is not None]
    # Decision at window 1, then 3 cooldown windows (2,3,4) during which
    # the still-breaching streak keeps accumulating, so the next decision
    # fires the moment cooldown expires (window 5) — and not before.
    assert [d.window for d in decisions] == [1, 5]
    assert all(got[i] is None for i in (2, 3, 4))


def test_growth_clamped_at_max_shards():
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(10e-3, 0.95, 8)] * 4)
    assert got == [None] * 4  # already at max: no decision at all


def test_shrink_clamped_at_min_shards():
    scaler = Autoscaler(CFG)
    got = feed(scaler, [(1e-3, 0.05, 1)] * 4)
    assert got == [None] * 4


def test_growth_factor_ladder():
    cfg = AutoscalerConfig(
        min_shards=1, max_shards=10, growth_factor=1.5,
        breach_windows=1, cooldown_windows=0,
    )
    scaler = Autoscaler(cfg)
    d = scaler.observe(make_window(0, 10e-3, 0.95, 4))
    assert d.new_n == 6  # ceil(4 * 1.5)
    d = scaler.observe(make_window(1, 1e-3, 0.05, 6))
    assert d.action == "shrink" and d.new_n == 4  # 6 // 1.5


def test_migration_in_flight_blocks_but_streak_accumulates():
    scaler = Autoscaler(CFG)
    w = make_window(0, 10e-3, 0.95, 2)
    assert scaler.observe(w, migration_in_flight=True) is None
    assert scaler.observe(
        make_window(1, 10e-3, 0.95, 2), migration_in_flight=True
    ) is None
    # Migration done: the accumulated streak fires immediately.
    d = scaler.observe(make_window(2, 10e-3, 0.95, 2))
    assert d is not None and d.action == "grow"


def test_occupancy_signal_grows():
    cfg = AutoscalerConfig(
        occ_high=0.9, target_keys_per_shard=100,
        breach_windows=1, cooldown_windows=0,
    )
    scaler = Autoscaler(cfg)
    d = scaler.observe(make_window(0, 1e-3, 0.5, 2), resident_keys=200)
    assert d is not None and d.action == "grow"
    assert "occupancy" in d.reason


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_shards": 0},
        {"max_shards": 1, "min_shards": 2},
        {"p99_high_s": 0.0},
        {"p99_low_s": 9e-3},  # >= p99_high_s default
        {"util_low": 0.9},  # >= util_high default
        {"occ_high": 0.9},  # without target_keys_per_shard
        {"target_keys_per_shard": 10},  # without occ_high
        {"occ_high": 0.9, "target_keys_per_shard": 0},
        {"breach_windows": 0},
        {"cooldown_windows": -1},
        {"growth_factor": 1.0},
    ],
)
def test_config_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        AutoscalerConfig(**kwargs)


def test_decision_counters_and_dicts():
    scaler = Autoscaler(AutoscalerConfig(breach_windows=1, cooldown_windows=0))
    scaler.observe(make_window(0, 10e-3, 0.95, 2))
    scaler.observe(make_window(1, 1e-3, 0.05, 4))
    assert scaler.grows == 1 and scaler.shrinks == 1
    d = scaler.decisions[0].as_dict()
    assert d["action"] == "grow" and d["old_n"] == 2 and d["new_n"] == 4
    assert set(scaler.config.as_dict()) >= {"min_shards", "growth_factor"}
