"""BruteForceIndex tests."""

import numpy as np
import pytest

from repro.ann.brute import BruteForceIndex


@pytest.fixture
def idx():
    index = BruteForceIndex(dim=4)
    rng = np.random.default_rng(0)
    for i in range(30):
        index.add(i, rng.normal(size=4))
    return index


def test_len_contains_ids(idx):
    assert len(idx) == 30
    assert 5 in idx
    assert 99 not in idx
    assert sorted(idx.ids) == list(range(30))


def test_vector_roundtrip():
    idx = BruteForceIndex(dim=3)
    v = np.array([1.0, 2.0, 3.0])
    idx.add(7, v)
    np.testing.assert_array_equal(idx.vector(7), v)
    # Returned vector is a copy.
    idx.vector(7)[0] = 99.0
    assert idx.vector(7)[0] == 1.0


def test_add_overwrites(idx):
    idx.add(3, np.zeros(4))
    assert len(idx) == 30
    np.testing.assert_array_equal(idx.vector(3), np.zeros(4))


def test_wrong_dim_rejected():
    idx = BruteForceIndex(dim=4)
    with pytest.raises(ValueError):
        idx.add(0, np.zeros(3))


def test_bad_dim_init():
    with pytest.raises(ValueError):
        BruteForceIndex(dim=0)


def test_search_exact(idx):
    q = idx.vector(10)
    ids, dists = idx.search(q, k=1)
    assert ids[0] == 10
    # GEMM-expansion distance has ~1e-8 abs error at true zero.
    assert dists[0] == pytest.approx(0.0, abs=1e-6)


def test_search_sorted(idx):
    ids, dists = idx.search(np.zeros(4), k=10)
    assert len(ids) == 10
    assert np.all(np.diff(dists) >= 0)


def test_search_exclude(idx):
    q = idx.vector(10)
    ids, _ = idx.search(q, k=5, exclude=10)
    assert 10 not in ids


def test_search_k_exceeds_size():
    idx = BruteForceIndex(dim=2)
    idx.add(0, np.zeros(2))
    ids, dists = idx.search(np.zeros(2), k=10)
    assert len(ids) == 1


def test_search_empty_index():
    idx = BruteForceIndex(dim=2)
    ids, dists = idx.search(np.zeros(2), k=3)
    assert len(ids) == 0 and len(dists) == 0


def test_remove_swaps_last(idx):
    idx.remove(0)
    assert 0 not in idx
    assert len(idx) == 29
    # Remaining searches still work.
    ids, _ = idx.search(np.zeros(4), k=29)
    assert 0 not in ids


def test_remove_missing_raises(idx):
    with pytest.raises(KeyError):
        idx.remove(1000)


def test_neighbors_within_radius(idx):
    q = np.zeros(4)
    ids, dists = idx.neighbors_within(q, radius=1.5)
    assert np.all(dists <= 1.5)
    # Verify completeness against search.
    all_ids, all_d = idx.search(q, k=30)
    expected = set(all_ids[all_d <= 1.5].tolist())
    assert set(ids.tolist()) == expected


def test_search_batch_matches_single(idx):
    rng = np.random.default_rng(1)
    queries = rng.normal(size=(5, 4))
    bids, bd = idx.search_batch(queries, k=7)
    for qi in range(5):
        sids, sd = idx.search(queries[qi], k=7)
        np.testing.assert_array_equal(bids[qi], sids)
        np.testing.assert_allclose(bd[qi], sd, atol=1e-10)


def test_search_batch_padding():
    idx = BruteForceIndex(dim=2)
    idx.add(0, np.zeros(2))
    ids, d = idx.search_batch(np.zeros((1, 2)), k=4)
    assert ids[0, 0] == 0
    assert np.all(ids[0, 1:] == -1)
    assert np.all(np.isinf(d[0, 1:]))


def test_neighbors_within_batch_excludes_self(idx):
    queries = np.stack([idx.vector(i) for i in [0, 1, 2]])
    res = idx.neighbors_within_batch(queries, radius=10.0, exclude=np.array([0, 1, 2]))
    for qi, (ids, dists) in enumerate(res):
        assert qi not in ids
        assert np.all(np.diff(dists) >= 0)


def test_neighbors_within_batch_max_neighbors(idx):
    res = idx.neighbors_within_batch(np.zeros((1, 4)), radius=100.0, max_neighbors=5)
    assert len(res[0][0]) == 5


def test_add_batch_length_mismatch():
    idx = BruteForceIndex(dim=2)
    with pytest.raises(ValueError):
        idx.add_batch(np.array([0, 1]), np.zeros((3, 2)))


def test_capacity_growth():
    idx = BruteForceIndex(dim=2, capacity=2)
    for i in range(10):
        idx.add(i, np.full(2, float(i)))
    assert len(idx) == 10
    np.testing.assert_array_equal(idx.vector(9), [9.0, 9.0])
