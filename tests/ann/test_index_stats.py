"""Index storage-model tests (Table 2 accounting)."""

import pytest

from repro.ann.index_stats import (
    DATASET_CATALOG,
    IndexStorageModel,
    estimate_index_size_bytes,
)


def test_bytes_per_element_positive():
    m = IndexStorageModel()
    assert m.bytes_per_element() > 0


def test_size_scales_linearly():
    m = IndexStorageModel()
    assert m.index_size_bytes(2_000) == pytest.approx(2 * m.index_size_bytes(1_000))


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        IndexStorageModel().index_size_bytes(-1)


def test_compression_ratio():
    m = IndexStorageModel()
    n = 1_200_000
    raw = 138 * 1024**3
    ratio = m.compression_ratio(n, raw)
    # ImageNet-1K: paper reports ~1029x; the accounting should land within
    # the same order of magnitude.
    assert 200 <= ratio <= 5000


def test_catalog_rows_match_order_of_magnitude():
    m = IndexStorageModel()
    for name, n, raw, reported_idx in DATASET_CATALOG:
        est = m.index_size_bytes(n)
        # Estimate within 20x of the paper's reported index size.
        assert est / reported_idx < 20 and reported_idx / est < 20, name


def test_larger_M_bigger_index():
    small = IndexStorageModel(M=8).index_size_bytes(1000)
    big = IndexStorageModel(M=32).index_size_bytes(1000)
    assert big > small


def test_estimate_helper():
    assert estimate_index_size_bytes(1000) == IndexStorageModel().index_size_bytes(1000)


def test_zero_elements():
    assert IndexStorageModel().index_size_bytes(0) == 0.0
