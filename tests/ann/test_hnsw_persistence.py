"""HNSW save/load tests."""

import numpy as np
import pytest

from repro.ann.hnsw import HNSWIndex


def _build(n=120, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, dim))
    idx = HNSWIndex(dim, M=8, ef_construction=48, rng=seed)
    idx.add_batch(np.arange(n), data)
    return idx, data


def test_roundtrip_identical_search(tmp_path):
    idx, data = _build()
    path = tmp_path / "index.npz"
    idx.save(path)
    loaded = HNSWIndex.load(path, rng=1)
    assert len(loaded) == len(idx)
    assert set(loaded.ids) == set(idx.ids)
    assert loaded.max_level == idx.max_level
    rng = np.random.default_rng(2)
    for q in rng.normal(size=(10, 6)):
        a_ids, a_d = idx.search(q, k=5, ef=32)
        b_ids, b_d = loaded.search(q, k=5, ef=32)
        np.testing.assert_array_equal(a_ids, b_ids)
        np.testing.assert_allclose(a_d, b_d)


def test_roundtrip_vectors_exact(tmp_path):
    idx, data = _build(n=30)
    idx.save(tmp_path / "i.npz")
    loaded = HNSWIndex.load(tmp_path / "i.npz")
    for i in range(30):
        np.testing.assert_array_equal(loaded.vector(i), idx.vector(i))


def test_loaded_index_accepts_mutations(tmp_path):
    idx, data = _build(n=40)
    idx.save(tmp_path / "i.npz")
    loaded = HNSWIndex.load(tmp_path / "i.npz", rng=3)
    loaded.add(1000, np.ones(6))
    ids, _ = loaded.search(np.ones(6), k=1, ef=32)
    assert ids[0] == 1000
    loaded.remove(0)
    assert 0 not in loaded


def test_empty_index_roundtrip(tmp_path):
    idx = HNSWIndex(4, rng=0)
    idx.save(tmp_path / "empty.npz")
    loaded = HNSWIndex.load(tmp_path / "empty.npz")
    assert len(loaded) == 0
    ids, _ = loaded.search(np.zeros(4), k=3)
    assert len(ids) == 0


def test_params_preserved(tmp_path):
    idx = HNSWIndex(5, M=7, ef_construction=33, ef_search=21, rng=0)
    idx.add(0, np.zeros(5))
    idx.save(tmp_path / "p.npz")
    loaded = HNSWIndex.load(tmp_path / "p.npz")
    assert (loaded.dim, loaded.M, loaded.ef_search) == (5, 7, 21)
    assert loaded.ef_construction == 33
