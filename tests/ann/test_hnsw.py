"""HNSW index tests: construction, recall vs brute force, dynamic updates."""

import numpy as np
import pytest

from repro.ann.brute import BruteForceIndex
from repro.ann.hnsw import HNSWIndex


def _build(n=200, dim=8, seed=0, **kw):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, dim))
    idx = HNSWIndex(dim, rng=seed, **kw)
    for i in range(n):
        idx.add(i, data[i])
    return idx, data


def test_empty_search():
    idx = HNSWIndex(4)
    ids, d = idx.search(np.zeros(4), k=3)
    assert len(ids) == 0


def test_single_element():
    idx = HNSWIndex(3, rng=0)
    idx.add(0, np.ones(3))
    ids, d = idx.search(np.ones(3), k=1)
    assert ids[0] == 0
    assert d[0] == pytest.approx(0.0, abs=1e-12)


def test_invalid_params():
    with pytest.raises(ValueError):
        HNSWIndex(0)
    with pytest.raises(ValueError):
        HNSWIndex(4, M=1)


def test_wrong_dim_rejected():
    idx = HNSWIndex(4)
    with pytest.raises(ValueError):
        idx.add(0, np.zeros(5))


def test_len_contains_vector():
    idx, data = _build(50)
    assert len(idx) == 50
    assert 10 in idx and 99 not in idx
    np.testing.assert_allclose(idx.vector(10), data[10])


def test_self_query_returns_self():
    idx, data = _build(100)
    for i in [0, 17, 50, 99]:
        ids, d = idx.search(data[i], k=1, ef=50)
        assert ids[0] == i


def test_recall_vs_brute_force():
    """HNSW recall@10 should be high on clustered data."""
    idx, data = _build(300, dim=8, ef_construction=150, ef_search=80)
    brute = BruteForceIndex(8)
    brute.add_batch(np.arange(300), data)
    rng = np.random.default_rng(42)
    queries = rng.normal(size=(20, 8))
    recalls = []
    for q in queries:
        h_ids, _ = idx.search(q, k=10, ef=80)
        b_ids, _ = brute.search(q, k=10)
        recalls.append(len(set(h_ids) & set(b_ids)) / 10)
    assert np.mean(recalls) >= 0.85


def test_search_results_sorted():
    idx, data = _build(150)
    ids, d = idx.search(np.zeros(8), k=20)
    assert np.all(np.diff(d) >= 0)


def test_exclude_self():
    idx, data = _build(80)
    ids, _ = idx.search(data[5], k=5, exclude=5)
    assert 5 not in ids


def test_dynamic_update_changes_vector():
    idx, data = _build(60)
    new_v = np.full(8, 50.0)
    idx.update(7, new_v)
    assert len(idx) == 60
    np.testing.assert_allclose(idx.vector(7), new_v)
    # After moving far away, 7 is no longer near its old position...
    ids, _ = idx.search(data[7], k=5, ef=60)
    assert 7 not in ids
    # ...but is findable at its new one.
    ids, d = idx.search(new_v, k=1, ef=60)
    assert ids[0] == 7


def test_remove_element():
    idx, data = _build(60)
    idx.remove(3)
    assert 3 not in idx
    assert len(idx) == 59
    ids, _ = idx.search(data[3], k=10, ef=60)
    assert 3 not in ids


def test_remove_missing_raises():
    idx, _ = _build(10)
    with pytest.raises(KeyError):
        idx.remove(1000)


def test_remove_entry_point_repairs():
    idx = HNSWIndex(4, rng=0)
    for i in range(20):
        idx.add(i, np.random.default_rng(i).normal(size=4))
    # Remove whatever node is the entry (exercise repair path) by removing
    # all high-level nodes one at a time.
    for i in range(10):
        idx.remove(i)
    assert len(idx) == 10
    ids, _ = idx.search(np.zeros(4), k=5)
    assert len(ids) == 5


def test_degree_bounded():
    idx, _ = _build(300, ef_construction=100)
    for i in idx.ids:
        assert idx.degree(i, layer=0) <= idx.M0


def test_neighbors_within_filters_radius():
    idx, data = _build(150)
    ids, d = idx.neighbors_within(data[0], radius=2.0, ef=100, exclude=0)
    assert np.all(d <= 2.0)
    assert 0 not in ids


def test_graph_neighbors_accessor():
    idx, _ = _build(50)
    n = idx.graph_neighbors(0, layer=0)
    assert isinstance(n, list)
    assert all(nid in idx for nid in n)


def test_mostly_bidirectional():
    idx, _ = _build(200)
    assert idx.check_symmetric_reachability() > 0.5


def test_add_batch():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(40, 4))
    idx = HNSWIndex(4, rng=1)
    idx.add_batch(np.arange(40), data)
    assert len(idx) == 40


def test_deterministic_given_seed():
    a, _ = _build(80, seed=5)
    b, _ = _build(80, seed=5)
    q = np.zeros(8)
    np.testing.assert_array_equal(a.search(q, k=10)[0], b.search(q, k=10)[0])
