"""Property-based tests: HNSW stays consistent under random mutations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ann.brute import BruteForceIndex
from repro.ann.hnsw import HNSWIndex

DIM = 4


@st.composite
def mutation_sequences(draw):
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["add", "update", "remove"]),
            st.integers(0, 25),
            st.lists(st.floats(-5, 5, allow_nan=False, allow_infinity=False),
                     min_size=DIM, max_size=DIM),
        ),
        min_size=1, max_size=80,
    ))
    return ops


@given(ops=mutation_sequences(), seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_property_hnsw_mirrors_reference_set(ops, seed):
    """After any add/update/remove sequence, the index contains exactly the
    reference id set, every stored vector round-trips, and a self-query at
    high ef finds the stored point."""
    hnsw = HNSWIndex(DIM, M=4, ef_construction=32, rng=seed)
    reference = {}
    for op, key, vec in ops:
        v = np.asarray(vec)
        if op in ("add", "update"):
            hnsw.add(key, v)
            reference[key] = v
        else:
            if key in reference:
                hnsw.remove(key)
                del reference[key]
    assert len(hnsw) == len(reference)
    assert set(hnsw.ids) == set(reference)
    for key, v in reference.items():
        np.testing.assert_array_equal(hnsw.vector(key), v)
    # Search sanity: querying each stored vector finds *something*, and
    # with a generous beam the stored id is among the top results unless
    # duplicates share the position.
    for key, v in list(reference.items())[:5]:
        ids, dists = hnsw.search(v, k=min(5, len(reference)), ef=64)
        assert len(ids) >= 1
        dup = [k for k, u in reference.items() if np.array_equal(u, v)]
        assert any(i in dup for i in ids)


@given(
    n=st.integers(10, 60),
    seed=st.integers(0, 50),
)
@settings(max_examples=25, deadline=None)
def test_property_hnsw_top1_matches_brute_on_clusters(n, seed):
    """On well-separated clusters, HNSW top-1 agrees with exact search."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 10, (3, DIM))
    data = centers[rng.integers(3, size=n)] + rng.normal(0, 0.3, (n, DIM))
    hnsw = HNSWIndex(DIM, M=8, ef_construction=64, rng=seed)
    brute = BruteForceIndex(DIM)
    hnsw.add_batch(np.arange(n), data)
    brute.add_batch(np.arange(n), data)
    for q in rng.normal(0, 10, (5, DIM)):
        h_ids, h_d = hnsw.search(q, k=1, ef=64)
        b_ids, b_d = brute.search(q, k=1)
        # Equal distance is enough (ties possible).
        assert h_d[0] <= b_d[0] + 1e-6
