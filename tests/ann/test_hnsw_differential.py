"""Differential HNSW tests: vs brute force, across reorder, batch vs single.

These pin the tentpole's behavioral contracts:

* ``search(..., exclude=)`` returns exactly ``k`` results whenever ``k+1``
  elements are indexed (the widened-beam regression fix).
* Recall vs the exact backend stays high through dynamic update/remove
  churn (the re-link path keeps the graph navigable).
* :meth:`HNSWIndex.reorder` (both strategies) changes storage rows only:
  search results are bit-identical before and after.
* ``search_batch`` / ``neighbors_within_batch`` (the lockstep path) return
  the same ids as per-query ``search`` calls, with distances equal up to
  the fused kernel's floating-point summation order.
* ``validate_invariants`` holds after arbitrary mutation sequences.
* PQ-mode search stays close to exact-mode on easy data.
"""

import numpy as np
import pytest

from repro.ann.brute import BruteForceIndex
from repro.ann.hnsw import HNSWIndex
from repro.ann.pq import ProductQuantizer

DIM = 16


def _clustered(n, rng, dim=DIM, centers=6):
    c = rng.normal(0.0, 4.0, (centers, dim))
    return c[rng.integers(centers, size=n)] + rng.normal(0.0, 1.0, (n, dim))


@pytest.fixture
def built():
    rng = np.random.default_rng(7)
    data = _clustered(400, rng)
    idx = HNSWIndex(DIM, M=8, ef_construction=64, ef_search=32, rng=0,
                    capacity=400)
    idx.add_batch(np.arange(400), data)
    brute = BruteForceIndex(DIM, capacity=400)
    brute.add_batch(np.arange(400), data)
    return idx, brute, data, rng


def test_exclude_returns_exactly_k(built):
    """With k+1 elements indexed, exclusion must not under-fill the k
    results — even at the tightest beam (ef == k)."""
    idx, _, data, _ = built
    for qi in (0, 17, 203):
        for k in (1, 5, 10):
            ids, dists = idx.search(data[qi], k=k, ef=k, exclude=qi)
            assert len(ids) == k
            assert qi not in ids
            assert np.all(np.diff(dists) >= 0)


def test_exclude_minimal_index():
    """k+1 indexed, exclude one: exactly k must come back."""
    idx = HNSWIndex(DIM, M=4, ef_construction=16, rng=0)
    rng = np.random.default_rng(1)
    vecs = rng.normal(size=(4, DIM))
    idx.add_batch(np.arange(4), vecs)
    ids, _ = idx.search(vecs[0], k=3, ef=3, exclude=0)
    assert len(ids) == 3
    assert 0 not in ids


def test_recall_after_update_remove_churn(built):
    """Dynamic churn (drift updates + removals) keeps recall high."""
    idx, brute, data, rng = built
    # Drift a third of the vectors, remove some, add replacements.
    for i in rng.choice(400, size=130, replace=False):
        moved = data[i] + rng.normal(0.0, 0.5, DIM)
        idx.update(int(i), moved)
        brute.add(int(i), moved)
        data[i] = moved
    removed = rng.choice(400, size=40, replace=False)
    for i in removed:
        idx.remove(int(i))
        brute.remove(int(i))
    idx.validate_invariants()
    queries = _clustered(50, rng)
    hits = total = 0
    for q in queries:
        h_ids, _ = idx.search(q, k=10, ef=80)
        b_ids, _ = brute.search(q, k=10)
        hits += len(set(h_ids) & set(b_ids))
        total += 10
    assert hits / total >= 0.9


@pytest.mark.parametrize("strategy", ["bfs", "degree"])
def test_reorder_preserves_results_bitwise(built, strategy):
    """Row relabeling must not change any search output: all traversal
    ordering keys on (distance, external id), never on the row."""
    idx, _, data, rng = built
    # Mutation history first so the free list is non-trivial.
    for i in range(20):
        idx.remove(i)
    queries = _clustered(30, rng)
    before = [idx.search(q, k=8, ef=40) for q in queries]
    order = idx.reorder(strategy=strategy)
    idx.validate_invariants()
    assert len(order) == len(idx)
    after = [idx.search(q, k=8, ef=40) for q in queries]
    for (ib, db), (ia, da) in zip(before, after):
        np.testing.assert_array_equal(ib, ia)
        np.testing.assert_array_equal(db, da)


def test_reorder_then_mutate_stays_consistent(built):
    idx, _, data, rng = built
    idx.reorder(strategy="bfs")
    for i in range(10):
        idx.update(i, data[i] + 0.1)
    idx.remove(11)
    idx.validate_invariants()
    ids, _ = idx.search(data[0], k=5)
    assert len(ids) == 5


def test_search_batch_matches_single(built):
    """The lockstep batched beam returns per-query search's results (ids
    exactly; distances up to kernel summation order)."""
    idx, _, data, rng = built
    queries = _clustered(40, rng)
    bi, bd = idx.search_batch(queries, k=7)
    assert bi.shape == (40, 7) and bd.shape == (40, 7)
    for qi in range(40):
        si, sd = idx.search(queries[qi], k=7)
        np.testing.assert_array_equal(bi[qi, : len(si)], si)
        np.testing.assert_allclose(bd[qi, : len(sd)], sd, rtol=1e-12, atol=1e-6)


def test_search_batch_exclude_matches_single(built):
    """Per-query exclusion (mixed with -1 = none) keeps bit-parity: the
    beam widening applies only to rows that actually exclude."""
    idx, _, data, rng = built
    queries = data[:30]
    exclude = np.where(np.arange(30) % 2 == 0, np.arange(30), -1)
    bi, bd = idx.search_batch(queries, k=6, exclude=exclude)
    for qi in range(30):
        excl = int(exclude[qi]) if exclude[qi] >= 0 else None
        si, sd = idx.search(queries[qi], k=6, exclude=excl)
        np.testing.assert_array_equal(bi[qi, : len(si)], si)
        np.testing.assert_allclose(bd[qi, : len(sd)], sd, rtol=1e-12, atol=1e-6)
        if excl is not None:
            assert excl not in bi[qi]


def test_search_batch_padding_contract():
    """Fewer elements than k: rows pad with -1 ids and inf distances,
    matching the brute-force backend's contract."""
    idx = HNSWIndex(DIM, M=4, ef_construction=16, rng=0)
    rng = np.random.default_rng(3)
    vecs = rng.normal(size=(3, DIM))
    idx.add_batch(np.arange(3), vecs)
    ids, dists = idx.search_batch(vecs, k=5)
    assert ids.shape == (3, 5)
    assert np.all(ids[:, 3:] == -1)
    assert np.all(np.isinf(dists[:, 3:]))


def test_neighbors_within_batch_matches_single(built):
    idx, _, data, rng = built
    queries = data[:25]
    exclude = np.arange(25)
    radius = 3.0
    batched = idx.neighbors_within_batch(
        queries, radius, exclude=exclude, max_neighbors=64
    )
    for qi, (ids, dists) in enumerate(batched):
        s_ids, s_dists = idx.neighbors_within(
            queries[qi], radius, exclude=int(exclude[qi]), max_neighbors=64
        )
        np.testing.assert_array_equal(ids, s_ids)
        np.testing.assert_allclose(dists, s_dists, rtol=1e-12, atol=1e-6)
        assert exclude[qi] not in ids
        assert np.all(dists <= radius)


def test_invariants_after_mutation_storm():
    rng = np.random.default_rng(11)
    idx = HNSWIndex(DIM, M=4, ef_construction=24, rng=2, capacity=8)
    live = set()
    for step in range(300):
        op = rng.integers(3)
        key = int(rng.integers(60))
        if op == 2 and key in live:
            idx.remove(key)
            live.discard(key)
        else:
            idx.add(key, rng.normal(size=DIM))
            live.add(key)
    idx.validate_invariants()
    assert set(idx.ids) == live
    if live:
        k = min(5, len(live))
        ids, _ = idx.search(rng.normal(size=DIM), k=k, ef=32)
        assert len(ids) == k


def test_pq_mode_close_to_exact(built):
    idx, _, data, rng = built
    pq = ProductQuantizer(dim=DIM, m=4, nbits=8)
    pq.train(data, rng=5)
    idx.attach_pq(pq)
    assert idx.pq_enabled
    queries = _clustered(20, rng)
    overlaps = []
    for q in queries:
        e_ids, _ = idx.search(q, k=10, ef=60, mode="exact")
        p_ids, p_d = idx.search(q, k=10, ef=60, mode="pq")
        assert len(p_ids) == 10
        # Re-ranked distances are exact, hence sorted and non-negative.
        assert np.all(np.diff(p_d) >= 0) and np.all(p_d >= 0)
        overlaps.append(len(set(e_ids) & set(p_ids)) / 10)
    assert float(np.mean(overlaps)) >= 0.5
    idx.detach_pq()
    assert not idx.pq_enabled
