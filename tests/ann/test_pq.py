"""Product Quantization tests."""

import numpy as np
import pytest

from repro.ann.pq import ProductQuantizer


@pytest.fixture
def trained_pq():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(500, 16))
    pq = ProductQuantizer(dim=16, m=4, nbits=4)
    pq.train(data, rng=1)
    return pq, data


def test_invalid_params():
    with pytest.raises(ValueError):
        ProductQuantizer(dim=10, m=3)  # not divisible
    with pytest.raises(ValueError):
        ProductQuantizer(dim=8, m=4, nbits=9)
    with pytest.raises(ValueError):
        ProductQuantizer(dim=8, m=4, nbits=0)


def test_untrained_raises():
    pq = ProductQuantizer(dim=8, m=2)
    with pytest.raises(RuntimeError):
        pq.encode(np.zeros((1, 8)))
    assert not pq.is_trained


def test_code_shape_and_dtype(trained_pq):
    pq, data = trained_pq
    codes = pq.encode(data[:10])
    assert codes.shape == (10, 4)
    assert codes.dtype == np.uint8
    assert codes.max() < pq.ksub


def test_code_size_bytes():
    assert ProductQuantizer(dim=32, m=8).code_size_bytes == 8


def test_decode_approximates(trained_pq):
    pq, data = trained_pq
    recon = pq.decode(pq.encode(data))
    err = np.linalg.norm(data - recon, axis=1).mean()
    scale = np.linalg.norm(data, axis=1).mean()
    assert err < scale  # reconstruction is meaningfully better than zero


def test_quantization_error_positive(trained_pq):
    pq, data = trained_pq
    assert pq.quantization_error(data) > 0


def test_more_bits_less_error():
    rng = np.random.default_rng(2)
    data = rng.normal(size=(400, 8))
    errs = []
    for nbits in [2, 4, 6]:
        pq = ProductQuantizer(dim=8, m=2, nbits=nbits)
        pq.train(data, rng=3)
        errs.append(pq.quantization_error(data))
    assert errs[0] > errs[1] > errs[2]


def test_adc_distance_close_to_true(trained_pq):
    pq, data = trained_pq
    codes = pq.encode(data)
    q = data[0]
    adc = pq.adc_distances(q, codes)
    true = np.linalg.norm(data - q, axis=1)
    # ADC approximates the true distance to within quantization error scale.
    assert np.abs(adc - true).mean() < pq.quantization_error(data) * 2 + 1e-9
    # Nearest by ADC should be the query itself.
    assert adc.argmin() == 0


def test_adc_wrong_dim(trained_pq):
    pq, data = trained_pq
    with pytest.raises(ValueError):
        pq.adc_distances(np.zeros(7), pq.encode(data[:2]))


def test_encode_wrong_dim(trained_pq):
    pq, _ = trained_pq
    with pytest.raises(ValueError):
        pq.encode(np.zeros((2, 7)))


def test_decode_wrong_codewidth(trained_pq):
    pq, _ = trained_pq
    with pytest.raises(ValueError):
        pq.decode(np.zeros((2, 3), dtype=np.uint8))


def test_train_fewer_points_than_centroids():
    pq = ProductQuantizer(dim=4, m=2, nbits=8)  # 256 centroids, 10 points
    data = np.random.default_rng(0).normal(size=(10, 4))
    pq.train(data, rng=1)
    codes = pq.encode(data)
    recon = pq.decode(codes)
    assert recon.shape == data.shape


def test_identical_data_zero_error():
    data = np.tile(np.arange(8.0), (50, 1))
    pq = ProductQuantizer(dim=8, m=4, nbits=2)
    pq.train(data, rng=0)
    assert pq.quantization_error(data) == pytest.approx(0.0, abs=1e-9)


def test_kmeans_reseeds_empty_clusters_distinctly():
    """Two clusters seeded on the same far-away point both go empty on the
    first assignment; the re-seed path must give them *distinct* centroids
    (distances recomputed per seed, chosen points knocked out) instead of
    landing both on the same stale-farthest sample."""
    from repro.ann.pq import _kmeans

    rng = np.random.default_rng(0)
    data = rng.normal(0.0, 0.1, size=(40, 2))  # tight blob near the origin
    far = np.array([[100.0, 100.0], [100.0, 100.0], [0.0, 0.0]])
    centroids = _kmeans(data, k=3, rng=rng, iters=5, init=far)
    assert centroids.shape == (3, 2)
    # All three centroids pairwise distinct ...
    for a in range(3):
        for b in range(a + 1, 3):
            assert not np.allclose(centroids[a], centroids[b])
    # ... and all pulled into the data's bounding box (no orphaned seeds).
    lo, hi = data.min(axis=0), data.max(axis=0)
    assert np.all(centroids >= lo - 1e-9) and np.all(centroids <= hi + 1e-9)


def test_kmeans_init_shape_mismatch():
    from repro.ann.pq import _kmeans

    data = np.random.default_rng(1).normal(size=(10, 4))
    with pytest.raises(ValueError):
        _kmeans(data, k=3, rng=np.random.default_rng(0),
                init=np.zeros((2, 4)))
