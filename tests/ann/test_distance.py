"""Distance-kernel tests, including property checks against naive loops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ann.distance import (
    cosine_distance_matrix,
    l2_distance_matrix,
    l2_distances,
    pairwise_l2,
)


def _naive_l2(a, b):
    return np.sqrt(((a[:, None, :] - b[None, :, :]) ** 2).sum(-1))


def test_l2_distances_matches_naive():
    rng = np.random.default_rng(0)
    q = rng.normal(size=8)
    pts = rng.normal(size=(20, 8))
    expected = np.linalg.norm(pts - q, axis=1)
    np.testing.assert_allclose(l2_distances(q, pts), expected, rtol=1e-10)


def test_l2_distances_dimension_mismatch():
    with pytest.raises(ValueError):
        l2_distances(np.zeros(3), np.zeros((5, 4)))


def test_l2_distance_matrix_matches_naive():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(6, 5))
    b = rng.normal(size=(9, 5))
    np.testing.assert_allclose(l2_distance_matrix(a, b), _naive_l2(a, b), rtol=1e-9)


def test_l2_distance_matrix_mismatch_raises():
    with pytest.raises(ValueError):
        l2_distance_matrix(np.zeros((2, 3)), np.zeros((2, 4)))


def test_pairwise_zero_diagonal():
    rng = np.random.default_rng(2)
    pts = rng.normal(size=(12, 4))
    d = pairwise_l2(pts)
    assert np.all(np.diag(d) == 0.0)
    np.testing.assert_allclose(d, d.T, atol=1e-12)


def test_identical_points_zero_distance():
    p = np.ones((3, 4))
    assert np.allclose(pairwise_l2(p), 0.0)


def test_cosine_identity_and_orthogonal():
    a = np.array([[1.0, 0.0], [0.0, 1.0]])
    d = cosine_distance_matrix(a, a)
    np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-12)
    np.testing.assert_allclose(d[0, 1], 1.0, atol=1e-12)


def test_cosine_opposite_vectors():
    a = np.array([[1.0, 0.0]])
    b = np.array([[-1.0, 0.0]])
    np.testing.assert_allclose(cosine_distance_matrix(a, b), [[2.0]], atol=1e-12)


def test_cosine_zero_vector_max_distance():
    a = np.zeros((1, 3))
    b = np.ones((1, 3))
    assert cosine_distance_matrix(a, b)[0, 0] == 1.0


def test_1d_inputs_accepted():
    d = l2_distance_matrix(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
    np.testing.assert_allclose(d, [[np.sqrt(2)]])


def test_3d_input_rejected():
    with pytest.raises(ValueError):
        l2_distances(np.zeros(2), np.zeros((2, 2, 2)))


@given(
    arrays(np.float64, (5, 4), elements=st.floats(-100, 100)),
    arrays(np.float64, (7, 4), elements=st.floats(-100, 100)),
)
@settings(max_examples=50)
def test_property_nonneg_and_triangle_free(a, b):
    """Distances are non-negative and symmetric-consistent."""
    d = l2_distance_matrix(a, b)
    assert np.all(d >= 0)
    # The GEMM expansion loses ~1e-8 of absolute precision at large norms.
    np.testing.assert_allclose(d, _naive_l2(a, b), atol=1e-4)


@given(arrays(np.float64, (6, 3), elements=st.floats(-50, 50)))
@settings(max_examples=50)
def test_property_pairwise_triangle_inequality(pts):
    d = pairwise_l2(pts)
    n = len(pts)
    # The GEMM expansion loses ~1e-7 of absolute precision at these
    # magnitudes, so the slack must sit above it (same idiom as above).
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert d[i, j] <= d[i, k] + d[k, j] + 1e-5
