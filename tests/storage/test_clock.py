"""SimClock tests."""

import pytest

from repro.storage.clock import SimClock


def test_advance_and_totals():
    c = SimClock()
    c.advance("load", 1.5)
    c.advance("compute", 0.5)
    c.advance("load", 0.5)
    assert c.stage_seconds("load") == 2.0
    assert c.total_seconds == 2.5


def test_unknown_stage_zero():
    assert SimClock().stage_seconds("nope") == 0.0


def test_negative_rejected():
    with pytest.raises(ValueError):
        SimClock().advance("x", -1.0)


def test_fractions():
    c = SimClock()
    c.advance("a", 3.0)
    c.advance("b", 1.0)
    f = c.fractions()
    assert f["a"] == pytest.approx(0.75)
    assert f["b"] == pytest.approx(0.25)


def test_fractions_empty():
    assert SimClock().fractions() == {}


def test_reset():
    c = SimClock()
    c.advance("a", 1.0)
    c.reset()
    assert c.total_seconds == 0.0


def test_merge():
    a, b = SimClock(), SimClock()
    a.advance("x", 1.0)
    b.advance("x", 2.0)
    b.advance("y", 3.0)
    a.merge(b)
    assert a.stage_seconds("x") == 3.0
    assert a.stage_seconds("y") == 3.0


def test_breakdown_is_copy():
    c = SimClock()
    c.advance("a", 1.0)
    d = c.breakdown()
    d["a"] = 99.0
    assert c.stage_seconds("a") == 1.0
