"""Per-item size support in RemoteStore."""

import numpy as np
import pytest

from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency


def _store(sizes=None):
    return RemoteStore(
        np.arange(10.0)[:, None],
        item_nbytes=1000,
        latency=ConstantLatency(base_s=0.0, bandwidth_bps=1e3),  # 1B = 1ms
        clock=SimClock(),
        item_sizes=sizes,
    )


def test_uniform_size_default():
    s = _store()
    assert s.size_of(0) == 1000
    s.get(0)
    assert s.bytes_fetched == 1000
    assert s.clock.total_seconds == pytest.approx(1.0)


def test_per_item_sizes_drive_latency():
    sizes = np.arange(10) * 100  # 0, 100, ... 900 bytes
    s = _store(sizes)
    assert s.size_of(3) == 300
    s.get(3)
    assert s.bytes_fetched == 300
    assert s.clock.total_seconds == pytest.approx(0.3)
    s.get(9)
    assert s.bytes_fetched == 1200


def test_item_sizes_validation():
    with pytest.raises(ValueError):
        _store(np.ones(5))  # wrong length
    with pytest.raises(ValueError):
        _store(-np.ones(10))


def test_heterogeneous_training_run():
    """End to end: a store with 10x size spread still trains normally and
    bytes_fetched reflects the skew."""
    from repro.baselines.coordl import CoorDLPolicy
    from repro.data.synthetic import make_clustered_dataset, train_test_split
    from repro.nn.models import build_model
    from repro.train.trainer import Trainer, TrainerConfig

    ds = make_clustered_dataset(200, n_classes=4, dim=8, rng=0)
    train, test = train_test_split(ds, rng=1)
    rng = np.random.default_rng(2)
    sizes = rng.integers(10 * 1024, 110 * 1024, len(train))
    model = build_model("resnet18", train.dim, train.num_classes, rng=3)
    trainer = Trainer(model, train, test, CoorDLPolicy(cache_fraction=0.3, rng=4),
                      TrainerConfig(epochs=2, batch_size=64))
    trainer.store.item_sizes = sizes
    res = trainer.run()
    assert res.final_accuracy > 0.4
    assert trainer.store.bytes_fetched > 0
