"""Failure-injection tests."""

import numpy as np
import pytest

from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.flaky import FlakyStore, RetryingStore, TransientFetchError
from repro.storage.latency import ConstantLatency


def _store(n=50):
    return RemoteStore(
        np.arange(float(n))[:, None], item_nbytes=1024,
        latency=ConstantLatency(base_s=1e-3), clock=SimClock(),
    )


def test_flaky_injects_failures():
    flaky = FlakyStore(_store(), failure_prob=0.5, rng=0)
    failures = 0
    for i in range(50):
        try:
            flaky.get(i % 50)
        except TransientFetchError:
            failures += 1
    assert failures == flaky.failures_injected
    assert 10 < failures < 40  # ~50% of 50


def test_flaky_zero_prob_transparent():
    flaky = FlakyStore(_store(), failure_prob=0.0, rng=0)
    np.testing.assert_array_equal(flaky.get(3), [3.0])
    assert flaky.failures_injected == 0


def test_flaky_invalid_prob():
    with pytest.raises(ValueError):
        FlakyStore(_store(), failure_prob=1.0)


def test_flaky_peek_never_fails():
    flaky = FlakyStore(_store(), failure_prob=0.99, rng=0)
    for _ in range(20):
        np.testing.assert_array_equal(flaky.peek(1), [1.0])
    assert flaky.failures_injected == 0


def test_retrying_masks_failures():
    flaky = FlakyStore(_store(), failure_prob=0.4, rng=1)
    retry = RetryingStore(flaky, max_retries=10, backoff_s=1e-3)
    for i in range(50):
        np.testing.assert_array_equal(retry.get(i), [float(i)])
    assert retry.retries_used == flaky.failures_injected


def test_retrying_charges_backoff_to_clock():
    flaky = FlakyStore(_store(), failure_prob=0.5, rng=2)
    retry = RetryingStore(flaky, max_retries=10, backoff_s=0.5)
    baseline_clock = _store()
    for i in range(30):
        retry.get(i)
        baseline_clock.get(i)
    # Retried fetches cost extra simulated time.
    assert retry.clock.total_seconds > baseline_clock.clock.total_seconds


def test_retrying_gives_up_after_max():
    class AlwaysFail:
        clock = SimClock()
        fetch_count = 0

        def __len__(self):
            return 1

        def get(self, index):
            raise TransientFetchError("nope")

    retry = RetryingStore(AlwaysFail(), max_retries=2, backoff_s=0.0)
    with pytest.raises(TransientFetchError):
        retry.get(0)
    assert retry.retries_used == 2


def test_retrying_invalid_params():
    with pytest.raises(ValueError):
        RetryingStore(_store(), max_retries=-1)
    with pytest.raises(ValueError):
        RetryingStore(_store(), backoff_s=-1.0)


def test_training_through_flaky_store_identical_results():
    """End to end: a retried flaky store changes only simulated time, not
    the learning outcome."""
    from repro.baselines.coordl import CoorDLPolicy
    from repro.data.synthetic import make_clustered_dataset, train_test_split
    from repro.nn.models import build_model
    from repro.train.trainer import Trainer, TrainerConfig

    ds = make_clustered_dataset(300, n_classes=4, dim=8, rng=0)
    train, test = train_test_split(ds, rng=1)

    def run(flaky: bool):
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        trainer = Trainer(model, train, test,
                          CoorDLPolicy(cache_fraction=0.3, rng=3),
                          TrainerConfig(epochs=4, batch_size=64))
        if flaky:
            trainer.store = RetryingStore(
                FlakyStore(trainer.store, failure_prob=0.2, rng=4),
                max_retries=10, backoff_s=1e-3,
            )
            # Rebind the policy's store reference.
            trainer.policy.ctx.store = trainer.store
        return trainer.run()

    clean = run(False)
    flaky = run(True)
    assert flaky.final_accuracy == clean.final_accuracy
    np.testing.assert_allclose(
        flaky.series("val_accuracy"), clean.series("val_accuracy")
    )
    assert flaky.total_time_s > clean.total_time_s
