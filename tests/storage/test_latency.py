"""Latency model tests."""

import numpy as np
import pytest

from repro.storage.latency import ConstantLatency, LognormalLatency, ParetoTailLatency


def test_constant_formula():
    lat = ConstantLatency(base_s=1e-3, bandwidth_bps=1e6)
    assert lat.sample(1000) == pytest.approx(1e-3 + 1e-3)
    assert lat.mean(1000) == lat.sample(1000)


def test_constant_monotone_in_size():
    lat = ConstantLatency()
    assert lat.sample(10**6) > lat.sample(10**3)


def test_constant_invalid():
    with pytest.raises(ValueError):
        ConstantLatency(base_s=-1)
    with pytest.raises(ValueError):
        ConstantLatency(bandwidth_bps=0)


def test_lognormal_mean_preserved():
    lat = LognormalLatency(base_s=1e-3, bandwidth_bps=1e9, sigma=0.5, rng=0)
    samples = np.array([lat.sample(1024) for _ in range(5000)])
    assert samples.mean() == pytest.approx(lat.mean(1024), rel=0.05)
    assert np.all(samples > 0)


def test_lognormal_sigma_zero_deterministic():
    lat = LognormalLatency(sigma=0.0, rng=0)
    assert lat.sample(1024) == lat.sample(1024)


def test_lognormal_invalid_sigma():
    with pytest.raises(ValueError):
        LognormalLatency(sigma=-0.1)


def test_pareto_tail_spikes():
    lat = ParetoTailLatency(spike_prob=1.0, spike_scale_s=1.0, alpha=2.0, rng=0)
    base = ConstantLatency().sample(1024)
    s = lat.sample(1024)
    assert s > base + 0.5  # spike always fires


def test_pareto_no_spikes():
    lat = ParetoTailLatency(spike_prob=0.0, rng=0)
    assert lat.sample(1024) == pytest.approx(ConstantLatency().sample(1024))


def test_pareto_mean_includes_tail():
    lat = ParetoTailLatency(spike_prob=0.01, spike_scale_s=5e-3, alpha=2.0, rng=1)
    det = ConstantLatency().sample(1024)
    assert lat.mean(1024) > det


def test_pareto_invalid():
    with pytest.raises(ValueError):
        ParetoTailLatency(spike_prob=1.5)
    with pytest.raises(ValueError):
        ParetoTailLatency(alpha=1.0)


def test_pareto_empirical_mean():
    lat = ParetoTailLatency(spike_prob=0.5, spike_scale_s=1e-3, alpha=3.0, rng=2)
    samples = np.array([lat.sample(1024) for _ in range(20000)])
    assert samples.mean() == pytest.approx(lat.mean(1024), rel=0.1)
