"""Storage backend tests."""

import numpy as np
import pytest

from repro.storage.backends import InMemoryStore, RemoteStore
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency


@pytest.fixture
def store():
    payloads = np.arange(20.0)[:, None]
    return RemoteStore(
        payloads, item_nbytes=1024,
        latency=ConstantLatency(base_s=1e-3, bandwidth_bps=1e6),
        clock=SimClock(),
    )


def test_get_returns_payload(store):
    np.testing.assert_array_equal(store.get(5), [5.0])


def test_get_charges_clock(store):
    store.get(0)
    expected = 1e-3 + 1024 / 1e6
    assert store.clock.stage_seconds("data_load") == pytest.approx(expected)
    store.get(1)
    assert store.clock.stage_seconds("data_load") == pytest.approx(2 * expected)


def test_counters(store):
    store.get(0)
    store.get(1)
    assert store.fetch_count == 2
    assert store.bytes_fetched == 2048
    store.reset_counters()
    assert store.fetch_count == 0


def test_out_of_range(store):
    with pytest.raises(IndexError):
        store.get(100)
    with pytest.raises(IndexError):
        store.get(-1)


def test_peek_free(store):
    np.testing.assert_array_equal(store.peek(3), [3.0])
    assert store.clock.total_seconds == 0.0
    assert store.fetch_count == 0


def test_len(store):
    assert len(store) == 20


def test_in_memory_store_no_latency():
    s = InMemoryStore(np.arange(5.0)[:, None])
    np.testing.assert_array_equal(s.get(2), [2.0])
    assert s.clock.total_seconds == 0.0
    assert s.fetch_count == 1
    with pytest.raises(IndexError):
        s.get(10)


def test_default_clock_created():
    s = RemoteStore(np.zeros((3, 1)))
    s.get(0)
    assert s.clock.total_seconds > 0
