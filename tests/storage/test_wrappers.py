"""Store-wrapper interface tests: full forwarding through arbitrary stacks."""

import numpy as np
import pytest

from repro.storage.backends import RemoteStore
from repro.storage.clock import SimClock
from repro.storage.flaky import FlakyStore, RetryingStore
from repro.storage.latency import ConstantLatency
from repro.storage.wrappers import StoreWrapper


def _store(n=50):
    return RemoteStore(
        np.arange(float(n))[:, None], item_nbytes=1024,
        latency=ConstantLatency(base_s=1e-3), clock=SimClock(),
    )


def test_wrapper_forwards_core_interface():
    base = _store()
    w = StoreWrapper(base)
    assert len(w) == len(base)
    assert w.clock is base.clock
    assert w.size_of(3) == base.size_of(3)
    np.testing.assert_array_equal(w.get(7), base.peek(7))
    np.testing.assert_array_equal(w.peek(7), base.peek(7))


def test_counters_visible_through_stack():
    base = _store()
    flaky = FlakyStore(base, failure_prob=0.3, rng=0)
    retry = RetryingStore(flaky, max_retries=8)
    for i in range(10):
        retry.get(i)
    # Inner-wrapper counters surface through the outer wrapper.
    assert retry.failures_injected == flaky.failures_injected > 0
    assert retry.retries_used == flaky.failures_injected
    # Base-store counters surface through both wrappers.
    assert retry.fetch_count == base.fetch_count == 10
    assert retry.bytes_fetched == base.bytes_fetched == 10 * 1024


def test_reset_counters_cascades():
    base = _store()
    flaky = FlakyStore(base, failure_prob=0.5, rng=1)
    retry = RetryingStore(flaky, max_retries=6)
    for i in range(5):
        retry.get(i)
    retry.reset_counters()
    assert retry.retries_used == 0
    assert flaky.failures_injected == 0
    assert base.fetch_count == 0
    assert base.bytes_fetched == 0


def test_unwrap_returns_base_store():
    base = _store()
    stacked = RetryingStore(FlakyStore(base, failure_prob=0.0), max_retries=2)
    assert stacked.unwrap() is base


def test_unknown_attribute_raises():
    w = StoreWrapper(_store())
    with pytest.raises(AttributeError):
        w.no_such_attribute


def test_size_of_forwards_and_len():
    base = _store(17)
    w = RetryingStore(FlakyStore(base, failure_prob=0.0), max_retries=2)
    assert len(w) == 17
    assert w.size_of(0) == base.size_of(0)
