"""KV store and byte-LRU tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.clock import SimClock
from repro.storage.kvstore import ByteLRUCache, CapacityError, InMemoryKVStore


# ----------------------------------------------------------------------
# InMemoryKVStore
# ----------------------------------------------------------------------
def test_kv_set_get_roundtrip():
    kv = InMemoryKVStore(capacity_bytes=1024)
    kv.set("a", np.ones(4))
    np.testing.assert_array_equal(kv.get("a"), np.ones(4))
    assert kv.get("missing") is None
    assert kv.stats.hits == 1 and kv.stats.misses == 1


def test_kv_memory_accounting():
    kv = InMemoryKVStore(capacity_bytes=1024)
    kv.set("a", np.ones(16))  # 128 bytes float64
    assert kv.memory_used == 128
    kv.set("a", np.ones(8))  # overwrite shrinks
    assert kv.memory_used == 64
    kv.delete("a")
    assert kv.memory_used == 0
    assert not kv.delete("a")


def test_kv_lru_eviction():
    kv = InMemoryKVStore(capacity_bytes=256, eviction="allkeys-lru")
    kv.set("a", np.ones(16))  # 128
    kv.set("b", np.ones(16))  # 128 -> full
    kv.get("a")  # refresh a
    kv.set("c", np.ones(16))  # evicts b
    assert "a" in kv and "c" in kv and "b" not in kv
    assert kv.memory_used == 256
    assert kv.stats.evictions == 1


def test_kv_noeviction_raises():
    kv = InMemoryKVStore(capacity_bytes=128, eviction="noeviction")
    kv.set("a", np.ones(16))
    with pytest.raises(CapacityError):
        kv.set("b", np.ones(16))
    assert "a" in kv


def test_kv_oversize_value_rejected():
    kv = InMemoryKVStore(capacity_bytes=64)
    with pytest.raises(CapacityError):
        kv.set("big", np.ones(100))


def test_kv_unlimited_capacity():
    kv = InMemoryKVStore(capacity_bytes=0)
    for i in range(100):
        kv.set(i, np.ones(100))
    assert len(kv) == 100


def test_kv_latency_charged():
    clock = SimClock()
    kv = InMemoryKVStore(capacity_bytes=0, op_latency_s=1e-3,
                         bandwidth_bps=1e6, clock=clock)
    kv.set("a", np.ones(125))  # 1000 bytes -> 1ms transfer
    assert clock.stage_seconds("cache_op") == pytest.approx(2e-3)
    kv.get("a")
    assert clock.stage_seconds("cache_op") == pytest.approx(4e-3)


def test_kv_explicit_nbytes():
    kv = InMemoryKVStore(capacity_bytes=1000)
    kv.set("a", "metadata", nbytes=500)
    assert kv.memory_used == 500


def test_kv_string_and_bytes_sizes():
    kv = InMemoryKVStore()
    kv.set("s", "hello")  # 5 bytes
    kv.set("b", b"\x00" * 7)
    assert kv.memory_used == 12


def test_kv_invalid_params():
    with pytest.raises(ValueError):
        InMemoryKVStore(capacity_bytes=-1)
    with pytest.raises(ValueError):
        InMemoryKVStore(eviction="volatile-ttl")
    with pytest.raises(ValueError):
        InMemoryKVStore(bandwidth_bps=0)


def test_kv_flush():
    kv = InMemoryKVStore()
    kv.set("a", np.ones(4))
    kv.flush()
    assert len(kv) == 0 and kv.memory_used == 0


# ----------------------------------------------------------------------
# ByteLRUCache
# ----------------------------------------------------------------------
def test_byte_lru_heterogeneous_sizes():
    c = ByteLRUCache(capacity_bytes=300)
    c.put("small", np.ones(4))   # 32 B
    c.put("large", np.ones(32))  # 256 B
    assert c.bytes_used == 288
    c.put("mid", np.ones(16))    # 128 B -> must evict
    assert c.bytes_used <= 300


def test_byte_lru_evicts_lru_first():
    c = ByteLRUCache(capacity_bytes=256)
    c.put("a", np.ones(16))
    c.put("b", np.ones(16))
    c.get("a")
    c.put("c", np.ones(16))
    assert "a" in c and "b" not in c


def test_byte_lru_oversize_dropped():
    c = ByteLRUCache(capacity_bytes=64)
    c.put("big", np.ones(100))
    assert "big" not in c
    assert c.bytes_used == 0


def test_byte_lru_overwrite_resizes():
    c = ByteLRUCache(capacity_bytes=1024)
    c.put("a", np.ones(64))
    c.put("a", np.ones(4))
    assert c.bytes_used == 32


def test_byte_lru_zero_capacity():
    c = ByteLRUCache(capacity_bytes=0)
    c.put("a", np.ones(1))
    assert len(c) == 0


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 40)), max_size=120))
@settings(max_examples=60, deadline=None)
def test_property_byte_budget_never_exceeded(ops):
    c = ByteLRUCache(capacity_bytes=200)
    for key, n in ops:
        c.put(key, np.ones(n, dtype=np.uint8))
        assert c.bytes_used <= 200
        # Internal accounting matches the actual contents.
        actual = sum(v[1] for v in c._items.values())
        assert actual == c.bytes_used
