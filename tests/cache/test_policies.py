"""Classic cache policy tests: LRU, LFU, FIFO, MinIO + shared stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheStats
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache


# ----------------------------------------------------------------------
# CacheStats
# ----------------------------------------------------------------------
def test_stats_hit_ratio():
    s = CacheStats(hits=3, misses=1, substitute_hits=1)
    assert s.requests == 5
    assert s.hit_ratio == pytest.approx(0.8)
    assert s.exact_hit_ratio == pytest.approx(0.6)


def test_stats_idle_zero():
    assert CacheStats().hit_ratio == 0.0


def test_stats_merge_and_reset():
    a = CacheStats(hits=1, misses=2)
    b = CacheStats(hits=3, misses=4, evictions=1)
    a.merge(b)
    assert a.hits == 4 and a.misses == 6 and a.evictions == 1
    a.reset()
    assert a.requests == 0


# ----------------------------------------------------------------------
# LRU
# ----------------------------------------------------------------------
def test_lru_evicts_least_recent():
    c = LRUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.get("a")  # refresh a
    c.put("c", 3)  # evicts b
    assert "a" in c and "c" in c and "b" not in c


def test_lru_get_miss_counts():
    c = LRUCache(2)
    assert c.get("x") is None
    assert c.stats.misses == 1
    c.put("x", 1)
    assert c.get("x") == 1
    assert c.stats.hits == 1


def test_lru_refresh_existing_key():
    c = LRUCache(2)
    c.put("a", 1)
    c.put("a", 2)
    assert c.get("a") == 2
    assert len(c) == 1


def test_lru_zero_capacity_drops():
    c = LRUCache(0)
    c.put("a", 1)
    assert len(c) == 0


def test_lru_negative_capacity():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_lru_eviction_count():
    c = LRUCache(1)
    c.put("a", 1)
    c.put("b", 2)
    assert c.stats.evictions == 1


# ----------------------------------------------------------------------
# LFU
# ----------------------------------------------------------------------
def test_lfu_evicts_least_frequent():
    c = LFUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.get("a")
    c.get("a")
    c.put("c", 3)  # evicts b (freq 1 < a's 3)
    assert "a" in c and "c" in c and "b" not in c


def test_lfu_tie_broken_lru():
    c = LFUCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.put("c", 3)  # a and b tied at freq 1; a was inserted first
    assert "a" not in c and "b" in c


def test_lfu_frequency_accessor():
    c = LFUCache(3)
    c.put("a", 1)
    c.get("a")
    c.get("a")
    assert c.frequency("a") == 3  # insert + two hits
    with pytest.raises(KeyError):
        c.frequency("zzz")


def test_lfu_update_refreshes_value_and_freq():
    c = LFUCache(2)
    c.put("a", 1)
    c.put("a", 5)
    assert c.get("a") == 5
    assert c.frequency("a") >= 2


# ----------------------------------------------------------------------
# FIFO
# ----------------------------------------------------------------------
def test_fifo_evicts_in_insertion_order():
    c = FIFOCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.get("a")  # access must NOT refresh position
    c.put("c", 3)
    assert "a" not in c and "b" in c and "c" in c


def test_fifo_oldest_peek():
    c = FIFOCache(3)
    assert c.oldest() is None
    c.put("x", 1)
    c.put("y", 2)
    assert c.oldest() == ("x", 1)


def test_fifo_refresh_keeps_position():
    c = FIFOCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.put("a", 9)  # refresh value, position unchanged
    c.put("c", 3)  # still evicts a
    assert "a" not in c


def test_fifo_items_keys():
    c = FIFOCache(3)
    c.put(1, "x")
    c.put(2, "y")
    assert c.keys() == [1, 2]
    assert c.items() == [(1, "x"), (2, "y")]


# ----------------------------------------------------------------------
# MinIO
# ----------------------------------------------------------------------
def test_minio_never_evicts():
    c = MinIOCache(2)
    c.put("a", 1)
    c.put("b", 2)
    c.put("c", 3)  # dropped, not inserted
    assert "a" in c and "b" in c and "c" not in c
    assert c.stats.evictions == 0


def test_minio_hit_after_fill():
    c = MinIOCache(1)
    c.put("a", 1)
    assert c.get("a") == 1
    assert c.get("b") is None


def test_minio_no_replacement_of_existing():
    c = MinIOCache(2)
    c.put("a", 1)
    c.put("a", 99)  # MinIO never replaces
    assert c.get("a") == 1


def test_minio_steady_state_hit_ratio():
    """Under random sampling MinIO's hit ratio equals the cache fraction."""
    rng = np.random.default_rng(0)
    n, cap = 1000, 300
    c = MinIOCache(cap)
    # Fill epoch.
    for i in rng.permutation(n):
        if c.get(int(i)) is None:
            c.put(int(i), i)
    c.stats.reset()
    for _ in range(3):
        for i in rng.permutation(n):
            if c.get(int(i)) is None:
                c.put(int(i), i)
    assert c.stats.hit_ratio == pytest.approx(cap / n, abs=0.001)


# ----------------------------------------------------------------------
# Property tests shared across policies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", [LRUCache, LFUCache, FIFOCache])
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 30)), max_size=200),
       cap=st.integers(1, 10))
@settings(max_examples=50, deadline=None)
def test_property_capacity_never_exceeded(cls, ops, cap):
    c = cls(cap)
    for is_put, key in ops:
        if is_put:
            c.put(key, key)
        else:
            c.get(key)
        assert len(c) <= cap


@pytest.mark.parametrize("cls", [LRUCache, LFUCache, FIFOCache, MinIOCache])
@given(keys=st.lists(st.integers(0, 20), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_property_get_after_put_consistent(cls, keys):
    """A key reported present must return its stored value."""
    c = cls(5)
    stored = {}
    for k in keys:
        if k not in c:
            c.put(k, k * 2)
        if k in c:
            v = c.get(k)
            assert v == k * 2
