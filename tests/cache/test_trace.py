"""Trace recording, replay, and Belady-OPT tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.trace import AccessTrace, belady_hit_ratio, record_trace, replay


# ----------------------------------------------------------------------
# AccessTrace
# ----------------------------------------------------------------------
def test_trace_basic():
    t = AccessTrace(np.array([0, 1, 2, 0]), epoch_bounds=[2, 4])
    assert len(t) == 4
    assert t.n_epochs == 2
    assert t.unique_count == 3
    np.testing.assert_array_equal(t.epoch_slice(0), [0, 1])
    np.testing.assert_array_equal(t.epoch_slice(1), [2, 0])


def test_trace_2d_rejected():
    with pytest.raises(ValueError):
        AccessTrace(np.zeros((2, 2)))


def test_trace_single_epoch_slice():
    t = AccessTrace(np.array([1, 2, 3]))
    np.testing.assert_array_equal(t.epoch_slice(0), [1, 2, 3])
    with pytest.raises(IndexError):
        t.epoch_slice(1)


def test_frequency_histogram():
    t = AccessTrace(np.array([0, 0, 2]))
    np.testing.assert_array_equal(t.frequency_histogram(), [2, 0, 1])
    np.testing.assert_array_equal(t.frequency_histogram(5), [2, 0, 1, 0, 0])


def test_record_trace():
    t = record_trace(lambda e: [e, e + 1], epochs=3)
    np.testing.assert_array_equal(t.requests, [0, 1, 1, 2, 2, 3])
    assert t.epoch_bounds == [2, 4, 6]
    with pytest.raises(ValueError):
        record_trace(lambda e: [0], epochs=0)


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def test_replay_matches_manual():
    t = AccessTrace(np.array([0, 1, 0, 2, 0]))
    stats = replay(t, LRUCache(2))
    # 0 miss, 1 miss, 0 hit, 2 miss (evict 1), 0 hit.
    assert stats.hits == 2
    assert stats.misses == 3


def test_replay_minio_steady_state():
    rng = np.random.default_rng(0)
    t = record_trace(lambda e: rng.permutation(100), epochs=4)
    stats = replay(t, MinIOCache(25))
    # First epoch fills (no hits), then 25% per epoch.
    assert stats.hit_ratio == pytest.approx(0.25 * 3 / 4, abs=0.01)


# ----------------------------------------------------------------------
# Belady OPT
# ----------------------------------------------------------------------
def test_belady_simple_sequence():
    # Sequence 0 1 2 0 1 2, capacity 2: OPT hits exactly 2 of 6
    # (keep whichever of the residents recurs soonest).
    t = AccessTrace(np.array([0, 1, 2, 0, 1, 2]))
    assert belady_hit_ratio(t, 2) == pytest.approx(2 / 6)


def test_belady_all_hits_when_capacity_covers():
    t = AccessTrace(np.array([0, 1, 0, 1, 0, 1]))
    assert belady_hit_ratio(t, 2) == pytest.approx(4 / 6)  # only cold misses


def test_belady_zero_capacity():
    t = AccessTrace(np.array([0, 0, 0]))
    assert belady_hit_ratio(t, 0) == 0.0
    assert belady_hit_ratio(AccessTrace(np.array([], dtype=np.int64)), 4) == 0.0


def test_belady_negative_capacity():
    with pytest.raises(ValueError):
        belady_hit_ratio(AccessTrace(np.array([0])), -1)


def test_belady_beats_lru():
    """OPT dominates LRU on a looping trace (LRU's worst case)."""
    t = AccessTrace(np.tile(np.arange(10), 20))
    lru = replay(t, LRUCache(5)).hit_ratio
    opt = belady_hit_ratio(t, 5)
    assert opt > lru
    assert lru == 0.0  # loop longer than capacity: LRU thrashes completely


@given(
    st.lists(st.integers(0, 15), min_size=1, max_size=300),
    st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_property_belady_upper_bounds_lru(reqs, cap):
    """OPT is an upper bound on LRU's exact-hit ratio for any trace."""
    t = AccessTrace(np.asarray(reqs))
    lru = replay(t, LRUCache(cap)).hit_ratio
    opt = belady_hit_ratio(t, cap)
    assert opt >= lru - 1e-12


@given(st.lists(st.integers(0, 10), min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_property_belady_monotone_in_capacity(reqs):
    t = AccessTrace(np.asarray(reqs))
    ratios = [belady_hit_ratio(t, c) for c in (1, 2, 4, 11)]
    assert all(a <= b + 1e-12 for a, b in zip(ratios, ratios[1:]))
    # At capacity >= unique items, only cold misses remain.
    expected = (len(t) - t.unique_count) / len(t)
    assert ratios[-1] == pytest.approx(expected)


def test_belady_importance_trace_more_cacheable():
    """The paper's thesis, in oracle form: importance-skewed traces have
    far more cacheable locality than permutation traces at equal size."""
    rng = np.random.default_rng(1)
    n = 500
    perm_trace = record_trace(lambda e: rng.permutation(n), epochs=4)
    w = np.ones(n)
    w[:50] = 30.0
    p = w / w.sum()
    skew_trace = record_trace(
        lambda e: rng.choice(n, size=n, replace=True, p=p), epochs=4
    )
    cap = n // 10
    assert belady_hit_ratio(skew_trace, cap) > 2 * belady_hit_ratio(perm_trace, cap)
