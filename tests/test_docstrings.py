"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    mod = importlib.import_module(module_name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{module_name} lacks a docstring"


def _doc_inherited(cls, mname: str) -> bool:
    """True if any base class documents the same method (doc inheritance:
    an override keeps its contract unless it says otherwise)."""
    for base in cls.__mro__[1:]:
        base_meth = base.__dict__.get(mname)
        if base_meth is not None and getattr(base_meth, "__doc__", None):
            if base_meth.__doc__.strip():
                return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    mod = importlib.import_module(module_name)
    missing = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(name)
        if inspect.isclass(obj):
            for mname, meth in inspect.getmembers(obj, inspect.isfunction):
                if mname.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited implementation
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                if _doc_inherited(obj, mname):
                    continue  # override of a documented contract
                missing.append(f"{name}.{mname}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"


def test_package_exports_resolve():
    """Every name in every __all__ is actually importable."""
    for module_name in MODULES:
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module_name}.__all__ lists {name}"
