"""Exporter tests: CSV round-trips and Gantt rendering."""

import csv
import io

import pytest

from repro.analysis.export import (
    render_gantt,
    result_to_csv,
    results_to_csv,
    write_rows_csv,
)
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.pipeline import PipelineSimulator, StageCostModel


def _result(name="p", epochs=3):
    r = TrainResult(name, "resnet18", "ds")
    for e in range(epochs):
        r.epochs.append(EpochMetrics(
            epoch=e, train_loss=1.0 - 0.1 * e, val_accuracy=0.5 + 0.1 * e,
            hit_ratio=0.3, exact_hit_ratio=0.25, substitute_ratio=0.05,
            data_load_s=1.0, compute_s=0.5, is_visible_s=0.0,
            epoch_time_s=1.5, imp_ratio=0.9, score_std=None,
        ))
    return r


def test_result_csv_parses(tmp_path):
    text = result_to_csv(_result(), tmp_path / "run.csv")
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[0][0] == "policy"
    assert len(rows) == 4  # header + 3 epochs
    assert rows[1][0] == "p"
    assert float(rows[2][5]) == pytest.approx(0.6)  # val_accuracy epoch 1
    assert (tmp_path / "run.csv").read_text() == text


def test_result_csv_none_fields_empty():
    text = result_to_csv(_result())
    rows = list(csv.reader(io.StringIO(text)))
    assert rows[1][-1] == ""  # score_std None


def test_results_concatenated():
    text = results_to_csv([_result("a", 2), _result("b", 2)])
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) == 5  # one header + 4 data rows
    assert {r[0] for r in rows[1:]} == {"a", "b"}


def test_results_empty_rejected():
    with pytest.raises(ValueError):
        results_to_csv([])


def test_write_rows_csv(tmp_path):
    path = write_rows_csv(["x", "y"], [(1, 2), (3, 4)], tmp_path / "t.csv")
    rows = list(csv.reader(path.open()))
    assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]


def test_gantt_renders_stages():
    sim = PipelineSimulator(StageCostModel(10, 5, 3), mode="stage2")
    out = render_gantt(sim.schedule(3), width=60)
    assert "1" in out and "2" in out and "#" in out
    assert out.count("b0") == 1
    # Two lines per batch + header.
    assert len(out.splitlines()) == 1 + 2 * 3


def test_gantt_max_batches():
    sim = PipelineSimulator(StageCostModel(10, 5, 3), mode="stage2")
    out = render_gantt(sim.schedule(5), max_batches=2)
    assert "b2" not in out


def test_gantt_empty():
    assert render_gantt([]) == "(empty schedule)"


def test_gantt_is_overlaps_stage2_visually():
    """In stage2 mode, the IS row's marks start where stage2 starts."""
    sim = PipelineSimulator(StageCostModel(10, 5, 5), mode="stage2")
    out = render_gantt(sim.schedule(1), width=40)
    lines = out.splitlines()
    main, side = lines[1], lines[2]
    first2 = main.index("2")
    first_hash = side.index("#")
    assert abs(first2 - first_hash) <= 1
