"""Savitzky-Golay filter tests, cross-checked against scipy."""

import numpy as np
import pytest
from scipy.signal import savgol_filter

from repro.analysis.savgol import savgol_coefficients, savgol_smooth


def test_coefficients_match_scipy():
    from scipy.signal import savgol_coeffs

    ours = savgol_coefficients(5, 2)
    theirs = savgol_coeffs(5, 2)[::-1]  # scipy returns convolution order
    np.testing.assert_allclose(ours, theirs, atol=1e-12)


def test_coefficients_sum_to_one():
    """Smoothing kernels preserve constants."""
    for w, p in [(5, 2), (7, 3), (9, 2)]:
        assert savgol_coefficients(w, p).sum() == pytest.approx(1.0)


def test_derivative_coefficients_kill_constants():
    c = savgol_coefficients(5, 2, deriv=1)
    assert c.sum() == pytest.approx(0.0, abs=1e-12)


def test_invalid_params():
    with pytest.raises(ValueError):
        savgol_coefficients(4, 2)  # even window
    with pytest.raises(ValueError):
        savgol_coefficients(5, 5)  # polyorder >= window
    with pytest.raises(ValueError):
        savgol_coefficients(5, 2, deriv=3)


def test_smooth_matches_scipy_interior():
    rng = np.random.default_rng(0)
    y = np.sin(np.linspace(0, 4, 50)) + rng.normal(0, 0.1, 50)
    ours = savgol_smooth(y, window=7, polyorder=2)
    theirs = savgol_filter(y, 7, 2, mode="interp")
    np.testing.assert_allclose(ours, theirs, atol=1e-10)


def test_polynomial_reproduced_exactly():
    """A degree-2 polynomial passes through a polyorder-2 filter unchanged."""
    x = np.arange(30, dtype=float)
    y = 2.0 + 0.5 * x - 0.01 * x**2
    out = savgol_smooth(y, window=7, polyorder=2)
    np.testing.assert_allclose(out, y, atol=1e-9)


def test_noise_reduction():
    rng = np.random.default_rng(1)
    clean = np.sin(np.linspace(0, 3, 100))
    noisy = clean + rng.normal(0, 0.2, 100)
    smooth = savgol_smooth(noisy, window=9, polyorder=2)
    assert np.abs(smooth - clean).mean() < np.abs(noisy - clean).mean()


def test_short_series_fallback():
    y = np.array([1.0, 2.0, 3.0])
    out = savgol_smooth(y, window=5, polyorder=2)
    assert out.shape == (3,)
    np.testing.assert_allclose(out, y, atol=1e-9)  # exact quadratic fit


def test_empty_series():
    out = savgol_smooth(np.array([]))
    assert out.shape == (0,)


def test_output_length_preserved():
    for n in [5, 6, 20, 101]:
        y = np.random.default_rng(n).random(n)
        assert savgol_smooth(y, window=5, polyorder=2).shape == (n,)


def test_derivative_of_line():
    y = 3.0 * np.arange(20, dtype=float)
    d = savgol_smooth(y, window=5, polyorder=2, deriv=1)
    np.testing.assert_allclose(d, 3.0, atol=1e-9)
