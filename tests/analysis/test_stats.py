"""Multi-seed statistics tests."""

import numpy as np
import pytest

from repro.analysis.stats import MeanCI, mean_ci, paired_bootstrap_pvalue


def test_mean_ci_contains_mean():
    ci = mean_ci([1.0, 2.0, 3.0, 4.0], rng=0)
    assert ci.low <= ci.mean <= ci.high
    assert ci.mean == pytest.approx(2.5)


def test_mean_ci_single_value_degenerate():
    ci = mean_ci([0.7])
    assert ci.low == ci.mean == ci.high == 0.7


def test_mean_ci_narrows_with_more_data():
    rng = np.random.default_rng(0)
    small = mean_ci(rng.normal(0, 1, 5).tolist(), rng=1)
    large = mean_ci(rng.normal(0, 1, 200).tolist(), rng=1)
    assert (large.high - large.low) < (small.high - small.low)


def test_mean_ci_validation():
    with pytest.raises(ValueError):
        mean_ci([])
    with pytest.raises(ValueError):
        mean_ci([1.0], level=1.5)


def test_mean_ci_str_and_overlap():
    a = MeanCI(0.5, 0.4, 0.6, 0.95)
    b = MeanCI(0.55, 0.45, 0.65, 0.95)
    c = MeanCI(0.9, 0.85, 0.95, 0.95)
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert "[0.400, 0.600]" in str(a)


def test_paired_pvalue_clear_winner():
    a = [0.9, 0.91, 0.92, 0.93, 0.9]
    b = [0.5, 0.52, 0.51, 0.53, 0.5]
    assert paired_bootstrap_pvalue(a, b, rng=0) < 0.01


def test_paired_pvalue_no_difference():
    rng = np.random.default_rng(1)
    x = rng.normal(0.5, 0.05, 10)
    p = paired_bootstrap_pvalue(x, x + rng.normal(0, 0.001, 10), rng=0)
    assert 0.05 < p < 0.95


def test_paired_pvalue_direction():
    a = [0.3, 0.31, 0.32]
    b = [0.8, 0.82, 0.81]
    assert paired_bootstrap_pvalue(a, b, rng=0) > 0.95


def test_paired_pvalue_validation():
    with pytest.raises(ValueError):
        paired_bootstrap_pvalue([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        paired_bootstrap_pvalue([], [])


def test_paired_pvalue_single_pair():
    assert paired_bootstrap_pvalue([1.0], [0.5]) == 0.0
    assert paired_bootstrap_pvalue([0.5], [1.0]) == 1.0
