"""Trend statistic tests."""

import numpy as np
import pytest

from repro.analysis.trends import mean_growth_rate, rolling_std, slope


def test_slope_of_line():
    assert slope([1.0, 2.0, 3.0, 4.0]) == pytest.approx(1.0)
    assert slope([4.0, 3.0, 2.0]) == pytest.approx(-1.0)
    assert slope([5.0, 5.0, 5.0]) == pytest.approx(0.0)


def test_slope_needs_two_points():
    with pytest.raises(ValueError):
        slope([1.0])


def test_mean_growth_telescopes():
    """Eq. 6 reduces to (y[t] - y[t-m]) / m."""
    y = [0.0, 1.0, 3.0, 6.0, 10.0, 15.0]
    assert mean_growth_rate(y, window=5) == pytest.approx((15.0 - 0.0) / 5)
    assert mean_growth_rate(y, window=2) == pytest.approx((15.0 - 6.0) / 2)


def test_mean_growth_validation():
    with pytest.raises(ValueError):
        mean_growth_rate([1.0, 2.0], window=5)
    with pytest.raises(ValueError):
        mean_growth_rate([1.0, 2.0, 3.0], window=0)


def test_rolling_std_values():
    y = np.array([1.0, 1.0, 1.0, 5.0, 5.0])
    r = rolling_std(y, window=2)
    assert np.isnan(r[0])
    assert r[1] == pytest.approx(0.0)
    assert r[3] == pytest.approx(2.0)


def test_rolling_std_short_series():
    r = rolling_std([1.0, 2.0], window=5)
    assert np.isnan(r).all()


def test_rolling_std_invalid_window():
    with pytest.raises(ValueError):
        rolling_std([1.0], window=0)
