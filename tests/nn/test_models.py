"""Model zoo tests."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.models import MODEL_ZOO, Model, build_cnn_model, build_model
from repro.nn.optim import SGD


def test_zoo_has_paper_models():
    # Table-1 models plus the §5 short-IS examples.
    assert {"resnet18", "resnet50", "alexnet", "vgg16",
            "mobilenetv2", "inceptionv3"} == set(MODEL_ZOO)


def test_short_is_models_overlap_in_stage2():
    """§5: MobileNetV2 and Inception-v3 have IS shorter than Stage 2."""
    for name in ["mobilenetv2", "inceptionv3"]:
        spec = MODEL_ZOO[name]
        assert spec.is_ms < spec.stage2_ms


def test_new_models_buildable():
    for name in ["mobilenetv2", "inceptionv3"]:
        m = build_model(name, 16, 4, rng=0)
        logits, emb = m.forward(np.zeros((2, 16)))
        assert logits.shape == (2, 4)
        assert emb.shape == (2, MODEL_ZOO[name].embedding_dim)


def test_zoo_embedding_order_matches_paper():
    """AlexNet/VGG16 have the largest embedding dims (paper §5)."""
    z = MODEL_ZOO
    assert z["alexnet"].embedding_dim > z["resnet50"].embedding_dim
    assert z["vgg16"].embedding_dim > z["resnet18"].embedding_dim


def test_zoo_table1_is_costs():
    """Table 1: AlexNet/VGG16 IS cost exceeds their Stage2 (needs extended
    overlap); ResNet IS fits inside Stage2."""
    z = MODEL_ZOO
    assert z["alexnet"].is_ms > z["alexnet"].stage2_ms
    assert z["vgg16"].is_ms > z["vgg16"].stage2_ms
    assert z["resnet18"].is_ms < z["resnet18"].stage2_ms
    assert z["resnet50"].is_ms < z["resnet50"].stage2_ms


def test_build_model_unknown_name():
    with pytest.raises(KeyError):
        build_model("resnet101", 8, 2)


def test_forward_returns_logits_and_embeddings():
    m = build_model("resnet18", input_dim=16, num_classes=5, rng=0)
    x = np.random.default_rng(1).normal(size=(7, 16))
    logits, emb = m.forward(x)
    assert logits.shape == (7, 5)
    assert emb.shape == (7, m.spec.embedding_dim)


def test_embedding_dim_property():
    m = build_model("alexnet", 8, 3, rng=0)
    assert m.embedding_dim == MODEL_ZOO["alexnet"].embedding_dim


def test_train_batch_returns_per_sample_losses():
    m = build_model("resnet18", 8, 3, rng=0)
    x = np.random.default_rng(2).normal(size=(6, 8))
    y = np.array([0, 1, 2, 0, 1, 2])
    losses, emb = m.train_batch(x, y)
    assert losses.shape == (6,)
    assert np.all(losses > 0)


def test_train_batch_sample_weights_zero_blocks_update():
    m = build_model("resnet18", 8, 3, rng=0)
    x = np.random.default_rng(3).normal(size=(4, 8))
    y = np.array([0, 1, 2, 0])
    before = [p.copy() for p, _ in m.params()]
    m.zero_grad()
    m.train_batch(x, y, sample_weights=np.zeros(4))
    for (_, g) in m.params():
        np.testing.assert_allclose(g, 0.0, atol=1e-15)
    for (p, _), b in zip(m.params(), before):
        np.testing.assert_array_equal(p, b)


def test_train_batch_weight_mismatch():
    m = build_model("resnet18", 8, 3, rng=0)
    with pytest.raises(ValueError):
        m.train_batch(np.zeros((4, 8)), np.zeros(4, dtype=int), np.ones(5))


def test_model_learns_separable_data():
    rng = np.random.default_rng(4)
    n = 200
    y = rng.integers(0, 2, n)
    x = rng.normal(size=(n, 8)) + 4.0 * y[:, None]
    m = build_model("resnet18", 8, 2, rng=0)
    opt = SGD(m.params(), lr=0.05, momentum=0.9)
    for _ in range(30):
        m.zero_grad()
        m.train_batch(x, y)
        opt.step()
    acc, loss = m.evaluate(x, y)
    assert acc > 0.95


def test_evaluate_batched_consistency():
    m = build_model("resnet18", 8, 3, rng=0)
    x = np.random.default_rng(5).normal(size=(50, 8))
    y = np.random.default_rng(6).integers(0, 3, 50)
    a1 = m.evaluate(x, y, batch_size=7)
    a2 = m.evaluate(x, y, batch_size=50)
    assert a1[0] == a2[0]
    assert a1[1] == pytest.approx(a2[1])


def test_num_parameters_positive():
    m = build_model("vgg16", 8, 3, rng=0)
    assert m.num_parameters() > 1000


def test_state_dict_roundtrip():
    m1 = build_model("resnet18", 8, 3, rng=0)
    m2 = build_model("resnet18", 8, 3, rng=9)
    m2.load_state_dict(m1.state_dict())
    x = np.random.default_rng(7).normal(size=(4, 8))
    np.testing.assert_allclose(
        m1.forward(x, training=False)[0], m2.forward(x, training=False)[0]
    )


def test_cnn_model_shapes():
    m = build_cnn_model((1, 12, 12), num_classes=4, rng=0)
    x = np.random.default_rng(8).normal(size=(3, 1, 12, 12))
    logits, emb = m.forward(x)
    assert logits.shape == (3, 4)
    assert emb.shape[0] == 3


def test_cnn_too_many_blocks():
    with pytest.raises(ValueError):
        build_cnn_model((1, 4, 4), 2, channels=(4, 8, 16), rng=0)


def test_custom_head_embedding_dim_error():
    feats = Sequential(Linear(4, 4, rng=0))

    class WeirdHead:
        def forward(self, x, training=True):
            return x

        def params(self):
            return []

        def state_dict(self):
            return {}

    m = Model(feats, WeirdHead())
    with pytest.raises(AttributeError):
        _ = m.embedding_dim
