"""Optimizer and LR-schedule tests."""

import numpy as np
import pytest

from repro.nn.optim import SGD, ConstantLR, CosineLR, StepLR


def _param(value=1.0):
    p = np.array([value])
    g = np.array([0.0])
    return p, g


def test_sgd_basic_step():
    p, g = _param(1.0)
    opt = SGD([(p, g)], lr=0.1)
    g[0] = 2.0
    opt.step()
    assert p[0] == pytest.approx(1.0 - 0.1 * 2.0)


def test_sgd_momentum_accumulates():
    p, g = _param(0.0)
    opt = SGD([(p, g)], lr=1.0, momentum=0.9)
    g[0] = 1.0
    opt.step()  # v=1, p=-1
    opt.step()  # v=1.9, p=-2.9
    assert p[0] == pytest.approx(-2.9)


def test_sgd_weight_decay():
    p, g = _param(10.0)
    opt = SGD([(p, g)], lr=0.1, weight_decay=0.1)
    opt.step()  # grad = 0 + 0.1*10 = 1 -> p = 10 - 0.1
    assert p[0] == pytest.approx(9.9)


def test_sgd_zero_grad():
    p, g = _param()
    opt = SGD([(p, g)], lr=0.1)
    g[0] = 5.0
    opt.zero_grad()
    assert g[0] == 0.0


def test_sgd_invalid_params():
    p, g = _param()
    with pytest.raises(ValueError):
        SGD([(p, g)], lr=0.0)
    with pytest.raises(ValueError):
        SGD([(p, g)], lr=0.1, momentum=1.0)


def test_sgd_converges_quadratic():
    """SGD minimizes f(w) = (w-3)^2."""
    w = np.array([0.0])
    g = np.array([0.0])
    opt = SGD([(w, g)], lr=0.1, momentum=0.5)
    for _ in range(100):
        g[0] = 2 * (w[0] - 3.0)
        opt.step()
        g[0] = 0.0
    assert w[0] == pytest.approx(3.0, abs=1e-6)


def test_constant_lr():
    assert ConstantLR(0.1).lr_at(1000) == 0.1
    with pytest.raises(ValueError):
        ConstantLR(0.0)


def test_step_lr():
    s = StepLR(1.0, step_size=10, gamma=0.1)
    assert s.lr_at(0) == 1.0
    assert s.lr_at(9) == 1.0
    assert s.lr_at(10) == pytest.approx(0.1)
    assert s.lr_at(25) == pytest.approx(0.01)


def test_cosine_lr_endpoints():
    c = CosineLR(1.0, total_epochs=100, min_lr=0.1)
    assert c.lr_at(0) == pytest.approx(1.0)
    assert c.lr_at(100) == pytest.approx(0.1)
    assert 0.1 < c.lr_at(50) < 1.0


def test_cosine_monotone_decreasing():
    c = CosineLR(1.0, total_epochs=50)
    lrs = [c.lr_at(e) for e in range(51)]
    assert all(a >= b for a, b in zip(lrs, lrs[1:]))


def test_schedule_drives_optimizer():
    p, g = _param(0.0)
    opt = SGD([(p, g)], lr=1.0, schedule=StepLR(1.0, step_size=1, gamma=0.5))
    assert opt.current_lr == 1.0
    opt.set_epoch(2)
    assert opt.current_lr == pytest.approx(0.25)
