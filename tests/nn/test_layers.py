"""Layer tests, including numerical gradient checks for every layer."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        orig = x[i]
        x[i] = orig + eps
        fp = f()
        x[i] = orig - eps
        fm = f()
        x[i] = orig
        g[i] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_input_grad(layer, x, rtol=1e-5, atol=1e-7):
    """Compare backward() input gradient to numerical differentiation of
    a fixed scalar projection of the output."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, training=True)
    proj = rng.normal(size=out.shape)
    analytic = layer.backward(proj)

    def f():
        return float((layer.forward(x, training=True) * proj).sum())

    # Re-prime the forward cache for the analytic pass consistency.
    layer.forward(x, training=True)
    num = numerical_grad(f, x)
    np.testing.assert_allclose(analytic, num, rtol=rtol, atol=atol)


def check_param_grads(layer, x, rtol=1e-5, atol=1e-7):
    rng = np.random.default_rng(1)
    out = layer.forward(x, training=True)
    proj = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(proj)
    for p, g in layer.params():
        def f(p=p):
            return float((layer.forward(x, training=True) * proj).sum())

        num = numerical_grad(f, p)
        layer.forward(x, training=True)  # restore cache
        np.testing.assert_allclose(g, num, rtol=rtol, atol=atol)


# ----------------------------------------------------------------------
# Linear
# ----------------------------------------------------------------------
def test_linear_forward_shape():
    lin = Linear(4, 3, rng=0)
    out = lin.forward(np.zeros((5, 4)))
    assert out.shape == (5, 3)


def test_linear_wrong_shape():
    lin = Linear(4, 3, rng=0)
    with pytest.raises(ValueError):
        lin.forward(np.zeros((5, 6)))


def test_linear_invalid_sizes():
    with pytest.raises(ValueError):
        Linear(0, 3)


def test_linear_input_grad():
    lin = Linear(4, 3, rng=0)
    x = np.random.default_rng(2).normal(size=(6, 4))
    check_input_grad(lin, x)


def test_linear_param_grads():
    lin = Linear(3, 2, rng=0)
    x = np.random.default_rng(3).normal(size=(4, 3))
    check_param_grads(lin, x)


def test_linear_backward_before_forward():
    lin = Linear(2, 2, rng=0)
    with pytest.raises(RuntimeError):
        lin.backward(np.zeros((1, 2)))


def test_linear_eval_forward_does_not_cache():
    lin = Linear(2, 2, rng=0)
    lin.forward(np.zeros((1, 2)), training=False)
    with pytest.raises(RuntimeError):
        lin.backward(np.zeros((1, 2)))


# ----------------------------------------------------------------------
# ReLU
# ----------------------------------------------------------------------
def test_relu_forward():
    r = ReLU()
    out = r.forward(np.array([[-1.0, 2.0, 0.0]]))
    np.testing.assert_array_equal(out, [[0.0, 2.0, 0.0]])


def test_relu_grad():
    r = ReLU()
    x = np.random.default_rng(4).normal(size=(5, 7)) + 0.1  # avoid kink
    check_input_grad(r, x)


# ----------------------------------------------------------------------
# Conv2d
# ----------------------------------------------------------------------
def test_conv_output_shape():
    conv = Conv2d(2, 5, kernel_size=3, stride=1, padding=1, rng=0)
    out = conv.forward(np.zeros((3, 2, 8, 8)))
    assert out.shape == (3, 5, 8, 8)


def test_conv_stride_shape():
    conv = Conv2d(1, 4, kernel_size=3, stride=2, padding=1, rng=0)
    out = conv.forward(np.zeros((2, 1, 8, 8)))
    assert out.shape == (2, 4, 4, 4)


def test_conv_wrong_channels():
    conv = Conv2d(2, 3, rng=0)
    with pytest.raises(ValueError):
        conv.forward(np.zeros((1, 3, 4, 4)))


def test_conv_input_grad():
    conv = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=0)
    x = np.random.default_rng(5).normal(size=(2, 2, 5, 5))
    check_input_grad(conv, x, rtol=1e-4, atol=1e-6)


def test_conv_param_grads():
    conv = Conv2d(1, 2, kernel_size=3, stride=1, padding=0, rng=0)
    x = np.random.default_rng(6).normal(size=(2, 1, 5, 5))
    check_param_grads(conv, x, rtol=1e-4, atol=1e-6)


def test_conv_matches_manual_valid():
    """3x3 valid conv on a known input matches hand computation."""
    conv = Conv2d(1, 1, kernel_size=3, stride=1, padding=0, rng=0)
    conv.W[:] = np.arange(9.0)[:, None]
    conv.b[:] = 0.0
    x = np.arange(25.0).reshape(1, 1, 5, 5)
    out = conv.forward(x)
    patch = x[0, 0, :3, :3].ravel()
    assert out[0, 0, 0, 0] == pytest.approx(patch @ np.arange(9.0))


# ----------------------------------------------------------------------
# MaxPool2d
# ----------------------------------------------------------------------
def test_maxpool_forward():
    mp = MaxPool2d(2)
    x = np.arange(16.0).reshape(1, 1, 4, 4)
    out = mp.forward(x)
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_maxpool_grad():
    mp = MaxPool2d(2)
    # Distinct values avoid ties at the argmax (nondifferentiable points).
    x = np.random.default_rng(7).permutation(64).astype(float).reshape(1, 1, 8, 8)
    check_input_grad(mp, x, rtol=1e-4, atol=1e-7)


def test_maxpool_grad_routes_to_argmax():
    mp = MaxPool2d(2)
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
    mp.forward(x)
    dx = mp.backward(np.array([[[[1.0]]]]))
    np.testing.assert_array_equal(dx, [[[[0, 0], [0, 1.0]]]])


# ----------------------------------------------------------------------
# BatchNorm1d
# ----------------------------------------------------------------------
def test_batchnorm_normalizes():
    bn = BatchNorm1d(4)
    x = np.random.default_rng(8).normal(3.0, 2.0, size=(64, 4))
    out = bn.forward(x, training=True)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)


def test_batchnorm_eval_uses_running_stats():
    bn = BatchNorm1d(2, momentum=0.0)  # running stats = last batch
    x = np.random.default_rng(9).normal(5.0, 3.0, size=(128, 2))
    bn.forward(x, training=True)
    out = bn.forward(x, training=False)
    assert abs(out.mean()) < 0.2


def test_batchnorm_input_grad():
    bn = BatchNorm1d(3)
    x = np.random.default_rng(10).normal(size=(6, 3))
    check_input_grad(bn, x, rtol=1e-4, atol=1e-6)


def test_batchnorm_param_grads():
    bn = BatchNorm1d(3)
    x = np.random.default_rng(11).normal(size=(5, 3))
    check_param_grads(bn, x, rtol=1e-4, atol=1e-6)


# ----------------------------------------------------------------------
# Dropout
# ----------------------------------------------------------------------
def test_dropout_eval_identity():
    d = Dropout(0.5, rng=0)
    x = np.ones((4, 4))
    np.testing.assert_array_equal(d.forward(x, training=False), x)


def test_dropout_preserves_expectation():
    d = Dropout(0.5, rng=0)
    x = np.ones((200, 200))
    out = d.forward(x, training=True)
    assert abs(out.mean() - 1.0) < 0.05


def test_dropout_invalid_p():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_dropout_backward_masks():
    d = Dropout(0.5, rng=0)
    x = np.ones((10, 10))
    out = d.forward(x, training=True)
    g = d.backward(np.ones_like(x))
    # Gradient passes exactly where the forward pass did.
    np.testing.assert_array_equal((g != 0), (out != 0))


# ----------------------------------------------------------------------
# Flatten / Sequential
# ----------------------------------------------------------------------
def test_flatten_roundtrip():
    f = Flatten()
    x = np.random.default_rng(12).normal(size=(3, 2, 4, 4))
    out = f.forward(x)
    assert out.shape == (3, 32)
    back = f.backward(out)
    assert back.shape == x.shape


def test_sequential_composition_grad():
    seq = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 3, rng=1))
    x = np.random.default_rng(13).normal(size=(5, 4)) + 0.05
    check_input_grad(seq, x, rtol=1e-4, atol=1e-6)


def test_sequential_params_aggregated():
    seq = Sequential(Linear(2, 3, rng=0), ReLU(), Linear(3, 1, rng=1))
    assert len(seq.params()) == 4  # two Linear layers x (W, b)


def test_sequential_state_dict_roundtrip():
    seq1 = Sequential(Linear(3, 3, rng=0), BatchNorm1d(3))
    seq2 = Sequential(Linear(3, 3, rng=99), BatchNorm1d(3))
    seq2.load_state_dict(seq1.state_dict())
    x = np.random.default_rng(14).normal(size=(4, 3))
    np.testing.assert_allclose(
        seq1.forward(x, training=False), seq2.forward(x, training=False)
    )


def test_sequential_append_and_iter():
    seq = Sequential()
    seq.append(ReLU())
    assert len(seq) == 1
    assert all(isinstance(l, ReLU) for l in seq)
