"""Edge-case layer tests beyond the main gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Dropout,
    MaxPool2d,
    Sequential,
)


def test_conv_stride2_gradient():
    from tests.nn.test_layers import check_input_grad

    conv = Conv2d(1, 2, kernel_size=3, stride=2, padding=1, rng=0)
    x = np.random.default_rng(0).normal(size=(2, 1, 7, 7))
    check_input_grad(conv, x, rtol=1e-4, atol=1e-6)


def test_conv_1x1_kernel():
    conv = Conv2d(3, 2, kernel_size=1, stride=1, padding=0, rng=0)
    x = np.random.default_rng(1).normal(size=(2, 3, 4, 4))
    out = conv.forward(x)
    assert out.shape == (2, 2, 4, 4)
    # A 1x1 conv is a per-pixel linear map.
    manual = np.einsum("nchw,co->nohw", x, conv.W.reshape(3, 2)) + \
        conv.b[None, :, None, None]
    np.testing.assert_allclose(out, manual, atol=1e-12)


def test_maxpool_stride_differs_from_kernel():
    mp = MaxPool2d(kernel_size=3, stride=1)
    x = np.arange(25.0).reshape(1, 1, 5, 5)
    out = mp.forward(x)
    assert out.shape == (1, 1, 3, 3)
    assert out[0, 0, 0, 0] == 12.0  # max of the top-left 3x3 block


def test_maxpool_gradient_with_overlap():
    from tests.nn.test_layers import check_input_grad

    mp = MaxPool2d(kernel_size=3, stride=1)
    x = np.random.default_rng(2).permutation(49).astype(float).reshape(1, 1, 7, 7)
    check_input_grad(mp, x, rtol=1e-4, atol=1e-7)


def test_dropout_p_zero_identity():
    d = Dropout(0.0, rng=0)
    x = np.random.default_rng(3).normal(size=(5, 5))
    np.testing.assert_array_equal(d.forward(x, training=True), x)
    np.testing.assert_array_equal(d.backward(x), x)


def test_batchnorm_eval_stable_under_repeats():
    bn = BatchNorm1d(3, momentum=0.5)
    rng = np.random.default_rng(4)
    for _ in range(20):
        bn.forward(rng.normal(2.0, 1.5, (64, 3)), training=True)
    x = rng.normal(2.0, 1.5, (16, 3))
    a = bn.forward(x, training=False)
    b = bn.forward(x, training=False)
    np.testing.assert_array_equal(a, b)  # eval passes don't mutate state


def test_batchnorm_single_sample_batch():
    bn = BatchNorm1d(4)
    out = bn.forward(np.ones((1, 4)), training=True)
    assert np.isfinite(out).all()  # var=0 guarded by eps


def test_empty_sequential_identity():
    seq = Sequential()
    x = np.random.default_rng(5).normal(size=(3, 2))
    np.testing.assert_array_equal(seq.forward(x), x)
    np.testing.assert_array_equal(seq.backward(x), x)
    assert seq.params() == []
    assert seq.state_dict() == {}


def test_conv_batch_of_one():
    conv = Conv2d(1, 1, rng=0)
    out = conv.forward(np.ones((1, 1, 3, 3)))
    assert out.shape == (1, 1, 3, 3)


def test_sequential_load_partial_state_ignores_stateless():
    from repro.nn.layers import Linear, ReLU

    seq = Sequential(Linear(2, 2, rng=0), ReLU(), Linear(2, 2, rng=1))
    state = seq.state_dict()
    seq2 = Sequential(Linear(2, 2, rng=5), ReLU(), Linear(2, 2, rng=6))
    seq2.load_state_dict(state)
    x = np.random.default_rng(7).normal(size=(2, 2))
    np.testing.assert_allclose(seq.forward(x, training=False),
                               seq2.forward(x, training=False))
