"""Initializer tests."""

import numpy as np
import pytest

from repro.nn.init import he_init, xavier_init


def test_he_std():
    w = he_init((2000, 100), fan_in=100, rng=0)
    assert w.std() == pytest.approx(np.sqrt(2 / 100), rel=0.05)
    assert abs(w.mean()) < 0.01


def test_he_deterministic():
    np.testing.assert_array_equal(he_init((3, 3), 3, rng=1), he_init((3, 3), 3, rng=1))


def test_he_invalid_fan_in():
    with pytest.raises(ValueError):
        he_init((2, 2), 0)


def test_xavier_bounds():
    w = xavier_init((1000, 50), fan_in=50, fan_out=50, rng=0)
    limit = np.sqrt(6 / 100)
    assert w.min() >= -limit and w.max() <= limit


def test_xavier_invalid():
    with pytest.raises(ValueError):
        xavier_init((2, 2), -1, 2)
