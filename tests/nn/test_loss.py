"""Softmax cross-entropy tests."""

import numpy as np
import pytest

from repro.nn.loss import SoftmaxCrossEntropy, softmax


def test_softmax_rows_sum_to_one():
    z = np.random.default_rng(0).normal(size=(5, 7))
    p = softmax(z)
    np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)
    assert np.all(p > 0)


def test_softmax_stability_large_logits():
    p = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
    assert np.isfinite(p).all()
    np.testing.assert_allclose(p[0, :2], 0.5, atol=1e-9)


def test_loss_perfect_prediction_near_zero():
    ce = SoftmaxCrossEntropy()
    logits = np.array([[100.0, 0.0, 0.0]])
    loss = ce.forward(logits, np.array([0]))
    assert loss[0] == pytest.approx(0.0, abs=1e-9)


def test_loss_uniform_is_log_k():
    ce = SoftmaxCrossEntropy()
    logits = np.zeros((3, 10))
    loss = ce.forward(logits, np.array([0, 5, 9]))
    np.testing.assert_allclose(loss, np.log(10), atol=1e-12)


def test_per_sample_losses_shape():
    ce = SoftmaxCrossEntropy()
    loss = ce.forward(np.zeros((8, 4)), np.zeros(8, dtype=int))
    assert loss.shape == (8,)


def test_backward_matches_numerical():
    ce = SoftmaxCrossEntropy()
    rng = np.random.default_rng(1)
    logits = rng.normal(size=(4, 5))
    targets = np.array([0, 1, 2, 3])
    ce.forward(logits, targets)
    analytic = ce.backward()
    eps = 1e-6
    num = np.zeros_like(logits)
    for i in range(4):
        for j in range(5):
            lp, lm = logits.copy(), logits.copy()
            lp[i, j] += eps
            lm[i, j] -= eps
            fp = SoftmaxCrossEntropy().forward(lp, targets).mean()
            fm = SoftmaxCrossEntropy().forward(lm, targets).mean()
            num[i, j] = (fp - fm) / (2 * eps)
    np.testing.assert_allclose(analytic, num, atol=1e-7)


def test_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        SoftmaxCrossEntropy().backward()


def test_batch_size_mismatch():
    with pytest.raises(ValueError):
        SoftmaxCrossEntropy().forward(np.zeros((3, 2)), np.zeros(4, dtype=int))


def test_label_out_of_range():
    with pytest.raises(ValueError):
        SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0, 3]))
    with pytest.raises(ValueError):
        SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([-1, 0]))


def test_predict_and_accuracy():
    logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 0.0]])
    preds = SoftmaxCrossEntropy.predict(logits)
    np.testing.assert_array_equal(preds, [0, 1, 0])
    acc = SoftmaxCrossEntropy.accuracy(logits, np.array([0, 1, 1]))
    assert acc == pytest.approx(2 / 3)


def test_gradient_rows_sum_to_zero():
    """Softmax-CE gradient rows sum to zero (probability simplex)."""
    ce = SoftmaxCrossEntropy()
    logits = np.random.default_rng(2).normal(size=(6, 4))
    ce.forward(logits, np.array([0, 1, 2, 3, 0, 1]))
    g = ce.backward()
    np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)
