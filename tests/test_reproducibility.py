"""Seed reproducibility: identical seeds give bit-identical runs for every
policy — the property that makes the benchmark numbers in EXPERIMENTS.md
deterministic reruns."""

import numpy as np
import pytest

from repro.baselines.baseline import LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.baselines.gradnorm import GradNormISPolicy
from repro.baselines.icache import ICacheFullPolicy
from repro.baselines.shade import ShadePolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

POLICIES = [
    SpiderCachePolicy,
    ShadePolicy,
    ICacheFullPolicy,
    GradNormISPolicy,
    CoorDLPolicy,
    LRUBaselinePolicy,
]


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(300, n_classes=4, dim=8, rng=0)
    return train_test_split(ds, rng=1)


def _run(data, policy_cls):
    train, test = data
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    policy = policy_cls(cache_fraction=0.25, rng=3)
    return Trainer(model, train, test, policy,
                   TrainerConfig(epochs=4, batch_size=64)).run()


@pytest.mark.parametrize("policy_cls", POLICIES,
                         ids=lambda c: c.__name__)
def test_identical_seeds_identical_runs(data, policy_cls):
    a = _run(data, policy_cls)
    b = _run(data, policy_cls)
    np.testing.assert_array_equal(a.series("val_accuracy"),
                                  b.series("val_accuracy"))
    np.testing.assert_array_equal(a.series("hit_ratio"), b.series("hit_ratio"))
    np.testing.assert_allclose(a.series("epoch_time_s"),
                               b.series("epoch_time_s"))
    np.testing.assert_allclose(a.series("train_loss"), b.series("train_loss"))


def test_different_seed_different_run(data):
    train, test = data
    outs = []
    for seed in [3, 4]:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.25, rng=seed)
        outs.append(Trainer(model, train, test, policy,
                            TrainerConfig(epochs=4, batch_size=64)).run())
    assert not np.array_equal(outs[0].series("train_loss"),
                              outs[1].series("train_loss"))


def test_dataset_generation_reproducible():
    a = make_clustered_dataset(150, n_classes=5, dim=8, class_skew=1.0,
                               nuisance_dims=4, nuisance_std=3.0, rng=9)
    b = make_clustered_dataset(150, n_classes=5, dim=8, class_skew=1.0,
                               nuisance_dims=4, nuisance_std=3.0, rng=9)
    np.testing.assert_array_equal(a.X, b.X)
    np.testing.assert_array_equal(a.y, b.y)
    np.testing.assert_array_equal(a.kinds, b.kinds)
    np.testing.assert_array_equal(a.modes, b.modes)
