"""Chaos: outages and brownouts composed with an in-flight migration.

The scenarios here drive the whole fault surface at once — a shard dies
mid-resize while traffic keeps flowing — and assert the system's load-
bearing promises: no exception escapes, capacity/metadata invariants
hold, the migration stalls (never half-applies) and completes after
recovery, breakers cycle closed -> open -> half-open -> closed, and the
anti-entropy queues reconverge shard contents with client metadata.

Timing note: breaker fail-fast paths advance *zero* simulated time, so
drain loops must advance the clock between passes (the real trainer's
compute time between epoch boundaries) or cooldowns never elapse.
"""

import numpy as np
import pytest

from repro.dist.client import ShardedCacheClient
from repro.dist.retry import RetryPolicy
from repro.obs.observer import Observer
from repro.resilience.breaker import BreakerState
from repro.resilience.faults import BrownoutWindow, FaultPlan, OutageWindow
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency

pytestmark = pytest.mark.dist

FAST = ConstantLatency(base_s=1e-3, bandwidth_bps=1e15)
OUTAGE = FaultPlan(outages=[OutageWindow(0.0, 1e9)])
TOTAL = 40


def payload(i):
    return np.full(4, float(i), dtype=np.float32)


def make_client(**kw):
    kw.setdefault("latency", FAST)
    kw.setdefault("retry", RetryPolicy(jitter=0.0))
    kw.setdefault("breaker_cooldown_s", 0.05)
    return ShardedCacheClient(TOTAL, imp_ratio=0.5, n_shards=2,
                              clock=SimClock(), **kw)


def populate(cli, n_imp=20, n_hom=5):
    for k in range(n_imp):
        cli.fetch(k, float(k + 1), payload)
    for k in range(1000, 1000 + n_hom):
        cli.update_homophily(k, payload(k), [k + 10000])


def check_invariants(cli):
    """The promises no fault schedule may break."""
    assert len(cli) <= cli.total_capacity
    assert len(cli.importance) <= cli.importance.capacity
    assert len(cli.homophily) <= cli.homophily.capacity
    assert len(cli._heap) == len(cli._imp_loc)
    assert set(cli._heap.keys()) == set(cli._imp_loc)
    assert set(cli._hom_entries) == set(cli._hom_loc)
    snaps = cli.shard_snapshots()
    assert sum(s["imp_len"] for s in snaps) == len(cli._imp_loc)
    assert sum(s["hom_len"] for s in snaps) == len(cli._hom_entries)


def drain(cli, max_passes=50):
    """Epoch-boundary style drain: compute time passes between attempts
    so breaker cooldowns can elapse."""
    for _ in range(max_passes):
        if cli.migration is None:
            return
        cli.continue_migration()
        cli.clock.advance("compute", 0.1)
    raise AssertionError("migration failed to drain")


def test_outage_during_migration_stalls_then_completes():
    obs = Observer()
    cli = make_client()
    cli.attach_observer(obs)
    populate(cli)
    state = cli.resize(4, drain=False)
    assert state.planned_moves > 0

    cli.set_fault_plan(0, OUTAGE)
    cli.continue_migration()
    assert not state.done  # batches touching shard 0 stalled
    assert state.failed_batches > 0
    stalled = len(state.pending)

    # Traffic continues through the outage: no exceptions, invariants hold.
    served = 0
    for k in range(20):
        out = cli.fetch(k, float(k + 1), payload)
        assert out.payload is not None
        served += 1
    assert served == 20
    assert cli.degraded_lookups > 0  # shard-0 residents degraded to misses
    check_invariants(cli)

    br = cli.breakers[0]
    assert br.state is BreakerState.OPEN
    assert any(s["breaker"] == "open" for s in cli.shard_snapshots())
    # Fail-fast rejections cost zero simulated time.
    before = cli.clock.total_seconds
    cli.continue_migration()
    assert len(state.pending) == stalled
    assert cli.clock.total_seconds == before

    # Recovery: clear the fault, let cooldowns elapse between drains.
    cli.set_fault_plan(0, None)
    cli.clock.advance("compute", 0.1)
    drain(cli)
    assert cli.migration is None and cli.n_shards == 4
    assert cli.verify_placement() == []
    check_invariants(cli)
    # Breaker cycled through half-open back to closed.
    transitions = [(e.old.value, e.new.value) for e in br.events]
    assert ("closed", "open") in transitions
    assert ("open", "half_open") in transitions
    assert br.state is BreakerState.CLOSED
    # The cycle is visible to observability (what `repro report` renders).
    assert obs.metrics.counter("breaker.opens").value >= 1
    assert obs.metrics.counter("rpc.errors.outage").value > 0
    assert obs.metrics.counter("resize.started").value == 1

    # Anti-entropy queues reconverge shard contents with metadata.
    for k in range(20):
        cli.fetch(k, float(k + 1), payload)
    assert not any(cli._pending_deletes.values())
    for sid, server in cli.servers.items():
        for layer, loc in (("imp", cli._imp_loc), ("hom", cli._hom_loc)):
            owned = {k for k, s in loc.items() if s == sid}
            assert set(server.keys(layer)) == owned


def test_admits_during_outage_are_dropped_not_corrupting():
    cli = make_client(breaker_failure_threshold=1000)
    populate(cli)
    before_len = len(cli)
    before_keys = set(cli._imp_loc) | set(cli._hom_entries)
    cli.set_fault_plan(0, OUTAGE)
    cli.set_fault_plan(1, OUTAGE)
    for k in range(100, 140):
        cli.fetch(k, float(k), payload)  # every admit put fails
        cli.update_homophily(3000 + k, payload(k), [k])
    assert cli.dropped_admits == 80
    assert len(cli) == before_len  # metadata untouched
    assert set(cli._imp_loc) | set(cli._hom_entries) == before_keys
    check_invariants(cli)
    # Recovery: the cache works again and can admit.
    cli.set_fault_plan(0, None)
    cli.set_fault_plan(1, None)
    cli.clock.advance("compute", 1.0)
    cli.fetch(500, 500.0, payload)
    assert 500 in cli.importance


def test_brownout_timeouts_leave_shards_consistent():
    """Brownout-induced timeouts are ambiguous — the mutation lands even
    though the caller saw a failure. Idempotent servers + anti-entropy
    must still converge shard contents to the metadata."""
    cli = make_client(breaker_failure_threshold=1000,
                      retry=RetryPolicy(max_attempts=2, jitter=0.0))
    populate(cli)
    # 20x latency pushes every call over the 10 ms deadline for a while.
    plan = FaultPlan(brownouts=[BrownoutWindow(0.0, 0.15,
                                               latency_multiplier=20.0)])
    cli.set_fault_plan(0, plan)
    cli.set_fault_plan(1, plan)
    for k in range(20, 60):
        cli.fetch(k, float(k + 1), payload)
    assert cli.channel.timeouts > 0  # the window did bite
    check_invariants(cli)
    # Past the window (clock advanced via charged deadlines/backoffs),
    # traffic is clean again; drain the repair queues.
    assert cli.clock.total_seconds > 0.15
    for k in list(cli._imp_loc)[:10]:
        assert cli.fetch(k, 1000.0, payload).payload is not None
    for sid in cli.servers:
        cli._flush_pending(sid)
    for sid, server in cli.servers.items():
        for layer, loc in (("imp", cli._imp_loc), ("hom", cli._hom_loc)):
            owned = {k for k, s in loc.items() if s == sid}
            # No payload the metadata owns may be missing; orphans from
            # ambiguous timeouts have been repaired away.
            assert set(server.keys(layer)) == owned
    check_invariants(cli)


def test_total_blackout_degrades_every_stage_and_recovers():
    """Remote tier AND all shards down: degraded mode keeps serving
    substitutes from whatever payloads are still reachable — here none —
    so every request skips, and nothing corrupts."""
    from repro.resilience.errors import DegradedModeError

    cli = make_client(breaker_failure_threshold=1000)
    populate(cli)
    cli.enable_degraded_mode((DegradedModeError,))

    def dead_remote(i):
        raise DegradedModeError("remote tier down")

    cli.set_fault_plan(0, OUTAGE)
    cli.set_fault_plan(1, OUTAGE)
    outcomes = [cli.fetch(k, float(k + 1), dead_remote) for k in range(30)]
    assert all(o.source.value in ("degraded", "skipped") for o in outcomes)
    assert cli.degraded.skipped + cli.degraded.substituted == 30
    check_invariants(cli)
    cli.set_fault_plan(0, None)
    cli.set_fault_plan(1, None)
    cli.clock.advance("compute", 1.0)
    out = cli.fetch(0, 1.0, payload)
    assert out.payload is not None and out.source.value == "importance"
