"""Wall-clock chaos: kill a real shard worker, get the sim fault's bits.

The simulated fault plans model a dead shard as a permanent
:class:`OutageWindow` whose every RPC raises :class:`ShardOutageError`.
The real transport models it by actually SIGKILLing the worker process.
These tests drive the *same* post-fault workload through both and assert
the degradation ledger is identical — same served-outcome stream, same
``dropped_admits`` / ``degraded_lookups``, same breaker trajectory, same
per-shard RPC counters. That is the claim that makes the simulator an
oracle: a chaos scenario rehearsed in sim is exactly what production
would do.

State dicts are deliberately NOT compared here — a dead shard's payloads
are lost, so ``state_dict`` would (correctly) have to degrade; the
contract under faults is about the *ledger*, not the bytes.

Real processes + real clock => ``wallclock`` marker; CI runs these with
a hard timeout and retries=0.
"""

import numpy as np
import pytest

from repro.dist.client import ShardedCacheClient
from repro.dist.retry import RetryPolicy
from repro.dist.rpc import ShardOutageError
from repro.resilience.breaker import BreakerState
from repro.resilience.faults import FaultPlan, OutageWindow
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency

pytestmark = [pytest.mark.dist, pytest.mark.wallclock]

FAST = ConstantLatency(base_s=1e-4, bandwidth_bps=1e15)
OUTAGE = FaultPlan(outages=[OutageWindow(0.0, 1e9)])
TOTAL = 40
# Long enough that neither twin's breaker re-arms mid-test: the
# trajectory must be closed -> open on both, with no half-open probes
# racing the wall clock.
COOLDOWN_S = 1000.0


def payload(i):
    return np.full(4, float(i), dtype=np.float32)


def make_twins():
    """A sim client and a real-process client with identical policy."""
    kw = dict(
        imp_ratio=0.5, n_shards=2,
        retry=RetryPolicy(max_attempts=2, jitter=0.0),
        breaker_failure_threshold=5, breaker_cooldown_s=COOLDOWN_S,
    )
    sim = ShardedCacheClient(TOTAL, clock=SimClock(), latency=FAST, **kw)
    real = ShardedCacheClient(TOTAL, transport="real", deadline_s=30.0,
                              **kw)
    return sim, real


def populate(cli, n_imp=20, n_hom=5):
    for k in range(n_imp):
        cli.fetch(k, float(k + 1), payload)
    for k in range(1000, 1000 + n_hom):
        cli.update_homophily(k, payload(k), [k + 10000])


def run_traffic(cli):
    """Post-fault workload: hits, misses, and admits against both shards.
    Returns the observable outcome stream."""
    outcomes = []
    for k in range(30):
        out = cli.fetch(k, float(k + 1), payload)
        outcomes.append((out.requested_id, out.served_id, out.source.value))
    for k in range(100, 120):
        out = cli.fetch(k, float(k), payload)
        outcomes.append((out.requested_id, out.served_id, out.source.value))
        outcomes.append(cli.update_homophily(3000 + k, payload(k), [k]))
    return outcomes


def ledger(cli):
    """Every degradation-visible counter, minus wall-time artifacts."""
    snaps = [
        {k: v for k, v in s.items()}
        for s in cli.shard_snapshots()
    ]
    return {
        "dropped_admits": cli.dropped_admits,
        "degraded_lookups": cli.degraded_lookups,
        "rpc_calls": cli.transport.calls,
        "rpc_failures": cli.transport.failures,
        "rpc_timeouts": cli.transport.timeouts,
        "per_shard_calls": dict(cli.transport.per_shard_calls),
        "per_shard_failures": dict(cli.transport.per_shard_failures),
        "imp_keys": sorted(cli._imp_loc),
        "hom_keys": sorted(cli._hom_entries),
        "len": len(cli),
        "breakers": [b.state.value for b in cli.breakers.values()],
        "snapshots": snaps,
    }


def test_killed_worker_degrades_exactly_like_sim_outage():
    sim, real = make_twins()
    try:
        populate(sim)
        populate(real)

        sim.set_fault_plan(0, OUTAGE)
        real.transport.kill_shard(0)
        # The raw transports agree on what a dead shard *is*.
        with pytest.raises(ShardOutageError):
            real.transport.call(0, "keys", "imp")
        with pytest.raises(ShardOutageError):
            sim.transport.call(0, "keys", "imp")

        assert run_traffic(sim) == run_traffic(real)
        assert ledger(sim) == ledger(real)
        # The fault did bite, on both, identically.
        assert real.degraded_lookups > 0
        assert real.dropped_admits > 0
        assert real.breakers[0].state is BreakerState.OPEN
        assert real.breakers[1].state is BreakerState.CLOSED
    finally:
        real.close()


def test_restarted_worker_rejoins_and_anti_entropy_reconverges():
    """Kill, then restart: the replacement worker comes back *empty*
    (payloads are soft state), pending anti-entropy deletes flush, and
    ordinary traffic repopulates the shard until its contents match the
    client's placement metadata again."""
    _, real = make_twins()
    try:
        populate(real)
        real.transport.kill_shard(0)
        run_traffic(real)
        assert real.breakers[0].state is BreakerState.OPEN

        real.transport.restart_shard(0)
        assert real.transport.peek(0, "keys", "imp") == []  # fresh server
        lost_hom = {k for k, s in real._hom_loc.items() if s == 0}
        # Let the breaker cooldown elapse on the client's wall clock so
        # the half-open probe is allowed through.
        real.breakers[0].cooldown_s = 0.05
        real.clock.advance("compute", 0.1)

        for k in range(40):
            out = real.fetch(k % 25, float(k + 1), payload)
            assert out.payload is not None
        assert real.breakers[0].state is BreakerState.CLOSED
        assert not any(real._pending_deletes.values())
        # Importance payloads reconverge: a degraded read falls through
        # to the remote tier and the re-admit refreshes the shard copy.
        for sid in real.transport.shard_ids:
            owned = {k for k, s in real._imp_loc.items() if s == sid}
            held = set(real.transport.peek(sid, "keys", "imp"))
            assert held == owned, sid
        # Homophily payloads are soft state with no refresh path for a
        # resident key — what the dead worker held stays lost, and the
        # placement audit reports exactly that set, nothing else.
        viol = real.verify_placement()
        assert {(layer, key) for layer, key, _, _ in viol} == \
            {("hom", k) for k in lost_hom}
    finally:
        real.close()


def test_kill_during_resize_stalls_then_completes_after_restart():
    """The sim chaos suite's migration-stall scenario, on real pipes:
    a worker dies mid-drain, batches touching it stall without
    half-applying, and the drain completes after the worker is
    replaced."""
    _, real = make_twins()
    try:
        populate(real)
        state = real.resize(4, drain=False)
        assert state.planned_moves > 0

        real.transport.kill_shard(0)
        real.continue_migration()
        assert not state.done
        assert state.failed_batches > 0

        # Traffic keeps flowing through the outage.
        for k in range(20):
            assert real.fetch(k, float(k + 1), payload).payload is not None

        real.transport.restart_shard(0)
        real.breakers[0].cooldown_s = 0.05
        for _ in range(50):
            if real.migration is None:
                break
            real.clock.advance("compute", 0.1)
            real.continue_migration()
        assert real.migration is None and real.n_shards == 4
        # Shard 0's payloads died with the worker; verify_placement
        # reports exactly those as lost, nothing else corrupted.
        # Shard 0's payloads died with the worker. Their migration
        # batches had nothing to move, and locations only flip after a
        # successful migrate_in — so those keys stay located on the
        # restarted shard 0 while the new ring expects them elsewhere.
        lost = real.verify_placement()
        for layer, key, shard, expected in lost:
            assert real.transport.has_shard(shard)
        for layer, key, shard, expected in lost:
            if layer == "imp":
                real.fetch(key, 1000.0, payload)
        # Refetch restores every importance payload at its *located*
        # shard; the survivors are pure ring-disagreements on shard 0
        # (readable — the location map decides reads — just not
        # ring-placed until eviction or the next resize).
        after = [e for e in real.verify_placement() if e[0] == "imp"]
        assert all(shard == 0 and expected is not None
                   for _, _, shard, expected in after)
        # And every importance key is genuinely servable again, no
        # degraded reads left.
        degraded_before = real.degraded_lookups
        for k in list(real._imp_loc)[:10]:
            assert real.fetch(k, 1000.0, payload).payload is not None
        assert real.degraded_lookups == degraded_before
    finally:
        real.close()
