"""Transport parity: real process shards == simulated oracle, bit for bit.

The transport refactor's load-bearing claim: every retry/breaker/
anti-entropy decision lives in :class:`ShardedCacheClient`, so swapping
:class:`SimRpcChannel` for :class:`RealRpcTransport` (shard servers in
real worker processes, length-prefixed pipes, pickled frames) must not
change a single observable bit of a fault-free run — same served
stream, same ``state_dict`` (heap tiebreaks included), same RPC call
counts, same clean ``verify_placement`` — for any shard count and
across a live mid-run resize. Hypothesis drives random workloads over
every mutator in the shared API to prove it.

These tests spawn real processes and poll real pipes, so they carry the
``wallclock`` marker alongside ``dist``; CI runs them with a hard
timeout and no retries (a flake here is a bug, not weather).
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.client import ShardedCacheClient
from repro.dist.retry import RetryPolicy
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency

pytestmark = [pytest.mark.dist, pytest.mark.wallclock]

FAST = ConstantLatency(base_s=1e-4, bandwidth_bps=1e15)
TOTAL = 24
# Generous: parity runs must never see a spurious timeout — an ambiguous
# failure would (correctly) perturb client accounting and sink the diff.
REAL_DEADLINE_S = 30.0


def payload(i):
    return np.full(4, float(i), dtype=np.float32)


def make_sim(n_shards):
    return ShardedCacheClient(
        TOTAL, imp_ratio=0.8, n_shards=n_shards, clock=SimClock(),
        latency=FAST, retry=RetryPolicy(jitter=0.0),
    )


def make_real(n_shards):
    return ShardedCacheClient(
        TOTAL, imp_ratio=0.8, n_shards=n_shards, transport="real",
        deadline_s=REAL_DEADLINE_S, retry=RetryPolicy(jitter=0.0),
    )


_idx = st.integers(0, 59)
_score = st.floats(0.1, 100.0, allow_nan=False)
_op = st.one_of(
    st.tuples(st.just("fetch"), _idx, _score),
    st.tuples(st.just("hom"), _idx, st.lists(_idx, max_size=4)),
    st.tuples(st.just("score"), _idx, _score),
    st.tuples(st.just("ratio"), st.floats(0.1, 0.9, allow_nan=False)),
)
_workload = st.lists(_op, min_size=10, max_size=60)


def apply_op(cache, op):
    """Run one op; returns a comparable outcome tuple."""
    kind = op[0]
    if kind == "fetch":
        out = cache.fetch(op[1], op[2], payload)
        return (out.requested_id, out.served_id, out.source.value)
    if kind == "hom":
        return cache.update_homophily(op[1] + 1000, payload(op[1] + 1000),
                                      [n + 500 for n in op[2]])
    if kind == "score":
        return cache.update_score(op[1], op[2])
    cache.set_imp_ratio(op[1])
    return None


def deep_equal(a, b, path=""):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=path)
    elif isinstance(a, dict):
        assert set(a) == set(b), path
        for k in a:
            deep_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            deep_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def assert_transports_agree(sim, real):
    """Everything observable, both layers: cache policy and RPC ledger."""
    deep_equal(sim.state_dict(), real.state_dict())
    assert sim.hit_ratio == real.hit_ratio
    assert len(sim) == len(real)
    for cli in (sim, real):
        assert cli.dropped_admits == 0 and cli.degraded_lookups == 0
        assert cli.transport.failures == 0 and cli.transport.timeouts == 0
    # The data-plane RPC ledger must match call for call: same workload,
    # same placement math, no retries -> identical per-shard counters.
    assert sim.transport.calls == real.transport.calls
    assert dict(sim.transport.per_shard_calls) == \
        dict(real.transport.per_shard_calls)
    assert real.verify_placement() == []
    assert sim.verify_placement() == []


@pytest.mark.parametrize("n_shards", [1, 2, 4])
@given(ops=_workload)
@settings(max_examples=8, deadline=None)
def test_real_transport_is_bit_identical_to_sim(n_shards, ops):
    sim = make_sim(n_shards)
    real = make_real(n_shards)
    try:
        for op in ops:
            assert apply_op(sim, op) == apply_op(real, op)
        assert_transports_agree(sim, real)
    finally:
        real.close()


@given(
    ops=_workload,
    n_before=st.sampled_from([1, 2, 4]),
    n_after=st.integers(1, 5),
    resize_frac=st.floats(0.1, 0.9),
    drain_every=st.integers(1, 7),
)
@settings(max_examples=8, deadline=None)
def test_parity_holds_across_live_resize(ops, n_before, n_after,
                                         resize_frac, drain_every):
    """Resize drains while traffic continues — over real pipes the drain
    is genuine cross-process payload movement, and it must still land on
    exactly the oracle's bits."""
    sim = make_sim(n_before)
    real = make_real(n_before)
    try:
        at = int(len(ops) * resize_frac)
        for i, op in enumerate(ops):
            if i == at and n_after != real.n_shards:
                sim.resize(n_after, drain=False)
                real.resize(n_after, drain=False)
            if real.migration is not None and i % drain_every == 0:
                sim.continue_migration(max_batches=1)
                real.continue_migration(max_batches=1)
            assert apply_op(sim, op) == apply_op(real, op)
        while real.migration is not None:
            sim.continue_migration()
            real.continue_migration()
        assert_transports_agree(sim, real)
    finally:
        real.close()


def test_real_shard_contents_match_client_metadata():
    """Beyond the client's own bookkeeping: interrogate the worker
    processes directly (control-plane ``peek``) and check every shard
    holds exactly the payload keys the client's placement map says."""
    real = make_real(2)
    try:
        rng = np.random.default_rng(11)
        for k in rng.integers(0, 60, size=120):
            real.fetch(int(k), float(rng.random() * 10 + 0.1), payload)
        for k in range(5):
            real.update_homophily(2000 + k, payload(2000 + k), [k, k + 1])
        for sid in real.transport.shard_ids:
            for layer, loc in (("imp", real._imp_loc),
                               ("hom", real._hom_loc)):
                owned = {k for k, s in loc.items() if s == sid}
                held = set(real.transport.peek(sid, "keys", layer))
                assert held == owned, (sid, layer)
    finally:
        real.close()


def test_checkpoint_crosses_transports():
    """Snapshot on real processes, restore onto the simulated oracle
    (and back): the logical cache must survive the round trip bit-exactly
    on a fresh shard count."""
    real = make_real(2)
    try:
        rng = np.random.default_rng(7)
        for k in rng.integers(0, 60, size=100):
            real.fetch(int(k), float(rng.random() * 10 + 0.1), payload)
        snap = real.state_dict()
    finally:
        real.close()

    sim = make_sim(3)
    sim.load_state_dict(snap)
    assert sim.verify_placement() == []
    deep_equal(snap, sim.state_dict())

    real2 = make_real(3)
    try:
        real2.load_state_dict(snap)
        assert real2.verify_placement() == []
        deep_equal(sim.state_dict(), real2.state_dict())
    finally:
        real2.close()
