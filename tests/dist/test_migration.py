"""Live ring resizing: planning, draining, interruption, verification."""

import numpy as np
import pytest

from repro.dist.client import ShardedCacheClient
from repro.dist.migration import plan_migration
from repro.dist.retry import RetryPolicy
from repro.dist.ring import ConsistentHashRing, ring_diff
from repro.resilience.faults import FaultPlan, OutageWindow
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency

pytestmark = pytest.mark.dist

FAST = ConstantLatency(base_s=1e-3, bandwidth_bps=1e15)
OUTAGE = FaultPlan(outages=[OutageWindow(0.0, 1e9)])


def payload(i):
    return np.full(4, float(i), dtype=np.float32)


def make_client(n_shards=2, total=40, **kw):
    kw.setdefault("latency", FAST)
    kw.setdefault("retry", RetryPolicy(jitter=0.0))
    return ShardedCacheClient(total, imp_ratio=0.5, n_shards=n_shards,
                              clock=SimClock(), **kw)


def populate(cli, n_imp=20, n_hom=5):
    for k in range(n_imp):
        cli.fetch(k, float(k + 1), payload)
    for k in range(1000, 1000 + n_hom):
        cli.update_homophily(k, payload(k), [k + 10000, k + 20000])
    return cli


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_groups_by_layer_src_dst_and_chunks():
    target = ConsistentHashRing(4)
    old = ConsistentHashRing(2)
    keys = list(range(200))
    locations = {"imp": {k: old.shard_for(k) for k in keys}, "hom": {}}
    state = plan_migration(2, target, locations, batch_size=16)
    moves = ring_diff(old, target, keys)
    assert state.planned_moves == len(moves)
    planned = {}
    for b in state.pending:
        assert b.layer == "imp"
        assert len(b.keys) <= 16
        assert all(old.shard_for(k) == b.src for k in b.keys)
        assert all(target.shard_for(k) == b.dst for k in b.keys)
        for k in b.keys:
            planned[k] = (b.src, b.dst)
    assert planned == moves  # every mover planned exactly once


def test_plan_skips_keys_already_on_their_target():
    target = ConsistentHashRing(2)
    locations = {"imp": {k: target.shard_for(k) for k in range(50)},
                 "hom": {}}
    state = plan_migration(2, target, locations)
    assert state.planned_moves == 0 and state.done


def test_plan_validates_batch_size():
    with pytest.raises(ValueError):
        plan_migration(1, ConsistentHashRing(2), {"imp": {}}, batch_size=0)


# ----------------------------------------------------------------------
# drained resizes (grow and shrink)
# ----------------------------------------------------------------------
def test_grow_resize_preserves_every_payload_and_verifies():
    cli = populate(make_client(n_shards=2))
    before = cli.state_dict()
    state = cli.resize(5)  # drains inline
    assert state is not None and state.done
    assert cli.n_shards == 5 and cli.ring.n_shards == 5
    assert sorted(cli.servers) == [0, 1, 2, 3, 4]
    assert cli.verify_placement() == []
    after = cli.state_dict()
    np.testing.assert_array_equal(before["importance"]["payloads"],
                                  after["importance"]["payloads"])
    np.testing.assert_array_equal(before["homophily"]["payloads"],
                                  after["homophily"]["payloads"])
    assert cli.completed_resizes == 1


def test_shrink_resize_retires_servers_and_breakers():
    cli = populate(make_client(n_shards=4))
    cli.resize(2)
    assert sorted(cli.servers) == [0, 1]
    assert sorted(cli.breakers) == [0, 1]
    assert cli.verify_placement() == []
    # All payloads still reachable.
    for k in range(20):
        assert cli.fetch(k, float(k + 1), payload).source.value == "importance"


def test_moved_payloads_are_deleted_from_their_source_shard():
    cli = populate(make_client(n_shards=2))
    cli.resize(4)
    for sid, server in cli.servers.items():
        for layer, loc in (("imp", cli._imp_loc), ("hom", cli._hom_loc)):
            owned = {k for k, s in loc.items() if s == sid}
            assert set(server.keys(layer)) == owned  # no stale copies


def test_noop_and_conflicting_resizes():
    cli = make_client(n_shards=2)
    assert cli.resize(2) is None
    populate(cli)
    cli.set_fault_plan(1, OUTAGE)
    state = cli.resize(4, drain=False)
    assert state is not None and not state.done
    with pytest.raises(RuntimeError):
        cli.resize(3)
    with pytest.raises(ValueError):
        cli.resize(0)


# ----------------------------------------------------------------------
# incremental / interrupted drains
# ----------------------------------------------------------------------
def test_incremental_drain_serves_lookups_mid_migration():
    cli = populate(make_client(n_shards=2, migration_batch_size=4))
    state = cli.resize(5, drain=False)
    total_batches = len(state.pending)
    assert total_batches > 2
    cli.continue_migration(max_batches=1)
    assert len(state.pending) == total_batches - 1
    # Location maps stay authoritative: every key still serves.
    for k in range(20):
        assert cli.fetch(k, float(k + 1), payload).source.value == "importance"
    # Mid-migration violations are exactly the not-yet-moved keys.
    assert len(cli.verify_placement()) > 0
    while cli.migration is not None:
        cli.continue_migration(max_batches=2)
    assert cli.verify_placement() == []
    assert cli.n_shards == 5


def test_new_admits_mid_migration_land_on_the_target_ring():
    cli = populate(make_client(n_shards=2, migration_batch_size=4))
    cli.resize(5, drain=False)
    target = cli.migration.target_ring
    new_key = 777
    cli.fetch(new_key, 99.0, payload)
    assert cli._imp_loc[new_key] == target.shard_for(new_key)
    cli.continue_migration()
    assert cli.verify_placement() == []


def test_keys_evicted_mid_migration_are_skipped():
    cli = make_client(n_shards=2, total=8, migration_batch_size=2)
    for k in range(4):
        cli.fetch(k, float(k + 1), payload)
    state = cli.resize(4, drain=False)
    planned = state.planned_moves
    assert planned > 0
    # Evict every planned mover by admitting higher-scoring keys before
    # any batch runs; voided batches must not resurrect them.
    for k in range(100, 104):
        cli.fetch(k, float(k), payload)
    cli.continue_migration()
    assert cli.migration is None
    assert state.moved_keys <= planned
    assert cli.verify_placement() == []


def test_failed_batches_rotate_and_replay_after_recovery():
    cli = populate(make_client(n_shards=2, migration_batch_size=4,
                               breaker_failure_threshold=1000))
    # Shard 1 is down: batches touching it fail and stay pending.
    cli.set_fault_plan(1, OUTAGE)
    state = cli.resize(4, drain=False)
    cli.continue_migration()
    assert state.failed_batches > 0
    assert not state.done  # stalled, not lost
    stalled = len(state.pending)
    cli.continue_migration()  # still down: each batch attempted once more
    assert len(state.pending) == stalled
    cli.set_fault_plan(1, None)
    cli.continue_migration()
    assert cli.migration is None
    assert cli.verify_placement() == []
    # Every payload survived the stall-and-replay.
    for k in range(20):
        assert cli.fetch(k, float(k + 1), payload).source.value == "importance"


def test_migrate_in_replay_is_idempotent():
    """An ambiguously timed-out migrate_in that secretly executed is
    simply overwritten when the batch replays."""
    cli = populate(make_client(n_shards=2))
    state = cli.resize(4, drain=False)
    batch = state.pending[0]
    entries = {k: payload(k) for k in batch.keys}
    cli.servers[batch.dst].migrate_in(batch.layer, entries)  # "lost" reply
    cli.continue_migration()  # replays the whole batch
    assert cli.migration is None
    assert cli.verify_placement() == []


def test_continue_migration_without_resize_is_a_noop():
    cli = make_client()
    assert cli.continue_migration() is None
