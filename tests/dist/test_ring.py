"""Consistent-hash ring: determinism, balance, minimal disruption."""

import pytest

from repro.dist.ring import ConsistentHashRing, ring_diff, splitmix64

pytestmark = pytest.mark.dist

KEYS = list(range(5000))


def test_splitmix64_is_deterministic_and_64bit():
    assert splitmix64(0) == splitmix64(0)
    assert splitmix64(1) != splitmix64(2)
    for x in (0, 1, 2**63, 2**64 - 1):
        assert 0 <= splitmix64(x) < 2**64


def test_shard_for_is_deterministic_and_in_range():
    ring = ConsistentHashRing(4)
    owners = [ring.shard_for(k) for k in KEYS]
    assert owners == [ring.shard_for(k) for k in KEYS]
    assert set(owners) <= set(range(4))
    # Every shard owns a non-trivial share of a large uniform keyspace.
    for shard in range(4):
        assert owners.count(shard) > 0


def test_partition_groups_every_key_exactly_once():
    ring = ConsistentHashRing(3)
    parts = ring.partition(KEYS[:500])
    flat = sorted(k for keys in parts.values() for k in keys)
    assert flat == KEYS[:500]
    for shard, keys in parts.items():
        assert all(ring.shard_for(k) == shard for k in keys)


def test_balance_is_reasonable_with_default_vnodes():
    ring = ConsistentHashRing(4, vnodes=64)
    counts = {s: len(ks) for s, ks in ring.partition(KEYS).items()}
    mean = len(KEYS) / 4
    # Consistent hashing is not perfectly uniform; 64 vnodes should keep
    # every shard within a loose factor of the mean.
    for c in counts.values():
        assert 0.3 * mean < c < 2.5 * mean


def test_growing_the_ring_only_moves_keys_to_new_shards():
    """Minimal disruption: surviving shards' vnode points don't move, so
    a key either stays put or lands on a *new* shard."""
    old = ConsistentHashRing(3)
    new = old.spawn(5)
    moves = ring_diff(old, new, KEYS)
    assert moves  # growth must claim some keys
    assert all(dst in (3, 4) for _, dst in moves.values())
    # And far from all keys move.
    assert len(moves) < len(KEYS) * 0.75


def test_shrinking_only_moves_keys_from_retired_shards():
    old = ConsistentHashRing(5)
    new = old.spawn(3)
    moves = ring_diff(old, new, KEYS)
    assert all(src in (3, 4) for src, _ in moves.values())
    assert all(dst in (0, 1, 2) for _, dst in moves.values())


def test_spawn_preserves_geometry_and_eq():
    ring = ConsistentHashRing(2, vnodes=16, seed=99)
    grown = ring.spawn(4)
    assert grown.vnodes == 16 and grown.seed == 99
    assert ring == ConsistentHashRing(2, vnodes=16, seed=99)
    assert ring != grown
    assert ring.__eq__(object()) is NotImplemented


def test_different_seeds_give_different_placements():
    a = ConsistentHashRing(4, seed=1)
    b = ConsistentHashRing(4, seed=2)
    assert any(a.shard_for(k) != b.shard_for(k) for k in KEYS[:200])


def test_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, vnodes=0)
