"""Differential oracle: sharded client == monolith, bit for bit.

All policy state lives client-side, so a fault-free sharded run must be
*indistinguishable* from a monolithic :class:`SemanticCache` run — same
served stream, same stats, same ``state_dict`` (heap tiebreaks included)
— for any shard count, and across a live ring resize draining while
traffic continues. Hypothesis drives random workloads over every mutator
in the shared API to prove it.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semantic_cache import SemanticCache
from repro.dist.client import ShardedCacheClient
from repro.dist.retry import RetryPolicy
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency

pytestmark = pytest.mark.dist

FAST = ConstantLatency(base_s=1e-4, bandwidth_bps=1e15)
TOTAL = 24


def payload(i):
    return np.full(4, float(i), dtype=np.float32)


def make_client(n_shards):
    return ShardedCacheClient(
        TOTAL, imp_ratio=0.8, n_shards=n_shards, clock=SimClock(),
        latency=FAST, retry=RetryPolicy(jitter=0.0),
    )


_idx = st.integers(0, 59)
_score = st.floats(0.1, 100.0, allow_nan=False)
_op = st.one_of(
    st.tuples(st.just("fetch"), _idx, _score),
    st.tuples(st.just("hom"), _idx, st.lists(_idx, max_size=4)),
    st.tuples(st.just("score"), _idx, _score),
    st.tuples(st.just("ratio"), st.floats(0.1, 0.9, allow_nan=False)),
)
_workload = st.lists(_op, min_size=10, max_size=100)


def apply_op(cache, op):
    """Run one op; returns a comparable outcome tuple."""
    kind = op[0]
    if kind == "fetch":
        out = cache.fetch(op[1], op[2], payload)
        return (out.requested_id, out.served_id, out.source.value)
    if kind == "hom":
        return cache.update_homophily(op[1] + 1000, payload(op[1] + 1000),
                                      [n + 500 for n in op[2]])
    if kind == "score":
        return cache.update_score(op[1], op[2])
    cache.set_imp_ratio(op[1])
    return None


def deep_equal(a, b, path=""):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=path)
    elif isinstance(a, dict):
        assert set(a) == set(b), path
        for k in a:
            deep_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            deep_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def assert_bit_identical(mono, cli):
    deep_equal(mono.state_dict(), cli.state_dict())
    assert mono.hit_ratio == cli.hit_ratio
    assert len(mono) == len(cli)
    assert cli.dropped_admits == 0 and cli.degraded_lookups == 0


@pytest.mark.parametrize("n_shards", [1, 2, 4])
@given(ops=_workload)
@settings(max_examples=25, deadline=None)
def test_sharded_run_is_bit_identical_to_monolith(n_shards, ops):
    mono = SemanticCache(TOTAL, imp_ratio=0.8)
    cli = make_client(n_shards)
    for op in ops:
        assert apply_op(mono, op) == apply_op(cli, op)
    assert_bit_identical(mono, cli)


@given(
    ops=_workload,
    n_before=st.sampled_from([1, 2, 4]),
    n_after=st.integers(1, 6),
    resize_frac=st.floats(0.1, 0.9),
    drain_every=st.integers(1, 7),
)
@settings(max_examples=25, deadline=None)
def test_bit_identical_across_live_resize(ops, n_before, n_after,
                                          resize_frac, drain_every):
    """The resize drains *while traffic continues* — placement must never
    leak into policy decisions."""
    mono = SemanticCache(TOTAL, imp_ratio=0.8)
    cli = make_client(n_before)
    at = int(len(ops) * resize_frac)
    for i, op in enumerate(ops):
        if i == at and n_after != cli.n_shards:
            cli.resize(n_after, drain=False)
        if cli.migration is not None and i % drain_every == 0:
            cli.continue_migration(max_batches=1)
        assert apply_op(mono, op) == apply_op(cli, op)
    while cli.migration is not None:
        cli.continue_migration()
    assert cli.verify_placement() == []
    assert_bit_identical(mono, cli)


def test_state_roundtrip_through_a_resized_client():
    """Checkpoint on K shards, restore onto K' shards: the logical cache
    (and a monolith restored from the same snapshot) must agree."""
    cli = make_client(2)
    rng = np.random.default_rng(3)
    for k in rng.integers(0, 60, size=150):
        cli.fetch(int(k), float(rng.random() * 10 + 0.1), payload)
    for k in range(5):
        cli.update_homophily(2000 + k, payload(2000 + k), [k, k + 1])
    snap = cli.state_dict()

    other = make_client(5)
    other.load_state_dict(snap)
    assert other.verify_placement() == []
    deep_equal(snap, other.state_dict())

    mono = SemanticCache(TOTAL, imp_ratio=0.8)
    mono.load_state_dict(snap)
    deep_equal(mono.state_dict(), other.state_dict())
