"""RPC deadlines, failure classification, retry/backoff, breakers.

Everything runs on the simulated clock, so the schedules asserted here
are exact: an outage charges the capped round-trip, a timeout charges
exactly the deadline (and the call still executes server-side), and a
burned retry budget charges ``attempts x cost + sum(backoffs)``.
"""

import pytest

from repro.dist.retry import RetryBudgetExhausted, RetryPolicy
from repro.dist.rpc import (
    RPC_OVERHEAD_NBYTES,
    RpcError,
    RpcTimeoutError,
    ShardOutageError,
    SimRpcChannel,
)
from repro.dist.server import CacheShardServer
from repro.dist.client import ShardedCacheClient
from repro.resilience.breaker import BreakerState
from repro.resilience.faults import BrownoutWindow, FaultPlan, OutageWindow
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency

pytestmark = pytest.mark.dist

#: Deterministic sub-deadline per-call latency (bandwidth term ~0).
FAST = ConstantLatency(base_s=1e-3, bandwidth_bps=1e15)
OUTAGE = FaultPlan(outages=[OutageWindow(0.0, 1e9)])


def make_channel(deadline_s=0.01, fault_plans=None, n_shards=1):
    servers = {i: CacheShardServer(i) for i in range(n_shards)}
    return SimRpcChannel(
        servers,
        clock=SimClock(),
        latency=FAST,
        deadline_s=deadline_s,
        fault_plans=fault_plans,
    )


def make_client(**kw):
    kw.setdefault("latency", FAST)
    kw.setdefault("retry", RetryPolicy(jitter=0.0))
    return ShardedCacheClient(8, imp_ratio=0.5, n_shards=1, clock=SimClock(),
                              **kw)


# ----------------------------------------------------------------------
# channel: classification and time accounting
# ----------------------------------------------------------------------
def test_successful_call_charges_sampled_latency_to_rpc_stage():
    ch = make_channel()
    ch.call(0, "imp_put", 1, [1.0], nbytes=0)
    assert ch.clock.stage_seconds("rpc") == pytest.approx(
        FAST.sample(RPC_OVERHEAD_NBYTES)
    )
    assert (ch.calls, ch.failures, ch.timeouts) == (1, 0, 0)


def test_outage_never_executes_and_charges_capped_roundtrip():
    ch = make_channel(fault_plans={0: OUTAGE})
    with pytest.raises(ShardOutageError):
        ch.call(0, "imp_put", 1, [1.0])
    assert ch.servers[0].occupancy("imp") == 0  # definitely not executed
    assert ch.clock.stage_seconds("rpc") == pytest.approx(1e-3)
    assert (ch.failures, ch.timeouts) == (1, 0)
    assert ch.per_shard_failures[0] == 1


def test_outage_roundtrip_is_capped_at_the_deadline():
    ch = make_channel(deadline_s=5e-4, fault_plans={0: OUTAGE})
    with pytest.raises(ShardOutageError):
        ch.call(0, "imp_get", 1)
    assert ch.clock.stage_seconds("rpc") == pytest.approx(5e-4)


def test_timeout_charges_deadline_and_executes_server_side():
    """The ambiguous failure mode: the caller gives up, the mutation
    lands anyway — why every server mutation must be idempotent."""
    ch = make_channel(deadline_s=5e-4)  # below FAST's 1 ms
    with pytest.raises(RpcTimeoutError):
        ch.call(0, "imp_put", 7, [1.0])
    assert ch.servers[0].occupancy("imp") == 1  # it DID execute
    assert ch.clock.stage_seconds("rpc") == pytest.approx(5e-4)
    assert (ch.failures, ch.timeouts) == (0, 1)


def test_brownout_inflates_latency_into_a_timeout_not_an_outage():
    plan = FaultPlan(brownouts=[BrownoutWindow(0.0, 1e9,
                                               latency_multiplier=100.0)])
    ch = make_channel(fault_plans={0: plan})
    with pytest.raises(RpcTimeoutError):
        ch.call(0, "imp_get", 1)
    assert ch.timeouts == 1 and ch.failures == 0


def test_brownout_below_deadline_still_succeeds():
    plan = FaultPlan(brownouts=[BrownoutWindow(0.0, 1e9,
                                               latency_multiplier=5.0)])
    ch = make_channel(fault_plans={0: plan})
    assert ch.call(0, "imp_get", 1) is None  # absent key, but call OK
    assert ch.clock.stage_seconds("rpc") == pytest.approx(
        5.0 * FAST.sample(RPC_OVERHEAD_NBYTES)
    )


def test_unknown_shard_is_a_plain_rpc_error():
    ch = make_channel()
    with pytest.raises(RpcError):
        ch.call(7, "imp_get", 1)


def test_set_fault_plan_clears_with_none():
    ch = make_channel(fault_plans={0: OUTAGE})
    ch.set_fault_plan(0, None)
    assert ch.call(0, "imp_get", 1) is None  # healthy again


# ----------------------------------------------------------------------
# retry policy: deterministic backoff schedules
# ----------------------------------------------------------------------
def test_backoff_schedule_without_jitter_is_exact():
    p = RetryPolicy(max_attempts=4, backoff_base_s=1e-3,
                    backoff_multiplier=2.0, backoff_cap_s=3e-3, jitter=0.0)
    assert p.schedule(0) == pytest.approx([1e-3, 2e-3, 3e-3])  # capped
    assert p.schedule(123) == p.schedule(0)  # jitter off => id-independent


def test_jittered_backoff_is_deterministic_and_bounded():
    p = RetryPolicy(max_attempts=5, jitter=0.5, seed=42)
    q = RetryPolicy(max_attempts=5, jitter=0.5, seed=42)
    for rid in (0, 1, 999):
        sched = p.schedule(rid)
        assert sched == q.schedule(rid)  # same seed => bit-identical
        for a, wait in enumerate(sched):
            raw = min(p.backoff_cap_s,
                      p.backoff_base_s * p.backoff_multiplier ** a)
            assert (1.0 - p.jitter) * raw <= wait <= raw
    # Different request ids decorrelate.
    assert p.schedule(0) != p.schedule(1)
    # Different seeds give different schedules.
    assert p.schedule(0) != RetryPolicy(max_attempts=5, seed=7).schedule(0)


def test_retry_policy_validation():
    for bad in (
        dict(max_attempts=0),
        dict(backoff_base_s=-1.0),
        dict(backoff_multiplier=0.5),
        dict(jitter=1.5),
    ):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)
    with pytest.raises(ValueError):
        RetryPolicy().backoff_s(0, -1)


# ----------------------------------------------------------------------
# client: retries, budget exhaustion, degraded misses
# ----------------------------------------------------------------------
def test_budget_exhaustion_surfaces_as_degraded_miss_not_exception():
    """A cached key whose shard is down must degrade to a miss — the
    fetch protocol re-fetches from the remote tier instead of raising."""
    cli = make_client()
    cli.fetch(1, 5.0, lambda i: [float(i)])  # miss -> admitted to shard 0
    assert 1 in cli.importance
    cli.set_fault_plan(0, OUTAGE)
    out = cli.fetch(1, 5.0, lambda i: [float(i)])
    assert out.payload == [1.0]  # served, from remote
    assert out.source.value == "remote"
    assert cli.degraded_lookups == 1  # the imp probe degraded
    assert cli.dropped_admits == 1  # the re-admit put failed too
    assert 1 in cli.importance  # metadata untouched by the failed refresh
    assert cli.stats.misses == 2 and cli.stats.hits == 0  # both were misses


def test_burned_budget_charges_attempts_plus_backoffs():
    retry = RetryPolicy(max_attempts=3, backoff_base_s=1e-3,
                        backoff_multiplier=2.0, backoff_cap_s=1.0, jitter=0.0)
    cli = make_client(retry=retry, breaker_failure_threshold=100)
    cli.fetch(1, 5.0, lambda i: [float(i)])
    cli.set_fault_plan(0, OUTAGE)
    before = cli.clock.stage_seconds("rpc")
    cli.fetch(1, 5.0, lambda i: [float(i)])
    spent = cli.clock.stage_seconds("rpc") - before
    # Two logical requests (imp_get probe + imp_put refresh), each:
    # 3 outage attempts at 1 ms + backoffs 1 ms + 2 ms.
    per_request = 3 * 1e-3 + 1e-3 + 2e-3
    assert spent == pytest.approx(2 * per_request)
    assert cli.rpc_retries == 4  # 2 per logical request


def test_retries_recover_from_a_transient_outage_window():
    """An outage shorter than the backoff schedule is ridden out: the
    final attempt lands after the window closes."""
    retry = RetryPolicy(max_attempts=3, backoff_base_s=2e-3,
                        backoff_multiplier=2.0, backoff_cap_s=1.0, jitter=0.0)
    cli = make_client(retry=retry)
    # Window [0, 4ms): attempt 1 at t=0 fails (+1ms rpc, +2ms backoff),
    # attempt 2 at t=3ms fails (+1ms, +4ms backoff), attempt 3 at t=8ms OK.
    cli.set_fault_plan(0, FaultPlan(outages=[OutageWindow(0.0, 0.004)]))
    out = cli.fetch(1, 5.0, lambda i: [float(i)])
    assert out.source.value == "remote"
    assert cli.dropped_admits == 0 and 1 in cli.importance
    assert cli.rpc_retries == 2
    assert cli.channel.failures == 2


# ----------------------------------------------------------------------
# client: per-shard circuit breakers
# ----------------------------------------------------------------------
def test_breaker_opens_after_threshold_and_fails_fast_without_time():
    cli = make_client(breaker_failure_threshold=3,
                      breaker_cooldown_s=0.05)
    cli.fetch(1, 5.0, lambda i: [float(i)])
    cli.set_fault_plan(0, OUTAGE)
    cli.fetch(1, 5.0, lambda i: [float(i)])  # 3 failed attempts -> open
    br = cli.breakers[0]
    assert br.state is BreakerState.OPEN
    before = cli.clock.total_seconds
    cli.fetch(1, 5.0, lambda i: [float(i)])  # rejected at the breaker
    assert cli.clock.total_seconds == before  # fail-fast: zero time
    assert br.fast_failures >= 2  # imp probe + admit put both rejected
    snap = cli.shard_snapshots()[0]
    assert snap["breaker"] == "open"
    assert snap["rpc_fast_failures"] == br.fast_failures


def test_breaker_half_open_probe_then_close_on_recovery():
    cli = make_client(breaker_failure_threshold=3, breaker_cooldown_s=0.05,
                      breaker_close_threshold=1)
    cli.fetch(1, 5.0, lambda i: [float(i)])
    cli.set_fault_plan(0, OUTAGE)
    cli.fetch(1, 5.0, lambda i: [float(i)])
    assert cli.breakers[0].state is BreakerState.OPEN
    cli.set_fault_plan(0, None)  # shard recovers...
    cli.fetch(1, 5.0, lambda i: [float(i)])  # ...but cooldown not elapsed
    assert cli.breakers[0].state is BreakerState.OPEN
    # Simulated time passes (the trainer's compute between epochs).
    cli.clock.advance("compute", 0.1)
    out = cli.fetch(1, 5.0, lambda i: [float(i)])  # half-open probe passes
    assert out.source.value == "importance"
    br = cli.breakers[0]
    assert br.state is BreakerState.CLOSED
    transitions = [(e.old.value, e.new.value) for e in br.events]
    assert transitions == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]


def test_half_open_failure_reopens_with_fresh_cooldown():
    cli = make_client(breaker_failure_threshold=3, breaker_cooldown_s=0.05)
    cli.fetch(1, 5.0, lambda i: [float(i)])
    cli.set_fault_plan(0, OUTAGE)
    cli.fetch(1, 5.0, lambda i: [float(i)])
    cli.clock.advance("compute", 0.1)  # cooldown elapses, outage persists
    cli.fetch(1, 5.0, lambda i: [float(i)])  # probe fails -> reopen
    br = cli.breakers[0]
    assert br.state is BreakerState.OPEN
    assert br.opens == 2
    assert ("half_open", "open") in [
        (e.old.value, e.new.value) for e in br.events
    ]


def test_anti_entropy_flush_drains_parked_repairs_after_recovery():
    """A put that failed during an outage may still have executed
    server-side (ambiguous timeout); the queued orphan repair is replayed
    on the next successful call to that shard."""
    cli = make_client(breaker_failure_threshold=100)
    # Fill the 4-slot importance layer.
    for k in range(4):
        cli.fetch(k, float(k + 1), lambda i: [float(i)])
    assert cli.servers[0].occupancy("imp") == 4
    cli.set_fault_plan(0, OUTAGE)
    cli.fetch(9, 9.0, lambda i: [float(i)])  # put dropped, nothing evicted
    assert cli.dropped_admits == 1
    assert 9 not in cli.importance and 0 in cli.importance  # put-first rule
    assert any(cli._pending_deletes.values())  # orphan-put repair queued
    cli.set_fault_plan(0, None)
    cli.fetch(0, 1.0, lambda i: [float(i)])  # hit: successful call flushes
    assert not any(cli._pending_deletes.values())
