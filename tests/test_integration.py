"""Cross-module integration tests asserting the paper's qualitative shapes
at small scale (the benchmarks rerun them at full scale)."""

import numpy as np
import pytest

from repro.baselines.baseline import LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.baselines.icache import ICacheFullPolicy
from repro.baselines.shade import ShadePolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def data():
    ds = make_clustered_dataset(800, n_classes=8, dim=24, rng=0)
    return train_test_split(ds, test_fraction=0.25, rng=1)


def _run(data, policy, epochs=8, seed=2):
    train, test = data
    model = build_model("resnet18", train.dim, train.num_classes, rng=seed)
    cfg = TrainerConfig(epochs=epochs, batch_size=64)
    return Trainer(model, train, test, policy, cfg).run()


@pytest.fixture(scope="module")
def runs(data):
    return {
        "spider": _run(data, SpiderCachePolicy(cache_fraction=0.2, rng=3)),
        "shade": _run(data, ShadePolicy(cache_fraction=0.2, rng=3)),
        "icache": _run(data, ICacheFullPolicy(cache_fraction=0.2, rng=3)),
        "coordl": _run(data, CoorDLPolicy(cache_fraction=0.2, rng=3)),
        "baseline": _run(data, LRUBaselinePolicy(cache_fraction=0.2, rng=3)),
    }


def test_all_policies_learn(runs):
    for name, r in runs.items():
        assert r.best_accuracy > 0.5, name


def test_hit_ratio_ordering(runs):
    """Fig. 14 core ordering: SpiderCache tops every baseline; every
    IS-aware policy beats LRU; CoorDL ~= cache fraction."""
    hits = {k: r.epochs[-1].hit_ratio for k, r in runs.items()}
    assert hits["spider"] > hits["shade"]
    assert hits["spider"] > hits["coordl"]
    assert hits["spider"] > hits["baseline"]
    assert hits["shade"] > hits["baseline"]
    assert hits["coordl"] == pytest.approx(0.2, abs=0.02)
    assert hits["baseline"] < 0.1


def test_training_time_ordering(runs):
    """Table 4 shape: SpiderCache fastest, LRU baseline slowest."""
    times = {k: r.total_time_s for k, r in runs.items()}
    assert times["spider"] < times["coordl"]
    assert times["spider"] < times["baseline"]
    assert times["baseline"] == max(times.values())


def test_spider_speedup_factor(runs):
    """Paper: up to 2.33x over the LRU baseline; we expect >= 1.3x even at
    this tiny scale."""
    speedup = runs["baseline"].total_time_s / runs["spider"].total_time_s
    assert speedup > 1.3


def test_score_std_converges(runs):
    """The importance-score dispersion declines as training converges —
    the Eq. 5 signal the Importance Monitor latches on. (The full Fig. 6(c)
    rise-then-fall shape is reproduced by the E6 benchmark, which measures
    the loss-score dispersion of §3 on the nuisance-noise dataset.)"""
    std = runs["spider"].series("score_std")
    peak = std.argmax()
    assert peak < len(std) / 2  # dispersion peaks early
    assert std[-1] < std[peak] * 0.95  # and has clearly declined since


def test_elastic_ratio_never_below_r_end(runs):
    ratios = runs["spider"].series("imp_ratio")
    assert np.all(ratios >= 0.8 - 1e-9)
    assert np.all(ratios <= 0.9 + 1e-9)


def test_icache_substitutions_recorded(runs):
    assert runs["icache"].series("substitute_ratio").sum() > 0


def test_deterministic_given_seeds(data):
    a = _run(data, SpiderCachePolicy(cache_fraction=0.2, rng=7), epochs=3)
    b = _run(data, SpiderCachePolicy(cache_fraction=0.2, rng=7), epochs=3)
    assert a.final_accuracy == b.final_accuracy
    assert a.total_time_s == pytest.approx(b.total_time_s)
    np.testing.assert_allclose(a.series("hit_ratio"), b.series("hit_ratio"))


def test_larger_cache_higher_hits(data):
    small = _run(data, SpiderCachePolicy(cache_fraction=0.1, rng=3), epochs=5)
    large = _run(data, SpiderCachePolicy(cache_fraction=0.5, rng=3), epochs=5)
    assert large.mean_hit_ratio > small.mean_hit_ratio


def test_cnn_path_end_to_end():
    """The image dataset + CNN models also run through the full stack."""
    from repro.data.images import make_image_dataset
    from repro.data.synthetic import SyntheticDataset
    from repro.nn.models import build_cnn_model

    img = make_image_dataset(200, n_classes=4, image_size=8, rng=0)
    # Wrap images as a dataset the trainer accepts (flattened payload view
    # is what the store serves; the model reshapes internally).
    ds = SyntheticDataset(
        name="img", X=img.X.reshape(len(img), -1), y=img.y,
        kinds=np.zeros(len(img), dtype=np.int64),
        centers=np.zeros((4, img.X[0].size)),
    )
    train, test = train_test_split(ds, rng=1)

    class ReshapingModel:
        def __init__(self):
            self.inner = build_cnn_model((1, 8, 8), 4, channels=(4,),
                                         embedding_dim=16, rng=0)
            self.spec = None
            self.embedding_dim = 16

        def params(self):
            return self.inner.params()

        def train_batch(self, x, y, w=None):
            return self.inner.train_batch(x.reshape(-1, 1, 8, 8), y, w)

        def evaluate(self, x, y, batch_size=256):
            return self.inner.evaluate(x.reshape(-1, 1, 8, 8), y)

    model = ReshapingModel()
    policy = SpiderCachePolicy(cache_fraction=0.3, rng=3)
    cfg = TrainerConfig(epochs=15, batch_size=32, lr=0.1)
    res = Trainer(model, train, test, policy, cfg).run()
    assert res.final_accuracy > 0.3
    assert res.epochs[-1].hit_ratio > 0.1
