"""Synthetic dataset generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    KIND_BOUNDARY,
    KIND_ISOLATED,
    KIND_MISLABELED,
    KIND_WELL,
    make_clustered_dataset,
    train_test_split,
)


@pytest.fixture
def ds():
    return make_clustered_dataset(500, n_classes=5, dim=16, rng=0)


def test_shapes(ds):
    assert ds.X.shape == (500, 16)
    assert ds.y.shape == (500,)
    assert ds.kinds.shape == (500,)
    assert ds.modes.shape == (500,)
    assert ds.centers.shape == (5, 16)
    assert len(ds) == 500
    assert ds.dim == 16
    assert ds.num_classes == 5


def test_labels_in_range(ds):
    assert ds.y.min() >= 0 and ds.y.max() < 5


def test_all_classes_present(ds):
    assert len(np.unique(ds.y)) == 5


def test_kind_fractions_close_to_request():
    ds = make_clustered_dataset(
        2000, n_classes=10, frac_boundary=0.2, frac_isolated=0.1,
        frac_mislabeled=0.05, rng=1,
    )
    f = ds.kind_fractions()
    assert f["boundary"] == pytest.approx(0.2, abs=0.01)
    assert f["isolated"] == pytest.approx(0.1, abs=0.01)
    assert f["mislabeled"] == pytest.approx(0.05, abs=0.01)
    assert f["well"] == pytest.approx(0.65, abs=0.02)


def test_well_samples_near_center(ds):
    well = (ds.kinds == KIND_WELL) & (ds.modes == 0)
    for i in np.flatnonzero(well)[:50]:
        d = np.linalg.norm(ds.X[i] - ds.centers[ds.y[i]])
        assert d < 4 * np.sqrt(ds.dim)  # within a few stds


def test_mislabeled_near_wrong_center(ds):
    mis = np.flatnonzero(ds.kinds == KIND_MISLABELED)
    for i in mis[:20]:
        d_own = np.linalg.norm(ds.X[i] - ds.centers[ds.y[i]])
        d_all = np.linalg.norm(ds.X[i] - ds.centers, axis=1)
        assert d_all.min() < d_own  # closer to some other class


def test_isolated_far_from_center(ds):
    iso = np.flatnonzero(ds.kinds == KIND_ISOLATED)
    well = np.flatnonzero((ds.kinds == KIND_WELL) & (ds.modes == 0))
    d_iso = np.mean(
        [np.linalg.norm(ds.X[i] - ds.centers[ds.y[i]]) for i in iso]
    )
    d_well = np.mean(
        [np.linalg.norm(ds.X[i] - ds.centers[ds.y[i]]) for i in well]
    )
    assert d_iso > 2 * d_well


def test_boundary_between_two_centers(ds):
    b = np.flatnonzero(ds.kinds == KIND_BOUNDARY)
    well = np.flatnonzero((ds.kinds == KIND_WELL) & (ds.modes == 0))
    # Boundary samples sit much closer to a second center than core points.
    def second_center_dist(i):
        return np.sort(np.linalg.norm(ds.X[i] - ds.centers, axis=1))[1]

    b_second = np.mean([second_center_dist(i) for i in b[:30]])
    w_second = np.mean([second_center_dist(i) for i in well[:30]])
    assert b_second < 0.8 * w_second


def test_boundary_on_own_side_by_default(ds):
    """Default boundary range keeps samples closer to their own center."""
    b = np.flatnonzero(ds.kinds == KIND_BOUNDARY)
    own_closer = 0
    for i in b:
        d_all = np.linalg.norm(ds.X[i] - ds.centers, axis=1)
        own_closer += d_all.argmin() == ds.y[i]
    assert own_closer / len(b) > 0.7


def test_boundary_ambiguous_range():
    ds = make_clustered_dataset(
        600, n_classes=5, dim=16, frac_boundary=0.3,
        boundary_w_range=(0.4, 0.6), rng=5,
    )
    b = np.flatnonzero(ds.kinds == KIND_BOUNDARY)
    wrong_side = 0
    for i in b:
        d_all = np.linalg.norm(ds.X[i] - ds.centers, axis=1)
        wrong_side += d_all.argmin() != ds.y[i]
    # Ambiguous range puts a large fraction on the wrong side.
    assert wrong_side / len(b) > 0.25


def test_minority_mode_fraction():
    ds = make_clustered_dataset(2000, n_classes=4, frac_minority=0.25, rng=2)
    well = ds.kinds == KIND_WELL
    frac = ds.modes[well].mean()
    assert frac == pytest.approx(0.25, abs=0.03)


def test_minority_only_on_well_samples(ds):
    assert np.all(ds.modes[ds.kinds != KIND_WELL] == 0)


def test_deterministic_given_seed():
    a = make_clustered_dataset(100, rng=7)
    b = make_clustered_dataset(100, rng=7)
    np.testing.assert_array_equal(a.X, b.X)
    np.testing.assert_array_equal(a.y, b.y)


def test_invalid_fractions():
    with pytest.raises(ValueError):
        make_clustered_dataset(100, frac_boundary=0.5, frac_isolated=0.5,
                               frac_mislabeled=0.1)
    with pytest.raises(ValueError):
        make_clustered_dataset(100, frac_minority=1.0)
    with pytest.raises(ValueError):
        make_clustered_dataset(3, n_classes=10)


def test_get_item(ds):
    x, y = ds.get_item(10)
    np.testing.assert_array_equal(x, ds.X[10])
    assert y == ds.y[10]


def test_subset_preserves_fields(ds):
    sub = ds.subset(np.arange(50))
    assert len(sub) == 50
    np.testing.assert_array_equal(sub.X, ds.X[:50])
    np.testing.assert_array_equal(sub.modes, ds.modes[:50])


def test_train_test_split_partition(ds):
    train, test = train_test_split(ds, test_fraction=0.2, rng=3)
    assert len(train) + len(test) == len(ds)
    assert len(test) == 100


def test_train_test_split_invalid(ds):
    with pytest.raises(ValueError):
        train_test_split(ds, test_fraction=0.0)


def test_mismatched_arrays_rejected():
    from repro.data.synthetic import SyntheticDataset

    with pytest.raises(ValueError):
        SyntheticDataset(
            name="bad", X=np.zeros((5, 2)), y=np.zeros(4, dtype=np.int64),
            kinds=np.zeros(5, dtype=np.int64), centers=np.zeros((2, 2)),
        )


def test_class_skew_long_tail():
    ds = make_clustered_dataset(2000, n_classes=10, class_skew=1.5, rng=0)
    counts = np.bincount(ds.y, minlength=10)
    assert counts.sum() == 2000
    # Head class dominates; every class keeps at least 2 samples.
    assert counts[0] > 5 * counts[9]
    assert counts.min() >= 2
    # Zipf shape: counts decrease (weakly) with class index.
    assert counts[0] >= counts[4] >= counts[9]


def test_class_skew_zero_balanced():
    ds = make_clustered_dataset(1000, n_classes=10, class_skew=0.0, rng=0)
    counts = np.bincount(ds.y, minlength=10)
    assert counts.max() - counts.min() <= 1


def test_class_skew_validation():
    with pytest.raises(ValueError):
        make_clustered_dataset(100, class_skew=-1.0)


def test_class_skew_nuisance_composable():
    ds = make_clustered_dataset(500, n_classes=5, class_skew=1.0,
                                nuisance_dims=4, nuisance_std=5.0, rng=1)
    assert np.isfinite(ds.X).all()
    assert len(np.unique(ds.y)) == 5


@given(
    n=st.integers(20, 300),
    k=st.integers(2, 10),
    seed=st.integers(0, 1000),
    skew=st.sampled_from([0.0, 0.8, 1.5]),
)
@settings(max_examples=25, deadline=None)
def test_property_generator_valid(n, k, seed, skew):
    if skew > 0 and n < 4 * k:
        n = 4 * k  # skew guarantees >= 2 per class; keep it satisfiable
    ds = make_clustered_dataset(n, n_classes=k, dim=8, class_skew=skew, rng=seed)
    assert len(ds) == n
    assert set(np.unique(ds.kinds)).issubset({0, 1, 2, 3})
    assert ds.y.min() >= 0 and ds.y.max() < k
    assert np.isfinite(ds.X).all()
