"""Dataset preset registry tests."""

import pytest

from repro.data.registry import DATASET_PRESETS, make_dataset


def test_presets_exist():
    assert {"cifar10-like", "cifar100-like", "imagenet-like"} <= set(DATASET_PRESETS)


def test_unknown_preset():
    with pytest.raises(KeyError):
        make_dataset("mnist-like")


def test_cifar10_like_structure():
    ds = make_dataset("cifar10-like", rng=0, n_samples=500)
    assert len(ds) == 500
    assert ds.num_classes == 10
    assert ds.item_nbytes == 3 * 1024


def test_cifar100_has_10x_classes():
    c10 = DATASET_PRESETS["cifar10-like"]
    c100 = DATASET_PRESETS["cifar100-like"]
    assert c100["n_classes"] == 10 * c10["n_classes"]
    assert c100["n_samples"] == c10["n_samples"]


def test_imagenet_like_large_items():
    ds = make_dataset("imagenet-like", rng=0, n_samples=300)
    assert ds.item_nbytes > 50 * 1024


def test_override_kwargs():
    ds = make_dataset("cifar10-like", rng=0, n_samples=100, dim=8)
    assert ds.dim == 8


def test_default_sizes_sane():
    for name, p in DATASET_PRESETS.items():
        assert p["n_samples"] >= 1000, name
        assert p["n_classes"] >= 10, name
