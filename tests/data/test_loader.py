"""DataLoader tests."""

import numpy as np
import pytest

from repro.core.semantic_cache import FetchOutcome, FetchSource
from repro.data.loader import Batch, DataLoader


def _identity_fetch(payloads):
    def fetch(i):
        return FetchOutcome(i, i, payloads[i], FetchSource.REMOTE)

    return fetch


def test_batching_sizes():
    payloads = np.arange(10.0)[:, None]
    labels = np.arange(10) % 3
    dl = DataLoader(labels, _identity_fetch(payloads), batch_size=4)
    batches = list(dl.iter_epoch(np.arange(10)))
    assert [len(b) for b in batches] == [4, 4, 2]


def test_collation_matches_order():
    payloads = np.arange(20.0)[:, None]
    labels = np.arange(20)
    dl = DataLoader(labels, _identity_fetch(payloads), batch_size=8)
    order = np.array([5, 3, 9, 1, 0, 7, 2, 8])
    (batch,) = list(dl.iter_epoch(order))
    np.testing.assert_array_equal(batch.requested, order)
    np.testing.assert_array_equal(batch.X[:, 0], order.astype(float))
    np.testing.assert_array_equal(batch.y, order)


def test_substitution_labels_follow_served():
    payloads = np.arange(10.0)[:, None]
    labels = np.arange(10) * 10

    def fetch(i):
        # Every request for an odd id is served id-1 instead.
        served = i - 1 if i % 2 else i
        return FetchOutcome(i, served, payloads[served], FetchSource.HOMOPHILY)

    dl = DataLoader(labels, fetch, batch_size=4)
    (b,) = list(dl.iter_epoch(np.array([1, 2, 3, 4])))
    np.testing.assert_array_equal(b.served, [0, 2, 2, 4])
    np.testing.assert_array_equal(b.y, [0, 20, 20, 40])
    assert b.substitution_count == 2


def test_invalid_batch_size():
    with pytest.raises(ValueError):
        DataLoader(np.zeros(2, dtype=int), lambda i: None, batch_size=0)


def test_sources_recorded():
    payloads = np.zeros((4, 1))

    def fetch(i):
        src = FetchSource.IMPORTANCE if i < 2 else FetchSource.REMOTE
        return FetchOutcome(i, i, payloads[i], src)

    dl = DataLoader(np.zeros(4, dtype=int), fetch, batch_size=4)
    (b,) = list(dl.iter_epoch(np.arange(4)))
    assert b.sources == [
        FetchSource.IMPORTANCE,
        FetchSource.IMPORTANCE,
        FetchSource.REMOTE,
        FetchSource.REMOTE,
    ]


def test_empty_order_yields_nothing():
    dl = DataLoader(np.zeros(4, dtype=int), lambda i: None, batch_size=2)
    assert list(dl.iter_epoch(np.array([], dtype=int))) == []
