"""Procedural image dataset tests."""

import numpy as np
import pytest

from repro.data.images import make_image_dataset


def test_shapes():
    ds = make_image_dataset(100, n_classes=5, image_size=12, channels=1, rng=0)
    assert ds.X.shape == (100, 1, 12, 12)
    assert ds.y.shape == (100,)
    assert ds.templates.shape == (5, 1, 12, 12)
    assert ds.image_shape == (1, 12, 12)
    assert ds.num_classes == 5
    assert len(ds) == 100


def test_multichannel():
    ds = make_image_dataset(20, n_classes=2, image_size=8, channels=3, rng=1)
    assert ds.X.shape == (20, 3, 8, 8)


def test_all_classes_present():
    ds = make_image_dataset(100, n_classes=10, rng=2)
    assert len(np.unique(ds.y)) == 10


def test_samples_correlate_with_own_template():
    """A sample should correlate more with its own class template than with
    the average foreign template."""
    ds = make_image_dataset(60, n_classes=4, image_size=12, noise_std=0.2,
                            max_shift=0, rng=3)
    own, other = [], []
    for i in range(len(ds)):
        x = ds.X[i].ravel()
        for c in range(4):
            t = ds.templates[c].ravel()
            corr = np.corrcoef(x, t)[0, 1]
            (own if c == ds.y[i] else other).append(corr)
    assert np.mean(own) > np.mean(other) + 0.3


def test_deterministic():
    a = make_image_dataset(30, rng=5)
    b = make_image_dataset(30, rng=5)
    np.testing.assert_array_equal(a.X, b.X)


def test_get_item():
    ds = make_image_dataset(10, rng=0)
    x, y = ds.get_item(3)
    np.testing.assert_array_equal(x, ds.X[3])
    assert y == ds.y[3]


def test_too_small_image():
    with pytest.raises(ValueError):
        make_image_dataset(10, image_size=2)


def test_cnn_learns_image_dataset():
    """End-to-end sanity: a small CNN beats chance on the images."""
    from repro.nn.models import build_cnn_model
    from repro.nn.optim import SGD

    ds = make_image_dataset(200, n_classes=4, image_size=8, noise_std=0.3, rng=7)
    m = build_cnn_model((1, 8, 8), 4, channels=(4,), embedding_dim=16, rng=0)
    opt = SGD(m.params(), lr=0.1, momentum=0.9)
    for _ in range(40):
        m.zero_grad()
        m.train_batch(ds.X, ds.y)
        opt.step()
    acc, _ = m.evaluate(ds.X, ds.y)
    assert acc > 0.6
