"""Transform tests."""

import numpy as np
import pytest

from repro.data.transforms import (
    Compose,
    FeatureDropout,
    GaussianNoise,
    HorizontalFlipImage,
    Normalize,
    RandomScale,
    RandomShiftImage,
)


def test_normalize_standardizes():
    rng = np.random.default_rng(0)
    data = rng.normal(5.0, 3.0, (500, 8))
    t = Normalize.fit(data)
    out = t(data)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)


def test_normalize_zero_std_guard():
    data = np.ones((10, 3))
    t = Normalize.fit(data)  # constant features -> std forced to 1
    out = t(data)
    assert np.isfinite(out).all()
    with pytest.raises(ValueError):
        Normalize(np.zeros(2), np.array([1.0, 0.0]))


def test_normalize_deterministic_eval():
    t = Normalize(np.zeros(3), np.ones(3))
    x = np.random.default_rng(1).normal(size=(4, 3))
    np.testing.assert_array_equal(t(x, training=False), t(x, training=True))


def test_gaussian_noise_train_only():
    t = GaussianNoise(sigma=0.5, rng=0)
    x = np.zeros((100, 10))
    out_train = t(x, training=True)
    out_eval = t(x, training=False)
    assert out_train.std() > 0.3
    np.testing.assert_array_equal(out_eval, x)
    with pytest.raises(ValueError):
        GaussianNoise(sigma=-1)


def test_feature_dropout_fraction():
    t = FeatureDropout(p=0.3, rng=0)
    x = np.ones((200, 50))
    out = t(x, training=True)
    assert 0.25 < (out == 0).mean() < 0.35
    np.testing.assert_array_equal(t(x, training=False), x)
    with pytest.raises(ValueError):
        FeatureDropout(p=1.0)


def test_random_scale_bounds():
    t = RandomScale(0.5, 2.0, rng=0)
    x = np.ones((100, 4))
    out = t(x, training=True)
    per_sample = out[:, 0]
    assert np.all((per_sample >= 0.5) & (per_sample <= 2.0))
    # Scale is constant within a sample.
    np.testing.assert_allclose(out, per_sample[:, None] * np.ones((100, 4)))
    with pytest.raises(ValueError):
        RandomScale(2.0, 1.0)


def test_random_shift_preserves_content():
    t = RandomShiftImage(max_shift=2, rng=0)
    x = np.random.default_rng(2).normal(size=(5, 1, 8, 8))
    out = t(x, training=True)
    # Circular shift preserves the multiset of pixel values per image.
    for i in range(5):
        np.testing.assert_allclose(np.sort(out[i].ravel()),
                                   np.sort(x[i].ravel()))
    with pytest.raises(ValueError):
        t(np.zeros((2, 8)), training=True)


def test_horizontal_flip_probability():
    t = HorizontalFlipImage(p=1.0, rng=0)
    x = np.arange(8.0).reshape(1, 1, 2, 4)
    out = t(x, training=True)
    np.testing.assert_array_equal(out[0, 0, 0], [3, 2, 1, 0])
    t0 = HorizontalFlipImage(p=0.0, rng=0)
    np.testing.assert_array_equal(t0(x, training=True), x)


def test_compose_order_and_cost():
    t = Compose([Normalize(np.zeros(4), np.full(4, 2.0)), RandomScale(rng=0)])
    assert t.cost_us_per_item == pytest.approx(
        Normalize.cost_us_per_item + RandomScale.cost_us_per_item
    )
    x = np.full((3, 4), 4.0)
    out = t(x, training=False)
    np.testing.assert_array_equal(out, np.full((3, 4), 2.0))


def test_trainer_charges_preprocess_stage():
    from repro.data.synthetic import make_clustered_dataset, train_test_split
    from repro.nn.models import build_model
    from repro.train.policy_base import TrainingPolicy
    from repro.train.trainer import Trainer, TrainerConfig

    ds = make_clustered_dataset(300, n_classes=4, dim=8, rng=0)
    train, test = train_test_split(ds, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    t = Compose([GaussianNoise(0.05, rng=5)])
    res = Trainer(model, train, test, TrainingPolicy(rng=3),
                  TrainerConfig(epochs=2, batch_size=64, transform=t)).run()
    assert res.epochs[0].preprocess_s > 0
    e = res.epochs[0]
    assert e.epoch_time_s == pytest.approx(
        e.data_load_s + e.compute_s + e.is_visible_s + e.preprocess_s
    )
    # Preprocessing stays a small fraction of the epoch (paper Fig. 3(a)).
    assert e.preprocess_s < 0.1 * e.epoch_time_s
