"""Golden regression test for the ``repro report`` CLI.

The fixture under ``fixtures/golden-run/`` is a checked-in artifact set
from a small traced prefetching run (``repro train --policy spidercache
--samples 120 --epochs 2 --batch-size 32 --prefetch-workers 3 --seed 7
--trace-dir ...``); ``golden-report.txt`` is the report it rendered at
the time. Any change to the report layout, the trace aggregation, or the
consistency check shows up here as a diff — update the golden file
deliberately, with the rendered output, when the change is intended.
"""

from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_report_cli_matches_golden_fixture(capsys):
    assert main(["report", str(FIXTURES / "golden-run")]) == 0
    out = capsys.readouterr().out
    golden = (FIXTURES / "golden-report.txt").read_text()
    assert out.splitlines() == golden.splitlines()


def test_golden_fixture_consistency_check_passes():
    """The checked-in prefetch trace reconciles with its epoch metrics."""
    golden = (FIXTURES / "golden-report.txt").read_text()
    assert "trace vs per-epoch metrics: OK" in golden
    assert "prefetch overlap:" in golden


def test_report_cli_matches_golden_shard_fixture(capsys):
    """Sharded-run fixture (``--world-size 2 --shared-cache --cache-shards
    2``, same seed recipe; see EXPERIMENTS.md for regeneration) renders
    the shards section and the multi-worker consistency skip."""
    assert main(["report", str(FIXTURES / "golden-shard-run")]) == 0
    out = capsys.readouterr().out
    golden = (FIXTURES / "golden-shard-report.txt").read_text()
    assert out.splitlines() == golden.splitlines()


def test_golden_shard_fixture_has_shard_section():
    golden = (FIXTURES / "golden-shard-report.txt").read_text()
    assert "shards (final state):" in golden
    assert "consistency check skipped: multi-worker run" in golden
    assert "cache_shards=2" in golden
