"""Metrics registry tests: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_monotone():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_write_wins():
    g = Gauge("x")
    assert g.value is None
    g.set(0.5)
    g.set(0.25)
    assert g.value == 0.25


def test_histogram_bucketing():
    h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 5.0, 50.0, 1000.0):
        h.observe(v)
    # Inclusive upper edges; 1000 overflows.
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.mean == pytest.approx(1056.5 / 5)


def test_histogram_quantile_and_empty():
    h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
    assert h.mean == 0.0
    assert h.quantile(0.5) == 0.0
    for _ in range(9):
        h.observe(0.5)
    h.observe(500.0)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 100.0  # overflow reports largest finite bound
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(10.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("bad", bounds=())


def test_registry_get_or_create():
    reg = MetricsRegistry()
    reg.counter("a").inc(3)
    reg.counter("a").inc(2)
    assert reg.counter("a").value == 5
    reg.gauge("g").set(1.0)
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_snapshot_and_reset():
    reg = MetricsRegistry()
    reg.counter("c").inc(7)
    reg.gauge("g").set(0.9)
    reg.histogram("h", bounds=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 7}
    assert snap["gauges"] == {"g": 0.9}
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["histograms"]["h"]["counts"] == [1, 0]
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
