"""Reporting tests: trace aggregation, artifact export, rendering.

Includes the observability acceptance test: a traced SpiderCache run's
JSONL aggregation reproduces the trainer's per-epoch EpochMetrics
(hit ratios and stage times) to float precision.
"""

import json

import pytest

from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.obs import (
    InMemoryRecorder,
    JsonlRecorder,
    MetricsRegistry,
    Observer,
    aggregate_trace,
    render_report,
    write_run_artifacts,
)
from repro.obs.report import EPOCHS_FILE, SUMMARY_FILE, TRACE_FILE
from repro.train.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One traced SpiderCache run: (result, events, registry, run_dir)."""
    out = tmp_path_factory.mktemp("traced-run")
    ds = make_clustered_dataset(400, n_classes=4, dim=16, rng=0)
    train, test = train_test_split(ds, test_fraction=0.25, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    recorder = JsonlRecorder(out / TRACE_FILE)
    registry = MetricsRegistry()
    observer = Observer(recorder=recorder, metrics=registry)
    policy = SpiderCachePolicy(cache_fraction=0.3, rng=3)
    trainer = Trainer(
        model, train, test, policy,
        TrainerConfig(epochs=3, batch_size=64),
        observer=observer, rng=4,
    )
    result = trainer.run()
    recorder.close()
    write_run_artifacts(
        result, out, metrics_snapshot=registry.snapshot(),
        meta={"seed": 0},
    )
    from repro.obs import read_jsonl

    return result, read_jsonl(out / TRACE_FILE), registry, out


def test_trace_aggregation_reproduces_epoch_metrics(traced_run):
    result, events, _, _ = traced_run
    aggs = aggregate_trace(events)
    assert len(aggs) == len(result.epochs)
    for a, em in zip(aggs, result.epochs):
        assert a.epoch == em.epoch
        assert a.hit_ratio == pytest.approx(em.hit_ratio, abs=1e-12)
        assert a.exact_hit_ratio == pytest.approx(em.exact_hit_ratio, abs=1e-12)
        assert a.substitute_ratio == pytest.approx(em.substitute_ratio, abs=1e-12)
        assert a.data_load_s == pytest.approx(em.data_load_s, abs=1e-9)
        assert a.compute_s == pytest.approx(em.compute_s, abs=1e-9)
        assert a.is_visible_s == pytest.approx(em.is_visible_s, abs=1e-9)
        assert a.epoch_time_s == pytest.approx(em.epoch_time_s, abs=1e-9)


def test_trace_fetch_counts_match_metrics(traced_run):
    _, events, registry, _ = traced_run
    fetches = [e for e in events if e["kind"] == "fetch"]
    full = registry.snapshot()
    snap = full["counters"]
    assert len(fetches) == snap["cache.fetches"]
    remote = sum(1 for e in fetches if e["source"] == "remote")
    assert remote == snap["cache.fetch.remote"]
    # Every remote store fetch is attributed to a fetch or prefetch event.
    traced_latency = sum(
        e.get("latency_s", 0.0) for e in events
        if e["kind"] in ("fetch", "prefetch") and e.get("source") != "importance"
        and e.get("source") != "homophily" and e.get("source") != "degraded"
        and e.get("source") != "skipped"
    )
    hist = full["histograms"]["store.fetch_latency_s"]
    assert traced_latency == pytest.approx(hist["total"], abs=1e-9)


def test_artifacts_written(traced_run):
    _, _, _, out = traced_run
    assert (out / EPOCHS_FILE).is_file()
    assert (out / SUMMARY_FILE).is_file()
    rows = [json.loads(l) for l in (out / EPOCHS_FILE).read_text().splitlines()]
    assert len(rows) == 3
    assert rows[0]["policy"] == "spidercache"
    assert "hit_ratio" in rows[0]
    summary = json.loads((out / SUMMARY_FILE).read_text())
    assert summary["metrics"]["counters"]["cache.fetches"] > 0
    assert summary["meta"] == {"seed": 0}
    assert "final_accuracy" in summary["summary"]


def test_render_report_consistency_ok(traced_run):
    _, _, _, out = traced_run
    text = render_report(out)
    assert "policy=spidercache" in text
    assert "trace vs per-epoch metrics: OK" in text
    assert "stage totals:" in text
    assert "counters:" in text


def test_render_report_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        render_report(tmp_path / "nope")


def test_aggregate_explicit_params_override():
    events = [
        {"kind": "fetch", "epoch": 0, "requested_id": 1, "served_id": 1,
         "source": "remote", "latency_s": 8.0},
        {"kind": "fetch", "epoch": 0, "requested_id": 2, "served_id": 2,
         "source": "importance", "latency_s": 1e-5},
    ]
    (a,) = aggregate_trace(events, io_workers=4, hit_latency_s=1e-5)
    assert a.misses == 1 and a.exact_hits == 1
    assert a.data_load_s == pytest.approx(8.0 / 4 + 1e-5)


def test_aggregate_degraded_excluded_from_hit_ratio():
    events = [
        {"kind": "fetch", "epoch": 0, "requested_id": 1, "served_id": 9,
         "source": "degraded", "latency_s": 0.0},
        {"kind": "fetch", "epoch": 0, "requested_id": 2, "served_id": 2,
         "source": "remote", "latency_s": 0.01},
        {"kind": "fetch", "epoch": 0, "requested_id": 3, "served_id": None
         or 0, "source": "skipped", "latency_s": 0.0},
    ]
    (a,) = aggregate_trace(events, io_workers=1, hit_latency_s=0.0)
    assert a.degraded_serves == 1
    assert a.requests == 2  # remote + skipped; degraded excluded
    assert a.hit_ratio == 0.0
    assert a.skipped == 1


def test_report_skips_consistency_check_after_restore(tmp_path):
    (tmp_path / EPOCHS_FILE).write_text(
        json.dumps({"epoch": 0, "policy": "p", "model": "m", "dataset": "d",
                    "val_accuracy": 0.5, "hit_ratio": 0.0,
                    "exact_hit_ratio": 0.0, "substitute_ratio": 0.0,
                    "data_load_s": 1.0, "compute_s": 1.0,
                    "is_visible_s": 0.0, "epoch_time_s": 2.0}) + "\n"
    )
    trace = [
        {"kind": "restore", "epoch": 0, "path": "x", "at_epoch": 0, "batch": 3},
        {"kind": "fetch", "epoch": 0, "requested_id": 0, "served_id": 0,
         "source": "remote", "latency_s": 1.0},
    ]
    with (tmp_path / TRACE_FILE).open("w") as fh:
        for ev in trace:
            fh.write(json.dumps(ev) + "\n")
    text = render_report(tmp_path)
    assert "consistency check skipped" in text
    assert "restore" in text
