"""Prometheus text exposition and log-bucket generator tests."""

import math

import pytest

from repro.obs import (
    SPAN_BUCKETS_S,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)


def _snapshot():
    reg = MetricsRegistry()
    reg.counter("cache.fetches").inc(42)
    reg.gauge("load.p99_s").set(0.0125)
    reg.gauge("unset.gauge")  # created but never set: must be skipped
    h = reg.histogram("rpc.latency_s", bounds=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 5.0):
        h.observe(v)
    return reg.snapshot()


def test_render_counters_with_total_suffix():
    text = render_prometheus(_snapshot())
    assert "# TYPE repro_cache_fetches_total counter" in text
    assert "\nrepro_cache_fetches_total 42\n" in text


def test_render_gauges_and_skips_unset():
    text = render_prometheus(_snapshot())
    assert "# TYPE repro_load_p99_s gauge" in text
    assert "repro_load_p99_s 0.0125" in text
    assert "unset_gauge" not in text


def test_render_histogram_cumulative_with_inf():
    lines = render_prometheus(_snapshot()).splitlines()
    hist = [l for l in lines if l.startswith("repro_rpc_latency_s")]
    assert hist == [
        'repro_rpc_latency_s_bucket{le="0.001"} 1',
        'repro_rpc_latency_s_bucket{le="0.01"} 2',
        'repro_rpc_latency_s_bucket{le="0.1"} 3',
        'repro_rpc_latency_s_bucket{le="+Inf"} 4',
        "repro_rpc_latency_s_sum 5.0555",
        "repro_rpc_latency_s_count 4",
    ]
    assert "# TYPE repro_rpc_latency_s histogram" in lines


def test_render_sanitizes_names_and_prefix():
    reg = MetricsRegistry()
    reg.counter("shard0.imp-len").inc()
    text = render_prometheus(reg.snapshot(), prefix="spider_")
    assert "spider_shard0_imp_len_total 1" in text


def test_render_leading_digit_gets_underscore():
    reg = MetricsRegistry()
    reg.counter("0weird").inc()
    text = render_prometheus(reg.snapshot(), prefix="")
    assert "_0weird_total 1" in text


def test_render_ends_with_trailing_newline():
    text = render_prometheus(_snapshot())
    assert text.endswith("\n") and not text.endswith("\n\n")


def test_render_empty_snapshot():
    assert render_prometheus({"counters": {}, "gauges": {}, "histograms": {}}) == "\n"


def test_render_is_parseable_exposition_format():
    """Every non-comment line is `name{labels}? value` with a float value."""
    for line in render_prometheus(_snapshot()).splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        float(value)  # must parse
        bare = name_part.split("{", 1)[0]
        assert bare == bare.strip() and bare.replace("_", "a").isalnum()


def test_log_buckets_geometric_and_rounded():
    b = log_buckets(1e-3, 1.0, per_decade=3)
    assert b[0] == pytest.approx(1e-3)
    assert b[-1] >= 1.0
    assert list(b) == sorted(b)
    # Uniform ratio (three per decade ~ 10^(1/3)) within rounding.
    ratios = [b[i + 1] / b[i] for i in range(len(b) - 1)]
    for r in ratios:
        assert r == pytest.approx(10 ** (1 / 3), rel=1e-4)
    # Bounds carry at most 6 significant digits.
    for v in b:
        assert float("%.6g" % v) == v


def test_log_buckets_validation():
    with pytest.raises(ValueError):
        log_buckets(0.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1e-3, 1.0, per_decade=0)


def test_span_buckets_cover_six_decades():
    assert SPAN_BUCKETS_S[0] == pytest.approx(1e-6)
    assert SPAN_BUCKETS_S[-1] >= 100.0
    assert len(SPAN_BUCKETS_S) == int(
        math.ceil(8 * 3)
    ) + 1  # 8 decades at 3/decade, inclusive
