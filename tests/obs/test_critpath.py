"""Critical-path analyzer tests: exact tiling, breakdowns, report rows."""

import pytest

from repro.obs import build_span_forest, critical_path, critpath_lines
from repro.obs.critpath import self_time_breakdown


def _span(sid, parent, name, t0, t1, **attrs):
    return dict(
        kind="span", trace="t", id=sid, parent=parent, name=name,
        t0_s=t0, t1_s=t1, **attrs,
    )


def _root(events):
    roots, _ = build_span_forest(events)
    assert len(roots) == 1
    return roots[0]


def test_leaf_root_is_all_self_time():
    root = _root([_span("r", None, "epoch", 0.0, 2.0)])
    segs = critical_path(root)
    assert segs == [(root, 0.0, 2.0)]


def test_segments_exactly_tile_the_root():
    root = _root([
        _span("r", None, "epoch", 0.0, 1.0),
        _span("a", "r", "batch", 0.1, 0.4),
        _span("b", "r", "batch", 0.5, 0.9),
        _span("c", "a", "compute", 0.2, 0.4),
    ])
    segs = critical_path(root)
    # Earliest first, contiguous, covering [t0, t1] exactly.
    assert segs[0][1] == 0.0 and segs[-1][2] == 1.0
    for (_, _, hi), (_, lo, _) in zip(segs, segs[1:]):
        assert hi == pytest.approx(lo)
    assert sum(hi - lo for _, lo, hi in segs) == pytest.approx(root.dur_s)
    names = [(n.name, lo, hi) for n, lo, hi in segs]
    assert names == [
        ("epoch", 0.0, 0.1),     # gap before first batch
        ("batch", 0.1, 0.2),     # a's own lead-in
        ("compute", 0.2, 0.4),   # a's child bounds its tail
        ("epoch", 0.4, 0.5),     # gap between batches
        ("batch", 0.5, 0.9),     # b, no children
        ("epoch", 0.9, 1.0),     # tail
    ]


def test_overlapping_children_attribute_to_last_finisher():
    root = _root([
        _span("r", None, "window", 0.0, 1.0),
        _span("a", "r", "fetch", 0.0, 0.6),
        _span("b", "r", "fetch", 0.3, 1.0),
    ])
    segs = critical_path(root)
    names = [(n.event["id"], lo, hi) for n, lo, hi in segs]
    # b bounds the tail back to its start; a only the uncovered prefix.
    assert names == [("a", 0.0, 0.3), ("b", 0.3, 1.0)]


def test_children_clipped_to_parent_interval():
    root = _root([
        _span("r", None, "epoch", 0.0, 1.0),
        _span("a", "r", "batch", -0.5, 1.5),  # corrupt: exceeds parent
    ])
    segs = critical_path(root)
    assert segs == [(root.children[0], 0.0, 1.0)]


def test_zero_length_spans_contribute_nothing():
    root = _root([
        _span("r", None, "epoch", 0.0, 1.0),
        _span("a", "r", "batch", 0.5, 0.5),
    ])
    segs = critical_path(root)
    assert [(n.name, lo, hi) for n, lo, hi in segs] == [("epoch", 0.0, 1.0)]


def test_self_time_breakdown_sums_and_sorts():
    root = _root([
        _span("r", None, "epoch", 0.0, 1.0),
        _span("a", "r", "batch", 0.0, 0.3),
        _span("b", "r", "batch", 0.5, 0.9),
    ])
    breakdown = self_time_breakdown(critical_path(root))
    assert breakdown == {"batch": pytest.approx(0.7),
                         "epoch": pytest.approx(0.3)}
    assert list(breakdown) == ["batch", "epoch"]  # descending self time


def test_critpath_lines_groups_by_epoch():
    events = [
        _span("r", None, "run", 0.0, 2.0),
        _span("e0", "r", "epoch", 0.0, 1.0, epoch=0),
        _span("e1", "r", "epoch", 1.0, 2.0, epoch=1),
        _span("b0", "e0", "batch", 0.0, 0.8),
        _span("b1", "e1", "batch", 1.0, 1.5),
    ]
    lines = critpath_lines(events)
    assert len(lines) == 3  # one per epoch + the total row
    assert lines[0].startswith("  epoch 0")
    assert "batch 0.8000s (80%)" in lines[0]
    assert lines[1].startswith("  epoch 1")
    assert lines[2].startswith("  total 2 epoch(s) 2.0000s:")
    assert "batch 1.3000s (65%)" in lines[2]


def test_critpath_lines_prefers_window_groups_for_load_traces():
    events = [
        _span("r", None, "load_run", 0.0, 1.0),
        _span("w0", "r", "window", 0.0, 1.0, window=0),
        _span("f", "w0", "fetch", 0.2, 0.9),
    ]
    lines = critpath_lines(events)
    assert lines[0].startswith("  window 0")
    assert "fetch 0.7000s (70%)" in lines[0]


def test_critpath_lines_caps_rows():
    events = [_span("r", None, "run", 0.0, 16.0)]
    for i in range(16):
        events.append(
            _span(f"e{i}", "r", "epoch", float(i), float(i + 1), epoch=i)
        )
    lines = critpath_lines(events, max_rows=8)
    assert lines[8] == "  ... 8 more"
    assert lines[9].startswith("  total 16 epoch(s)")


def test_critpath_lines_empty_without_spans():
    assert critpath_lines([{"kind": "fetch", "epoch": 0}]) == []
