"""Reflection tests enforcing the zero-overhead-when-disabled contract.

Two halves:

* a static AST sweep proving every ``Observer.on_*`` hook call in
  ``src/repro`` sits behind an ``.active`` guard — either an enclosing
  ``if <obs>.active:`` block (any ancestor ``if``/conditional whose test
  reads ``.active``) or the early-return form
  ``if not <obs>.active: return`` as the enclosing function's first
  statement;
* a dynamic check that a full training run against an *inactive*
  observer emits zero trace events and allocates zero ``Span`` objects.
"""

import ast
from pathlib import Path

import repro
from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.obs import InMemoryRecorder, MetricsRegistry, Observer
from repro.obs.observer import Observer as _ObserverClass
from repro.train.trainer import Trainer, TrainerConfig

SRC_ROOT = Path(repro.__file__).resolve().parent

#: The hook vocabulary, harvested from the Observer class itself so new
#: hooks are covered the day they are added.
HOOK_NAMES = frozenset(
    name for name in vars(_ObserverClass) if name.startswith("on_")
)


def _test_reads_active(test: ast.expr) -> bool:
    """Does this condition expression read an ``.active`` attribute?"""
    return any(
        isinstance(node, ast.Attribute) and node.attr == "active"
        for node in ast.walk(test)
    )


def _is_active_early_return(stmt: ast.stmt) -> bool:
    """Matches ``if not <recv>.active: return`` (helper-method form)."""
    return (
        isinstance(stmt, ast.If)
        and isinstance(stmt.test, ast.UnaryOp)
        and isinstance(stmt.test.op, ast.Not)
        and _test_reads_active(stmt.test.operand)
        and len(stmt.body) == 1
        and isinstance(stmt.body[0], ast.Return)
    )


def _unguarded_hook_calls(tree: ast.AST):
    """Yield (lineno, hook_name) for every unguarded Observer hook call."""
    # Parent links let us walk outward from a call to its guards.
    parents = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in HOOK_NAMES
        ):
            continue
        guarded = False
        cursor = node
        while cursor is not None:
            if isinstance(cursor, (ast.If, ast.IfExp)) and _test_reads_active(
                cursor.test
            ):
                guarded = True
                break
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                body = cursor.body
                # Skip a leading docstring when looking for the guard.
                if (
                    body
                    and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                ):
                    body = body[1:]
                if body and _is_active_early_return(body[0]):
                    guarded = True
                break  # stop at the enclosing function either way
            cursor = parents.get(cursor)
        if not guarded:
            yield node.lineno, node.func.attr


def test_every_hook_call_site_is_active_guarded():
    violations = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path == SRC_ROOT / "obs" / "observer.py":
            continue  # the definitions themselves
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, hook in _unguarded_hook_calls(tree):
            rel = path.relative_to(SRC_ROOT.parent)
            violations.append(f"{rel}:{lineno} calls {hook} unguarded")
    assert not violations, (
        "Observer hook calls missing an `.active` guard:\n  "
        + "\n  ".join(violations)
    )


def test_hook_vocabulary_is_nonempty_and_looks_right():
    assert {"on_fetch", "on_batch", "on_rpc", "on_audit"} <= HOOK_NAMES


def test_inactive_observer_run_emits_nothing_and_allocates_no_spans(
    monkeypatch,
):
    allocations = []
    import repro.obs.spans as spans_mod

    orig_init = spans_mod.Span.__init__

    def counting_init(self, *args, **kwargs):
        allocations.append(1)
        orig_init(self, *args, **kwargs)

    monkeypatch.setattr(spans_mod.Span, "__init__", counting_init)

    rec = InMemoryRecorder()
    # Inactive but with a live recorder AND a span tracker attached: only
    # the call-site guards keep this silent.
    obs = Observer(
        recorder=rec, metrics=MetricsRegistry(), active=False, span_seed=7
    )
    ds = make_clustered_dataset(200, n_classes=4, dim=16, rng=0)
    train, test = train_test_split(ds, test_fraction=0.25, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    result = Trainer(
        model, train, test,
        SpiderCachePolicy(cache_fraction=0.3, rng=3),
        TrainerConfig(epochs=2, batch_size=64),
        observer=obs,
    ).run()
    assert len(result.epochs) == 2
    assert rec.events == []
    assert allocations == []
    snap = obs.metrics.snapshot()
    assert snap["counters"] == {} and snap["histograms"] == {}
