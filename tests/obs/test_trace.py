"""Trace recorder tests: null, in-memory, and JSONL sinks."""

import json

import pytest

from repro.obs import (
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    read_jsonl,
)


def test_null_recorder_disabled_and_silent():
    rec = NullRecorder()
    assert rec.enabled is False
    rec.emit({"kind": "fetch"})  # no-op, no error
    rec.close()


def test_in_memory_recorder_accumulates():
    rec = InMemoryRecorder()
    assert rec.enabled is True
    rec.emit({"kind": "fetch", "epoch": 0})
    rec.emit({"kind": "batch", "epoch": 0})
    rec.emit({"kind": "fetch", "epoch": 1})
    assert len(rec.events) == 3
    assert [e["epoch"] for e in rec.of_kind("fetch")] == [0, 1]
    rec.clear()
    assert rec.events == []


def test_jsonl_recorder_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlRecorder(path) as rec:
        rec.emit({"kind": "run_start", "epoch": -1, "policy": "spidercache"})
        rec.emit({"kind": "fetch", "epoch": 0, "requested_id": 7,
                  "served_id": 7, "source": "remote", "latency_s": 0.004})
    assert rec.emitted == 2
    events = read_jsonl(path)
    assert events[0]["kind"] == "run_start"
    assert events[1]["served_id"] == 7
    assert events[1]["latency_s"] == pytest.approx(0.004)


def test_jsonl_recorder_lazy_open(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    rec = JsonlRecorder(path)
    assert not path.exists()  # nothing until the first event
    rec.emit({"kind": "fetch", "epoch": 0})
    assert path.exists()
    rec.close()
    rec.close()  # idempotent


def test_jsonl_lines_flushed_immediately(tmp_path):
    path = tmp_path / "trace.jsonl"
    rec = JsonlRecorder(path)
    rec.emit({"kind": "fetch", "epoch": 0})
    # Readable before close: a preempted run leaves a usable journal.
    assert json.loads(path.read_text().splitlines()[0])["kind"] == "fetch"
    rec.close()


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"a"}\n\n{"kind":"b"}\n')
    assert [e["kind"] for e in read_jsonl(path)] == ["a", "b"]
