"""Trace recorder tests: null, in-memory, and JSONL sinks."""

import json

import pytest

from repro.obs import (
    SEGMENT_KIND,
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    read_jsonl,
)


def test_null_recorder_disabled_and_silent():
    rec = NullRecorder()
    assert rec.enabled is False
    rec.emit({"kind": "fetch"})  # no-op, no error
    rec.close()


def test_in_memory_recorder_accumulates():
    rec = InMemoryRecorder()
    assert rec.enabled is True
    rec.emit({"kind": "fetch", "epoch": 0})
    rec.emit({"kind": "batch", "epoch": 0})
    rec.emit({"kind": "fetch", "epoch": 1})
    assert len(rec.events) == 3
    assert [e["epoch"] for e in rec.of_kind("fetch")] == [0, 1]
    rec.clear()
    assert rec.events == []


def test_jsonl_recorder_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlRecorder(path) as rec:
        rec.emit({"kind": "run_start", "epoch": -1, "policy": "spidercache"})
        rec.emit({"kind": "fetch", "epoch": 0, "requested_id": 7,
                  "served_id": 7, "source": "remote", "latency_s": 0.004})
    # 2 payload events + the segment header written on first open.
    assert rec.emitted == 3
    events = read_jsonl(path)
    assert events[0]["kind"] == SEGMENT_KIND
    assert events[0]["resumed"] is False
    assert events[1]["kind"] == "run_start"
    assert events[2]["served_id"] == 7
    assert events[2]["latency_s"] == pytest.approx(0.004)


def test_jsonl_recorder_lazy_open(tmp_path):
    path = tmp_path / "sub" / "trace.jsonl"
    rec = JsonlRecorder(path)
    assert not path.exists()  # nothing until the first event
    rec.emit({"kind": "fetch", "epoch": 0})
    assert path.exists()
    rec.close()
    rec.close()  # idempotent


def test_jsonl_lines_flushed_immediately(tmp_path):
    path = tmp_path / "trace.jsonl"
    rec = JsonlRecorder(path)
    rec.emit({"kind": "fetch", "epoch": 0})
    # Readable before close: a preempted run leaves a usable journal.
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == SEGMENT_KIND
    assert json.loads(lines[1])["kind"] == "fetch"
    rec.close()


def test_read_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"a"}\n\n{"kind":"b"}\n')
    assert [e["kind"] for e in read_jsonl(path)] == ["a", "b"]


def test_jsonl_recorder_appends_segments_across_reopens(tmp_path):
    """A resumed run extends the journal instead of truncating it."""
    path = tmp_path / "trace.jsonl"
    with JsonlRecorder(path) as rec:
        rec.emit({"kind": "a"})
    with JsonlRecorder(path) as rec2:
        rec2.emit({"kind": "b"})
    events = read_jsonl(path)
    assert [e["kind"] for e in events] == [SEGMENT_KIND, "a", SEGMENT_KIND, "b"]
    assert events[0]["resumed"] is False
    assert events[2]["resumed"] is True


def test_jsonl_recorder_resume_over_truncated_tail(tmp_path):
    """Appending after a mid-write crash must not glue the new segment
    header onto the dead writer's partial final line — that would turn
    a tolerable truncated tail into mid-file corruption read_jsonl
    refuses. The recorder drops the fragment (no complete event lost)
    and the journal stays fully parseable."""
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"s"}\n{"kind":"a"}\n{"kind":"b","x":')
    with JsonlRecorder(path) as rec:
        rec.emit({"kind": "c"})
    events, truncated = read_jsonl(path, return_truncated=True)
    assert truncated is False
    assert [e["kind"] for e in events] == ["s", "a", SEGMENT_KIND, "c"]
    assert events[2]["resumed"] is True


def test_read_jsonl_drops_truncated_final_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"a"}\n{"kind":"b"')  # writer died mid-line
    events, truncated = read_jsonl(path, return_truncated=True)
    assert [e["kind"] for e in events] == ["a"]
    assert truncated is True
    # Default signature stays a plain list for existing callers.
    assert [e["kind"] for e in read_jsonl(path)] == ["a"]


def test_read_jsonl_clean_file_reports_untruncated(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"a"}\n')
    events, truncated = read_jsonl(path, return_truncated=True)
    assert truncated is False and len(events) == 1


def test_read_jsonl_raises_on_mid_file_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"kind":"a"}\n{oops\n{"kind":"b"}\n')
    with pytest.raises(json.JSONDecodeError):
        read_jsonl(path)
