"""Span tracker determinism and trace-reconstruction tests."""

import threading

from repro.obs import (
    InMemoryRecorder,
    MetricsRegistry,
    Observer,
    SpanTracker,
    build_span_forest,
    find_spans,
    format_span_tree,
)
from repro.obs.spans import span_seed_from


def _tracker(seed=7):
    events = []

    def emit(kind, **fields):
        events.append(dict(kind=kind, **fields))

    return SpanTracker(seed, emit), events


def test_trace_id_is_deterministic_per_seed():
    t1, _ = _tracker(7)
    t2, _ = _tracker(7)
    t3, _ = _tracker(8)
    assert t1.trace_id == t2.trace_id == "254f20d698982ebc"
    assert t3.trace_id != t1.trace_id
    assert len(t1.trace_id) == 16
    assert span_seed_from(7) == int(t1.trace_id, 16)


def test_same_seed_emits_byte_identical_events():
    def run(tracker):
        outer = tracker.start("epoch", 0.0)
        inner = tracker.start("batch", 0.1, slot=3)
        tracker.record("data_load", 0.1, 0.2, slot=3)
        tracker.finish(inner, 0.5)
        tracker.finish(outer, 1.0, batches=1)

    t1, ev1 = _tracker(7)
    t2, ev2 = _tracker(7)
    run(t1)
    run(t2)
    assert ev1 == ev2
    assert len(ev1) == 3
    assert all(e["kind"] == "span" for e in ev1)


def test_parent_child_linkage_and_emit_order():
    tracker, events = _tracker()
    outer = tracker.start("epoch", 0.0)
    inner = tracker.start("batch", 0.1)
    assert tracker.current_id() == inner.span_id
    tracker.finish(inner, 0.4)
    tracker.finish(outer, 1.0)
    # Children close (and so emit) before parents.
    assert [e["name"] for e in events] == ["batch", "epoch"]
    assert events[0]["parent"] == outer.span_id
    assert events[1]["parent"] is None
    assert events[0]["trace"] == events[1]["trace"] == tracker.trace_id


def test_record_leaf_inherits_innermost_parent():
    tracker, events = _tracker()
    outer = tracker.start("batch", 0.0)
    tracker.record("compute", 0.0, 0.2, slot=1)
    tracker.finish(outer, 0.3)
    leaf = events[0]
    assert leaf["name"] == "compute"
    assert leaf["parent"] == outer.span_id
    assert leaf["slot"] == 1
    # No parent when the stack is empty.
    tracker.record("orphan", 1.0, 1.1)
    assert events[-1]["parent"] is None


def test_out_of_order_finish_closes_descendants():
    tracker, events = _tracker()
    outer = tracker.start("run", 0.0)
    mid = tracker.start("epoch", 0.1)
    tracker.start("batch", 0.2)  # never finished explicitly
    tracker.finish(outer, 2.0)  # error path: close the root directly
    assert [e["name"] for e in events] == ["batch", "epoch", "run"]
    # Descendants are closed at the same instant as the forced finish.
    assert all(e["t1_s"] == 2.0 for e in events)
    assert tracker.current_id() is None
    assert mid.span_id == events[1]["id"]


def test_key_minting_is_thread_stable():
    """IDs of keyed spans depend on the key alone, not interleaving."""
    tracker, _ = _tracker(7)
    baseline = {k: tracker._mint(k) for k in range(32)}

    tracker2, _ = _tracker(7)
    results = {}
    lock = threading.Lock()

    def worker(keys):
        for k in keys:
            sid = tracker2._mint(k)
            with lock:
                results[k] = sid

    threads = [
        threading.Thread(target=worker, args=(range(i, 32, 4),))
        for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results == baseline


def test_stacks_are_per_thread():
    tracker, events = _tracker()
    outer = tracker.start("run", 0.0)
    seen = {}

    def worker():
        # A worker thread starts from an empty stack: no implicit parent.
        span = tracker.start("fetch", 0.1, key=42)
        seen["parent"] = span.parent_id
        tracker.finish(span, 0.2)

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    assert seen["parent"] is None
    tracker.finish(outer, 1.0)
    assert [e["name"] for e in events] == ["fetch", "run"]


def test_build_span_forest_links_any_order():
    tracker, events = _tracker()
    outer = tracker.start("epoch", 0.0)
    inner = tracker.start("batch", 0.1)
    tracker.record("data_load", 0.1, 0.15)
    tracker.finish(inner, 0.4)
    tracker.finish(outer, 1.0)
    # File order has parents last; shuffle harder to prove order-free.
    roots, by_id = build_span_forest(reversed(events))
    assert len(roots) == 1 and len(by_id) == 3
    root = roots[0]
    assert root.name == "epoch" and root.dur_s == 1.0
    assert [c.name for c in root.children] == ["batch"]
    assert [c.name for c in root.children[0].children] == ["data_load"]


def test_build_span_forest_orphans_become_roots():
    events = [
        {"kind": "span", "id": "aa", "parent": "missing", "name": "batch",
         "t0_s": 0.5, "t1_s": 0.9},
        {"kind": "span", "id": "bb", "parent": None, "name": "epoch",
         "t0_s": 0.0, "t1_s": 1.0},
        {"kind": "fetch", "epoch": 0},  # non-span events are ignored
    ]
    roots, by_id = build_span_forest(events)
    assert {r.name for r in roots} == {"epoch", "batch"}
    assert len(by_id) == 2


def test_find_spans_matches_name_and_attrs():
    tracker, events = _tracker()
    win = tracker.start("window", 0.0)
    a = tracker.start("fetch", 0.1, requested_id=17)
    tracker.finish(a, 0.2)
    b = tracker.start("fetch", 0.3, requested_id=18)
    tracker.finish(b, 0.4)
    tracker.finish(win, 1.0)
    roots, _ = build_span_forest(events)
    hits = find_spans(roots, "fetch", requested_id=17)
    assert len(hits) == 1 and hits[0].event["requested_id"] == 17
    assert len(find_spans(roots, "fetch")) == 2
    assert find_spans(roots, "fetch", requested_id=99) == []


def test_format_span_tree_renders_nested_block():
    tracker, events = _tracker()
    outer = tracker.start("batch", 0.0, slot=2)
    tracker.record("compute", 0.0, 0.25)
    tracker.finish(outer, 0.5)
    roots, _ = build_span_forest(events)
    text = format_span_tree(roots[0])
    lines = text.splitlines()
    assert lines[0].startswith("batch 0.500000s (t=0.000000..0.500000)")
    assert "slot=2" in lines[0]
    assert lines[1].startswith("  compute 0.250000s")


def test_observer_stamps_flat_events_with_ambient_span():
    rec = InMemoryRecorder()
    obs = Observer(recorder=rec, metrics=MetricsRegistry(), span_seed=7)
    span = obs.span_start("fetch", 0.0, requested_id=3)
    obs.on_breaker("closed", "open", 0.1, where="shard0")
    obs.span_end(span, 0.2)
    breaker = rec.of_kind("breaker")[0]
    assert breaker["trace"] == obs.spans.trace_id
    assert breaker["span"] == span.span_id
    # The span event itself is not double-stamped by Observer.emit.
    span_ev = rec.of_kind("span")[0]
    assert span_ev["id"] == span.span_id
    # Closing also feeds the span-duration histogram.
    snap = obs.metrics.snapshot()
    assert snap["histograms"]["span.fetch_s"]["count"] == 1


def test_observer_without_span_seed_allocates_no_tracker():
    obs = Observer(recorder=InMemoryRecorder(), metrics=MetricsRegistry())
    assert obs.spans is None
    assert obs.span_start("x", 0.0) is None
    obs.span_end(None, 1.0)  # no-op
    obs.span_record("x", 0.0, 1.0)  # no-op
    assert obs.metrics.snapshot()["histograms"] == {}
