"""Observer tests: null behaviour, latency attribution, component events."""

import numpy as np
import pytest

from repro.core.elastic import ElasticCacheManager
from repro.core.semantic_cache import FetchSource, SemanticCache
from repro.obs import NULL_OBSERVER, InMemoryRecorder, MetricsRegistry, Observer
from repro.resilience import CircuitBreaker
from repro.resilience.errors import DegradedModeError
from repro.storage.backends import RemoteStore


def _observer():
    rec = InMemoryRecorder()
    reg = MetricsRegistry()
    return Observer(recorder=rec, metrics=reg), rec, reg


def test_null_observer_inactive():
    assert NULL_OBSERVER.active is False
    assert NULL_OBSERVER.recorder.enabled is False


def test_components_default_to_null_observer():
    cache = SemanticCache(total_capacity=8)
    store = RemoteStore(np.zeros((4, 2)))
    assert cache._obs is NULL_OBSERVER
    assert store._obs is NULL_OBSERVER
    # An un-instrumented fetch works and records nothing anywhere.
    store.get(0)
    assert NULL_OBSERVER.recorder.enabled is False


def test_store_latency_consumed_by_fetch_event():
    obs, rec, reg = _observer()
    store = RemoteStore(np.zeros((4, 2)), item_nbytes=1024)
    store.attach_observer(obs)
    cache = SemanticCache(total_capacity=8)
    cache.attach_observer(obs)
    obs.set_epoch(0)

    out = cache.fetch(1, 1.0, store.get)
    assert out.source is FetchSource.REMOTE
    (ev,) = rec.of_kind("fetch")
    assert ev["requested_id"] == 1
    assert ev["source"] == "remote"
    assert ev["latency_s"] > 0
    # Consumed: nothing pending for the next event.
    assert obs.take_store_latency() == 0.0
    assert reg.counter("store.fetches").value == 1
    assert reg.counter("cache.fetch.remote").value == 1


def test_cache_hit_uses_hit_latency():
    obs, rec, _ = _observer()
    obs.hit_latency_s = 1e-5
    cache = SemanticCache(total_capacity=8, imp_ratio=1.0)
    cache.attach_observer(obs)
    cache.importance.admit(3, np.zeros(2), score=1.0)
    out = cache.fetch(3, 1.0, lambda i: np.zeros(2))
    assert out.source is FetchSource.IMPORTANCE
    (ev,) = rec.of_kind("fetch")
    assert ev["source"] == "importance"
    assert ev["latency_s"] == pytest.approx(1e-5)


def test_importance_admission_events():
    obs, rec, reg = _observer()
    cache = SemanticCache(total_capacity=4, imp_ratio=1.0)
    cache.attach_observer(obs)
    imp = cache.importance
    for k in range(4):
        imp.admit(k, np.zeros(2), score=float(k + 1))
    imp.admit(9, np.zeros(2), score=0.1)   # below min: rejected
    imp.admit(10, np.zeros(2), score=9.0)  # evicts the min
    admits = rec.of_kind("importance_admit")
    assert len(admits) == 6
    assert admits[4]["admitted"] is False
    assert admits[5]["admitted"] is True and admits[5]["evicted_key"] is not None
    assert reg.counter("importance.admitted").value == 5
    assert reg.counter("importance.rejected").value == 1
    assert reg.counter("importance.evictions").value == 1


def test_degraded_serve_events():
    obs, rec, reg = _observer()
    cache = SemanticCache(total_capacity=10, imp_ratio=0.5)
    cache.attach_observer(obs)
    cache.update_homophily(3, np.full(4, 3.0), [30])
    cache.enable_degraded_mode()

    def boom(index):
        raise DegradedModeError("down")

    out = cache.fetch(99, 1.0, boom)
    assert out.source is FetchSource.DEGRADED
    (ev,) = rec.of_kind("fetch")
    assert ev["source"] == "degraded"
    assert reg.counter("degraded.substituted").value == 1


def test_breaker_transition_events():
    obs, rec, reg = _observer()
    br = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
    br.attach_observer(obs)
    br.record_failure(0.0)
    br.record_failure(0.1)  # opens
    assert br.allow(2.0)    # half-open probe
    br.record_success(2.1)  # closes (close_threshold=1)
    kinds = [(e["old"], e["new"]) for e in rec.of_kind("breaker")]
    assert kinds == [
        ("closed", "open"), ("open", "half_open"), ("half_open", "closed")
    ]
    assert reg.counter("breaker.opens").value == 1
    assert reg.counter("breaker.transitions").value == 3


def test_elastic_decision_events():
    obs, rec, reg = _observer()
    mgr = ElasticCacheManager(r_start=0.9, r_end=0.3, total_epochs=10)
    mgr.attach_observer(obs)
    for epoch in range(3):
        mgr.step(epoch, accuracy=0.5 + 0.01 * epoch, score_std=0.5)
    evs = rec.of_kind("elastic")
    assert [e["decision_epoch"] for e in evs] == [0, 1, 2]
    assert reg.gauge("elastic.imp_ratio").value == pytest.approx(
        mgr.current_ratio
    )


def test_events_stamped_with_epoch():
    obs, rec, _ = _observer()
    obs.set_epoch(4)
    obs.emit("fetch", requested_id=0)
    assert rec.events[0]["epoch"] == 4


def test_metrics_only_observer_skips_trace():
    reg = MetricsRegistry()
    obs = Observer(metrics=reg)  # NullRecorder by default
    obs.on_fetch(0, 0, FetchSource.REMOTE)
    assert reg.counter("cache.fetches").value == 1
    assert obs.recorder.enabled is False


def test_observation_does_not_perturb_training():
    """A traced run and an untraced run are bit-identical: observation is
    read-only and the null path costs nothing but an attribute check."""
    from repro.data.synthetic import make_clustered_dataset, train_test_split
    from repro.nn.models import build_model
    from repro.core.policy import SpiderCachePolicy
    from repro.train.trainer import Trainer, TrainerConfig

    def run(observer):
        ds = make_clustered_dataset(200, n_classes=4, dim=8, rng=0)
        train, test = train_test_split(ds, test_fraction=0.25, rng=1)
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.25, rng=3)
        t = Trainer(model, train, test, policy,
                    TrainerConfig(epochs=2, batch_size=32),
                    observer=observer, rng=4)
        return t.run()

    plain = run(None)
    obs, rec, _ = _observer()
    traced = run(obs)
    assert len(rec.events) > 0
    for pe, te in zip(plain.epochs, traced.epochs):
        assert te.train_loss == pe.train_loss
        assert te.val_accuracy == pe.val_accuracy
        assert te.hit_ratio == pe.hit_ratio
        assert te.epoch_time_s == pe.epoch_time_s
