# Convenience targets for the SpiderCache reproduction.

PYTHON ?= python

.PHONY: install test coverage bench bench-csv bench-trajectory bench-tracing examples smoke faults concurrency dist load transport report all

# Where `make report` writes (and reads back) its traced demo run.
REPORT_DIR ?= results/traced-run

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Tier-1 suite with the CI coverage gate (needs pytest-cov from [dev]).
coverage:
	$(PYTHON) -m pytest tests/ \
		--cov=repro --cov-report=term-missing:skip-covered \
		--cov-fail-under=80

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Perf trajectory: measure hot-path throughput, write BENCH_<date>.json at
# the repo root, and soft-gate against the last committed baseline (warns
# on >20% regressions, never fails). Commit the new file to move the
# baseline forward; see EXPERIMENTS.md "Performance trajectory".
bench-trajectory:
	$(PYTHON) -m repro bench --check

# Tracing-overhead soft gate: full observability (JSONL + spans) vs
# NULL_OBSERVER on the same seeded run. Warns past the 3x budget, never
# fails; `--write` refreshes the committed benchmarks/BENCH_TRACING.json.
bench-tracing:
	$(PYTHON) benchmarks/tracing_overhead.py --write

# Same benches, also dumping every table as CSV into results/.
bench-csv:
	mkdir -p results
	REPRO_BENCH_CSV_DIR=results $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

smoke:
	$(PYTHON) -m repro train --policy spidercache --samples 600 --epochs 3

# Traced demo run + rendered observability report.
report:
	$(PYTHON) -m repro train --policy spidercache --samples 600 --epochs 3 \
		--trace-dir $(REPORT_DIR)
	$(PYTHON) -m repro report $(REPORT_DIR)

# Tier-2 threaded stress tests (-m concurrency) plus the deterministic
# scheduler/race/property suite under an increased Hypothesis budget.
concurrency:
	$(PYTHON) -m pytest tests/ -m concurrency
	REPRO_HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest tests/concurrency/

# Sharded cache-service suite — every dist-marked test (differential
# oracle, retry/backoff, migration, chaos) under the increased
# Hypothesis budget, plus a sharded smoke run with a live ring resize.
dist:
	REPRO_HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest -m dist
	$(PYTHON) -m repro train --policy spidercache --samples 600 --epochs 3 \
		--world-size 2 --shared-cache --cache-shards 2 \
		--resize-shards-at 1:4

# Load-harness suite (-m load: trace properties, replay differential,
# autoscaler, burn-rate alerts, golden report) under the increased
# Hypothesis budget, plus a small autoscaled replay smoke tuned to
# exercise one grow and one shrink, with an SLO tight enough to fire the
# burn-rate alerts (the golden-fixture recipe; see tests/load/).
load:
	REPRO_HYPOTHESIS_PROFILE=ci $(PYTHON) -m pytest -m load
	$(PYTHON) -m repro load --requests 6000 --keys 400 --capacity 200 \
		--window 300 --base-rate 300 --slo-ms 2 --seed 7

# Wall-clock transport suite (-m wallclock: sim/real parity oracle +
# real-process chaos) with a hard timeout and NO retries — these tests
# spawn real worker processes, and a flake here is a bug, not weather.
# Plus a real-transport train + load smoke, exactly what CI runs.
transport:
	timeout 300 $(PYTHON) -m pytest -m wallclock -p no:cacheprovider
	timeout 120 $(PYTHON) -m repro train --policy spidercache --samples 600 \
		--epochs 2 --world-size 2 --shared-cache --cache-shards 2 \
		--transport real
	timeout 120 $(PYTHON) -m repro load --requests 8000 --transport real

# Tier-2 fault-injection suite plus the scenario sweep CLI.
faults:
	$(PYTHON) -m pytest tests/ -m resilience
	$(PYTHON) -m repro faults --samples 600 --epochs 3

all: test bench
