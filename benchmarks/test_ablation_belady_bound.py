"""A4 — Ablation: Belady-OPT headroom under different samplers.

The paper's thesis in oracle form: under random sampling even a clairvoyant
cache is weak — the locality that makes caching work is *created by the
importance sampler*. This bench records real epoch-order traces from the
uniform sampler and from a trained SpiderCache policy, then compares LRU,
MinIO, and the Belady optimum on both, plus SpiderCache's own achieved hit
ratio against the OPT bound of its own trace.
"""

import numpy as np
from conftest import make_split, print_table

from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.trace import AccessTrace, belady_hit_ratio, record_trace, replay
from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

EPOCHS = 8
CACHE_FRACTION = 0.2


class _TraceRecorder(SpiderCachePolicy):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.orders = []

    def epoch_order(self, epoch):
        order = super().epoch_order(epoch)
        self.orders.append(order.copy())
        return order


def _measure():
    train, test = make_split("cifar10-like", 1000, seed=0)
    n = len(train)
    cap = int(CACHE_FRACTION * n)

    # Importance-sampled trace from a real training run.
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    policy = _TraceRecorder(cache_fraction=CACHE_FRACTION, rng=3)
    res = Trainer(model, train, test, policy,
                  TrainerConfig(epochs=EPOCHS, batch_size=64)).run()
    is_trace = AccessTrace(
        np.concatenate(policy.orders),
        list(np.cumsum([len(o) for o in policy.orders])),
    )

    rng = np.random.default_rng(4)
    uniform_trace = record_trace(lambda e: rng.permutation(n), epochs=EPOCHS)

    rows = []
    out = {}
    for name, trace in [("random sampling", uniform_trace),
                        ("importance sampling", is_trace)]:
        lru = replay(trace, LRUCache(cap)).hit_ratio
        minio = replay(trace, MinIOCache(cap)).hit_ratio
        opt = belady_hit_ratio(trace, cap)
        rows.append((name, f"{lru:.3f}", f"{minio:.3f}", f"{opt:.3f}"))
        out[name] = dict(lru=lru, minio=minio, opt=opt)
    out["spider_achieved"] = res.mean_hit_ratio
    return rows, out


def test_ablation_belady_bound(once, benchmark):
    rows, out = once(_measure)
    print_table(
        f"A4: OPT headroom by sampler (20% cache, {EPOCHS} epochs)",
        ["trace", "LRU", "MinIO", "Belady OPT"],
        rows,
    )
    print(f"SpiderCache achieved (incl. substitutions): "
          f"{out['spider_achieved']:.3f}")
    benchmark.extra_info["rows"] = rows
    rand, imp = out["random sampling"], out["importance sampling"]
    # Under random sampling even OPT is capped near the cache fraction...
    assert rand["opt"] < CACHE_FRACTION + 0.05
    # ...while the IS trace is far more cacheable for every policy.
    assert imp["opt"] > 1.5 * rand["opt"]
    assert imp["lru"] > rand["lru"]
    # OPT bounds every online policy on its own trace.
    assert rand["opt"] >= max(rand["lru"], rand["minio"]) - 1e-9
    assert imp["opt"] >= max(imp["lru"], imp["minio"]) - 1e-9