"""A2 — Ablation: HNSW recall/speed vs the exact backend.

The paper adopts HNSW for sublinear neighbor search; the reproduction
defaults to exact search at simulator scale. This ablation validates the
HNSW implementation: recall@10 grows with ef, and scoring through the HNSW
backend agrees with the exact backend on clustered embeddings.
"""

import time

import numpy as np
from conftest import print_table

from repro.ann.brute import BruteForceIndex
from repro.ann.hnsw import HNSWIndex

N = 1500
DIM = 32
EFS = [8, 16, 32, 64, 128]


def _measure():
    rng = np.random.default_rng(0)
    # Clustered data (like trained embeddings).
    centers = rng.normal(0, 4, (10, DIM))
    data = centers[rng.integers(10, size=N)] + rng.normal(0, 1, (N, DIM))
    brute = BruteForceIndex(DIM)
    brute.add_batch(np.arange(N), data)
    hnsw = HNSWIndex(DIM, M=16, ef_construction=100, rng=1)
    t0 = time.perf_counter()
    hnsw.add_batch(np.arange(N), data)
    build_s = time.perf_counter() - t0

    queries = rng.normal(0, 4, (50, DIM))
    rows = []
    recalls = {}
    for ef in EFS:
        rs = []
        t0 = time.perf_counter()
        for q in queries:
            h_ids, _ = hnsw.search(q, k=10, ef=ef)
            b_ids, _ = brute.search(q, k=10)
            rs.append(len(set(h_ids) & set(b_ids)) / 10)
        dt = (time.perf_counter() - t0) / len(queries)
        recalls[ef] = float(np.mean(rs))
        rows.append((str(ef), f"{recalls[ef]:.3f}", f"{dt * 1e3:.2f}ms"))
    return rows, recalls, build_s


def test_ablation_hnsw_recall(once, benchmark):
    rows, recalls, build_s = once(_measure)
    print_table(
        f"A2: HNSW recall@10 vs ef (n={N}, dim={DIM}, build {build_s:.1f}s)",
        ["ef", "recall@10", "per-query (incl. oracle)"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Recall is monotone-ish in ef and high at the default operating point.
    assert recalls[128] >= recalls[8]
    assert recalls[64] > 0.9
    assert recalls[128] > 0.95