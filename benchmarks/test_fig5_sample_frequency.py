"""E3 — Fig. 5: per-sample access frequency, IS vs default sampling.

Paper: default sampling touches each item exactly once per epoch; under
importance sampling frequencies spread out (some samples drawn many times,
others rarely) and the skew evolves across epochs.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.policy_base import TrainingPolicy
from repro.train.trainer import Trainer, TrainerConfig

EPOCH_MARKS = [1, 3, 6]


class _FrequencyRecorder(SpiderCachePolicy):
    """SpiderCache policy that records per-epoch access histograms."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.histograms = {}

    def epoch_order(self, epoch):
        order = super().epoch_order(epoch)
        n = self._require_ctx().num_samples
        self.histograms[epoch] = np.bincount(order, minlength=n)
        return order


def _measure():
    split = make_split(n_samples=1000, seed=0)
    train, test = split
    model = build_model("resnet18", train.dim, train.num_classes, rng=1)
    policy = _FrequencyRecorder(cache_fraction=0.0, rng=2)
    Trainer(model, train, test, policy,
            TrainerConfig(epochs=max(EPOCH_MARKS) + 1, batch_size=64)).run()

    rows = []
    # Default sampling: every count is exactly 1.
    rows.append(("default", "any", "1", "1", "0", "0.00"))
    for e in EPOCH_MARKS:
        h = policy.histograms[e]
        rows.append(
            (
                "importance",
                str(e),
                str(h.max()),
                f"{h.mean():.2f}",
                str(int((h == 0).sum())),
                f"{h.std():.2f}",
            )
        )
    return rows, policy


def test_fig5_sample_frequency(once, benchmark):
    rows, policy = once(_measure)
    print_table(
        "Fig 5: sample access frequency per epoch",
        ["sampler", "epoch", "max", "mean", "never-drawn", "std"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Shape: IS skews frequencies (max >> 1, some samples never drawn) and
    # the skew changes across epochs.
    for r in rows[1:]:
        assert int(r[2]) > 1
        assert int(r[4]) > 0
    stds = [float(r[5]) for r in rows[1:]]
    assert len(set(stds)) > 1  # importance evolves across epochs
