"""E8 — Table 2: HNSW+PQ index storage efficiency.

Reproduces the paper's storage table from the byte-accounting model and
validates the model against an actually-constructed small index + PQ codec.
"""

import sys

import numpy as np
from conftest import print_table

from repro.ann.hnsw import HNSWIndex
from repro.ann.index_stats import DATASET_CATALOG, IndexStorageModel
from repro.ann.pq import ProductQuantizer


def _fmt_bytes(b: float) -> str:
    for unit in ["B", "KB", "MB", "GB", "TB", "PB"]:
        if b < 1024:
            return f"{b:.1f}{unit}"
        b /= 1024
    return f"{b:.1f}EB"


def _measure():
    model = IndexStorageModel()
    rows = []
    for name, n, raw, reported in DATASET_CATALOG:
        est = model.index_size_bytes(n)
        rows.append(
            (
                name,
                f"{n:,}",
                _fmt_bytes(raw),
                _fmt_bytes(est),
                f"{model.compression_ratio(n, raw):,.0f}x",
            )
        )

    # Validation: build a real 2000-element index and compare measured
    # in-memory footprint (PQ codes + adjacency) against the model.
    rng = np.random.default_rng(0)
    data = rng.normal(size=(2000, 64))
    idx = HNSWIndex(64, M=16, rng=1)
    idx.add_batch(np.arange(2000), data)
    pq = ProductQuantizer(dim=64, m=32, nbits=8)
    pq.train(data[:500], rng=2)
    codes = pq.encode(data)
    adjacency_bytes = sum(
        4 * len(idx.graph_neighbors(i, layer))
        for i in idx.ids
        for layer in range(idx.node_level(i) + 1)
    )
    measured = codes.nbytes + adjacency_bytes + 16 * 2000
    estimated = model.index_size_bytes(2000)
    return rows, measured, estimated


def test_table2_index_storage(once, benchmark):
    rows, measured, estimated = once(_measure)
    print_table(
        "Table 2: HNSW+PQ index storage efficiency",
        ["dataset", "images", "raw", "index (model)", "compression"],
        rows,
    )
    print(f"validation: measured 2k-element index {measured / 1024:.0f}KB "
          f"vs model estimate {estimated / 1024:.0f}KB")
    benchmark.extra_info["rows"] = rows
    # Model within 3x of a real constructed index.
    assert 1 / 3 < measured / estimated < 3
    # Paper shape: every dataset compresses by >100x.
    for r in rows:
        assert float(r[4].rstrip("x").replace(",", "")) > 100
