"""Ablation — autoscaled shard fleet vs fixed fleets under bursty load.

Replays the same seeded zipfian+bursty trace (ISSUE 8's workload shape)
against the sharded tier three ways: pinned at the minimum fleet, pinned
at the maximum fleet, and autoscaled between them with the hysteresis
policy. The shapes asserted:

* the small fixed fleet saturates during bursts — its p99 is the worst
  of the three and its SLO attainment the lowest;
* the autoscaler closes most of the tail-latency gap to the max fleet
  while spending far fewer shard-seconds (fleet size integrated over
  time), i.e. it buys the big fleet's tail at a fraction of its
  footprint;
* every resize the autoscaler makes passes the placement oracle, and
  the decision stream contains both grows and shrinks (it tracks the
  burst cycle instead of latching high).
"""

import numpy as np
from conftest import print_table

from repro.load.autoscaler import Autoscaler, AutoscalerConfig
from repro.load.replay import ReplayConfig, ReplayHarness
from repro.load.slo import SloPolicy
from repro.load.traces import BurstyArrivals, TraceConfig, make_trace

N_REQUESTS = 30000
MIN_SHARDS, MAX_SHARDS = 1, 8


def _trace():
    return make_trace(
        TraceConfig(n_requests=N_REQUESTS, n_keys=800, zipf_exponent=1.1,
                    put_fraction=0.05),
        # Short bursts, long idle phases: the interesting regime for an
        # autoscaler — most wall-clock time needs a small fleet, but the
        # bursts need the big one.
        BurstyArrivals(rate_low=300.0, rate_high=7000.0,
                       mean_on_s=0.8, mean_off_s=2.5),
        seed=7,
    )


def _replay(n_shards, autoscale):
    cfg = ReplayConfig(
        total_capacity=320, imp_ratio=0.8, n_shards=n_shards,
        window_requests=250, slo=SloPolicy(target_s=0.008),
        service_rate_per_shard=2000.0,
    )
    auto = Autoscaler(AutoscalerConfig(
        min_shards=MIN_SHARDS, max_shards=MAX_SHARDS,
        p99_high_s=5e-3, p99_low_s=2e-3, cooldown_windows=2,
    )) if autoscale else None
    result = ReplayHarness(cfg, autoscaler=auto).run(_trace())
    # Shard-seconds: fleet size integrated over wall-clock time — the
    # capacity bill for the run. (Time-weighted, not window-weighted:
    # request-indexed windows flash by during bursts and crawl through
    # idle phases, so counting windows would hide the idle shrinks.)
    shard_seconds = sum(
        w.n_shards * (w.n / w.offered_rps)
        for w in result.windows if w.offered_rps > 0
    )
    return result, shard_seconds


def _measure():
    out = {}
    for label, shards, autoscale in [
        (f"fixed-{MIN_SHARDS}", MIN_SHARDS, False),
        (f"fixed-{MAX_SHARDS}", MAX_SHARDS, False),
        ("autoscaled", MIN_SHARDS, True),
    ]:
        result, shard_seconds = _replay(shards, autoscale)
        out[label] = {
            "p99_ms": result.overall.p99_s * 1e3,
            "p999_ms": result.overall.p999_s * 1e3,
            "attainment": result.attainment,
            "shard_seconds": shard_seconds,
            "grows": result.grows,
            "shrinks": result.shrinks,
            "verified": result.resizes_verified,
            "decisions": len(result.decisions),
        }
    return out


def test_ablation_autoscaler_slo(once, benchmark):
    out = once(_measure)
    rows = [
        (label,
         f"{m['p99_ms']:.2f}ms",
         f"{m['p999_ms']:.2f}ms",
         f"{m['attainment'] * 100:.2f}%",
         f"{m['shard_seconds']:.1f}",
         f"{m['grows']}/{m['shrinks']}")
        for label, m in out.items()
    ]
    print_table(
        "Ablation: autoscaled fleet vs fixed fleets (bursty zipfian load)",
        ["fleet", "p99", "p999", "SLO attain", "shard-seconds", "grow/shrink"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    small = out[f"fixed-{MIN_SHARDS}"]
    big = out[f"fixed-{MAX_SHARDS}"]
    auto = out["autoscaled"]

    # The small fleet saturates during bursts.
    assert small["p99_ms"] >= big["p99_ms"]
    assert small["attainment"] <= big["attainment"]
    # The autoscaler tracks the burst cycle (both directions) and every
    # transition passed the placement oracle.
    assert auto["grows"] >= 1 and auto["shrinks"] >= 1
    assert auto["verified"] == auto["decisions"]
    # It recovers most of the big fleet's tail...
    assert auto["p99_ms"] < small["p99_ms"]
    assert auto["attainment"] >= small["attainment"]
    # ...at a meaningfully smaller capacity bill.
    assert auto["shard_seconds"] < 0.8 * big["shard_seconds"]
    assert auto["shard_seconds"] > small["shard_seconds"]
