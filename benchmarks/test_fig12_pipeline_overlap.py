"""E16 — Fig. 12: pipelined IS-overlap schedules.

Paper: short-IS models (ResNets) hide the graph-IS computation under
Stage 2 (Fig. 12(a)); long-IS models (AlexNet/VGG16) extend the overlap
window into the next batch's Stage 1 (Fig. 12(b)). Either way the visible
overhead vanishes.
"""

from conftest import print_table

from repro.train.pipeline import PipelineSimulator, StageCostModel

N_BATCHES = 32


def _measure():
    rows = []
    gantts = {}
    for name in ["resnet18", "resnet50", "alexnet", "vgg16"]:
        c = StageCostModel.for_model(name)
        serial = PipelineSimulator(c, mode="none")
        recommended = PipelineSimulator(c, mode=c.recommended_mode())
        rows.append(
            (
                name,
                c.recommended_mode(),
                f"{serial.makespan_ms(N_BATCHES):.0f}ms",
                f"{recommended.makespan_ms(N_BATCHES):.0f}ms",
                f"{serial.makespan_ms(N_BATCHES) / recommended.makespan_ms(N_BATCHES):.2f}x",
                f"{recommended.per_batch_visible_ms(N_BATCHES):.2f}ms",
            )
        )
        gantts[name] = recommended.schedule(3)
    return rows, gantts


def test_fig12_pipeline_overlap(once, benchmark):
    rows, gantts = once(_measure)
    print_table(
        f"Fig 12: pipeline makespan over {N_BATCHES} batches",
        ["model", "mode", "serial", "overlapped", "speed-up", "visible IS/batch"],
        rows,
    )
    # Show the first batches' schedule for one short-IS and one long-IS model.
    for name in ["resnet18", "alexnet"]:
        print(f"\n{name} schedule (first 3 batches):")
        for iv in gantts[name]:
            print(f"  batch {iv.batch} {iv.stage:<7} "
                  f"[{iv.start_ms:7.1f} .. {iv.end_ms:7.1f}] ms")
    benchmark.extra_info["rows"] = rows
    for r in rows:
        # Overlap strictly beats serial and hides (amortized) all IS time.
        assert float(r[4].rstrip("x")) > 1.1, r[0]
        assert float(r[5].rstrip("ms")) < 0.5, r[0]
    # IS never overlaps its own batch's Stage 1 (it needs the embeddings).
    for name, sched in gantts.items():
        by_batch = {}
        for iv in sched:
            by_batch.setdefault(iv.batch, {})[iv.stage] = iv
        for b, stages in by_batch.items():
            assert stages["is"].start_ms >= stages["stage1"].end_ms - 1e-9