"""E4 — Fig. 6(a): loss variability over training.

Paper's Motivation 1: raw losses shrink and shift as training progresses,
so loss-based importance scores are incomparable across epochs. We track
per-epoch loss quantiles and show the distributions drift by orders of
magnitude while graph scores keep a stable range.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig


class _LossTracker(SpiderCachePolicy):
    def __init__(self, **kw):
        super().__init__(**kw)
        self.epoch_losses = {}
        self.epoch_score_stats = {}

    def after_batch(self, requested, served, losses, embeddings, epoch):
        self.epoch_losses.setdefault(epoch, []).append(losses.copy())
        super().after_batch(requested, served, losses, embeddings, epoch)

    def after_epoch(self, epoch, val_accuracy):
        scores = self.score_table.scores
        self.epoch_score_stats[epoch] = (float(np.median(scores)),
                                         float(scores.max()))
        super().after_epoch(epoch, val_accuracy)


def _measure():
    train, test = make_split(n_samples=1000, seed=0)
    model = build_model("resnet18", train.dim, train.num_classes, rng=1)
    policy = _LossTracker(cache_fraction=0.0, rng=2)
    Trainer(model, train, test, policy,
            TrainerConfig(epochs=12, batch_size=64)).run()
    rows = []
    score_ranges = []
    for e in [0, 3, 6, 11]:
        losses = np.concatenate(policy.epoch_losses[e])
        med, mx = policy.epoch_score_stats[e]
        rows.append(
            (
                str(e),
                f"{np.median(losses):.4f}",
                f"{np.quantile(losses, 0.9):.4f}",
                f"{losses.std():.4f}",
                f"{med:.3f}",
                f"{mx:.3f}",
            )
        )
        score_ranges.append((med, mx))
    return rows, score_ranges


def test_fig6a_loss_variability(once, benchmark):
    rows, score_ranges = once(_measure)
    print_table(
        "Fig 6(a): loss distribution drift vs graph-score stability",
        ["epoch", "loss med", "loss p90", "loss std", "score med", "score max"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    med_first = float(rows[0][1])
    med_last = float(rows[-1][1])
    # Losses collapse by >5x across training: raw-loss scores from epoch 0
    # and epoch 11 live on different scales.
    assert med_last < med_first / 5
    # Graph scores stay within one bounded range (ln(3+eps) max by Eq. 4).
    for _, mx in score_ranges:
        assert mx < 1.2
