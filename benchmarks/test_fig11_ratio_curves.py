"""E15 — Fig. 11: Eq.-8 ratio-change curves across penalty values.

Paper: as u goes from 1 to 0, the imp-ratio trajectory shifts from slow
adjustment (preserving accuracy during rapid growth) to fast adjustment
(harvesting hit ratio once accuracy stabilizes).
"""

import numpy as np
from conftest import print_table

from repro.core.elastic import RatioController

US = [0.0, 0.25, 0.5, 0.75, 1.0]
T = 100


def _measure():
    ctrl = RatioController(r_start=0.9, r_end=0.8, total_epochs=T)
    curves = {u: np.array([ctrl.ratio(t, beta=1, u=u) for t in range(T + 1)])
              for u in US}
    return curves


def test_fig11_ratio_curves(once, benchmark):
    curves = once(_measure)
    marks = [0, 25, 50, 75, 100]
    rows = [
        (f"u={u:.2f}",) + tuple(f"{curves[u][t]:.4f}" for t in marks)
        for u in US
    ]
    print_table(
        "Fig 11: imp-ratio(t) under Eq. 8 for penalty values u",
        ["curve"] + [f"t={t}" for t in marks],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    for u, c in curves.items():
        # Every curve runs r_start -> r_end monotonically.
        assert c[0] == 0.9 and abs(c[-1] - 0.8) < 1e-9
        assert all(a >= b for a, b in zip(c, c[1:])), u
    # Higher u = slower mid-course adjustment (curves ordered at t = T/2).
    mids = [curves[u][T // 2] for u in US]
    assert all(a <= b + 1e-12 for a, b in zip(mids, mids[1:]))
    # The u=0 curve is exactly linear; u=1 exactly quadratic.
    t = np.arange(T + 1) / T
    np.testing.assert_allclose(curves[0.0], 0.9 - 0.1 * t, atol=1e-12)
    np.testing.assert_allclose(curves[1.0], 0.9 - 0.1 * t**2, atol=1e-12)