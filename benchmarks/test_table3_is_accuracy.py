"""E9 — Fig. 13 + Table 3: IS-algorithm comparison with caches disabled.

Paper: SpiderCache's graph-based IS achieves the best accuracy on all three
datasets; SHADE (loss-rank IS) second; iCache's compute-bound IS worst
(skipping backprop costs accuracy); CoorDL is plain random sampling.

Substrate note (DESIGN.md): with a shallow NumPy MLP, uniform sampling is
near-optimal, so CoorDL lands within noise of the IS methods rather than
1-3 points below as on real CIFAR; the ordering *among IS algorithms*
(SpiderCache > SHADE > iCache) is the reproduced claim.
"""

import numpy as np
from conftest import POLICY_FACTORIES, make_split, print_table

from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

# Class counts scale with sample counts (see test_table4_5_end_to_end.py).
DATASETS = [
    ("cifar10-like", 1200, {}, "resnet18", 15),
    ("cifar100-like", 1500, {"n_classes": 30}, "resnet18", 15),
    ("imagenet-like", 1600, {"n_classes": 25}, "resnet50", 12),
]
POLICIES = ["spidercache", "shade", "gradnorm", "icache-imp", "coordl"]
SEEDS = [0, 1]


def _measure():
    results = {}
    for preset, n, overrides, model_name, epochs in DATASETS:
        for policy_name in POLICIES:
            accs, losses = [], []
            for seed in SEEDS:
                train, test = make_split(preset, n, seed, **overrides)
                model = build_model(model_name, train.dim, train.num_classes,
                                    rng=seed + 2)
                policy = POLICY_FACTORIES[policy_name](0.0, seed + 3)
                res = Trainer(model, train, test, policy,
                              TrainerConfig(epochs=epochs, batch_size=64)).run()
                accs.append(res.final_accuracy)
                losses.append(res.epochs[-1].train_loss)
            results[(preset, policy_name)] = (
                float(np.mean(accs)), float(np.mean(losses))
            )
    return results


def test_table3_is_accuracy(once, benchmark):
    results = once(_measure)
    rows = []
    for preset, _, _, model_name, _ in DATASETS:
        rows.append(
            (preset, model_name)
            + tuple(f"{results[(preset, p)][0]:.3f}" for p in POLICIES)
        )
    print_table(
        "Table 3 / Fig 13: Top-1 accuracy, IS only (caches disabled)",
        ["dataset", "model"] + POLICIES,
        rows,
    )
    loss_rows = [
        (preset,) + tuple(f"{results[(preset, p)][1]:.3f}" for p in POLICIES)
        for preset, *_ in DATASETS
    ]
    print_table("Fig 13(d-f): final training loss", ["dataset"] + POLICIES,
                loss_rows)
    benchmark.extra_info["accuracy"] = {
        f"{k[0]}/{k[1]}": v[0] for k, v in results.items()
    }
    for preset, *_ in DATASETS:
        spider = results[(preset, "spidercache")][0]
        shade = results[(preset, "shade")][0]
        icache = results[(preset, "icache-imp")][0]
        best = max(results[(preset, p)][0] for p in POLICIES)
        # SpiderCache matches the best IS algorithm (within seed noise,
        # ±0.03 at this scale) and lands close to the overall best. The
        # paper's +1-2 point IS-over-random margin does not reproduce on the
        # shallow-MLP substrate (see DESIGN.md/EXPERIMENTS.md).
        assert spider >= shade - 0.03, preset
        assert spider >= icache - 0.02, preset
        assert spider >= results[(preset, "gradnorm")][0] - 0.03, preset
        assert spider >= best - 0.08, preset
        # Compute-bound IS never exceeds the graph/rank IS methods.
        assert icache <= max(spider, shade) + 0.01, preset
