"""A1 — Ablation: graph-construction sensitivity (lambda/alpha via the
radius scale).

DESIGN.md calls out the edge threshold as the key graph knob: too tight a
radius gives an edgeless graph (uniform scores, no concentration); too
loose connects everything (scores saturate). Hit ratio should peak at a
moderate radius.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

RADIUS_SCALES = [0.3, 0.6, 0.85, 1.2, 2.0]


def _measure():
    train, test = make_split("cifar10-like", 1000, seed=0)
    rows = []
    hits = {}
    for rs in RADIUS_SCALES:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.2, rng=3)
        trainer = Trainer(model, train, test, policy,
                          TrainerConfig(epochs=10, batch_size=64))
        policy.scorer.radius_scale = rs
        res = trainer.run()
        scores = policy.score_table.scores
        rows.append(
            (f"{rs:.2f}",
             f"{res.mean_hit_ratio:.3f}",
             f"{res.final_accuracy:.3f}",
             f"{float(scores.std()):.3f}")
        )
        hits[rs] = res.mean_hit_ratio
    return rows, hits


def test_ablation_radius_scale(once, benchmark):
    rows, hits = once(_measure)
    print_table(
        "A1: radius-scale (lambda/alpha) sensitivity",
        ["radius scale", "mean hit", "final acc", "score std"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # An extreme-tight radius produces a near-edgeless graph: hit ratio
    # falls back toward the uninformed level.
    assert hits[0.3] < hits[0.85]
    # The default sits at (or within noise of) the sweep's plateau.
    assert hits[0.85] > max(hits.values()) - 0.08