#!/usr/bin/env python
"""Standalone perf-trajectory runner (delegates to ``repro.bench``).

Measures the hot paths the training loop leans on — LRU/semantic-cache
ops/sec, HNSW build/query throughput with a recall floor and the seed-path
speedup ratio, and end-to-end epoch time — and writes ``BENCH_<date>.json``
at the repo root. Equivalent to ``python -m repro bench`` / ``make
bench-trajectory``; this entry point exists so the benchmarks directory is
self-contained and the trajectory can be run without the CLI.

Usage::

    PYTHONPATH=src python benchmarks/perf_trajectory.py [--quick]
        [--out-dir DIR] [--no-write] [--check]

Not a pytest bench: the trajectory tracks absolute throughput over time
(committed baselines, CI soft gate), while the ``test_*`` benches here
regenerate paper tables/figures and assert shapes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    BenchConfig,
    compare_reports,
    format_report,
    latest_baseline,
    run_trajectory,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced-scale run (CI smoke; incomparable to full baselines)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=REPO_ROOT,
        help="directory for BENCH_<date>.json (default: repo root)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print only"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="soft-gate against the newest committed BENCH_*.json",
    )
    args = parser.parse_args(argv)

    cfg = BenchConfig.quick() if args.quick else BenchConfig()
    baseline_path = latest_baseline(REPO_ROOT)
    out_dir = None if args.no_write else args.out_dir
    report, path = run_trajectory(cfg, out_dir=out_dir)
    print(format_report(report))
    if path is not None:
        print(f"wrote {path}")
    if args.check and baseline_path is not None:
        import json

        baseline = json.loads(baseline_path.read_text())
        for warning in compare_reports(report, baseline):
            print(f"WARNING: {warning}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
