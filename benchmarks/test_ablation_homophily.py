"""A3 — Ablation: homophily-substitution aggressiveness.

DESIGN.md: the Homophily Cache trades accuracy for hit ratio. Sweeping the
neighbor-list size and radius gate shows the trade-off surface and confirms
the default sits on the accuracy-preserving side, per the paper's claim
that substitution has "minimal impact on model performance".
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

SETTINGS = [
    ("off", dict(hom_neighbor_limit=1, hom_radius_scale=0.01)),
    ("tight (lim 4, r 0.5)", dict(hom_neighbor_limit=4, hom_radius_scale=0.5)),
    ("default (lim 16, r 0.75)", dict(hom_neighbor_limit=16, hom_radius_scale=0.75)),
    ("loose (lim 64, r 1.0)", dict(hom_neighbor_limit=64, hom_radius_scale=1.0)),
    ("cross-class (lim 64, any)", dict(hom_neighbor_limit=64, hom_radius_scale=1.0,
                                       hom_same_class_only=False)),
]


def _measure():
    results = {}
    for name, kw in SETTINGS:
        accs, hits, subs = [], [], []
        for seed in [0, 1]:
            train, test = make_split("cifar10-like", 1200, seed)
            model = build_model("resnet18", train.dim, train.num_classes,
                                rng=seed + 2)
            policy = SpiderCachePolicy(cache_fraction=0.2, rng=seed + 3, **kw)
            res = Trainer(model, train, test, policy,
                          TrainerConfig(epochs=14, batch_size=64)).run()
            accs.append(res.final_accuracy)
            hits.append(res.mean_hit_ratio)
            subs.append(float(np.mean(res.series("substitute_ratio")[-4:])))
        results[name] = (float(np.mean(accs)), float(np.mean(hits)),
                         float(np.mean(subs)))
    return results


def test_ablation_homophily(once, benchmark):
    results = once(_measure)
    rows = [
        (name, f"{a:.3f}", f"{h:.3f}", f"{s:.3f}")
        for name, (a, h, s) in results.items()
    ]
    print_table(
        "A3: homophily substitution aggressiveness",
        ["setting", "final acc", "mean hit", "late substitute ratio"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    acc = {k: v[0] for k, v in results.items()}
    hit = {k: v[1] for k, v in results.items()}
    sub = {k: v[2] for k, v in results.items()}
    # Aggressiveness raises substitution rate and hit ratio monotonically.
    names = [n for n, _ in SETTINGS]
    assert sub[names[0]] < 0.02
    assert sub[names[0]] <= sub[names[2]] <= sub[names[3]] + 0.02
    assert hit[names[0]] < hit[names[3]]
    # Looser substitution costs accuracy relative to off/tight.
    assert acc[names[-1]] <= acc[names[0]] + 0.02
    # The default preserves accuracy within noise of substitution-off.
    assert acc[names[2]] >= acc[names[0]] - 0.04