"""E11 + E12 — Fig. 15, Table 4 (training time), Table 5 (accuracy).

Paper setup: 20% cache, full policies enabled, imp-ratio 90%→80%.
SpiderCache achieves up to 2.33x (avg 2.21x) speed-up over the LRU
baseline with the best accuracy; SHADE similar accuracy but slower;
iCache faster than SHADE but loses accuracy; CoorDL and Baseline slowest.
"""

import numpy as np
from conftest import POLICY_FACTORIES, make_split, print_table

from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

# Scaled-down datasets: class counts shrink with sample counts so the
# per-class abundance (and hence graph density / sampling concentration)
# matches the full-size presets rather than starving every class.
DATASETS = [
    ("cifar10-like", 1200, {}, "resnet18", 15),
    ("cifar100-like", 1500, {"n_classes": 30}, "resnet18", 15),
    ("imagenet-like", 1600, {"n_classes": 25}, "resnet50", 12),
]
POLICIES = ["spidercache", "shade", "icache", "coordl", "baseline"]
SEEDS = [0, 1]


def _measure():
    results = {}
    for preset, n, overrides, model_name, epochs in DATASETS:
        for policy_name in POLICIES:
            accs, times = [], []
            for seed in SEEDS:
                train, test = make_split(preset, n, seed, **overrides)
                model = build_model(model_name, train.dim, train.num_classes,
                                    rng=seed + 2)
                policy = POLICY_FACTORIES[policy_name](0.2, seed + 3)
                res = Trainer(model, train, test, policy,
                              TrainerConfig(epochs=epochs, batch_size=64)).run()
                accs.append(res.final_accuracy)
                times.append(res.total_time_s)
            results[(preset, policy_name)] = (
                float(np.mean(times)), float(np.mean(accs))
            )
    return results


def test_table4_5_end_to_end(once, benchmark):
    results = once(_measure)
    time_rows, acc_rows = [], []
    for preset, *_ in DATASETS:
        time_rows.append(
            (preset,)
            + tuple(f"{results[(preset, p)][0]:.1f}s" for p in POLICIES)
        )
        acc_rows.append(
            (preset,)
            + tuple(f"{results[(preset, p)][1]:.3f}" for p in POLICIES)
        )
    print_table("Table 4: total (simulated) training time",
                ["dataset"] + POLICIES, time_rows)
    print_table("Table 5: end-to-end Top-1 accuracy",
                ["dataset"] + POLICIES, acc_rows)

    speedups = []
    for preset, *_ in DATASETS:
        t = {p: results[(preset, p)][0] for p in POLICIES}
        a = {p: results[(preset, p)][1] for p in POLICIES}
        # Time shape: SpiderCache fastest (iCache's skipped-backprop compute
        # discount keeps it within a few percent), Baseline slowest.
        assert t["spidercache"] <= 1.03 * min(t.values()), preset
        assert t["spidercache"] < t["shade"], preset
        assert t["spidercache"] < t["coordl"], preset
        assert t["baseline"] == max(t.values()), preset
        assert t["shade"] < t["coordl"], preset
        speedups.append(t["baseline"] / t["spidercache"])
        # Accuracy shape: SpiderCache within noise of the best.
        best = max(a.values())
        assert a["spidercache"] >= best - 0.05, preset
        # Full iCache pays for random substitution + skipped backprop on
        # the harder (unsaturated) datasets — the paper's Table-5 deficit.
        if preset != "cifar10-like":
            assert a["icache"] == min(a.values()), preset
    print(f"\nSpiderCache speed-up over baseline: "
          f"max {max(speedups):.2f}x, avg {np.mean(speedups):.2f}x "
          f"(paper: up to 2.33x, avg 2.21x)")
    benchmark.extra_info["speedups"] = speedups
    assert max(speedups) > 1.4
