"""Tracing-overhead benchmark: full observability vs ``NULL_OBSERVER``.

Runs the same seeded training workload three ways —

* ``off``     — ``NULL_OBSERVER`` (the default for library users);
* ``metrics`` — active observer, metrics only (``NullRecorder``);
* ``traced``  — active observer + JSONL recorder + span tracing
  (what ``repro train --trace-dir`` wires up);

— and reports wall-clock ratios against ``off``. The interesting number
is the *fully traced* ratio: every fetch/admit/span event is built,
serialized, and written per sample, so this bounds the real cost of
``--trace-dir`` on a run.

Budget: the traced run must stay within ``--budget`` (default 3.0x) of
the untraced one. Exceeding it prints a ``WARNING`` line and, by
default, still exits 0 — this is a soft gate, same contract as the
perf-trajectory check (``--strict`` turns the warning into exit 1 for
local bisecting). Results land in ``BENCH_TRACING.json`` next to this
script when ``--write`` is given; the committed copy is the recorded
baseline, refreshed via ``make bench-tracing``.

Wall-clock on shared CI runners is noisy — the budget is deliberately
loose, catching "tracing suddenly costs 10x" regressions, not 10%
drifts.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.core.policy import SpiderCachePolicy
from repro.data.synthetic import make_clustered_dataset, train_test_split
from repro.nn.models import build_model
from repro.obs import JsonlRecorder, MetricsRegistry, Observer
from repro.train.trainer import Trainer, TrainerConfig

BASELINE_FILE = Path(__file__).with_name("BENCH_TRACING.json")


def _run_once(samples: int, epochs: int, observer: Observer | None) -> float:
    """One seeded training run; returns host wall-clock seconds."""
    ds = make_clustered_dataset(samples, n_classes=4, dim=16, rng=0)
    train, test = train_test_split(ds, test_fraction=0.25, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    trainer = Trainer(
        model, train, test,
        SpiderCachePolicy(cache_fraction=0.3, rng=3),
        TrainerConfig(epochs=epochs, batch_size=64),
        observer=observer,
    )
    t0 = time.perf_counter()
    trainer.run()
    return time.perf_counter() - t0


def measure(samples: int, epochs: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall clock for each observer mode."""
    modes: dict[str, float] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for name in ("off", "metrics", "traced"):
            best = float("inf")
            for rep in range(repeats):
                if name == "off":
                    obs = None  # Trainer defaults to NULL_OBSERVER
                elif name == "metrics":
                    obs = Observer(metrics=MetricsRegistry())
                else:
                    obs = Observer(
                        recorder=JsonlRecorder(
                            Path(tmp) / f"trace-{rep}.jsonl"
                        ),
                        metrics=MetricsRegistry(),
                        span_seed=7,
                    )
                elapsed = _run_once(samples, epochs, obs)
                if obs is not None:
                    obs.close()
                best = min(best, elapsed)
            modes[name] = best
    return modes


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--samples", type=int, default=600)
    ap.add_argument("--epochs", type=int, default=2)
    ap.add_argument("--repeats", type=int, default=3,
                    help="runs per mode; best-of wins (default 3)")
    ap.add_argument("--budget", type=float, default=3.0,
                    help="max traced/off wall-clock ratio (default 3.0)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when the budget is exceeded")
    ap.add_argument("--write", action="store_true",
                    help=f"record results to {BASELINE_FILE.name}")
    args = ap.parse_args(argv)

    modes = measure(args.samples, args.epochs, args.repeats)
    off = modes["off"]
    print(f"tracing overhead ({args.samples} samples x {args.epochs} epochs, "
          f"best of {args.repeats}):")
    for name, secs in modes.items():
        ratio = secs / off if off > 0 else float("inf")
        print(f"  {name:<8} {secs * 1e3:8.1f} ms   {ratio:5.2f}x")

    traced_ratio = modes["traced"] / off if off > 0 else float("inf")
    ok = traced_ratio <= args.budget
    if not ok:
        print(f"WARNING: traced run is {traced_ratio:.2f}x the untraced one "
              f"(budget {args.budget:.1f}x)")
    else:
        print(f"within budget: {traced_ratio:.2f}x <= {args.budget:.1f}x")

    if args.write:
        BASELINE_FILE.write_text(json.dumps({
            "samples": args.samples,
            "epochs": args.epochs,
            "repeats": args.repeats,
            "budget": args.budget,
            "wall_s": modes,
            "traced_ratio": round(traced_ratio, 3),
        }, indent=2) + "\n")
        print(f"wrote {BASELINE_FILE}")

    return 1 if (args.strict and not ok) else 0


if __name__ == "__main__":
    sys.exit(main())
