"""E1 — Fig. 3(a): per-stage time breakdown of uncached training.

Paper: Data Loading + Computation account for >95% of total time, with
Data Loading alone above 60% on all four models.
"""

from conftest import make_split, print_table

from repro.nn.models import MODEL_ZOO, build_model
from repro.train.policy_base import TrainingPolicy
from repro.train.trainer import Trainer, TrainerConfig

MODELS = ["resnet18", "resnet50", "alexnet", "vgg16"]


def _breakdown():
    split = make_split(n_samples=800, seed=0)
    train, test = split
    rows = []
    for name in MODELS:
        model = build_model(name, train.dim, train.num_classes, rng=1)
        res = Trainer(
            model, train, test, TrainingPolicy(rng=2),
            TrainerConfig(epochs=2, batch_size=64),
        ).run()
        st = res.stage_totals()
        total = res.total_time_s
        rows.append(
            (
                name,
                f"{st['data_load_s'] / total:.1%}",
                f"{st['compute_s'] / total:.1%}",
                f"{total:.2f}s",
            )
        )
    return rows


def test_fig3a_stage_breakdown(once, benchmark):
    rows = once(_breakdown)
    print_table(
        "Fig 3(a): stage-time breakdown (no cache, random sampling)",
        ["model", "data_load", "compute", "total(sim)"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Paper shape: data loading dominates (>60%) on every model.
    for name, load, compute, _ in rows:
        assert float(load.rstrip("%")) > 50.0, name
