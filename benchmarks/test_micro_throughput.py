"""Microbenchmarks: hot-path throughput of the core data structures.

Unlike the experiment benches (one-shot `pedantic` runs regenerating paper
artifacts), these are real repeated-timing benchmarks for the operations on
SpiderCache's critical path: cache lookups, heap updates, neighbor search,
and batch scoring. Regressions here translate directly into data-loading
stall (the IS stage must stay inside the Fig.-12 overlap window).
"""

import numpy as np
import pytest

from repro.ann.brute import BruteForceIndex
from repro.ann.hnsw import HNSWIndex
from repro.cache.lru import LRUCache
from repro.core.graph_is import GraphImportanceScorer
from repro.core.importance_cache import ImportanceCache
from repro.core.semantic_cache import SemanticCache
from repro.utils.heap import IndexedMinHeap

N = 2000
DIM = 64


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    centers = rng.normal(0, 4, (10, DIM))
    return centers[rng.integers(10, size=N)] + rng.normal(0, 1, (N, DIM))


def test_heap_push_pop(benchmark):
    rng = np.random.default_rng(1)
    priorities = rng.random(1000)

    def run():
        h = IndexedMinHeap()
        for i, p in enumerate(priorities):
            h.push(i, float(p))
        for i in range(0, 1000, 2):
            h.update(i, float(priorities[i] * 2))
        while len(h):
            h.pop()

    benchmark(run)


def test_lru_get_put(benchmark):
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 500, 5000)

    def run():
        c = LRUCache(200)
        for k in keys:
            if c.get(int(k)) is None:
                c.put(int(k), k)

    benchmark(run)


def test_importance_cache_admit(benchmark):
    rng = np.random.default_rng(3)
    scores = rng.random(3000)

    def run():
        c = ImportanceCache(300)
        for i, s in enumerate(scores):
            c.admit(i, i, float(s))

    benchmark(run)


def test_semantic_cache_fetch(benchmark):
    rng = np.random.default_rng(4)
    keys = rng.integers(0, 800, 4000)
    scores = rng.random(800)

    def run():
        c = SemanticCache(160, imp_ratio=0.9)
        for k in keys:
            c.fetch(int(k), float(scores[k]), lambda i: i)

    benchmark(run)


def test_brute_batch_query(benchmark, vectors):
    idx = BruteForceIndex(DIM)
    idx.add_batch(np.arange(N), vectors)
    queries = vectors[:64]

    benchmark(lambda: idx.neighbors_within_batch(queries, radius=5.0,
                                                 max_neighbors=64))


def test_hnsw_query(benchmark, vectors):
    idx = HNSWIndex(DIM, M=16, ef_construction=100, rng=5)
    idx.add_batch(np.arange(500), vectors[:500])
    q = vectors[0]

    benchmark(lambda: idx.search(q, k=10, ef=50))


def test_scorer_batch(benchmark, vectors):
    labels = np.random.default_rng(6).integers(0, 10, N)
    scorer = GraphImportanceScorer(DIM, labels)
    # Warm the index with most of the data.
    scorer.score_batch(np.arange(0, 1500), vectors[:1500])
    batch_ids = np.arange(1500, 1564)
    batch_emb = vectors[1500:1564]

    benchmark(lambda: scorer.score_batch(batch_ids, batch_emb))
