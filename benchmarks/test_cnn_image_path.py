"""E-CNN — full-stack validation on the convolutional path.

The paper's workloads are image classification; the main benches use the
MLP substrate for speed. This experiment runs the *convolutional* model on
the procedural image dataset through the complete SpiderCache stack
(graph IS over conv embeddings, two-layer cache, elastic manager) against
the LRU baseline, confirming every conclusion transfers to the CNN path.
"""

import numpy as np
from conftest import print_table

from repro.baselines.baseline import LRUBaselinePolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.images import make_image_dataset
from repro.data.synthetic import SyntheticDataset, train_test_split
from repro.nn.models import build_cnn_model
from repro.train.trainer import Trainer, TrainerConfig

IMAGE = (1, 8, 8)
EPOCHS = 16


class _CNNAdapter:
    """Adapts flat store payloads back to image tensors for the CNN."""

    def __init__(self, rng):
        self.inner = build_cnn_model(IMAGE, 6, channels=(6,),
                                     embedding_dim=32, rng=rng)
        self.spec = None
        self.embedding_dim = 32

    def params(self):
        return self.inner.params()

    def train_batch(self, x, y, w=None):
        return self.inner.train_batch(x.reshape((-1,) + IMAGE), y, w)

    def evaluate(self, x, y, batch_size=256):
        return self.inner.evaluate(x.reshape((-1,) + IMAGE), y)


def _image_split(seed):
    img = make_image_dataset(900, n_classes=6, image_size=IMAGE[1],
                             noise_std=0.3, rng=seed)
    ds = SyntheticDataset(
        name="proc-images",
        X=img.X.reshape(len(img), -1),
        y=img.y,
        kinds=np.zeros(len(img), dtype=np.int64),
        centers=np.zeros((6, img.X[0].size)),
        item_nbytes=3 * 1024,
    )
    return train_test_split(ds, test_fraction=0.25, rng=seed + 1)


def _measure():
    rows = []
    out = {}
    for name, factory in [
        ("spidercache", lambda s: SpiderCachePolicy(cache_fraction=0.2, rng=s)),
        ("baseline", lambda s: LRUBaselinePolicy(cache_fraction=0.2, rng=s)),
    ]:
        accs, hits, times = [], [], []
        for seed in [0, 1, 2]:
            train, test = _image_split(seed)
            model = _CNNAdapter(rng=seed + 2)
            policy = factory(seed + 3)
            res = Trainer(model, train, test, policy,
                          TrainerConfig(epochs=EPOCHS, batch_size=64,
                                        lr=0.1, lr_schedule="cosine")).run()
            accs.append(res.final_accuracy)
            hits.append(res.mean_hit_ratio)
            times.append(res.total_time_s)
        out[name] = (float(np.mean(accs)), float(np.mean(hits)),
                     float(np.mean(times)))
        rows.append((name, f"{out[name][0]:.3f}", f"{out[name][1]:.3f}",
                     f"{out[name][2]:.1f}s"))
    return rows, out


def test_cnn_image_path(once, benchmark):
    rows, out = once(_measure)
    print_table(
        "CNN path: SpiderCache vs LRU baseline on procedural images",
        ["policy", "final acc", "mean hit", "sim time"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    spider, base = out["spidercache"], out["baseline"]
    # Same conclusions as the MLP path: far higher hit ratio, faster
    # training, accuracy within noise.
    assert spider[1] > base[1] + 0.2
    assert spider[2] < base[2]
    assert spider[0] > base[0] - 0.06
    # The CNN genuinely learns the task.
    assert spider[0] > 0.5