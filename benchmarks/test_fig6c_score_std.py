"""E6 — Fig. 6(c): importance-score std rises then falls.

Paper §3 (Motivation 3): "we tracked the standard deviation (std) of score
changes throughout the training process" for loss-based IS scores across
four model configurations, observing a rise (importance diverges as some
samples are learned before others) followed by a fall (convergence).

Methodology here follows §3: per-sample loss scores snapshotted over the
whole training set at each epoch end. The nuisance-noise preset keeps the
model unsaturated long enough for the divergence phase to span epochs.
"""

import numpy as np
from conftest import make_split, print_table

from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.models import build_model
from repro.nn.optim import SGD

MODELS = ["resnet18", "resnet50", "alexnet", "vgg16"]
EPOCHS = 16
# Wider models learn the scaled task faster; per-model LR keeps each in the
# gradual regime so the divergence phase spans epochs (as the paper's
# 100-epoch CIFAR runs do).
LR = {"resnet18": 0.05, "resnet50": 0.01, "alexnet": 0.005, "vgg16": 0.005}


def _train_and_track(model_name: str):
    # Ambiguous boundary samples + heavy nuisance noise keep part of the
    # dataset slow to learn, stretching the divergence phase over epochs.
    train, test = make_split(
        n_samples=1000, seed=3, nuisance_dims=8, nuisance_std=8.0,
        frac_boundary=0.2, boundary_w_range=(0.4, 0.6),
    )
    model = build_model(model_name, train.dim, train.num_classes, rng=1)
    opt = SGD(model.params(), lr=LR[model_name], momentum=0.9)
    rng = np.random.default_rng(2)
    stds = []
    for epoch in range(EPOCHS):
        order = rng.permutation(len(train))
        for s in range(0, len(order), 64):
            idx = order[s : s + 64]
            model.zero_grad()
            model.train_batch(train.X[idx], train.y[idx])
            opt.step()
        if epoch == 0:
            # Importance scores don't exist before the first full scoring
            # pass; the random-init loss dispersion at epoch 0 is init
            # noise, not an importance signal.
            continue
        logits, _ = model.forward(train.X, training=False)
        losses = SoftmaxCrossEntropy().forward(logits, train.y)
        stds.append(float(losses.std()))
    return np.asarray(stds)


def _measure():
    rows = []
    trajectories = {}
    for name in MODELS:
        std = _train_and_track(name)
        trajectories[name] = std
        rows.append(
            (name, f"{std[0]:.3f}", f"{std.max():.3f}", f"{std[-1]:.3f}",
             str(int(std.argmax())))
        )
    return rows, trajectories


def test_fig6c_score_std_trajectory(once, benchmark):
    rows, trajectories = once(_measure)
    print_table(
        "Fig 6(c): std of loss-based importance scores over training",
        ["model", "std[0]", "std max", "std final", "peak epoch"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    for name, std in trajectories.items():
        peak = int(std.argmax())
        # Rise then fall: dispersion grows from the first tracked epoch,
        # peaks strictly inside the run, then clearly declines.
        assert 0 < peak < len(std) - 1, name
        assert std[peak] > std[0], name
        assert std[-1] < std[peak] * 0.8, name