"""Ablation — shared sharded-cache tier vs per-worker caches.

Sweeps the data-parallel cache topology: per-worker caches (each rank
keeps its own ``SemanticCache``) against one shared logical cache,
monolithic (``cache_shards=0``) and partitioned across 2 / 4 shard
servers behind simulated RPC. The shapes asserted:

* the shared tier's aggregate hit ratio strictly beats per-worker caches
  of the same total budget at every world size (no duplicated entries);
* sharding is behaviour-preserving — hit ratio and accuracy match the
  shared monolith exactly, only simulated RPC time is added;
* a *live ring resize* mid-run (2 -> 4 shards at an epoch boundary, key
  migration over the same RPC tier) is behaviour-preserving too;
* the added RPC stall is visible but does not dominate the epoch.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.train.data_parallel import DataParallelTrainer
from repro.train.trainer import TrainerConfig
from repro.nn.models import build_model

WORLD_SIZES = [2, 4]
# (label, shared_cache, cache_shards, resize_shards_at)
TOPOLOGIES = [
    ("per-worker", False, 0, None),
    ("shared-mono", True, 0, None),
    ("shared-2shard", True, 2, None),
    ("shared-4shard", True, 4, None),
    ("shared-2to4", True, 2, (2, 4)),  # live resize at epoch 2
]
EPOCHS = 5


def _run(train, test, world_size, shared_cache, cache_shards,
         resize_shards_at=None):
    dp = DataParallelTrainer(
        model_factory=lambda: build_model("resnet18", train.dim,
                                          train.num_classes, rng=7),
        train_set=train,
        test_set=test,
        # A shared tier sees one coherent stream, so every rank uses the
        # same policy seed; per-worker caches get independent seeds.
        policy_factory=lambda rank: SpiderCachePolicy(
            cache_fraction=0.3,
            rng=100 if shared_cache else 100 + rank,
        ),
        world_size=world_size,
        config=TrainerConfig(epochs=EPOCHS, batch_size=64,
                             resize_shards_at=resize_shards_at),
        shared_cache=shared_cache,
        cache_shards=cache_shards,
        rng=5,
    )
    res = dp.run()
    assert dp.replicas_in_sync(atol=1e-8)
    return res


def _measure():
    train, test = make_split("cifar10-like", 1200, seed=0)
    out = {}
    for k in WORLD_SIZES:
        for label, shared, shards, resize_at in TOPOLOGIES:
            res = _run(train, test, k, shared, shards, resize_at)
            out[(label, k)] = {
                "hit_ratio": float(np.mean([e.hit_ratio for e in res.epochs])),
                "data_load_s": float(np.sum([e.data_load_s for e in res.epochs])),
                "epoch_time_s": float(np.mean(res.series("epoch_time_s")[1:])),
                "accuracy": res.final_accuracy,
            }
    return out


def test_ablation_shard_topology(once, benchmark):
    out = once(_measure)
    rows = [
        (str(k), label,
         f"{out[(label, k)]['hit_ratio']:.3f}",
         f"{out[(label, k)]['data_load_s']:.2f}s",
         f"{out[(label, k)]['epoch_time_s']:.2f}s",
         f"{out[(label, k)]['accuracy']:.3f}")
        for k in WORLD_SIZES
        for label, _, _, _ in TOPOLOGIES
    ]
    print_table(
        "Ablation: cache topology across data-parallel workers",
        ["workers", "topology", "hit ratio", "data load", "epoch time", "acc"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    for k in WORLD_SIZES:
        mono = out[("shared-mono", k)]
        # The headline claim: one shared cache strictly beats per-worker
        # caches of the same aggregate budget.
        assert mono["hit_ratio"] > out[("per-worker", k)]["hit_ratio"], k
        for label in ("shared-2shard", "shared-4shard", "shared-2to4"):
            sharded = out[(label, k)]
            # Sharding — and live resizing — preserves behaviour bit-for-bit...
            assert sharded["hit_ratio"] == mono["hit_ratio"], (label, k)
            assert sharded["accuracy"] == mono["accuracy"], (label, k)
            # ...and only adds simulated RPC time to the load stage:
            # noticeable, but far from doubling the epoch.
            assert sharded["data_load_s"] > mono["data_load_s"], (label, k)
            rpc_stall = sharded["epoch_time_s"] - mono["epoch_time_s"]
            assert 0.0 < rpc_stall < mono["epoch_time_s"], (label, k)
