"""E10 — Fig. 14: average epoch hit ratio across models and cache sizes.

Paper: on CIFAR-10 across four models and cache sizes {10, 25, 50, 75}%,
full SpiderCache achieves the highest hit ratio (up to 8.5x over the LRU
baseline); SpiderCache-imp beats SHADE and iCache-imp; full iCache beats
SHADE; CoorDL tracks the cache fraction; LRU is worst.
"""

import numpy as np
from conftest import POLICY_FACTORIES, make_split, print_table

from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

CACHE_FRACTIONS = [0.10, 0.25, 0.50, 0.75]
POLICIES = [
    "baseline", "coordl", "icache-imp", "shade",
    "icache", "spidercache-imp", "spidercache",
]
MODELS = ["resnet18", "resnet50", "alexnet", "vgg16"]
EPOCHS = 8
N = 900


def _run_cell(model_name, policy_name, frac, split, seed=0):
    train, test = split
    model = build_model(model_name, train.dim, train.num_classes, rng=seed)
    policy = POLICY_FACTORIES[policy_name](frac, seed + 1)
    res = Trainer(model, train, test, policy,
                  TrainerConfig(epochs=EPOCHS, batch_size=64)).run()
    return res.mean_hit_ratio


def _sweep():
    results = {}  # (model, policy, frac) -> hit
    split = make_split(n_samples=N, seed=0)
    for m in MODELS:
        for p in POLICIES:
            for f in CACHE_FRACTIONS:
                results[(m, p, f)] = _run_cell(m, p, f, split)
    return results


def test_fig14_hit_rates(once, benchmark):
    results = once(_sweep)
    for m in MODELS:
        rows = [
            (p, *[f"{results[(m, p, f)]:.3f}" for f in CACHE_FRACTIONS])
            for p in POLICIES
        ]
        print_table(
            f"Fig 14 [{m}]: mean epoch hit ratio vs cache size",
            ["policy"] + [f"{f:.0%}" for f in CACHE_FRACTIONS],
            rows,
        )
    benchmark.extra_info["cells"] = {
        f"{m}/{p}/{f}": results[(m, p, f)]
        for m in MODELS for p in POLICIES for f in CACHE_FRACTIONS
    }

    improvements = []
    for m in MODELS:
        for f in CACHE_FRACTIONS:
            cell = {p: results[(m, p, f)] for p in POLICIES}
            spider = cell["spidercache"]
            # Everything beats the LRU baseline; SHADE beats the
            # static/uninformed policies.
            assert spider > cell["baseline"], (m, f)
            assert cell["shade"] > cell["baseline"], (m, f)
            assert cell["shade"] > cell["coordl"] - 0.03, (m, f)
            # SpiderCache-imp beats CoorDL and iCache-imp at every size and
            # tracks SHADE (paper: above SHADE; in this substrate SHADE's
            # bottom-rank suppression wins at large caches — see
            # EXPERIMENTS.md deviations).
            assert cell["spidercache-imp"] > cell["coordl"], (m, f)
            assert cell["spidercache-imp"] > cell["icache-imp"] - 0.01, (m, f)
            if f <= 0.25:
                assert cell["spidercache-imp"] >= cell["shade"] - 0.03, (m, f)
                # Full SpiderCache and full iCache top the small-cache cells.
                assert spider >= cell["icache"] - 0.02, (m, f)
                assert spider > cell["shade"], (m, f)
                assert cell["icache"] > cell["shade"] - 0.05, (m, f)
            # Homophily layer always adds over importance-only.
            assert spider >= cell["spidercache-imp"] - 0.05, (m, f)
            # CoorDL ~= cache fraction (slightly below as a mean over
            # epochs: the first epoch fills the cache and hits nothing).
            assert f - 0.13 < cell["coordl"] < f + 0.03, (m, f)
            improvements.append(spider / max(cell["baseline"], 1e-3))
    # Paper: up to 8.5x (avg 4.15x) improvement over baseline. Our LRU
    # baseline is even weaker at small caches, so the max factor exceeds
    # the paper's; assert the qualitative claim.
    print(f"\nSpiderCache/baseline hit-ratio factor: "
          f"max {max(improvements):.1f}x, "
          f"median {np.median(improvements):.1f}x")
    assert max(improvements) > 4.0
