"""E13 — Fig. 16 + Table 6: elastic cache strategies.

Paper: a static 90:10 imp:hom split loses hit ratio in later epochs as the
pool of important samples shrinks; annealing to 80:20 keeps hits stable;
annealing to 50:50 maximizes late hits and minimizes time, at a small
accuracy cost. Imp-Ratio is user-tunable to trade accuracy vs speed.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

STRATEGIES = [
    ("90% static", dict(r_start=0.9, r_end=0.9, elastic=False)),
    ("90%-80%", dict(r_start=0.9, r_end=0.8, elastic=True)),
    ("90%-50%", dict(r_start=0.9, r_end=0.5, elastic=True)),
]
EPOCHS = 16


def _measure():
    results = {}
    for name, kw in STRATEGIES:
        accs, times, late_hits, hit_series = [], [], [], None
        for seed in [0, 1]:
            train, test = make_split("cifar10-like", 1200, seed)
            model = build_model("resnet18", train.dim, train.num_classes,
                                rng=seed + 2)
            policy = SpiderCachePolicy(cache_fraction=0.2, rng=seed + 3, **kw)
            res = Trainer(model, train, test, policy,
                          TrainerConfig(epochs=EPOCHS, batch_size=64)).run()
            accs.append(res.final_accuracy)
            times.append(res.total_time_s)
            late_hits.append(float(np.mean(res.series("hit_ratio")[-4:])))
            if seed == 0:
                hit_series = res.series("hit_ratio")
        results[name] = dict(
            acc=float(np.mean(accs)),
            time=float(np.mean(times)),
            late_hit=float(np.mean(late_hits)),
            hit_series=hit_series,
        )
    return results


def test_table6_elastic_strategies(once, benchmark):
    results = once(_measure)
    rows = [
        (name,
         f"{r['acc']:.3f}",
         f"{r['time']:.1f}s",
         f"{r['late_hit']:.3f}")
        for name, r in results.items()
    ]
    print_table(
        "Table 6 / Fig 16: elastic imp-ratio strategies (cifar10-like)",
        ["Imp-Ratio", "Top-1 acc", "train time", "late-epoch hit"],
        rows,
    )
    for name, r in results.items():
        print(f"  {name} hit trajectory: "
              + " ".join(f"{h:.2f}" for h in r["hit_series"]))
    benchmark.extra_info["rows"] = rows

    static, r8, r5 = (results[n] for n, _ in STRATEGIES)
    # Time shape: lower final imp-ratio -> larger homophily section ->
    # more (substitute) hits -> faster training.
    assert r5["time"] < r8["time"] < static["time"]
    # Hit shape: annealed strategies beat static in late epochs.
    assert r5["late_hit"] > static["late_hit"]
    assert r8["late_hit"] > static["late_hit"] - 0.01
    # Accuracy shape: static (accuracy-first) >= aggressive 50% strategy.
    assert static["acc"] >= r5["acc"] - 0.01