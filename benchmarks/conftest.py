"""Shared helpers for the experiment benchmarks.

Every bench regenerates one paper table or figure (see DESIGN.md's
per-experiment index). Heavy experiments run exactly once per bench
invocation (``benchmark.pedantic(..., rounds=1, iterations=1)``); the
figures'/tables' data rows are printed to stdout and attached to
``benchmark.extra_info`` so they land in pytest-benchmark's JSON output.

Scale note: dataset sizes and epoch counts are scaled down from the paper
(simulator on one CPU vs 100-epoch GPU runs); the *shapes* — orderings,
crossovers, rough factors — are what the benches assert.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

import pytest

from repro.baselines.baseline import LFUPolicy, LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.baselines.gradnorm import GradNormISPolicy
from repro.baselines.icache import ICacheFullPolicy, ICacheImpPolicy
from repro.baselines.shade import ShadePolicy
from repro.core.policy import SpiderCachePolicy
from repro.data.registry import make_dataset
from repro.data.synthetic import train_test_split
from repro.nn.models import build_model
from repro.train.metrics import TrainResult
from repro.train.trainer import Trainer, TrainerConfig

# Policy factories keyed by the names used throughout the paper's figures.
POLICY_FACTORIES: Dict[str, Callable[..., object]] = {
    "spidercache": lambda frac, rng: SpiderCachePolicy(cache_fraction=frac, rng=rng),
    "spidercache-imp": lambda frac, rng: SpiderCachePolicy(
        cache_fraction=frac, r_start=1.0, r_end=1.0, elastic=False, rng=rng
    ),
    "shade": lambda frac, rng: ShadePolicy(cache_fraction=frac, rng=rng),
    "gradnorm": lambda frac, rng: GradNormISPolicy(cache_fraction=frac, rng=rng),
    "icache": lambda frac, rng: ICacheFullPolicy(cache_fraction=frac, rng=rng),
    "icache-imp": lambda frac, rng: ICacheImpPolicy(cache_fraction=frac, rng=rng),
    "coordl": lambda frac, rng: CoorDLPolicy(cache_fraction=frac, rng=rng),
    "baseline": lambda frac, rng: LRUBaselinePolicy(cache_fraction=frac, rng=rng),
    "lfu": lambda frac, rng: LFUPolicy(cache_fraction=frac, rng=rng),
}


def make_split(preset: str = "cifar10-like", n_samples: int = 1200, seed: int = 0,
               **overrides):
    """Scaled-down dataset split for a bench run."""
    ds = make_dataset(preset, rng=seed, n_samples=n_samples, **overrides)
    return train_test_split(ds, test_fraction=0.25, rng=seed + 1)


def run_policy(
    policy_name: str,
    cache_fraction: float = 0.2,
    preset: str = "cifar10-like",
    n_samples: int = 1200,
    model_name: str = "resnet18",
    epochs: int = 10,
    batch_size: int = 64,
    seed: int = 0,
    split=None,
) -> TrainResult:
    """One full training run of a named policy."""
    train, test = split if split is not None else make_split(preset, n_samples, seed)
    model = build_model(model_name, train.dim, train.num_classes, rng=seed + 2)
    policy = POLICY_FACTORIES[policy_name](cache_fraction, seed + 3)
    cfg = TrainerConfig(epochs=epochs, batch_size=batch_size)
    return Trainer(model, train, test, policy, cfg).run()


def print_table(title: str, header: list, rows: list) -> None:
    """Render one experiment table to stdout.

    When the ``REPRO_BENCH_CSV_DIR`` environment variable is set, the same
    rows are also written as CSV into that directory (one file per table,
    named from a slug of the title) for downstream plotting.
    """
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))

    csv_dir = os.environ.get("REPRO_BENCH_CSV_DIR")
    if csv_dir:
        from repro.analysis.export import write_rows_csv

        slug = "".join(
            ch if ch.isalnum() else "_" for ch in title.lower()
        ).strip("_")[:80]
        write_rows_csv(header, rows, os.path.join(csv_dir, f"{slug}.csv"))


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
