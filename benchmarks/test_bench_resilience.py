"""R1 — fault-campaign sweep: degradation and recovery cost table.

Runs the default fault scenarios (outage, brownout, preemption, and the
combined case) against one SpiderCache configuration and reports, per
scenario, the accuracy delta, simulated-time overhead, restart/replay
cost, and degraded-serving volume relative to the clean baseline.

Shape assertions: every scenario must *complete* (that is the whole point
of the resilience subsystem), pure preemption must recover to the clean
accuracy exactly, and the brownout must cost time but no accuracy.
"""

from conftest import print_table

from repro.core.policy import SpiderCachePolicy
from repro.data.registry import make_dataset
from repro.data.synthetic import train_test_split
from repro.nn.models import build_model
from repro.resilience import DEFAULT_SCENARIOS, FaultCampaign, ResilientTrainer
from repro.train.trainer import TrainerConfig


def _run_campaign(tmp_root):
    def make_trainer(**kw):
        data = make_dataset("cifar10-like", rng=0, n_samples=400)
        train, test = train_test_split(data, test_fraction=0.25, rng=1)
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.2, rng=3)
        cfg = TrainerConfig(epochs=3, batch_size=32)
        return ResilientTrainer(
            model, train, test, policy, cfg,
            checkpoint_every_batches=10, **kw,
        )

    return FaultCampaign(make_trainer, tmp_root, DEFAULT_SCENARIOS).run()


def test_bench_fault_campaign(once, benchmark, tmp_path):
    result = once(_run_campaign, tmp_path)
    rows = [
        (
            r.scenario,
            "yes" if r.completed else "NO",
            f"{r.final_accuracy:.3f}",
            f"{r.accuracy_delta:+.3f}",
            f"{r.time_overhead_s:+.1f}s",
            r.restarts,
            r.replayed_batches,
            f"{r.recovery_s:.1f}s",
            r.degraded_substituted,
            r.degraded_skipped,
            r.breaker_opens,
        )
        for r in result.reports
    ]
    print_table(
        "Fault campaign: degradation and recovery vs clean baseline "
        f"(clean acc {result.clean_accuracy:.3f}, "
        f"time {result.clean_time_s:.1f}s)",
        ["scenario", "done", "acc", "d_acc", "d_time", "restarts",
         "replayed", "recovery", "substituted", "skipped", "opens"],
        rows,
    )
    benchmark.extra_info["rows"] = rows

    by_name = {r.scenario: r for r in result.reports}
    assert all(r.completed for r in result.reports)
    # Exact recovery: preemption alone changes nothing but time.
    preempt = by_name["preempt"]
    assert preempt.restarts >= 1
    assert abs(preempt.accuracy_delta) < 1e-12
    assert preempt.time_overhead_s > 0  # restart penalty + replay
    # Brownouts slow storage down but never lose samples.
    brownout = by_name["brownout"]
    assert brownout.brownout_extra_s > 0
    assert brownout.degraded_skipped == 0
    # Outages force degraded serving and trip the breaker.
    outage = by_name["outage"]
    assert outage.outage_failures > 0
    assert outage.breaker_opens >= 1
