"""E5 — Fig. 6(b): random replacement degrades accuracy.

Paper: iCache's random L-sample substitution boosts hit ratio but
"significantly degrades the model's final accuracy".
"""

from conftest import make_split, print_table

from repro.baselines.icache import ICacheFullPolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig


def _measure():
    rows = []
    results = {}
    for sub_prob in [0.0, 1.0]:
        accs, hits = [], []
        for seed in [0, 1, 2]:
            train, test = make_split(n_samples=1000, seed=seed)
            model = build_model("resnet18", train.dim, train.num_classes, rng=seed)
            policy = ICacheFullPolicy(
                cache_fraction=0.2, substitute_prob=sub_prob,
                skip_quantile=0.0, rng=seed + 10,
            )
            res = Trainer(model, train, test, policy,
                          TrainerConfig(epochs=12, batch_size=64)).run()
            accs.append(res.final_accuracy)
            hits.append(res.mean_hit_ratio)
        acc = sum(accs) / len(accs)
        hit = sum(hits) / len(hits)
        results[sub_prob] = (acc, hit)
        rows.append((f"{sub_prob:.0%}", f"{acc:.3f}", f"{hit:.3f}"))
    return rows, results


def test_fig6b_random_replacement(once, benchmark):
    rows, results = once(_measure)
    print_table(
        "Fig 6(b): iCache random substitution — accuracy vs hit ratio",
        ["substitute prob", "final accuracy", "mean hit ratio"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    acc0, hit0 = results[0.0]
    acc1, hit1 = results[1.0]
    assert hit1 > hit0  # substitution raises the hit ratio...
    assert acc1 < acc0  # ...but costs accuracy (the paper's complaint)
