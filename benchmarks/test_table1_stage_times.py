"""E7 — Table 1: per-mini-batch stage time consumption.

Reproduces the paper's stage-cost table and checks the relations the
pipeline design relies on (IS < Stage2 for ResNets; IS > Stage2 for
AlexNet/VGG16 but < Stage2 + Stage1).
"""

from conftest import print_table

from repro.nn.models import MODEL_ZOO
from repro.train.pipeline import PipelineSimulator, StageCostModel

PAPER_TABLE1 = {
    "resnet18": (42, 35, 16),
    "resnet50": (48, 37, 18),
    "alexnet": (62, 33, 35),
    "vgg16": (56, 28, 31),
}


def _measure():
    rows = []
    for name, spec in MODEL_ZOO.items():
        c = StageCostModel.from_spec(spec)
        mode = c.recommended_mode()
        sim = PipelineSimulator(c, mode=mode)
        rows.append(
            (
                name,
                f"{c.stage1_ms:.0f}ms",
                f"{c.stage2_ms:.0f}ms",
                f"{c.is_ms:.0f}ms",
                mode,
                f"{sim.per_batch_visible_ms(64):.2f}ms",
            )
        )
    return rows


def test_table1_stage_times(once, benchmark):
    rows = once(_measure)
    print_table(
        "Table 1: per-mini-batch stage costs and overlap mode",
        ["model", "stage1", "stage2", "IS", "overlap mode", "visible IS/batch"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Costs match the paper's Table 1 verbatim.
    for name, (s1, s2, is_ms) in PAPER_TABLE1.items():
        spec = MODEL_ZOO[name]
        assert (spec.stage1_ms, spec.stage2_ms, spec.is_ms) == (s1, s2, is_ms)
    # §5: IS always fits inside the chosen overlap window.
    for r in rows:
        assert float(r[5].rstrip("ms")) < 0.5
