"""A5 — Ablation: importance-driven prefetching.

Paper §4.2: "Eviction and prefetching are driven by sample importance
scores." Prefetching refills the Importance Cache with the current
top-scored samples at each epoch start. It costs real fetches but converts
later demand misses into hits — a win whenever the prefetched samples are
sampled more than once before eviction.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

FRACTIONS = [0.0, 0.25, 0.5, 1.0]
EPOCHS = 10


def _measure():
    rows = []
    metrics = {}
    for pf in FRACTIONS:
        hits, early, fetches = [], [], []
        for seed in [0, 1]:
            train, test = make_split("cifar10-like", 1000, seed)
            model = build_model("resnet18", train.dim, train.num_classes,
                                rng=seed + 2)
            policy = SpiderCachePolicy(cache_fraction=0.2,
                                       prefetch_fraction=pf, rng=seed + 3)
            trainer = Trainer(model, train, test, policy,
                              TrainerConfig(epochs=EPOCHS, batch_size=64))
            res = trainer.run()
            hits.append(res.mean_hit_ratio)
            # The prefetch win is concentrated in the warm-up epochs, before
            # demand-fill reaches the same steady state.
            early.append(float(np.mean(res.series("hit_ratio")[1:4])))
            fetches.append(trainer.store.fetch_count)
        metrics[pf] = dict(hit=float(np.mean(hits)),
                           early=float(np.mean(early)),
                           fetches=float(np.mean(fetches)))
        rows.append((f"{pf:.0%}", f"{metrics[pf]['hit']:.3f}",
                     f"{metrics[pf]['early']:.3f}",
                     f"{metrics[pf]['fetches']:.0f}"))
    return rows, metrics


def test_ablation_prefetch(once, benchmark):
    rows, metrics = once(_measure)
    print_table(
        "A5: importance prefetch fraction (20% cache)",
        ["prefetch", "mean hit", "early-epoch hit", "total remote fetches"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Prefetching raises the warm-up hit ratio; steady state converges to
    # the same cache content, so the mean barely moves.
    assert metrics[0.5]["early"] > metrics[0.0]["early"]
    assert abs(metrics[1.0]["hit"] - metrics[0.0]["hit"]) < 0.05
    # But prefetches are real fetches: total I/O volume grows with the
    # fraction, so aggressive prefetching is not free.
    assert metrics[1.0]["fetches"] > metrics[0.0]["fetches"]