"""A5 — Ablation: importance-driven prefetching.

Paper §4.2: "Eviction and prefetching are driven by sample importance
scores." Prefetching refills the Importance Cache with the current
top-scored samples at each epoch start. It costs real fetches but converts
later demand misses into hits — a win whenever the prefetched samples are
sampled more than once before eviction.
"""

import numpy as np
from conftest import make_split, print_table

from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.trainer import Trainer, TrainerConfig

FRACTIONS = [0.0, 0.25, 0.5, 1.0]
EPOCHS = 10


def _measure():
    rows = []
    metrics = {}
    for pf in FRACTIONS:
        hits, early, fetches = [], [], []
        for seed in [0, 1]:
            train, test = make_split("cifar10-like", 1000, seed)
            model = build_model("resnet18", train.dim, train.num_classes,
                                rng=seed + 2)
            policy = SpiderCachePolicy(cache_fraction=0.2,
                                       prefetch_fraction=pf, rng=seed + 3)
            trainer = Trainer(model, train, test, policy,
                              TrainerConfig(epochs=EPOCHS, batch_size=64))
            res = trainer.run()
            hits.append(res.mean_hit_ratio)
            # The prefetch win is concentrated in the warm-up epochs, before
            # demand-fill reaches the same steady state.
            early.append(float(np.mean(res.series("hit_ratio")[1:4])))
            fetches.append(trainer.store.fetch_count)
        metrics[pf] = dict(hit=float(np.mean(hits)),
                           early=float(np.mean(early)),
                           fetches=float(np.mean(fetches)))
        rows.append((f"{pf:.0%}", f"{metrics[pf]['hit']:.3f}",
                     f"{metrics[pf]['early']:.3f}",
                     f"{metrics[pf]['fetches']:.0f}"))
    return rows, metrics


def test_ablation_prefetch(once, benchmark):
    rows, metrics = once(_measure)
    print_table(
        "A5: importance prefetch fraction (20% cache)",
        ["prefetch", "mean hit", "early-epoch hit", "total remote fetches"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Prefetching raises the warm-up hit ratio; steady state converges to
    # the same cache content, so the mean barely moves.
    assert metrics[0.5]["early"] > metrics[0.0]["early"]
    assert abs(metrics[1.0]["hit"] - metrics[0.0]["hit"]) < 0.05
    # But prefetches are real fetches: total I/O volume grows with the
    # fraction, so aggressive prefetching is not free.
    assert metrics[1.0]["fetches"] > metrics[0.0]["fetches"]

# ---------------------------------------------------------------------------
# A5b — Concurrent prefetching loader (worker-overlap ablation)

WORKERS = [0, 2, 4, 8]


def _measure_workers():
    rows = []
    metrics = {}
    for w in WORKERS:
        train, test = make_split("cifar10-like", 600, 0)
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        policy = SpiderCachePolicy(cache_fraction=0.2, rng=3)
        # io_workers=1 so the serial run charges the full fetch sum — the
        # overlap ablation then isolates the loader's window accounting.
        trainer = Trainer(model, train, test, policy,
                          TrainerConfig(epochs=6, batch_size=64,
                                        io_workers=1, prefetch_workers=w))
        res = trainer.run()
        load = float(sum(e.data_load_s for e in res.epochs))
        metrics[w] = dict(load=load,
                          acc=res.final_accuracy,
                          hit=res.mean_hit_ratio)
        rows.append((str(w), f"{load:.3f}", f"{res.final_accuracy:.3f}",
                     f"{res.mean_hit_ratio:.3f}"))
        if hasattr(trainer.loader, "close"):
            trainer.loader.close()
    return rows, metrics


def test_ablation_prefetch_workers(once, benchmark):
    rows, metrics = once(_measure_workers)
    print_table(
        "A5b: prefetching loader workers (io_workers=1)",
        ["workers", "data_load_s", "final acc", "mean hit"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # Bit-identical training under every worker count: overlap changes
    # only the simulated load time, never the learning trajectory.
    for w in WORKERS[1:]:
        assert metrics[w]["acc"] == metrics[0]["acc"]
        assert metrics[w]["hit"] == metrics[0]["hit"]
    # Overlap wins: simulated data-load time strictly below the serial
    # sum for every concurrent width, and wider windows never lose.
    for w in [2, 4, 8]:
        assert metrics[w]["load"] < metrics[0]["load"]
    assert metrics[4]["load"] <= metrics[2]["load"]
    assert metrics[8]["load"] <= metrics[4]["load"]
