"""E14 — Fig. 17: per-epoch training time vs GPU count.

Paper: SpiderCache reduces per-epoch time at every GPU count (1-4), with
the relative gap persisting as GPUs scale compute away and I/O remains;
communication overheads keep scaling sublinear.
"""

import numpy as np
from conftest import make_split, print_table

from repro.baselines.baseline import LRUBaselinePolicy
from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.multigpu import MultiGPUSimulator
from repro.train.trainer import Trainer, TrainerConfig

GPUS = [1, 2, 3, 4]


def _measure():
    train, test = make_split("cifar10-like", 1200, seed=0)
    sim = MultiGPUSimulator(comm_ms_per_step=8.0, steps_per_epoch=15)
    out = {}
    for name, policy in [
        ("baseline", LRUBaselinePolicy(cache_fraction=0.2, rng=3)),
        ("spidercache", SpiderCachePolicy(cache_fraction=0.2, rng=3)),
    ]:
        model = build_model("resnet18", train.dim, train.num_classes, rng=2)
        res = Trainer(model, train, test, policy,
                      TrainerConfig(epochs=10, batch_size=64)).run()
        out[name] = sim.per_epoch_times(res, GPUS)
    return out


def test_fig17_multigpu(once, benchmark):
    times = once(_measure)
    rows = [
        (f"{k} GPU{'s' if k > 1 else ''}",
         f"{times['baseline'][k]:.2f}s",
         f"{times['spidercache'][k]:.2f}s",
         f"{times['baseline'][k] / times['spidercache'][k]:.2f}x")
        for k in GPUS
    ]
    print_table(
        "Fig 17: mean per-epoch time vs GPU count (ResNet18, cifar10-like)",
        ["GPUs", "baseline", "SpiderCache", "speed-up"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    for policy in ["baseline", "spidercache"]:
        series = [times[policy][k] for k in GPUS]
        # More GPUs -> faster epochs, but sublinear (communication).
        assert all(a > b for a, b in zip(series, series[1:])), policy
        assert series[0] / series[-1] < 4.0, policy
    # SpiderCache faster at every GPU count.
    for k in GPUS:
        assert times["spidercache"][k] < times["baseline"][k], k