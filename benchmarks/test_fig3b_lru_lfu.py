"""E2 — Fig. 3(b): LRU/LFU hit rates under random sampling.

Paper: both classic policies perform poorly because per-epoch random
permutation destroys reuse locality; hit rates stay far below the cache
fraction until the cache approaches the dataset size.
"""

import numpy as np
from conftest import print_table

from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache

CACHE_FRACTIONS = [0.10, 0.25, 0.50, 0.75]
N = 2000
EPOCHS = 5


def _sweep():
    rng = np.random.default_rng(0)
    rows = []
    for frac in CACHE_FRACTIONS:
        cap = int(frac * N)
        results = {}
        for name, cls in [("LRU", LRUCache), ("LFU", LFUCache)]:
            cache = cls(cap)
            for _ in range(EPOCHS):
                for i in rng.permutation(N):
                    if cache.get(int(i)) is None:
                        cache.put(int(i), i)
            results[name] = cache.stats.hit_ratio
        rows.append(
            (f"{frac:.0%}", f"{results['LRU']:.3f}", f"{results['LFU']:.3f}")
        )
    return rows


def test_fig3b_lru_lfu_hit_rates(once, benchmark):
    rows = once(_sweep)
    print_table(
        "Fig 3(b): LRU/LFU hit ratio vs cache size (random sampling)",
        ["cache size", "LRU", "LFU"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    lru = [float(r[1]) for r in rows]
    # Shape: hit rate grows with cache size but stays well below the
    # fraction except at very large caches.
    assert all(a <= b + 1e-9 for a, b in zip(lru, lru[1:]))
    assert lru[0] < 0.05  # 10% cache nearly useless
    assert lru[1] < 0.25 / 2  # far below the cache fraction
