"""E14b — Fig. 17 from first principles: real data-parallel runs.

Complements `test_fig17_multigpu.py` (which scales a single-GPU run with a
closed-form model) by actually running K synchronized replicas with
gradient averaging, per-worker shards/caches, and straggler/communication
accounting (`repro.train.data_parallel`). Same Fig.-17 claims: SpiderCache
beats the LRU baseline at every worker count; scaling is sublinear.
"""

import numpy as np
from conftest import make_split, print_table

from repro.baselines.baseline import LRUBaselinePolicy
from repro.core.policy import SpiderCachePolicy
from repro.nn.models import build_model
from repro.train.data_parallel import DataParallelTrainer
from repro.train.trainer import TrainerConfig

WORLD_SIZES = [1, 2, 4]
EPOCHS = 6


def _run(train, test, policy_cls, world_size):
    dp = DataParallelTrainer(
        model_factory=lambda: build_model("resnet18", train.dim,
                                          train.num_classes, rng=7),
        train_set=train,
        test_set=test,
        policy_factory=lambda rank: policy_cls(cache_fraction=0.2,
                                               rng=100 + rank),
        world_size=world_size,
        config=TrainerConfig(epochs=EPOCHS, batch_size=64),
        rng=5,
    )
    res = dp.run()
    assert dp.replicas_in_sync(atol=1e-8)
    return res


def _measure():
    train, test = make_split("cifar10-like", 1200, seed=0)
    out = {}
    for name, cls in [("baseline", LRUBaselinePolicy),
                      ("spidercache", SpiderCachePolicy)]:
        for k in WORLD_SIZES:
            res = _run(train, test, cls, k)
            out[(name, k)] = (
                float(np.mean(res.series("epoch_time_s")[1:])),
                res.final_accuracy,
            )
    return out


def test_fig17b_data_parallel(once, benchmark):
    out = once(_measure)
    rows = [
        (str(k),
         f"{out[('baseline', k)][0]:.2f}s",
         f"{out[('spidercache', k)][0]:.2f}s",
         f"{out[('baseline', k)][0] / out[('spidercache', k)][0]:.2f}x",
         f"{out[('spidercache', k)][1]:.3f}")
        for k in WORLD_SIZES
    ]
    print_table(
        "Fig 17 (real DP runs): mean per-epoch time vs workers",
        ["workers", "baseline", "spidercache", "gain", "spider acc"],
        rows,
    )
    benchmark.extra_info["rows"] = rows
    for name in ["baseline", "spidercache"]:
        times = [out[(name, k)][0] for k in WORLD_SIZES]
        assert all(a > b for a, b in zip(times, times[1:])), name
        # Sublinear: 4 workers give < 4x.
        assert times[0] / times[-1] < 4.0, name
    for k in WORLD_SIZES:
        assert out[("spidercache", k)][0] < out[("baseline", k)][0], k
        # Accuracy survives sharded caching + gradient averaging.
        assert out[("spidercache", k)][1] > 0.6, k