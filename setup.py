"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP-517
editable installs fail with ``invalid command 'bdist_wheel'``. This shim
enables ``pip install -e . --no-use-pep517`` (setup.py develop). All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
