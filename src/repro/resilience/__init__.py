"""Fault-tolerant training runtime: fault injection, degraded serving, recovery.

The paper motivates SpiderCache with training on "low-cost GPU Spot VMs
... prone to termination" over remote storage. This package makes that
deployment a first-class, *simulatable* part of the reproduction:

* :mod:`~repro.resilience.faults` — deterministic fail-stop outage and
  latency-brownout windows on the simulated clock;
* :mod:`~repro.resilience.breaker` — a circuit breaker over the remote
  read path (closed / open / half-open, simulated-clock cool-down);
* :mod:`~repro.resilience.preemption` — spot-VM kill schedules;
* :mod:`~repro.resilience.trainer` — checkpoint-restart training with
  bit-exact resume;
* :mod:`~repro.resilience.campaign` — scenario sweeps reporting recovery
  cost, degraded-serving counts, and accuracy deltas (the ``repro
  faults`` CLI).
"""

from repro.resilience.breaker import (
    BreakerEvent,
    BreakerState,
    CircuitBreaker,
    CircuitBreakerStore,
)
from repro.resilience.campaign import (
    DEFAULT_SCENARIOS,
    CampaignResult,
    FaultCampaign,
    FaultScenario,
    ScenarioReport,
)
from repro.resilience.errors import (
    CircuitOpenError,
    DegradedModeError,
    PreemptionError,
    StorageOutageError,
)
from repro.resilience.faults import (
    BrownoutWindow,
    FaultInjectingStore,
    FaultPlan,
    OutageWindow,
)
from repro.resilience.preemption import PreemptionSchedule
from repro.resilience.state import load_state, save_state
from repro.resilience.trainer import RECOVERY_STAGE, RecoveryStats, ResilientTrainer

__all__ = [
    "BreakerEvent",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerStore",
    "CampaignResult",
    "DEFAULT_SCENARIOS",
    "FaultCampaign",
    "FaultScenario",
    "ScenarioReport",
    "CircuitOpenError",
    "DegradedModeError",
    "PreemptionError",
    "StorageOutageError",
    "BrownoutWindow",
    "FaultInjectingStore",
    "FaultPlan",
    "OutageWindow",
    "PreemptionSchedule",
    "load_state",
    "save_state",
    "RECOVERY_STAGE",
    "RecoveryStats",
    "ResilientTrainer",
]
