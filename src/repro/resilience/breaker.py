"""Circuit breaker over the remote-storage read path.

During a fail-stop outage, every fetch burns its full retry budget before
failing — the loader stalls on a tier that is known-down. The breaker
converts that into fail-fast rejections the semantic cache can absorb in
degraded mode:

* **closed** — requests pass through; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, requests are
  rejected immediately with
  :class:`~repro.resilience.errors.CircuitOpenError` until ``cooldown_s``
  of *simulated* time elapses;
* **half-open** — after the cool-down, probe requests pass through;
  ``close_threshold`` consecutive successes re-close the breaker, any
  failure re-opens it (fresh cool-down).

All timing uses the wrapped store's :class:`~repro.storage.clock.SimClock`,
so breaker trajectories are deterministic per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

import numpy as np

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.resilience.errors import CircuitOpenError
from repro.storage.flaky import TransientFetchError
from repro.storage.wrappers import StoreWrapper

__all__ = ["BreakerState", "BreakerEvent", "CircuitBreaker", "CircuitBreakerStore"]


class BreakerState(str, Enum):
    """The breaker's position in its closed -> open -> half-open cycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerEvent:
    """One state transition, stamped with simulated time."""

    at_s: float
    old: BreakerState
    new: BreakerState


class CircuitBreaker:
    """Closed -> open -> half-open state machine on a simulated clock."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        close_threshold: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if close_threshold < 1:
            raise ValueError("close_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self.close_threshold = int(close_threshold)
        self.state = BreakerState.CLOSED
        self.events: List[BreakerEvent] = []
        self.opens = 0
        self.fast_failures = 0
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._opened_at = 0.0
        self._obs = NULL_OBSERVER
        self.label: "str | None" = None  # names the guarded resource

    def attach_observer(
        self, observer: Observer, label: "str | None" = None
    ) -> None:
        """Publish state transitions to ``observer``.

        ``label`` (e.g. ``"shard3"``) is attached to every transition
        event so multi-breaker owners stay distinguishable in the trace.
        """
        self._obs = observer
        if label is not None:
            self.label = str(label)

    # ------------------------------------------------------------------
    def _transition(self, new: BreakerState, now: float) -> None:
        if new is self.state:
            return
        self.events.append(BreakerEvent(now, self.state, new))
        if self._obs.active:
            self._obs.on_breaker(
                self.state.value, new.value, now, where=self.label
            )
        self.state = new

    def allow(self, now: float) -> bool:
        """May a request pass through at simulated time ``now``?

        An open breaker whose cool-down has elapsed moves to half-open and
        admits the probe.
        """
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.cooldown_s:
                self._half_open_successes = 0
                self._transition(BreakerState.HALF_OPEN, now)
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        """A passed-through request succeeded."""
        self._consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.close_threshold:
                self._transition(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> bool:
        """A passed-through request failed; returns True if now open."""
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return True
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._open(now)
            return True
        return False

    def _open(self, now: float) -> None:
        self._opened_at = now
        self._consecutive_failures = 0
        self.opens += 1
        self._transition(BreakerState.OPEN, now)

    # ------------------------------------------------------------------
    def reopen_close_pairs(self) -> List[tuple]:
        """(opened_at, reclosed_at) pairs for recovery-time reporting.

        An open with no later close yields ``(opened_at, None)``.
        """
        pairs = []
        opened_at = None
        for ev in self.events:
            if ev.new is BreakerState.OPEN and opened_at is None:
                opened_at = ev.at_s
            elif ev.new is BreakerState.CLOSED and opened_at is not None:
                pairs.append((opened_at, ev.at_s))
                opened_at = None
        if opened_at is not None:
            pairs.append((opened_at, None))
        return pairs


class CircuitBreakerStore(StoreWrapper):
    """Guards a store stack with a :class:`CircuitBreaker`.

    Failures of the wrapped ``get`` (any
    :class:`~repro.storage.flaky.TransientFetchError`, outage errors
    included) feed the breaker. The failure that *trips* it — and every
    rejected request while it cools down — surfaces as
    :class:`~repro.resilience.errors.CircuitOpenError`, the signal the
    semantic cache's degraded mode catches.
    """

    def __init__(self, inner, breaker: CircuitBreaker) -> None:
        super().__init__(inner)
        self.breaker = breaker

    def get(self, index: int) -> np.ndarray:
        now = self.clock.total_seconds
        if not self.breaker.allow(now):
            self.breaker.fast_failures += 1
            raise CircuitOpenError(
                f"circuit open at t={now:.3f}s; rejecting fetch of {index}"
            )
        try:
            payload = self.inner.get(index)
        except TransientFetchError as exc:
            opened = self.breaker.record_failure(self.clock.total_seconds)
            if opened:
                raise CircuitOpenError(
                    f"circuit opened at t={now:.3f}s fetching {index}"
                ) from exc
            raise
        self.breaker.record_success(self.clock.total_seconds)
        return payload
