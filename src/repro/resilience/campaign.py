"""Fault campaigns: sweep fault scenarios and report the damage.

A campaign first runs the configuration *clean* (no faults) to establish
the accuracy/time baseline and the run's simulated duration, then replays
it under each :class:`FaultScenario` with the fault machinery engaged:
the store is wrapped in a :class:`~repro.resilience.faults.FaultInjectingStore`
plus a :class:`~repro.resilience.breaker.CircuitBreakerStore`, degraded-mode
serving is enabled on the policy's semantic cache, and preemptions are
driven by a :class:`~repro.resilience.preemption.PreemptionSchedule`
through a :class:`~repro.resilience.trainer.ResilientTrainer`.

Scenario windows are expressed as *fractions* of the clean run's simulated
duration, so one scenario set works across datasets, models, and epoch
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

from repro.resilience.breaker import CircuitBreaker, CircuitBreakerStore
from repro.resilience.faults import BrownoutWindow, FaultInjectingStore, FaultPlan, OutageWindow
from repro.resilience.preemption import PreemptionSchedule
from repro.resilience.trainer import RECOVERY_STAGE, ResilientTrainer

__all__ = [
    "FaultScenario",
    "ScenarioReport",
    "CampaignResult",
    "FaultCampaign",
    "DEFAULT_SCENARIOS",
]


@dataclass(frozen=True)
class FaultScenario:
    """One fault configuration to sweep.

    ``outages`` are ``(start_frac, end_frac)`` pairs and ``brownouts``
    ``(start_frac, end_frac, multiplier)`` triples, both fractions of the
    clean run's total simulated time. ``preempt_at`` are absolute
    ``(epoch, batch)`` kill points.
    """

    name: str
    outages: Tuple[Tuple[float, float], ...] = ()
    brownouts: Tuple[Tuple[float, float, float], ...] = ()
    preempt_at: Tuple[Tuple[int, int], ...] = ()
    restart_penalty_s: float = 0.0
    breaker_failure_threshold: int = 3
    breaker_cooldown_frac: float = 0.02  # of the clean run's duration

    def build_plan(self, total_s: float) -> FaultPlan:
        """Resolve fractional windows against the clean run's duration."""
        return FaultPlan(
            outages=[OutageWindow(f0 * total_s, f1 * total_s) for f0, f1 in self.outages],
            brownouts=[
                BrownoutWindow(f0 * total_s, f1 * total_s, mult)
                for f0, f1, mult in self.brownouts
            ],
        )


DEFAULT_SCENARIOS: Tuple[FaultScenario, ...] = (
    FaultScenario("outage", outages=((0.20, 0.35),)),
    FaultScenario("brownout", brownouts=((0.10, 0.60, 8.0),)),
    FaultScenario("preempt", preempt_at=((1, 2),), restart_penalty_s=5.0),
    FaultScenario(
        "outage+preempt",
        outages=((0.25, 0.40),),
        preempt_at=((1, 2),),
        restart_penalty_s=5.0,
    ),
)


@dataclass
class ScenarioReport:
    """What one scenario did to the run, relative to the clean baseline."""

    scenario: str
    completed: bool
    final_accuracy: float = 0.0
    accuracy_delta: float = 0.0  # scenario - clean
    total_time_s: float = 0.0
    time_overhead_s: float = 0.0  # scenario - clean
    recovery_s: float = 0.0  # restart penalties charged
    restarts: int = 0
    replayed_batches: int = 0
    lost_s: float = 0.0
    checkpoints_written: int = 0
    degraded_substituted: int = 0
    degraded_skipped: int = 0
    errors_absorbed: int = 0
    breaker_opens: int = 0
    breaker_fast_failures: int = 0
    breaker_open_s: float = 0.0  # total open->reclose span
    outage_failures: int = 0
    brownout_extra_s: float = 0.0
    error: str = ""


@dataclass
class CampaignResult:
    clean_accuracy: float
    clean_time_s: float
    reports: List[ScenarioReport] = field(default_factory=list)

    def format_table(self) -> str:
        """Human-readable summary table of every scenario report."""
        lines = [
            f"clean baseline: accuracy {self.clean_accuracy:.3f}, "
            f"simulated time {self.clean_time_s:.1f}s",
            f"{'scenario':<16} {'ok':>3} {'acc':>7} {'d_acc':>7} "
            f"{'time':>8} {'d_time':>8} {'restarts':>8} {'degraded':>8} "
            f"{'skipped':>8} {'opens':>6}",
        ]
        for r in self.reports:
            lines.append(
                f"{r.scenario:<16} {'y' if r.completed else 'N':>3} "
                f"{r.final_accuracy:>7.3f} {r.accuracy_delta:>+7.3f} "
                f"{r.total_time_s:>7.1f}s {r.time_overhead_s:>+7.1f}s "
                f"{r.restarts:>8} {r.degraded_substituted:>8} "
                f"{r.degraded_skipped:>8} {r.breaker_opens:>6}"
            )
        return "\n".join(lines)


class FaultCampaign:
    """Runs scenarios over fresh trainers from a factory.

    ``make_trainer`` must return a *fresh, identically-configured*
    :class:`ResilientTrainer` on every call (fresh model, policy, RNGs) —
    the campaign compares runs, so shared mutable state between scenarios
    would poison the comparison. The factory receives the scenario's
    checkpoint directory and, for fault scenarios, the preemption
    schedule and restart penalty to install.
    """

    def __init__(
        self,
        make_trainer: Callable[..., ResilientTrainer],
        checkpoint_root: Path,
        scenarios: Sequence[FaultScenario] = DEFAULT_SCENARIOS,
    ) -> None:
        self.make_trainer = make_trainer
        self.checkpoint_root = Path(checkpoint_root)
        self.scenarios = list(scenarios)

    # ------------------------------------------------------------------
    def _instrument(
        self, trainer: ResilientTrainer, plan: FaultPlan, scenario: FaultScenario
    ) -> Tuple[FaultInjectingStore, CircuitBreaker]:
        faulty = FaultInjectingStore(trainer.store, plan)
        breaker = CircuitBreaker(
            failure_threshold=scenario.breaker_failure_threshold,
            cooldown_s=scenario.breaker_cooldown_frac * self._clean_time_s,
        )
        guarded = CircuitBreakerStore(faulty, breaker)
        trainer.store = guarded
        trainer.policy.ctx.store = guarded
        cache = getattr(trainer.policy, "cache", None)
        if cache is not None and hasattr(cache, "enable_degraded_mode"):
            cache.enable_degraded_mode()
        return faulty, breaker

    def run(self, verbose: bool = False, log=print) -> CampaignResult:
        """Run the clean baseline, then every scenario; returns all reports."""
        # Clean baseline: no fault wrappers at all.
        clean = self.make_trainer(
            checkpoint_dir=self.checkpoint_root / "clean",
            preemptions=None,
            restart_penalty_s=0.0,
        )
        clean_result = clean.run()
        self._clean_time_s = clean.clock.total_seconds
        result = CampaignResult(
            clean_accuracy=clean_result.final_accuracy,
            clean_time_s=self._clean_time_s,
        )
        if verbose:
            log(
                f"clean: accuracy {result.clean_accuracy:.3f}, "
                f"time {result.clean_time_s:.1f}s"
            )

        for scenario in self.scenarios:
            result.reports.append(self._run_scenario(scenario, result))
            if verbose:
                r = result.reports[-1]
                log(
                    f"{scenario.name}: "
                    + (
                        f"accuracy {r.final_accuracy:.3f} "
                        f"({r.accuracy_delta:+.3f}), "
                        f"time {r.total_time_s:.1f}s ({r.time_overhead_s:+.1f}s)"
                        if r.completed
                        else f"FAILED: {r.error}"
                    )
                )
        return result

    def _run_scenario(
        self, scenario: FaultScenario, campaign: CampaignResult
    ) -> ScenarioReport:
        plan = scenario.build_plan(campaign.clean_time_s)
        schedule = (
            PreemptionSchedule(at=scenario.preempt_at)
            if scenario.preempt_at
            else None
        )
        trainer = self.make_trainer(
            checkpoint_dir=self.checkpoint_root / scenario.name,
            preemptions=schedule,
            restart_penalty_s=scenario.restart_penalty_s,
        )
        faulty, breaker = self._instrument(trainer, plan, scenario)
        report = ScenarioReport(scenario=scenario.name, completed=False)
        try:
            run = trainer.run()
        except Exception as exc:  # a scenario failing is a *finding*
            report.error = f"{type(exc).__name__}: {exc}"
            return report

        report.completed = True
        report.final_accuracy = run.final_accuracy
        report.accuracy_delta = run.final_accuracy - campaign.clean_accuracy
        report.total_time_s = trainer.clock.total_seconds
        report.time_overhead_s = report.total_time_s - campaign.clean_time_s
        report.recovery_s = trainer.clock.stage_seconds(RECOVERY_STAGE)
        report.restarts = trainer.recovery.restarts
        report.replayed_batches = trainer.recovery.replayed_batches
        report.lost_s = trainer.recovery.lost_s
        report.checkpoints_written = trainer.recovery.checkpoints_written
        cache = getattr(trainer.policy, "cache", None)
        if cache is not None and hasattr(cache, "degraded"):
            report.degraded_substituted = cache.degraded.substituted
            report.degraded_skipped = cache.degraded.skipped
            report.errors_absorbed = cache.degraded.errors_absorbed
        report.breaker_opens = breaker.opens
        report.breaker_fast_failures = breaker.fast_failures
        report.breaker_open_s = sum(
            (closed - opened)
            for opened, closed in breaker.reopen_close_pairs()
            if closed is not None
        )
        report.outage_failures = faulty.outage_failures
        report.brownout_extra_s = faulty.brownout_extra_s
        return report
