"""Deterministic preemption schedules (spot-VM terminations).

The paper motivates SpiderCache with training on "low-cost GPU Spot VMs
... prone to termination". This module injects those terminations
reproducibly: a :class:`PreemptionSchedule` fires at exact ``(epoch,
batch)`` slots and/or at simulated-clock instants, raising
:class:`~repro.resilience.errors.PreemptionError` from the trainer's
per-batch hook. Each trigger fires exactly once — after the resilient
trainer restores from a checkpoint and replays, the same slot passes
through without re-firing, which is what lets a run with a finite
schedule terminate.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.resilience.errors import PreemptionError

__all__ = ["PreemptionSchedule"]


class PreemptionSchedule:
    """Kill points for a training run, keyed to slots or simulated time.

    Parameters
    ----------
    at:
        ``(epoch, batch)`` pairs; the run is killed *after* that batch
        slot finishes (mid-epoch, so replay is observable).
    at_times_s:
        Simulated-clock instants; the run is killed at the first batch
        boundary where ``clock.total_seconds`` has passed the instant.
    """

    def __init__(
        self,
        at: Optional[Iterable[Tuple[int, int]]] = None,
        at_times_s: Optional[Iterable[float]] = None,
    ) -> None:
        self._points: List[Tuple[int, int]] = sorted(
            {(int(e), int(b)) for e, b in (at or [])}
        )
        self._times: List[float] = sorted(float(t) for t in (at_times_s or []))
        self._fired_points: Set[Tuple[int, int]] = set()
        self._fired_times: Set[float] = set()

    # ------------------------------------------------------------------
    def check(self, epoch: int, batch: int, now_s: float) -> None:
        """Raise :class:`PreemptionError` if a pending trigger has hit."""
        key = (int(epoch), int(batch))
        if key in self._points and key not in self._fired_points:
            self._fired_points.add(key)
            raise PreemptionError(epoch, batch, now_s)
        for t in self._times:
            if t in self._fired_times:
                continue
            if now_s >= t:
                self._fired_times.add(t)
                raise PreemptionError(epoch, batch, now_s)

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self._points) + len(self._times)

    @property
    def fired(self) -> int:
        return len(self._fired_points) + len(self._fired_times)

    @property
    def pending(self) -> int:
        return self.total - self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PreemptionSchedule(points={self._points}, times={self._times}, "
            f"fired={self.fired}/{self.total})"
        )
