"""Checkpoint-restart training on preemptible (simulated) infrastructure.

:class:`ResilientTrainer` wraps the base epoch loop with the full
spot-VM survival kit:

* **auto-checkpointing** — every ``checkpoint_every_batches`` batch slots
  (and at each epoch boundary) the *entire* training runtime is
  snapshotted through one :func:`~repro.resilience.state.save_state`
  archive: model parameters, optimizer momentum, the policy's caches,
  score table, elastic-manager history and RNG streams, the simulated
  clock, store counters, and the mid-epoch cursor (epoch, next batch
  slot, order array, running accumulators);
* **preemption recovery** — a :class:`~repro.resilience.preemption.PreemptionSchedule`
  raises :class:`~repro.resilience.errors.PreemptionError` from the
  per-batch hook; the trainer catches it, restores the latest checkpoint,
  optionally charges a ``restart_penalty_s`` to a dedicated ``recovery``
  clock stage, and replays from the cursor;
* **exact resume** — because every source of nondeterminism is in the
  snapshot (heap tie-break counters, RNG bit-generator states, dict
  orders), the recovered run's parameter trajectory and cache contents
  are *bit-for-bit identical* to an uninterrupted run's. Tests assert
  this.

A killed process can also resume: construct a fresh ``ResilientTrainer``
with the same configuration and ``resume=True`` and it picks up from the
newest archive in ``checkpoint_dir``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.resilience.errors import PreemptionError
from repro.resilience.preemption import PreemptionSchedule
from repro.resilience.state import load_state, save_state
from repro.storage.wrappers import StoreWrapper
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.trainer import EpochAccumulator, Trainer

__all__ = ["ResilientTrainer", "RecoveryStats", "RECOVERY_STAGE"]

#: SimClock stage that restart penalties are charged to, kept separate from
#: the Fig.-2 pipeline stages so recovery overhead is reportable on its own.
RECOVERY_STAGE = "recovery"


@dataclass
class RecoveryStats:
    """What fault recovery cost this run."""

    restarts: int = 0
    replayed_batches: int = 0  # batch slots re-run after restores
    lost_s: float = 0.0  # simulated progress discarded at preemptions
    checkpoints_written: int = 0


class ResilientTrainer(Trainer):
    """A :class:`Trainer` that survives injected preemptions.

    Parameters
    ----------
    checkpoint_dir:
        Directory for ``ckpt-NNNNNN.npz`` archives (created on demand).
    checkpoint_every_batches:
        Auto-checkpoint cadence in batch slots; ``0`` disables the
        mid-epoch cadence (epoch-boundary checkpoints still happen unless
        ``checkpoint_at_epoch_end`` is also off).
    preemptions:
        Optional :class:`PreemptionSchedule`; each trigger kills the run
        once, after which the trainer restores and replays.
    restart_penalty_s:
        Simulated seconds charged to the ``recovery`` stage per restart
        (VM re-acquisition + environment spin-up).
    max_restarts:
        Hard cap; exceeding it re-raises the :class:`PreemptionError`.
    keep_last:
        How many checkpoint archives to retain (older ones are pruned).
    resume:
        When true, ``run()`` first restores the newest archive already in
        ``checkpoint_dir`` — fresh-process resume after a real kill.
    """

    def __init__(
        self,
        *args,
        checkpoint_dir: Union[str, Path],
        checkpoint_every_batches: int = 25,
        checkpoint_at_epoch_end: bool = True,
        preemptions: Optional[PreemptionSchedule] = None,
        restart_penalty_s: float = 0.0,
        max_restarts: int = 16,
        keep_last: int = 3,
        resume: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_every_batches = int(checkpoint_every_batches)
        self.checkpoint_at_epoch_end = bool(checkpoint_at_epoch_end)
        self.preemptions = preemptions
        self.restart_penalty_s = float(restart_penalty_s)
        self.max_restarts = int(max_restarts)
        self.keep_last = max(1, int(keep_last))
        self.recovery = RecoveryStats()
        self._resume = bool(resume)
        self._cursor = (0, 0)  # (epoch, next batch slot)
        self._pending_order: Optional[np.ndarray] = None
        self._pending_acc: Optional[EpochAccumulator] = None
        self._result: Optional[TrainResult] = None
        self._ckpt_seq = 0
        self._last_ckpt_clock_s = 0.0
        self._batches_since_ckpt = 0

    # ------------------------------------------------------------------
    def run(self) -> TrainResult:
        cfg = self.config
        result = self._new_result()
        self._result = result
        if self._resume:
            latest = self.latest_checkpoint()
            if latest is not None:
                self._restore(latest)
            self._resume = False
        if self.latest_checkpoint() is None:
            # Baseline archive: a preemption before the first periodic
            # checkpoint still has something to restore.
            self._write_checkpoint()
        while True:
            try:
                e0, b0 = self._cursor
                for epoch in range(e0, cfg.epochs):
                    if epoch == e0 and self._pending_order is not None:
                        order, acc, start = self._pending_order, self._pending_acc, b0
                    else:
                        order, acc, start = None, None, 0
                    self._pending_order = None
                    self._pending_acc = None
                    self._run_epoch(
                        epoch,
                        result,
                        order=order,
                        start_batch=start,
                        acc=acc,
                        batch_hook=self._on_batch,
                    )
                    self._cursor = (epoch + 1, 0)
                return result
            except PreemptionError:
                self.recovery.restarts += 1
                self.recovery.lost_s += max(
                    0.0, self.clock.total_seconds - self._last_ckpt_clock_s
                )
                self.recovery.replayed_batches += self._batches_since_ckpt
                if self.recovery.restarts > self.max_restarts:
                    raise
                self._restore(self.latest_checkpoint())
                if self.restart_penalty_s:
                    self.clock.advance(RECOVERY_STAGE, self.restart_penalty_s)

    # ------------------------------------------------------------------
    def _on_batch(
        self, epoch: int, slot: int, order: np.ndarray, acc: EpochAccumulator
    ) -> None:
        self._cursor = (epoch, slot + 1)
        self._batches_since_ckpt += 1
        # Preemption is checked *before* writing a due checkpoint, so a
        # kill landing on a checkpoint boundary still loses work — the
        # pessimistic (realistic) ordering.
        if self.preemptions is not None:
            self.preemptions.check(epoch, slot, self.clock.total_seconds)
        due = (
            self.checkpoint_every_batches > 0
            and self._batches_since_ckpt >= self.checkpoint_every_batches
        )
        if self.checkpoint_at_epoch_end and slot + 1 == self.loader.n_batches(order):
            due = True
        if due:
            self._write_checkpoint(order=order, acc=acc)

    # ------------------------------------------------------------------
    def _base_store(self):
        store = self.store
        return store.unwrap() if isinstance(store, StoreWrapper) else store

    def _write_checkpoint(
        self,
        order: Optional[np.ndarray] = None,
        acc: Optional[EpochAccumulator] = None,
    ) -> Path:
        epoch, batch = self._cursor
        # A prefetching loader must have no fetch in flight while we
        # snapshot cache/clock/store state (windows never span a batch,
        # but the drain makes the invariant explicit and checked).
        if hasattr(self.loader, "drain"):
            self.loader.drain()
        base = self._base_store()
        state = {
            "format": 1,
            "cursor": [int(epoch), int(batch)],
            "order": None if order is None else np.asarray(order, dtype=np.int64),
            "acc": None if acc is None else acc.state_dict(),
            "val_accuracy": float(self._val_accuracy),
            "model": {k: np.asarray(v) for k, v in self.model.state_dict().items()},
            "optim": {
                "velocity": [np.asarray(v) for v in self.optimizer._velocity],
                "epoch": int(self.optimizer.epoch),
            },
            "policy": self.policy.state_dict(),
            "clock": self.clock.state_dict(),
            "store": {
                "fetch_count": int(base.fetch_count),
                "bytes_fetched": int(base.bytes_fetched),
            },
            "loader_skipped": int(self.loader.skipped_count),
            "trainer_rng": self._rng.bit_generator.state,
            "epochs": (
                [dataclasses.asdict(e) for e in self._result.epochs]
                if self._result is not None
                else []
            ),
        }
        self._ckpt_seq += 1
        path = self.checkpoint_dir / f"ckpt-{self._ckpt_seq:06d}.npz"
        save_state(path, state)
        self.recovery.checkpoints_written += 1
        self._last_ckpt_clock_s = self.clock.total_seconds
        self._batches_since_ckpt = 0
        self._prune()
        if self.observer.active:
            self.observer.on_checkpoint(str(path), int(epoch), int(batch))
        return path

    def _restore(self, path: Union[str, Path]) -> None:
        if hasattr(self.loader, "drain"):
            self.loader.drain()
        state = load_state(path)
        epoch, batch = state["cursor"]
        self._cursor = (int(epoch), int(batch))
        self._pending_order = state["order"]
        self._pending_acc = None
        if state["acc"] is not None:
            acc = EpochAccumulator()
            acc.load_state_dict(state["acc"])
            self._pending_acc = acc
        self._val_accuracy = float(state["val_accuracy"])
        self.model.load_state_dict(state["model"])
        velocity = state["optim"]["velocity"]
        if len(velocity) != len(self.optimizer._velocity):
            raise ValueError("checkpoint optimizer parameter count mismatch")
        for dst, src in zip(self.optimizer._velocity, velocity):
            np.copyto(dst, src)
        self.optimizer.set_epoch(int(state["optim"]["epoch"]))
        self.policy.load_state_dict(state["policy"])
        self.clock.load_state_dict(state["clock"])
        base = self._base_store()
        base.fetch_count = int(state["store"]["fetch_count"])
        base.bytes_fetched = int(state["store"]["bytes_fetched"])
        self.loader.skipped_count = int(state["loader_skipped"])
        self._rng.bit_generator.state = state["trainer_rng"]
        if self._result is not None:
            self._result.epochs[:] = [
                EpochMetrics(**e) for e in state["epochs"]
            ]
        self._last_ckpt_clock_s = self.clock.total_seconds
        self._batches_since_ckpt = 0
        if self.observer.active:
            self.observer.on_restore(str(path), self._cursor[0], self._cursor[1])

    # ------------------------------------------------------------------
    def checkpoints(self) -> List[Path]:
        """Retained checkpoint archives, oldest first."""
        if not self.checkpoint_dir.is_dir():
            return []
        return sorted(self.checkpoint_dir.glob("ckpt-*.npz"))

    def latest_checkpoint(self) -> Optional[Path]:
        """Newest retained archive (or None), syncing the sequence counter."""
        paths = self.checkpoints()
        if not paths:
            return None
        latest = paths[-1]
        # A fresh-process resume must continue the sequence numbering.
        seq = int(latest.stem.split("-")[1])
        if seq > self._ckpt_seq:
            self._ckpt_seq = seq
        return latest

    def _prune(self) -> None:
        paths = self.checkpoints()
        for stale in paths[: -self.keep_last]:
            stale.unlink()
