"""Failure taxonomy for the fault-tolerant training runtime.

Three failure families matter for spot-VM training over remote storage:

* *transient* fetch errors (:class:`~repro.storage.flaky.TransientFetchError`)
  — retrying may succeed;
* *availability* errors (:class:`DegradedModeError` and subclasses) — the
  remote tier is known-down right now; retrying is pointless and the cache
  should serve degraded (substitute or skip) instead of crashing;
* *preemption* (:class:`PreemptionError`) — the VM itself is terminated;
  only a checkpoint restart recovers.
"""

from __future__ import annotations

from repro.storage.flaky import TransientFetchError

__all__ = [
    "DegradedModeError",
    "CircuitOpenError",
    "StorageOutageError",
    "PreemptionError",
]


class DegradedModeError(RuntimeError):
    """The remote tier is unavailable; serve degraded instead of retrying."""


class CircuitOpenError(DegradedModeError):
    """Fail-fast rejection: the circuit breaker is open (cooling down)."""


class StorageOutageError(TransientFetchError):
    """Fail-stop outage window: every fetch fails until the window closes.

    Subclasses :class:`TransientFetchError` so retry layers treat it like
    any other transient failure (retries burn out during a real outage,
    which is exactly what trips the circuit breaker).
    """


class PreemptionError(RuntimeError):
    """The (simulated) spot VM was terminated mid-training."""

    def __init__(self, epoch: int, batch: int, at_s: float) -> None:
        super().__init__(
            f"preempted at epoch {epoch}, batch {batch} (t={at_s:.3f}s)"
        )
        self.epoch = int(epoch)
        self.batch = int(batch)
        self.at_s = float(at_s)
