"""Nested-state serialization for full-runtime checkpoints.

The resilient trainer's checkpoint is a deeply nested dict — model arrays,
heap snapshots, RNG bit-generator state, per-stage clock totals — far
richer than the flat model/optimizer archives in
:mod:`repro.train.checkpoint`. This module flattens an arbitrary tree of
dicts/lists/scalars/ndarrays into one ``.npz``: arrays are stored under
sequential keys and the remaining structure goes into a JSON header with
placeholders pointing back at them. Round-tripping is exact — dtypes,
shapes, big ints (PCG64 carries 128-bit state words), ``None`` — which the
bit-for-bit recovery tests depend on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.train.checkpoint import CheckpointError

__all__ = ["save_state", "load_state"]

_ARRAY_KEY = "__ndarray__"
_TUPLE_KEY = "__tuple__"


def _flatten(obj: Any, arrays: List[np.ndarray]) -> Any:
    """Replace ndarrays with placeholder dicts, collecting them in order."""
    if isinstance(obj, np.ndarray):
        arrays.append(obj)
        return {_ARRAY_KEY: len(arrays) - 1}
    if isinstance(obj, np.generic):  # numpy scalar → python scalar
        return obj.item()
    if isinstance(obj, dict):
        flat = {}
        for k, v in obj.items():
            if not isinstance(k, str):
                raise TypeError(f"state dict keys must be str, got {k!r}")
            if k in (_ARRAY_KEY, _TUPLE_KEY):
                raise ValueError(f"reserved key {k!r} in state dict")
            flat[k] = _flatten(v, arrays)
        return flat
    if isinstance(obj, tuple):
        return {_TUPLE_KEY: [_flatten(v, arrays) for v in obj]}
    if isinstance(obj, list):
        return [_flatten(v, arrays) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot serialize {type(obj).__name__} in state tree")


def _inflate(obj: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if isinstance(obj, dict):
        if set(obj.keys()) == {_ARRAY_KEY}:
            return arrays[f"a{obj[_ARRAY_KEY]}"]
        if set(obj.keys()) == {_TUPLE_KEY}:
            return tuple(_inflate(v, arrays) for v in obj[_TUPLE_KEY])
        return {k: _inflate(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_inflate(v, arrays) for v in obj]
    return obj


def save_state(path: Union[str, Path], state: dict) -> Path:
    """Write a nested state tree to ``path`` (``.npz``); returns the path."""
    path = Path(path)
    arrays: List[np.ndarray] = []
    tree = _flatten(state, arrays)
    payload = {f"a{i}": a for i, a in enumerate(arrays)}
    payload["__tree__"] = np.frombuffer(
        json.dumps(tree).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state(path: Union[str, Path]) -> dict:
    """Read a :func:`save_state` archive back into the original tree.

    Raises :class:`~repro.train.checkpoint.CheckpointError` for truncated
    or non-npz files and archives without a state tree.
    """
    path = Path(path)
    try:
        npz = np.load(path)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"state archive {path} is not a readable .npz "
            f"(truncated or corrupt?): {exc}"
        ) from exc
    with npz as data:
        if "__tree__" not in data.files:
            raise CheckpointError(
                f"state archive {path} has no __tree__ entry — "
                "not a save_state() archive"
            )
        try:
            tree = json.loads(bytes(data["__tree__"]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"state archive {path} tree is not valid JSON: {exc}"
            ) from exc
        arrays = {k: data[k] for k in data.files if k != "__tree__"}
    return _inflate(tree, arrays)
