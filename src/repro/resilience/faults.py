"""Fault models richer than per-fetch coin flips.

:class:`FlakyStore` models independent transient failures; real remote
tiers also fail in *correlated* ways. This module adds the two the spot-VM
literature cares about, both driven by the run's own
:class:`~repro.storage.clock.SimClock` so fault timing is deterministic and
reproducible:

* :class:`OutageWindow` — fail-stop: every fetch inside the window raises
  :class:`~repro.resilience.errors.StorageOutageError` (NFS server down,
  S3 region incident);
* :class:`BrownoutWindow` — latency spike: fetches succeed but cost a
  multiple of their normal simulated latency (congestion, degraded NIC).

:class:`FaultPlan` composes any number of windows, and
:class:`FaultInjectingStore` enforces the plan in front of any store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.resilience.errors import StorageOutageError
from repro.storage.wrappers import StoreWrapper

__all__ = ["OutageWindow", "BrownoutWindow", "FaultPlan", "FaultInjectingStore"]


@dataclass(frozen=True)
class OutageWindow:
    """Fail-stop interval ``[start_s, end_s)`` of simulated time."""

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s < self.start_s:
            raise ValueError("need 0 <= start_s <= end_s")

    def active(self, t: float) -> bool:
        """Is simulated time ``t`` inside the window?"""
        return self.start_s <= t < self.end_s

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class BrownoutWindow:
    """Latency-spike interval: fetches cost ``latency_multiplier`` x normal."""

    start_s: float
    end_s: float
    latency_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.end_s < self.start_s:
            raise ValueError("need 0 <= start_s <= end_s")
        if self.latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")

    def active(self, t: float) -> bool:
        """Is simulated time ``t`` inside the window?"""
        return self.start_s <= t < self.end_s


@dataclass
class FaultPlan:
    """A deterministic schedule of storage-fault windows."""

    outages: List[OutageWindow] = field(default_factory=list)
    brownouts: List[BrownoutWindow] = field(default_factory=list)

    def outage_active(self, t: float) -> bool:
        """Is any fail-stop window active at simulated time ``t``?"""
        return any(w.active(t) for w in self.outages)

    def latency_multiplier(self, t: float) -> float:
        """Product of all active brownout multipliers (1.0 when clear)."""
        mult = 1.0
        for w in self.brownouts:
            if w.active(t):
                mult *= w.latency_multiplier
        return mult

    def next_clear_time(self, t: float) -> float:
        """Earliest time >= ``t`` outside every outage window."""
        clear = t
        for w in sorted(self.outages, key=lambda w: w.start_s):
            if w.active(clear):
                clear = w.end_s
        return clear

    @property
    def total_outage_s(self) -> float:
        return sum(w.duration_s for w in self.outages)


class FaultInjectingStore(StoreWrapper):
    """Enforces a :class:`FaultPlan` in front of any store.

    The plan is evaluated against the store's own simulated clock, so a
    given training configuration always hits the same faults at the same
    points — runs stay reproducible, which the recovery tests rely on.
    """

    STAGE = "data_load"

    def __init__(self, inner, plan: FaultPlan) -> None:
        super().__init__(inner)
        self.plan = plan
        self.outage_failures = 0
        self.brownout_fetches = 0
        self.brownout_extra_s = 0.0

    def get(self, index: int) -> np.ndarray:
        now = self.clock.total_seconds
        if self.plan.outage_active(now):
            self.outage_failures += 1
            raise StorageOutageError(
                f"storage outage at t={now:.3f}s fetching {index}"
            )
        mult = self.plan.latency_multiplier(now)
        if mult == 1.0:
            return self.inner.get(index)
        before = self.clock.stage_seconds(self.STAGE)
        payload = self.inner.get(index)
        base = self.clock.stage_seconds(self.STAGE) - before
        extra = (mult - 1.0) * base
        if extra > 0:
            self.clock.advance(self.STAGE, extra)
            self.brownout_extra_s += extra
        self.brownout_fetches += 1
        return payload

    def _reset_own_counters(self) -> None:
        self.outage_failures = 0
        self.brownout_fetches = 0
        self.brownout_extra_s = 0.0
