"""Pure-NumPy DNN training substrate.

Replaces the paper's PyTorch stack (see DESIGN.md substitution table). The
caching study needs three things from the model: per-sample losses,
penultimate-layer embeddings, and genuine learning dynamics — all provided
by these hand-rolled layers with explicit forward/backward passes.
"""

from repro.nn.init import he_init, xavier_init
from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Dropout,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.models import MODEL_ZOO, Model, ModelSpec, build_model
from repro.nn.optim import SGD, ConstantLR, CosineLR, StepLR

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Conv2d",
    "MaxPool2d",
    "BatchNorm1d",
    "Dropout",
    "Flatten",
    "Sequential",
    "SoftmaxCrossEntropy",
    "SGD",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "he_init",
    "xavier_init",
    "Model",
    "ModelSpec",
    "MODEL_ZOO",
    "build_model",
]
