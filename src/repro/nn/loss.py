"""Loss functions with per-sample outputs.

Per-sample losses matter here: SHADE's loss-rank importance sampling and
iCache's compute-bound IS (paper §3) both consume the *vector* of sample
losses, not just the batch mean.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + categorical cross-entropy.

    ``forward`` returns per-sample losses; ``backward`` returns the gradient
    w.r.t. logits (already averaged over the batch so optimizer steps are
    batch-size-invariant).
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-sample cross-entropy losses, shape ``(n,)``."""
        logits = np.atleast_2d(logits)
        targets = np.asarray(targets, dtype=np.int64).ravel()
        if logits.shape[0] != targets.shape[0]:
            raise ValueError("batch size mismatch between logits and targets")
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
            raise ValueError("target labels out of range")
        probs = softmax(logits)
        self._probs = probs
        self._targets = targets
        picked = probs[np.arange(len(targets)), targets]
        return -np.log(np.clip(picked, 1e-12, None))

    def backward(self) -> np.ndarray:
        """Gradient of the *mean* loss w.r.t. logits."""
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        grad /= n
        return grad

    @staticmethod
    def predict(logits: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return np.argmax(logits, axis=1)

    @staticmethod
    def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
        """Top-1 accuracy in [0, 1]."""
        preds = np.argmax(np.atleast_2d(logits), axis=1)
        targets = np.asarray(targets).ravel()
        return float(np.mean(preds == targets))
