"""Model zoo mirroring the paper's evaluated architectures.

The paper trains ResNet-18/50, AlexNet and VGG-16. Here each name maps to a
scaled-down NumPy network whose *relative* profile matches what the caching
study depends on:

* **embedding dimension** — AlexNet/VGG-16 have the largest embedding dims
  of common DNNs (paper §5), which is why their IS stage is slowest
  (Table 1); the zoo preserves that ordering.
* **stage cost profile** — per-mini-batch Stage1/Stage2/IS millisecond costs
  taken from Table 1, used by the pipeline and storage simulators.

``Model`` splits the network into a *feature extractor* and a *classifier
head* so the penultimate activations (the embeddings feeding the graph-based
IS algorithm, Fig. 7) are available from every forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import (
    BatchNorm1d,
    Conv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.loss import SoftmaxCrossEntropy
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["ModelSpec", "Model", "MODEL_ZOO", "build_model", "build_cnn_model"]


@dataclass(frozen=True)
class ModelSpec:
    """Architecture + cost profile for one zoo entry.

    ``stage1_ms``/``stage2_ms``/``is_ms`` are the paper's Table-1
    per-mini-batch costs (data loader + forward; backward + optimizer;
    graph-based IS) and parameterize the simulated clocks.
    """

    name: str
    hidden: Tuple[int, ...]
    embedding_dim: int
    stage1_ms: float
    stage2_ms: float
    is_ms: float
    use_batchnorm: bool = True

    @property
    def compute_ms(self) -> float:
        """Pure compute per mini-batch (forward + backward), excluding I/O."""
        return self.stage1_ms + self.stage2_ms


# Embedding dims keep the paper's ordering (alexnet/vgg16 largest); Table-1
# stage costs are verbatim for the four evaluated models. MobileNetV2 and
# Inception-v3 are the §5 "short-IS" examples ("most models like ResNet18,
# ResNet50, MobileNetV2, and Inception-v3 ... require relatively shorter IS
# computation times"); their stage costs are estimated consistently with
# their real embedding widths (1280 and 2048 on ImageNet, scaled like the
# others) and the IS-vs-embedding-dimension relation of Table 1.
MODEL_ZOO: Dict[str, ModelSpec] = {
    "resnet18": ModelSpec("resnet18", hidden=(64,), embedding_dim=64,
                          stage1_ms=42.0, stage2_ms=35.0, is_ms=16.0),
    "resnet50": ModelSpec("resnet50", hidden=(128, 128), embedding_dim=128,
                          stage1_ms=48.0, stage2_ms=37.0, is_ms=18.0),
    "alexnet": ModelSpec("alexnet", hidden=(256,), embedding_dim=256,
                         stage1_ms=62.0, stage2_ms=33.0, is_ms=35.0),
    "vgg16": ModelSpec("vgg16", hidden=(224, 224), embedding_dim=224,
                       stage1_ms=56.0, stage2_ms=28.0, is_ms=31.0),
    "mobilenetv2": ModelSpec("mobilenetv2", hidden=(80,), embedding_dim=80,
                             stage1_ms=38.0, stage2_ms=30.0, is_ms=17.0),
    "inceptionv3": ModelSpec("inceptionv3", hidden=(128, 128),
                             embedding_dim=128,
                             stage1_ms=52.0, stage2_ms=40.0, is_ms=19.0),
}


class Model:
    """Feature extractor + classifier head with embedding taps.

    ``forward`` returns ``(logits, embeddings)`` where embeddings are the
    penultimate-layer activations — exactly what the paper feeds from the
    forward pass into the graph-based IS algorithm (Fig. 7, Alg. 1 line 13).
    """

    def __init__(
        self,
        features: Sequential,
        head: Layer,
        spec: Optional[ModelSpec] = None,
    ) -> None:
        self.features = features
        self.head = head
        self.spec = spec
        self.loss_fn = SoftmaxCrossEntropy()

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, training: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(logits, embeddings)``."""
        emb = self.features.forward(x, training=training)
        logits = self.head.forward(emb, training=training)
        return logits, emb

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Forward + backward on one batch.

        Returns ``(per_sample_losses, embeddings)``; gradients are left
        accumulated in the layers for the optimizer to consume.
        ``sample_weights`` scales each sample's contribution to the loss
        gradient — zeros implement iCache's selective backprop (the sample
        still does a forward pass but is excluded from the update).
        """
        logits, emb = self.forward(x, training=True)
        losses = self.loss_fn.forward(logits, y)
        grad = self.loss_fn.backward()
        if sample_weights is not None:
            w = np.asarray(sample_weights, dtype=np.float64).ravel()
            if w.shape[0] != grad.shape[0]:
                raise ValueError("sample_weights must match the batch size")
            grad = grad * w[:, None]
        grad = self.head.backward(grad)
        self.features.backward(grad)
        return losses, emb

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Tuple[float, float]:
        """Return ``(accuracy, mean_loss)`` over a dataset, mini-batched."""
        n = x.shape[0]
        correct = 0
        total_loss = 0.0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits, _ = self.forward(xb, training=False)
            losses = SoftmaxCrossEntropy().forward(logits, yb)
            total_loss += float(losses.sum())
            correct += int((np.argmax(logits, axis=1) == yb).sum())
        return correct / n, total_loss / n

    def params(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """All ``(param, grad)`` pairs (feature extractor + head)."""
        return self.features.params() + self.head.params()

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for _, g in self.params():
            g.fill(0.0)

    @property
    def embedding_dim(self) -> int:
        if self.spec is not None:
            return self.spec.embedding_dim
        # Infer from the head's input width.
        head = self.head
        if isinstance(head, Linear):
            return head.in_features
        raise AttributeError("embedding_dim unknown for custom head")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return int(sum(p.size for p, _ in self.params()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Live views of all persistent arrays, namespaced by component."""
        out = {f"features.{k}": v for k, v in self.features.state_dict().items()}
        out.update({f"head.{k}": v for k, v in self.head.state_dict().items()})
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Copy a matching :meth:`state_dict` into this model."""
        self.features.load_state_dict(
            {k[len("features."):]: v for k, v in state.items() if k.startswith("features.")}
        )
        self.head.load_state_dict(
            {k[len("head."):]: v for k, v in state.items() if k.startswith("head.")}
        )


def build_model(
    name: str,
    input_dim: int,
    num_classes: int,
    rng: RngLike = None,
) -> Model:
    """Instantiate a zoo model as an MLP over flat feature inputs.

    Raises ``KeyError`` for unknown names; ``MODEL_ZOO`` lists valid ones.
    """
    spec = MODEL_ZOO[name]
    gen = resolve_rng(rng)
    layers: List[Layer] = []
    width = input_dim
    for h in spec.hidden:
        layers.append(Linear(width, h, rng=gen))
        if spec.use_batchnorm:
            layers.append(BatchNorm1d(h))
        layers.append(ReLU())
        width = h
    layers.append(Linear(width, spec.embedding_dim, rng=gen))
    layers.append(ReLU())
    features = Sequential(*layers)
    head = Linear(spec.embedding_dim, num_classes, rng=gen)
    return Model(features, head, spec=spec)


def build_cnn_model(
    image_shape: Tuple[int, int, int],
    num_classes: int,
    channels: Tuple[int, ...] = (8, 16),
    embedding_dim: int = 64,
    rng: RngLike = None,
) -> Model:
    """Small convolutional model for the procedural image dataset.

    ``image_shape`` is ``(c, h, w)``. Each conv block halves the spatial
    size via max pooling.
    """
    c, h, w = image_shape
    gen = resolve_rng(rng)
    layers: List[Layer] = []
    in_c = c
    for out_c in channels:
        layers.append(Conv2d(in_c, out_c, kernel_size=3, stride=1, padding=1, rng=gen))
        layers.append(ReLU())
        layers.append(MaxPool2d(2))
        in_c = out_c
        h //= 2
        w //= 2
        if h < 1 or w < 1:
            raise ValueError("too many conv blocks for this image size")
    layers.append(Flatten())
    flat = in_c * h * w
    layers.append(Linear(flat, embedding_dim, rng=gen))
    layers.append(ReLU())
    features = Sequential(*layers)
    head = Linear(embedding_dim, num_classes, rng=gen)
    return Model(features, head, spec=None)
