"""Neural-network layers with explicit forward/backward passes.

Each layer caches what it needs during ``forward`` and consumes it in
``backward``. Parameters and their gradients are exposed via ``params()``
so optimizers can update them generically. Convolution uses im2col so the
hot loop is a single GEMM (vectorize-first, per the HPC guides).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.init import he_init
from repro.utils.rng import RngLike, resolve_rng

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Conv2d",
    "MaxPool2d",
    "BatchNorm1d",
    "Dropout",
    "Flatten",
    "Sequential",
]


class Layer:
    """Base layer: stateless by default, override to add parameters."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output; ``training=True`` caches for backward."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return the input gradient."""
        raise NotImplementedError

    def params(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """List of ``(param, grad)`` pairs; empty for stateless layers."""
        return []

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for _, g in self.params():
            g.fill(0.0)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Live views of the layer's persistent arrays, keyed by name."""
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Copy matching arrays from ``state`` into this layer."""
        for k, v in self.state_dict().items():
            if k not in state:
                raise KeyError(f"missing key {k!r}")
            np.copyto(v, state[k])


class Linear(Layer):
    """Fully connected layer: ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: RngLike = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.W = he_init((in_features, out_features), in_features, rng)
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (n, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.W + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before a training forward")
        self.dW += self._x.T @ grad
        self.db += grad.sum(axis=0)
        return grad @ self.W.T

    def params(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward")
        return grad * self._mask


def _im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold (n, c, h, w) into (n * oh * ow, c * kh * kw) patches."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    # Strided sliding-window view, then a single copy into patch matrix.
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)
    return np.ascontiguousarray(cols), oh, ow


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold patch gradients back to input shape (adjoint of _im2col)."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                cols6[:, :, :, :, i, j]
            )
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2d(Layer):
    """2-D convolution via im2col + GEMM. Input layout: (n, c, h, w)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        rng: RngLike = None,
    ) -> None:
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.W = he_init((fan_in, out_channels), fan_in, rng)
        self.b = np.zeros(out_channels)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], int, int]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (n, {self.in_channels}, h, w), got {x.shape}"
            )
        cols, oh, ow = _im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        out = cols @ self.W + self.b
        n = x.shape[0]
        if training:
            self._cache = (cols, x.shape, oh, ow)
        return out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        cols, x_shape, oh, ow = self._cache
        n = x_shape[0]
        g = grad.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        self.dW += cols.T @ g
        self.db += g.sum(axis=0)
        dcols = g @ self.W.T
        return _col2im(
            dcols, x_shape, self.kernel_size, self.kernel_size,
            self.stride, self.padding, oh, ow,
        )

    def params(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}


class MaxPool2d(Layer):
    """Max pooling with square window; stride defaults to window size."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], int, int]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        st = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, oh, ow, k, k),
            strides=(st[0], st[1], st[2] * s, st[3] * s, st[2], st[3]),
            writeable=False,
        )
        flat = view.reshape(n, c, oh, ow, k * k)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        if training:
            self._cache = (arg, x.shape, oh, ow)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        arg, x_shape, oh, ow = self._cache
        n, c, h, w = x_shape
        k, s = self.kernel_size, self.stride
        dx = np.zeros(x_shape)
        # Scatter each output gradient to its argmax position.
        oi, oj = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
        base_i = oi * s
        base_j = oj * s
        di = arg // k
        dj = arg % k
        rows = base_i[None, None] + di
        cols = base_j[None, None] + dj
        nn_idx = np.arange(n)[:, None, None, None]
        cc_idx = np.arange(c)[None, :, None, None]
        np.add.at(dx, (nn_idx, cc_idx, rows, cols), grad)
        return dx


class BatchNorm1d(Layer):
    """Batch normalization over feature vectors (n, d)."""

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.dgamma = np.zeros(num_features)
        self.dbeta = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.momentum = momentum
        self.eps = eps
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std, x - mean)
        return self.gamma * x_hat + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before a training forward")
        x_hat, inv_std, _ = self._cache
        n = grad.shape[0]
        self.dgamma += (grad * x_hat).sum(axis=0)
        self.dbeta += grad.sum(axis=0)
        dxhat = grad * self.gamma
        return (inv_std / n) * (
            n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0)
        )

    def params(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        return [(self.gamma, self.dgamma), (self.beta, self.dbeta)]

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {
            "gamma": self.gamma,
            "beta": self.beta,
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }


class Dropout(Layer):
    """Inverted dropout; identity at eval time."""

    def __init__(self, p: float = 0.5, rng: RngLike = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = p
        self._rng = resolve_rng(rng)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before a training forward")
        return grad.reshape(self._shape)


class Sequential(Layer):
    """Layer container executing children in order."""

    def __init__(self, *layers: Layer) -> None:
        self.layers: List[Layer] = list(layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def append(self, layer: Layer) -> None:
        """Add a layer to the end of the container."""
        self.layers.append(layer)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def state_dict(self) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for k, v in layer.state_dict().items():
                out[f"{i}.{k}"] = v
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            sub = {
                k.split(".", 1)[1]: v
                for k, v in state.items()
                if k.startswith(f"{i}.")
            }
            if sub:
                layer.load_state_dict(sub)
