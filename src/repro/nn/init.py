"""Weight initializers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = ["he_init", "xavier_init"]


def he_init(shape: tuple, fan_in: int, rng: RngLike = None) -> np.ndarray:
    """He-normal initialization (std = sqrt(2/fan_in)); for ReLU nets."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    gen = resolve_rng(rng)
    return gen.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_init(shape: tuple, fan_in: int, fan_out: int, rng: RngLike = None) -> np.ndarray:
    """Xavier/Glorot-uniform initialization; for linear/tanh layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    gen = resolve_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return gen.uniform(-limit, limit, size=shape)
