"""Optimizers and learning-rate schedules."""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

__all__ = ["SGD", "ConstantLR", "StepLR", "CosineLR"]


class _LRSchedule:
    """Maps epoch -> learning rate."""

    def lr_at(self, epoch: int) -> float:
        """Learning rate to use during ``epoch``."""
        raise NotImplementedError


class ConstantLR(_LRSchedule):
    """Fixed learning rate."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def lr_at(self, epoch: int) -> float:
        return self.lr


class StepLR(_LRSchedule):
    """Multiply the base LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, lr: float, step_size: int = 30, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.lr * self.gamma ** (epoch // self.step_size)


class CosineLR(_LRSchedule):
    """Cosine annealing from ``lr`` to ``min_lr`` over ``total_epochs``."""

    def __init__(self, lr: float, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.lr = lr
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.lr - self.min_lr) * (1 + math.cos(math.pi * t))


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    Operates on the ``(param, grad)`` pairs a :class:`~repro.nn.layers.Layer`
    exposes; updates are in place so layers see new weights immediately.
    """

    def __init__(
        self,
        params: List[Tuple[np.ndarray, np.ndarray]],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        schedule: _LRSchedule | None = None,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.schedule = schedule or ConstantLR(lr)
        self._velocity = [np.zeros_like(p) for p, _ in params]
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Advance the LR schedule."""
        self.epoch = epoch

    @property
    def current_lr(self) -> float:
        return self.schedule.lr_at(self.epoch)

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        lr = self.current_lr
        for (p, g), v in zip(self.params, self._velocity):
            upd = g
            if self.weight_decay:
                upd = upd + self.weight_decay * p
            if self.momentum:
                v *= self.momentum
                v += upd
                upd = v
            p -= lr * upd

    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for _, g in self.params:
            g.fill(0.0)
