"""Storage backends serving sample payloads by index.

``RemoteStore`` is the simulated NFS/cloud tier: every ``get`` charges
latency to a :class:`~repro.storage.clock.SimClock` and increments fetch
counters. ``InMemoryStore`` is the zero-cost local tier used by tests and by
IS-only experiments where caching is disabled but I/O time is irrelevant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.observer import NULL_OBSERVER, Observer
from repro.storage.clock import SimClock
from repro.storage.latency import ConstantLatency, LatencyModel

__all__ = ["RemoteStore", "InMemoryStore"]


class RemoteStore:
    """Remote storage over a dataset's payload array.

    Parameters
    ----------
    payloads:
        ``(n, ...)`` array; row ``i`` is sample ``i``'s raw data.
    item_nbytes:
        Simulated on-storage size per item (drives the bandwidth term).
    latency:
        Latency model; defaults to datacenter-NFS-like constants.
    clock:
        Stage clock to charge fetch time to (stage name ``"data_load"``).
    """

    STAGE = "data_load"

    def __init__(
        self,
        payloads: np.ndarray,
        item_nbytes: int = 3 * 1024,
        latency: Optional[LatencyModel] = None,
        clock: Optional[SimClock] = None,
        item_sizes: Optional[np.ndarray] = None,
    ) -> None:
        self._payloads = payloads
        self.item_nbytes = int(item_nbytes)
        self.latency = latency or ConstantLatency()
        self.clock = clock if clock is not None else SimClock()
        # Optional per-item sizes (e.g. variable JPEG sizes); overrides the
        # uniform ``item_nbytes`` in latency and byte accounting.
        if item_sizes is not None:
            item_sizes = np.asarray(item_sizes, dtype=np.int64)
            if item_sizes.shape[0] != payloads.shape[0]:
                raise ValueError("item_sizes must match payload count")
            if np.any(item_sizes < 0):
                raise ValueError("item_sizes must be non-negative")
        self.item_sizes = item_sizes
        self.fetch_count = 0
        self.bytes_fetched = 0
        self._obs = NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Publish per-fetch latency/bytes to ``observer``."""
        self._obs = observer

    def __len__(self) -> int:
        return self._payloads.shape[0]

    def size_of(self, index: int) -> int:
        """Simulated on-storage size of one item in bytes."""
        if self.item_sizes is not None:
            return int(self.item_sizes[index])
        return self.item_nbytes

    def get(self, index: int) -> np.ndarray:
        """Fetch one payload, charging simulated latency."""
        if not 0 <= index < len(self):
            raise IndexError(f"sample index {index} out of range")
        nbytes = self.size_of(index)
        self.fetch_count += 1
        self.bytes_fetched += nbytes
        latency_s = self.latency.sample(nbytes)
        self.clock.advance(self.STAGE, latency_s)
        if self._obs.active:
            self._obs.on_store_fetch(index, nbytes, latency_s)
        return self._payloads[index]

    def peek(self, index: int) -> np.ndarray:
        """Read a payload without charging latency (test/diagnostic use)."""
        return self._payloads[index]

    def reset_counters(self) -> None:
        """Zero the fetch counters (the clock is left untouched)."""
        self.fetch_count = 0
        self.bytes_fetched = 0


class InMemoryStore:
    """Zero-latency store with the same interface as :class:`RemoteStore`."""

    def __init__(self, payloads: np.ndarray) -> None:
        self._payloads = payloads
        self.fetch_count = 0
        self.bytes_fetched = 0
        self.clock = SimClock()
        self._obs = NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Publish per-fetch activity to ``observer`` (zero latency)."""
        self._obs = observer

    def __len__(self) -> int:
        return self._payloads.shape[0]

    def size_of(self, index: int) -> int:
        """In-memory payload size in bytes (no simulated on-storage size)."""
        return int(np.asarray(self._payloads[index]).nbytes)

    def get(self, index: int) -> np.ndarray:
        """Fetch one payload (free: no simulated latency)."""
        if not 0 <= index < len(self):
            raise IndexError(f"sample index {index} out of range")
        self.fetch_count += 1
        if self._obs.active:
            self._obs.on_store_fetch(index, self.size_of(index), 0.0)
        return self._payloads[index]

    def peek(self, index: int) -> np.ndarray:
        """Read a payload without counting a fetch."""
        return self._payloads[index]

    def reset_counters(self) -> None:
        """Zero the fetch counters."""
        self.fetch_count = 0
        self.bytes_fetched = 0
