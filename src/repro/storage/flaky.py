"""Failure injection: transient fetch errors and retry handling.

The paper's deployment model — spot VMs reading from remote cloud storage —
sees transient fetch failures (connection resets, NFS timeouts). This
module provides:

* :class:`TransientFetchError` — the injected failure type;
* :class:`FlakyStore` — wraps any store, failing each ``get`` independently
  with probability ``failure_prob`` (deterministic given a seed);
* :class:`RetryingStore` — wraps any store with bounded exponential-backoff
  retries, charging the backoff wait to the simulated clock. Training
  through a retrying store over a flaky backend must produce *identical
  learning results* to a clean run — only the simulated time grows — which
  the tests assert.

Richer fault models (fail-stop outage windows, latency brownouts, circuit
breaking) live in :mod:`repro.resilience`.
"""

from __future__ import annotations

import numpy as np

from repro.storage.wrappers import StoreWrapper
from repro.utils.rng import RngLike, resolve_rng

__all__ = ["TransientFetchError", "FlakyStore", "RetryingStore"]


class TransientFetchError(RuntimeError):
    """A fetch failed transiently; retrying may succeed."""


class FlakyStore(StoreWrapper):
    """Store wrapper that injects independent per-fetch failures."""

    def __init__(self, inner, failure_prob: float = 0.05, rng: RngLike = None) -> None:
        if not 0.0 <= failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        super().__init__(inner)
        self.failure_prob = float(failure_prob)
        self._rng = resolve_rng(rng)
        self.failures_injected = 0

    def get(self, index: int) -> np.ndarray:
        """Fetch, raising :class:`TransientFetchError` on injected failure."""
        if self.failure_prob and self._rng.random() < self.failure_prob:
            self.failures_injected += 1
            raise TransientFetchError(f"injected failure fetching {index}")
        return self.inner.get(index)

    def _reset_own_counters(self) -> None:
        self.failures_injected = 0


class RetryingStore(StoreWrapper):
    """Store wrapper with bounded exponential-backoff retries.

    Each retry waits ``backoff_s * 2**attempt`` of *simulated* time (charged
    to the clock's ``data_load`` stage — stalled loaders are stalled
    training). After ``max_retries`` consecutive failures the final
    :class:`TransientFetchError` propagates.
    """

    STAGE = "data_load"

    def __init__(self, inner, max_retries: int = 3, backoff_s: float = 0.01) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        super().__init__(inner)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.retries_used = 0

    def get(self, index: int) -> np.ndarray:
        """Fetch with retries; the final failure propagates."""
        attempt = 0
        while True:
            try:
                return self.inner.get(index)
            except TransientFetchError:
                if attempt >= self.max_retries:
                    raise
                self.clock.advance(self.STAGE, self.backoff_s * (2**attempt))
                self.retries_used += 1
                attempt += 1

    def _reset_own_counters(self) -> None:
        self.retries_used = 0
