"""Shared base class for store wrappers.

Store wrappers (failure injection, retries, fault windows, circuit
breakers) stack: ``CircuitBreakerStore(RetryingStore(FlakyStore(remote)))``
is a typical resilient read path. Every wrapper must expose the full store
interface — ``__len__``, ``get``, ``peek``, ``size_of``, ``clock``,
``fetch_count``, ``bytes_fetched``, ``reset_counters`` — plus whatever
counters *inner* wrappers accumulate (``failures_injected``,
``retries_used``, ...), otherwise wrapped stacks silently under-report I/O
accounting. :class:`StoreWrapper` centralizes the forwarding so each
wrapper only overrides the behaviour it changes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.storage.clock import SimClock

__all__ = ["StoreWrapper"]


class StoreWrapper:
    """Transparent store decorator: forwards the whole store protocol.

    Subclasses override ``get`` (and occasionally ``peek``) and may define
    their own counters; everything else — length, sizing, byte/fetch
    accounting, the simulated clock, and *any* attribute an inner wrapper
    exposes — resolves through the wrapped store, so stacked wrappers
    never hide each other's state.
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    # -- structural forwarding -----------------------------------------
    def __len__(self) -> int:
        return len(self.inner)

    @property
    def clock(self) -> SimClock:
        return self.inner.clock

    @property
    def fetch_count(self) -> int:
        return self.inner.fetch_count

    @property
    def bytes_fetched(self) -> int:
        return self.inner.bytes_fetched

    def size_of(self, index: int) -> int:
        """Simulated on-storage size of one item in bytes."""
        return self.inner.size_of(index)

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails: forward inner wrappers'
        # counters (failures_injected, retries_used, breaker, ...) up the
        # stack. ``inner`` itself missing means __init__ hasn't run.
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- default behaviour ---------------------------------------------
    def get(self, index: int) -> np.ndarray:
        """Fetch through the wrapped store (subclasses decorate this)."""
        return self.inner.get(index)

    def peek(self, index: int) -> np.ndarray:
        """Free read from the wrapped store (never injected with faults)."""
        return self.inner.peek(index)

    def reset_counters(self) -> None:
        """Zero this wrapper's counters, then cascade to the inner store."""
        self._reset_own_counters()
        self.inner.reset_counters()

    def _reset_own_counters(self) -> None:
        """Hook for subclasses with counters of their own."""

    # -- introspection --------------------------------------------------
    def unwrap(self) -> Any:
        """The innermost (non-wrapper) store in the stack."""
        store = self.inner
        while isinstance(store, StoreWrapper):
            store = store.inner
        return store
