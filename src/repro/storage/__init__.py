"""Remote-storage simulator.

Replaces the paper's NFS-over-10GbE datacenter storage (§6.1). Hit ratios
are hardware-independent; end-to-end *time* shape only needs miss-count x
fetch-latency vs per-batch compute cost, which these models provide.
"""

from repro.storage.backends import InMemoryStore, RemoteStore
from repro.storage.clock import SimClock
from repro.storage.flaky import FlakyStore, RetryingStore, TransientFetchError
from repro.storage.kvstore import ByteLRUCache, CapacityError, InMemoryKVStore
from repro.storage.latency import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    ParetoTailLatency,
)
from repro.storage.wrappers import StoreWrapper

__all__ = [
    "StoreWrapper",
    "RemoteStore",
    "InMemoryStore",
    "SimClock",
    "LatencyModel",
    "ConstantLatency",
    "LognormalLatency",
    "ParetoTailLatency",
    "FlakyStore",
    "RetryingStore",
    "TransientFetchError",
    "InMemoryKVStore",
    "ByteLRUCache",
    "CapacityError",
]
