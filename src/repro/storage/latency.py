"""Per-fetch latency models.

Each model maps an item size to a simulated fetch time:
``latency = base + nbytes / bandwidth (+ noise)``. The defaults approximate
the paper's environment — NFS within a datacenter over 10 Gbps Ethernet,
where each small-file read costs ~8 ms (RTT + metadata + server queueing;
sequential bandwidth ~1.1 GB/s only matters for large items) — producing
the Fig. 3(a) regime where data loading dominates compute.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "LognormalLatency",
    "ParetoTailLatency",
]


class LatencyModel(Protocol):
    """Maps one fetch of ``nbytes`` to simulated seconds."""

    def sample(self, nbytes: int) -> float:
        """Simulated seconds to fetch ``nbytes``."""
        ...


class ConstantLatency:
    """Deterministic latency: fixed base plus bandwidth-proportional term."""

    def __init__(self, base_s: float = 8e-3, bandwidth_bps: float = 1.1e9) -> None:
        if base_s < 0 or bandwidth_bps <= 0:
            raise ValueError("base_s must be >= 0 and bandwidth_bps > 0")
        self.base_s = base_s
        self.bandwidth_bps = bandwidth_bps

    def sample(self, nbytes: int) -> float:
        """Fetch time for ``nbytes`` (deterministic)."""
        return self.base_s + nbytes / self.bandwidth_bps

    def mean(self, nbytes: int) -> float:
        """Expected fetch time (same as :meth:`sample` here)."""
        return self.sample(nbytes)


class LognormalLatency:
    """Lognormal jitter around a deterministic mean (typical NFS behaviour)."""

    def __init__(
        self,
        base_s: float = 8e-3,
        bandwidth_bps: float = 1.1e9,
        sigma: float = 0.25,
        rng: RngLike = None,
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be >= 0")
        self._det = ConstantLatency(base_s, bandwidth_bps)
        self.sigma = sigma
        self._rng = resolve_rng(rng)

    def sample(self, nbytes: int) -> float:
        """Draw one lognormal fetch time around the deterministic mean."""
        mean = self._det.sample(nbytes)
        if self.sigma == 0:
            return mean
        # mu chosen so the lognormal's mean equals the deterministic mean.
        mu = np.log(mean) - 0.5 * self.sigma**2
        return float(self._rng.lognormal(mu, self.sigma))

    def mean(self, nbytes: int) -> float:
        """Expected fetch time (the deterministic mean)."""
        return self._det.sample(nbytes)


class ParetoTailLatency:
    """Heavy-tailed latency: deterministic mean plus occasional Pareto spikes.

    Models the stragglers that make remote-storage p99 much worse than the
    median (spot-VM contention, NFS server queueing).
    """

    def __init__(
        self,
        base_s: float = 8e-3,
        bandwidth_bps: float = 1.1e9,
        spike_prob: float = 0.01,
        spike_scale_s: float = 5e-3,
        alpha: float = 2.0,
        rng: RngLike = None,
    ) -> None:
        if not 0 <= spike_prob <= 1:
            raise ValueError("spike_prob must be in [0, 1]")
        if alpha <= 1.0:
            raise ValueError("alpha must be > 1 for a finite mean")
        self._det = ConstantLatency(base_s, bandwidth_bps)
        self.spike_prob = spike_prob
        self.spike_scale_s = spike_scale_s
        self.alpha = alpha
        self._rng = resolve_rng(rng)

    def sample(self, nbytes: int) -> float:
        """Deterministic base plus an occasional Pareto spike."""
        t = self._det.sample(nbytes)
        if self.spike_prob and self._rng.random() < self.spike_prob:
            t += self.spike_scale_s * (self._rng.pareto(self.alpha) + 1.0)
        return t

    def mean(self, nbytes: int) -> float:
        """Expected fetch time including the spike tail's mean."""
        spike_mean = self.spike_scale_s * self.alpha / (self.alpha - 1.0)
        return self._det.sample(nbytes) + self.spike_prob * spike_mean
