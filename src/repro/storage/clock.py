"""Simulated wall clock with per-stage accounting.

The paper splits training time into Data Loading / Preprocessing /
Computation (Fig. 2) and later Stage1 / Stage2 / IS (§5). ``SimClock``
accumulates simulated seconds per named stage so experiments can report both
breakdowns (Fig. 3(a), Table 1) and end-to-end totals (Table 4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

__all__ = ["SimClock"]


class SimClock:
    """Accumulates simulated time across named stages."""

    def __init__(self) -> None:
        self._stage_s: Dict[str, float] = defaultdict(float)

    def advance(self, stage: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to ``stage``."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._stage_s[stage] += seconds

    def stage_seconds(self, stage: str) -> float:
        """Accumulated seconds for one stage (0 if never charged)."""
        return self._stage_s.get(stage, 0.0)

    @property
    def total_seconds(self) -> float:
        return sum(self._stage_s.values())

    def breakdown(self) -> Dict[str, float]:
        """Copy of per-stage totals."""
        return dict(self._stage_s)

    def fractions(self) -> Dict[str, float]:
        """Per-stage fraction of total time (empty dict if nothing elapsed)."""
        total = self.total_seconds
        if total <= 0:
            return {}
        return {k: v / total for k, v in self._stage_s.items()}

    def reset(self) -> None:
        """Zero all stages."""
        self._stage_s.clear()

    def state_dict(self) -> Dict[str, float]:
        """Serializable snapshot of per-stage totals (for checkpoints)."""
        return dict(self._stage_s)

    def load_state_dict(self, state: Dict[str, float]) -> None:
        """Replace accumulated time with a :meth:`state_dict` snapshot."""
        self._stage_s.clear()
        for stage, secs in state.items():
            self._stage_s[str(stage)] = float(secs)

    def merge(self, other: "SimClock") -> None:
        """Add another clock's accumulated time into this one."""
        for stage, secs in other.breakdown().items():
            self._stage_s[stage] += secs
