"""Simulated wall clock with per-stage accounting.

The paper splits training time into Data Loading / Preprocessing /
Computation (Fig. 2) and later Stage1 / Stage2 / IS (§5). ``SimClock``
accumulates simulated seconds per named stage so experiments can report both
breakdowns (Fig. 3(a), Table 1) and end-to-end totals (Table 4).

Thread-safety: the clock is shared by every component of a run — the
remote store charges it from whatever thread performs a fetch. With the
concurrent prefetching loader, that means real worker threads, so every
read-modify-write on the per-stage totals is guarded by a lock
(``advance``'s unguarded ``+=`` was a lost-update race;
``tests/concurrency`` replays it deterministically).

Two primitives support overlapped accounting (Fig. 12's pipelining):

* :meth:`advance_parallel` charges ``max(durations)`` for a window of
  concurrent operations — the window takes as long as its slowest member,
  not the sum;
* :meth:`deferred` captures this thread's charges to one stage into a
  buffer instead of the totals, so a loader can re-account a window of
  individually-charged fetches through :meth:`advance_parallel`.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator

__all__ = ["SimClock", "WallClock", "DeferredCharge"]


class DeferredCharge:
    """Accumulator for charges captured by :meth:`SimClock.deferred`."""

    __slots__ = ("stage", "seconds")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self.seconds = 0.0


class SimClock:
    """Accumulates simulated time across named stages."""

    def __init__(self) -> None:
        self._stage_s: Dict[str, float] = defaultdict(float)
        self._lock = threading.Lock()
        self._deferral = threading.local()  # per-thread capture stacks

    # ------------------------------------------------------------------
    def _deferral_stacks(self) -> Dict[str, list]:
        stacks = getattr(self._deferral, "stacks", None)
        if stacks is None:
            stacks = self._deferral.stacks = {}
        return stacks

    def advance(self, stage: str, seconds: float) -> None:
        """Charge ``seconds`` of simulated time to ``stage``."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        stack = self._deferral_stacks().get(stage)
        if stack:
            stack[-1].seconds += seconds
            return
        with self._lock:
            self._stage_s[stage] += seconds

    def advance_parallel(self, stage: str, durations: Iterable[float]) -> float:
        """Charge one *overlapped* window of concurrent durations.

        ``durations`` are the individual costs of operations that ran
        concurrently; the window's wall time is their maximum, which is
        what gets charged. Returns the charged seconds (0.0 for an empty
        window).
        """
        durations = [float(d) for d in durations]
        if any(d < 0 for d in durations):
            raise ValueError("cannot advance the clock backwards")
        if not durations:
            return 0.0
        charge = max(durations)
        self.advance(stage, charge)
        return charge

    @contextmanager
    def deferred(self, stage: str) -> Iterator[DeferredCharge]:
        """Capture this thread's charges to ``stage`` instead of totals.

        Charges issued by the *current thread* to ``stage`` inside the
        scope accumulate in the yielded :class:`DeferredCharge` rather
        than the clock; the caller decides how to re-account them
        (typically via :meth:`advance_parallel` over a window of cells).
        Scopes nest (innermost wins) and never affect other threads or
        other stages.
        """
        stacks = self._deferral_stacks()
        cell = DeferredCharge(stage)
        stack = stacks.setdefault(stage, [])
        stack.append(cell)
        try:
            yield cell
        finally:
            stack.pop()
            if not stack:
                del stacks[stage]

    # ------------------------------------------------------------------
    def stage_seconds(self, stage: str) -> float:
        """Accumulated seconds for one stage (0 if never charged)."""
        with self._lock:
            return self._stage_s.get(stage, 0.0)

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._stage_s.values())

    def breakdown(self) -> Dict[str, float]:
        """Copy of per-stage totals."""
        with self._lock:
            return dict(self._stage_s)

    def fractions(self) -> Dict[str, float]:
        """Per-stage fraction of total time (empty dict if nothing elapsed)."""
        snap = self.breakdown()
        total = sum(snap.values())
        if total <= 0:
            return {}
        return {k: v / total for k, v in snap.items()}

    def reset(self) -> None:
        """Zero all stages."""
        with self._lock:
            self._stage_s.clear()

    def state_dict(self) -> Dict[str, float]:
        """Serializable snapshot of per-stage totals (for checkpoints)."""
        return self.breakdown()

    def load_state_dict(self, state: Dict[str, float]) -> None:
        """Replace accumulated time with a :meth:`state_dict` snapshot."""
        with self._lock:
            self._stage_s.clear()
            for stage, secs in state.items():
                self._stage_s[str(stage)] = float(secs)

    def merge(self, other: "SimClock") -> None:
        """Add another clock's accumulated time into this one."""
        snap = other.breakdown()
        with self._lock:
            for stage, secs in snap.items():
                self._stage_s[stage] += secs


class WallClock:
    """Real-time clock with the :class:`SimClock` read API (wall-clock mode).

    Components built against ``SimClock`` — breakers reading
    :attr:`total_seconds`, retry layers calling :meth:`advance` for
    backoff — run unchanged on real hardware when handed a ``WallClock``:

    * :attr:`total_seconds` is elapsed wall time since construction, so
      breaker cooldowns and outage windows are measured in real seconds;
    * :meth:`advance` actually **sleeps** — a retry backoff charge becomes
      a real delay — while still recording per-stage totals so
      :meth:`breakdown` stays meaningful;
    * :meth:`advance_parallel` only records (``max`` of the window): the
      overlap already happened in real time, sleeping again would
      double-pay it.

    There is no :meth:`deferred` capture and no ``state_dict`` — wall
    time cannot be checkpointed or replayed; deterministic runs use
    :class:`SimClock`.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._stage_s: Dict[str, float] = defaultdict(float)
        self._lock = threading.Lock()

    @property
    def total_seconds(self) -> float:
        return time.perf_counter() - self._t0

    def advance(self, stage: str, seconds: float) -> None:
        """Really sleep ``seconds`` and record them against ``stage``."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        if seconds > 0:
            time.sleep(seconds)
        with self._lock:
            self._stage_s[stage] += seconds

    def advance_parallel(self, stage: str, durations: Iterable[float]) -> float:
        """Record (not sleep) an overlapped window; returns max duration."""
        durations = [float(d) for d in durations]
        if any(d < 0 for d in durations):
            raise ValueError("cannot advance the clock backwards")
        if not durations:
            return 0.0
        charge = max(durations)
        with self._lock:
            self._stage_s[stage] += charge
        return charge

    def stage_seconds(self, stage: str) -> float:
        """Seconds explicitly recorded against one stage (not elapsed wall)."""
        with self._lock:
            return self._stage_s.get(stage, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """Copy of explicitly recorded per-stage totals."""
        with self._lock:
            return dict(self._stage_s)

    def reset(self) -> None:
        """Re-zero the epoch: elapsed time restarts from now."""
        with self._lock:
            self._t0 = time.perf_counter()
            self._stage_s.clear()
