"""Redis-like in-memory KV store with byte-capacity accounting.

The paper "uses Redis for in-memory caching, following SHADE" (§5). The
item-count caches in :mod:`repro.cache` are the right abstraction when all
samples are the same size (one dataset); this module models the cache
*server* itself for mixed-size deployments:

* :class:`InMemoryKVStore` — byte-budgeted key-value store with per-op
  latency (serialization + loopback round-trip) charged to a
  :class:`~repro.storage.clock.SimClock`, Redis-style ``maxmemory``
  policies (``noeviction`` raises; ``allkeys-lru`` evicts), and hit/miss
  counters;
* :class:`ByteLRUCache` — a size-aware LRU implementing the
  :class:`~repro.cache.base.Cache` interface with capacity in bytes, for
  datasets with heterogeneous item sizes (ImageNet JPEGs vary ~10x).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cache.base import Cache, CacheStats
from repro.storage.clock import SimClock

__all__ = ["CapacityError", "InMemoryKVStore", "ByteLRUCache"]


class CapacityError(RuntimeError):
    """Raised by ``noeviction`` stores when a set would exceed capacity."""


def _nbytes(value: Any) -> int:
    """Best-effort payload size in bytes."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    # Fallback: numpy coercion.
    return int(np.asarray(value).nbytes)


class InMemoryKVStore:
    """Byte-budgeted KV store with simulated operation latency.

    Parameters
    ----------
    capacity_bytes:
        ``maxmemory``; 0 means unlimited.
    eviction:
        ``"noeviction"`` (reject oversize sets with :class:`CapacityError`)
        or ``"allkeys-lru"`` (evict least-recently-used keys to make room).
    op_latency_s / bandwidth_bps:
        Per-operation base cost and payload transfer rate (loopback Redis:
        ~50 us/op, ~5 GB/s effective).
    clock:
        Stage clock; ops charge the ``"cache_op"`` stage.
    """

    STAGE = "cache_op"

    def __init__(
        self,
        capacity_bytes: int = 0,
        eviction: str = "allkeys-lru",
        op_latency_s: float = 50e-6,
        bandwidth_bps: float = 5e9,
        clock: Optional[SimClock] = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if eviction not in ("noeviction", "allkeys-lru"):
            raise ValueError(f"unknown eviction policy {eviction!r}")
        if op_latency_s < 0 or bandwidth_bps <= 0:
            raise ValueError("invalid latency parameters")
        self.capacity_bytes = int(capacity_bytes)
        self.eviction = eviction
        self.op_latency_s = float(op_latency_s)
        self.bandwidth_bps = float(bandwidth_bps)
        self.clock = clock if clock is not None else SimClock()
        self._data: OrderedDict[Any, Tuple[Any, int]] = OrderedDict()
        self.memory_used = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def _charge(self, nbytes: int) -> None:
        self.clock.advance(self.STAGE, self.op_latency_s + nbytes / self.bandwidth_bps)

    # ------------------------------------------------------------------
    def set(self, key: Any, value: Any, nbytes: Optional[int] = None) -> None:
        """Store a value, evicting (or raising) per the memory policy."""
        size = int(nbytes) if nbytes is not None else _nbytes(value)
        if size < 0:
            raise ValueError("nbytes must be non-negative")
        self._charge(size)
        if key in self._data:
            _, old = self._data.pop(key)
            self.memory_used -= old
        if self.capacity_bytes and size > self.capacity_bytes:
            raise CapacityError(
                f"value of {size}B exceeds capacity {self.capacity_bytes}B"
            )
        if self.capacity_bytes:
            while self.memory_used + size > self.capacity_bytes:
                if self.eviction == "noeviction":
                    raise CapacityError(
                        f"set of {size}B would exceed capacity "
                        f"({self.memory_used}/{self.capacity_bytes}B used)"
                    )
                victim, (_, vsize) = self._data.popitem(last=False)
                self.memory_used -= vsize
                self.stats.evictions += 1
        self._data[key] = (value, size)
        self.memory_used += size
        self.stats.insertions += 1

    def get(self, key: Any) -> Optional[Any]:
        """Fetch a value (LRU-refreshing); ``None`` on miss."""
        entry = self._data.get(key)
        if entry is None:
            self._charge(0)
            self.stats.misses += 1
            return None
        value, size = entry
        self._data.move_to_end(key)
        self._charge(size)
        self.stats.hits += 1
        return value

    def delete(self, key: Any) -> bool:
        """Remove a key; returns whether it existed."""
        entry = self._data.pop(key, None)
        self._charge(0)
        if entry is None:
            return False
        self.memory_used -= entry[1]
        return True

    def keys(self):
        """Stored keys, least-recently-used first."""
        return list(self._data.keys())

    def flush(self) -> None:
        """Drop everything (Redis FLUSHALL)."""
        self._data.clear()
        self.memory_used = 0


class ByteLRUCache(Cache):
    """Size-aware LRU: capacity measured in bytes, not items.

    ``put`` takes payload size from the value itself (numpy/bytes/str) so
    heterogeneous items (e.g. variable-size JPEGs) are budgeted correctly.
    A single item larger than the whole budget is rejected silently (it
    can never fit).
    """

    def __init__(self, capacity_bytes: int) -> None:
        # Base-class ``capacity`` tracks bytes here.
        super().__init__(capacity_bytes)
        self._items: OrderedDict[Any, Tuple[Any, int]] = OrderedDict()
        self.bytes_used = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def _lookup(self, key: Any) -> Optional[Any]:
        entry = self._items.get(key)
        if entry is None:
            return None
        self._items.move_to_end(key)
        return entry[0]

    def _insert(self, key: Any, value: Any) -> None:
        size = _nbytes(value)
        if key in self._items:
            self.bytes_used -= self._items[key][1]
        self._items[key] = (value, size)
        self._items.move_to_end(key)
        self.bytes_used += size

    def _evict_one(self) -> Any:
        key, (_, size) = self._items.popitem(last=False)
        self.bytes_used -= size
        return key

    def put(self, key: Any, value: Any) -> None:
        """Byte-budgeted insert (overrides the item-count logic)."""
        if self.capacity == 0:
            return
        size = _nbytes(value)
        if size > self.capacity:
            return  # can never fit
        is_new = key not in self._items
        self._insert(key, value)
        if is_new:
            self.stats.insertions += 1
        while self.bytes_used > self.capacity:
            self._evict_one()
            self.stats.evictions += 1
