"""Least-recently-used cache (the paper's end-to-end Baseline policy)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.cache.base import Cache

__all__ = ["LRUCache"]


class LRUCache(Cache):
    """Classic LRU over an ordered dict (most recent at the end)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._items: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def _lookup(self, key: Any) -> Optional[Any]:
        if key not in self._items:
            return None
        self._items.move_to_end(key)
        return self._items[key]

    def _insert(self, key: Any, value: Any) -> None:
        self._items[key] = value
        self._items.move_to_end(key)

    def _evict_one(self) -> Any:
        key, _ = self._items.popitem(last=False)
        return key

    def keys(self):
        """Resident keys, least-recently-used first."""
        return list(self._items.keys())
