"""Access traces, offline replay, and the Belady-optimal oracle.

Cache research separates *policy* from *workload* by replaying recorded
access traces. This module provides:

* :class:`AccessTrace` — an ordered record of sample requests with epoch
  boundaries, recordable from any sampler;
* :func:`replay` — run a trace through any :class:`~repro.cache.base.Cache`
  and return its stats (orders of magnitude faster than re-training);
* :func:`belady_hit_ratio` — Belady's MIN/OPT oracle (evict the resident
  whose next use is farthest in the future), the theoretical upper bound
  on exact-hit ratio for any eviction policy at a given capacity.

The OPT bound contextualizes the paper's Fig.-14 numbers: under a random
permutation trace even the clairvoyant optimum is weak, while an
importance-sampled trace is inherently cacheable — locality is created by
the *sampler*, which is the paper's core thesis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cache.base import Cache, CacheStats

__all__ = ["AccessTrace", "record_trace", "replay", "belady_hit_ratio"]


@dataclass
class AccessTrace:
    """Ordered sample-request record."""

    requests: np.ndarray  # int64 ids in access order
    epoch_bounds: List[int] = field(default_factory=list)  # cumulative ends

    def __post_init__(self) -> None:
        self.requests = np.asarray(self.requests, dtype=np.int64)
        if self.requests.ndim != 1:
            raise ValueError("requests must be 1-D")

    def __len__(self) -> int:
        return int(self.requests.shape[0])

    @property
    def n_epochs(self) -> int:
        return len(self.epoch_bounds) if self.epoch_bounds else 1

    @property
    def unique_count(self) -> int:
        return int(np.unique(self.requests).size)

    def epoch_slice(self, epoch: int) -> np.ndarray:
        """Requests belonging to one epoch."""
        if not self.epoch_bounds:
            if epoch != 0:
                raise IndexError("trace has a single unnamed epoch")
            return self.requests
        start = 0 if epoch == 0 else self.epoch_bounds[epoch - 1]
        return self.requests[start : self.epoch_bounds[epoch]]

    def frequency_histogram(self, n_samples: Optional[int] = None) -> np.ndarray:
        """Per-sample access counts."""
        n = n_samples if n_samples is not None else int(self.requests.max()) + 1
        return np.bincount(self.requests, minlength=n)


def record_trace(
    epoch_order_fn: Callable[[int], Sequence[int]], epochs: int
) -> AccessTrace:
    """Record a trace from any epoch-order function (e.g. a policy's
    ``epoch_order`` or a sampler's)."""
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    chunks: List[np.ndarray] = []
    bounds: List[int] = []
    total = 0
    for e in range(epochs):
        order = np.asarray(epoch_order_fn(e), dtype=np.int64)
        chunks.append(order)
        total += order.shape[0]
        bounds.append(total)
    return AccessTrace(np.concatenate(chunks), bounds)


def replay(trace: AccessTrace, cache: Cache) -> CacheStats:
    """Replay a trace through a cache with demand-fill on miss.

    The cache's own stats object is used and returned (reset first).
    """
    cache.stats.reset()
    for i in trace.requests:
        key = int(i)
        if cache.get(key) is None:
            cache.put(key, key)
    return cache.stats


def belady_hit_ratio(trace: AccessTrace, capacity: int) -> float:
    """Hit ratio of Belady's clairvoyant MIN algorithm.

    Classic implementation: precompute each access's *next* use index, keep
    residents in a max-heap keyed by next use, evict the farthest-future
    resident on a full miss. Lazy heap entries (stale next-use values) are
    skipped on pop by cross-checking the authoritative ``next_use`` map.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    requests = trace.requests
    n = requests.shape[0]
    if n == 0:
        return 0.0
    if capacity == 0:
        return 0.0

    INF = n + 1
    # next_occurrence[i] = index of the next access of requests[i] after i.
    next_occurrence = np.full(n, INF, dtype=np.int64)
    last_seen: dict = {}
    for i in range(n - 1, -1, -1):
        key = int(requests[i])
        next_occurrence[i] = last_seen.get(key, INF)
        last_seen[key] = i

    resident_next: dict = {}  # key -> authoritative next use
    heap: List = []  # (-next_use, key) lazy max-heap
    hits = 0
    for i in range(n):
        key = int(requests[i])
        nxt = int(next_occurrence[i])
        if key in resident_next:
            hits += 1
            resident_next[key] = nxt
            heapq.heappush(heap, (-nxt, key))
            continue
        if len(resident_next) >= capacity:
            # Evict the resident with the farthest next use (skip stale).
            while True:
                neg_nxt, victim = heapq.heappop(heap)
                if victim in resident_next and resident_next[victim] == -neg_nxt:
                    del resident_next[victim]
                    break
        resident_next[key] = nxt
        heapq.heappush(heap, (-nxt, key))
    return hits / n
