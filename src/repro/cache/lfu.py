"""Least-frequently-used cache (Fig. 3(b) baseline).

O(1) LFU via frequency buckets of ordered dicts: ties within a frequency are
broken LRU-first, matching common LFU implementations.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Any, Dict, Optional

from repro.cache.base import Cache

__all__ = ["LFUCache"]


class LFUCache(Cache):
    """Least-frequently-used cache with O(1) operations."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._values: Dict[Any, Any] = {}
        self._freq: Dict[Any, int] = {}
        self._buckets: Dict[int, OrderedDict] = defaultdict(OrderedDict)
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Any) -> bool:
        return key in self._values

    def _bump(self, key: Any) -> None:
        f = self._freq[key]
        del self._buckets[f][key]
        if not self._buckets[f]:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = f + 1
        self._freq[key] = f + 1
        self._buckets[f + 1][key] = None

    def _lookup(self, key: Any) -> Optional[Any]:
        if key not in self._values:
            return None
        self._bump(key)
        return self._values[key]

    def _insert(self, key: Any, value: Any) -> None:
        if key in self._values:
            self._values[key] = value
            self._bump(key)
            return
        self._values[key] = value
        self._freq[key] = 1
        self._buckets[1][key] = None
        self._min_freq = 1

    def _evict_one(self) -> Any:
        bucket = self._buckets[self._min_freq]
        key, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
        del self._values[key]
        del self._freq[key]
        return key

    def frequency(self, key: Any) -> int:
        """Current access count of a cached key (KeyError if absent)."""
        return self._freq[key]

    def keys(self):
        """Resident keys (arbitrary order)."""
        return list(self._values.keys())
