"""First-in-first-out cache.

The Homophily Cache "uses a FIFO update strategy, which ensures that all
samples are regularly replaced, thereby fostering greater diversity"
(paper §4.2). This class provides the underlying queue semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro.cache.base import Cache

__all__ = ["FIFOCache"]


class FIFOCache(Cache):
    """Evicts in insertion order; lookups do not affect ordering."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._items: OrderedDict[Any, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def _lookup(self, key: Any) -> Optional[Any]:
        return self._items.get(key)

    def _insert(self, key: Any, value: Any) -> None:
        # Refreshing an existing key keeps its original queue position.
        self._items[key] = value

    def _evict_one(self) -> Any:
        key, _ = self._items.popitem(last=False)
        return key

    def oldest(self) -> Optional[Tuple[Any, Any]]:
        """Peek the next-to-evict entry."""
        if not self._items:
            return None
        key = next(iter(self._items))
        return key, self._items[key]

    def keys(self):
        """Resident keys in insertion (eviction) order."""
        return list(self._items.keys())

    def items(self):
        """Resident ``(key, value)`` pairs in insertion order."""
        return list(self._items.items())
