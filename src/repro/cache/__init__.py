"""Generic cache substrate + classic eviction policies.

LRU/LFU are the Fig. 3(b) baselines the paper shows failing under random
sampling; MinIO is CoorDL's never-evict cache; FIFO backs the Homophily
Cache's update rule.
"""

from repro.cache.base import Cache, CacheStats
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.trace import AccessTrace, belady_hit_ratio, record_trace, replay

__all__ = [
    "Cache",
    "CacheStats",
    "LRUCache",
    "LFUCache",
    "FIFOCache",
    "MinIOCache",
    "AccessTrace",
    "record_trace",
    "replay",
    "belady_hit_ratio",
]
