"""MinIO static cache (CoorDL, Mohan et al. 2020).

CoorDL's insight: under random sampling every epoch touches the whole
dataset exactly once, so *any* fixed subset of the data gives a hit ratio
equal to the cache fraction — provided cached items are never replaced
(replacement would evict items that will surely be needed and re-fetch
items that were just used). MinIO therefore fills once and never evicts.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.cache.base import Cache

__all__ = ["MinIOCache"]


class MinIOCache(Cache):
    """Insert-until-full, never evict, never replace."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._items: Dict[Any, Any] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    def _lookup(self, key: Any) -> Optional[Any]:
        return self._items.get(key)

    def _insert(self, key: Any, value: Any) -> None:
        self._items[key] = value

    def _evict_one(self) -> Any:  # pragma: no cover - unreachable by design
        raise RuntimeError("MinIO never evicts")

    def put(self, key: Any, value: Any) -> None:
        """Insert only while below capacity; drops once full (no eviction)."""
        if self.capacity == 0 or key in self._items:
            return
        if len(self._items) >= self.capacity:
            return
        self._items[key] = value
        self.stats.insertions += 1

    def keys(self):
        """Resident keys (the static cached set)."""
        return list(self._items.keys())
