"""Cache interface and hit/miss accounting.

Capacity is measured in *items*, matching the paper's "cache size as a
percentage of the dataset" framing (all samples in one dataset have equal
size). ``CacheStats`` also tracks *substitute hits* — requests served with a
different-but-similar sample via the Homophily Cache, which the paper counts
toward the total hit ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Cache", "CacheStats"]


@dataclass
class CacheStats:
    """Counters for hit-ratio reporting.

    ``degraded_serves`` counts degraded-mode substitutions (remote tier
    down, widened stand-in served). They are deliberately *excluded* from
    ``requests``/``hit_ratio``: a degraded serve is an availability event,
    not a cache hit, and folding it in would make outage-epoch hit ratios
    incomparable to clean runs.
    """

    hits: int = 0
    misses: int = 0
    substitute_hits: int = 0
    evictions: int = 0
    insertions: int = 0
    degraded_serves: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.substitute_hits

    @property
    def hit_ratio(self) -> float:
        """Total hit ratio including substitute hits; 0.0 when idle."""
        req = self.requests
        if req == 0:
            return 0.0
        return (self.hits + self.substitute_hits) / req

    @property
    def exact_hit_ratio(self) -> float:
        """Hit ratio counting only exact (non-substitute) hits."""
        req = self.requests
        if req == 0:
            return 0.0
        return self.hits / req

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.substitute_hits = 0
        self.evictions = 0
        self.insertions = 0
        self.degraded_serves = 0

    def merge(self, other: "CacheStats") -> None:
        """Add another stats object's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.substitute_hits += other.substitute_hits
        self.evictions += other.evictions
        self.insertions += other.insertions
        self.degraded_serves += other.degraded_serves

    def state_dict(self) -> dict:
        """Serializable counter snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "substitute_hits": self.substitute_hits,
            "evictions": self.evictions,
            "insertions": self.insertions,
            "degraded_serves": self.degraded_serves,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        Snapshots written before degraded serves got a dedicated counter
        lack the key; they load as zero.
        """
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])
        self.substitute_hits = int(state["substitute_hits"])
        self.evictions = int(state["evictions"])
        self.insertions = int(state["insertions"])
        self.degraded_serves = int(state.get("degraded_serves", 0))


class Cache:
    """Abstract keyed cache with item-count capacity.

    Subclasses implement ``_lookup`` (policy bookkeeping on access) and
    ``_insert``/``_evict_one``. ``get``/``put`` maintain the shared stats.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self.stats = CacheStats()

    # -- required policy hooks -----------------------------------------
    def _lookup(self, key: Any) -> Optional[Any]:
        raise NotImplementedError

    def _insert(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def _evict_one(self) -> Any:
        """Remove one item per policy; returns the evicted key."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: Any) -> bool:
        raise NotImplementedError

    # -- shared interface ----------------------------------------------
    def get(self, key: Any) -> Optional[Any]:
        """Return the cached value or ``None``; updates stats."""
        value = self._lookup(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert ``key``; evicts per policy when at capacity.

        A zero-capacity cache silently drops all inserts.
        """
        if self.capacity == 0:
            return
        if key in self:
            self._insert(key, value)  # refresh in place
            return
        while len(self) >= self.capacity:
            self._evict_one()
            self.stats.evictions += 1
        self._insert(key, value)
        self.stats.insertions += 1

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity
