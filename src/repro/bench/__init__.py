"""Committed performance trajectory (``BENCH_<date>.json``).

ROADMAP item 2's measurability half: every PR can prove it didn't regress
the hot path because ops/sec for the critical operations — cache get/put,
HNSW build/query (with an exact-backend recall floor), end-to-end epoch
time — are measured by one harness, written to a dated JSON file at the
repo root, and soft-gated in CI against the last committed baseline.
"""

from repro.bench.trajectory import (
    BenchConfig,
    compare_reports,
    format_report,
    latest_baseline,
    run_trajectory,
    validate_report,
)

__all__ = [
    "BenchConfig",
    "run_trajectory",
    "validate_report",
    "latest_baseline",
    "compare_reports",
    "format_report",
]
