"""Perf-trajectory harness: measure the hot paths, emit ``BENCH_<date>.json``.

Three measurement groups, chosen to cover every layer the training loop
leans on (ROADMAP item 2):

* **cache** — raw LRU get/put ops/sec and two-layer ``SemanticCache.fetch``
  ops/sec under a zipf-ish reuse pattern.
* **hnsw** — build throughput and query throughput (per-query and batched)
  on a clustered vector set, with layer-0 recall@10 against the exact
  brute-force backend as the correctness floor. Queries are perturbed
  copies of indexed samples — the workload the graph scorer actually
  issues (drifted sample embeddings probing their own neighborhood). The
  same queries also run through :class:`_SeedPathHNSW`, a faithful replica
  of the pre-vectorization implementation (dict-of-objects node storage,
  per-hop ``np.stack`` + generic distance kernel) grafted onto the
  identical graph, so the speedup is measured, not asserted.
* **epoch** — wall-clock seconds per epoch of a small end-to-end
  SpiderCache training run (the simulated time is recorded alongside).

``run_trajectory`` writes the report as ``BENCH_<date>.json``;
``compare_reports`` implements the CI soft gate: warn when any metric
regresses more than ``threshold`` (default 20%) against the last committed
baseline with a matching config.
"""

from __future__ import annotations

import heapq
import json
import math
import platform
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ann.brute import BruteForceIndex
from repro.ann.distance import l2_distances
from repro.ann.hnsw import HNSWIndex

__all__ = [
    "SCHEMA_VERSION",
    "BenchConfig",
    "run_trajectory",
    "validate_report",
    "latest_baseline",
    "compare_reports",
    "format_report",
]

SCHEMA_VERSION = 1
BENCH_GLOB = "BENCH_*.json"

REQUIRED_METRICS = (
    "cache_get_put_ops_per_s",
    "semantic_cache_fetch_ops_per_s",
    "hnsw_build_vecs_per_s",
    "hnsw_query_qps",
    "hnsw_batch_query_qps",
    "hnsw_seed_query_qps",
    "hnsw_query_speedup_vs_seed",
    "hnsw_recall_at_10",
    "epoch_time_s",
    "epoch_time_simulated_s",
    "transport_sim_rpc_ops_per_s",
    "transport_real_rpc_ops_per_s",
    "transport_real_epoch_time_s",
)
# Metrics where a larger value is a regression (all others: smaller is).
LOWER_IS_BETTER = frozenset({
    "epoch_time_s", "epoch_time_simulated_s", "transport_real_epoch_time_s",
})
# Quality/ratio metrics excluded from the ops/sec regression gate but
# still floor-checked (a recall collapse is a correctness bug, not noise).
QUALITY_METRICS = frozenset({"hnsw_recall_at_10", "hnsw_query_speedup_vs_seed"})
# Config fields that must match for two reports to be comparable.
SCALE_FIELDS = (
    "hnsw_n", "dim", "n_queries", "k", "cache_ops", "cache_capacity",
    "key_space", "epoch_samples", "epochs", "batch_size", "transport_ops",
)


@dataclass(frozen=True)
class BenchConfig:
    """Workload sizes for one trajectory run.

    The defaults are the committed-baseline scale (1e4-vector HNSW micro-
    benchmark); ``quick()`` shrinks everything for CI smoke and tests.
    """

    hnsw_n: int = 10_000
    dim: int = 32
    n_queries: int = 200
    k: int = 10
    M: int = 16
    ef_construction: int = 100
    ef_search: int = 64
    cache_ops: int = 30_000
    cache_capacity: int = 1_000
    key_space: int = 4_000
    epoch_samples: int = 600
    epochs: int = 2
    batch_size: int = 64
    transport_ops: int = 4_000  # cache-protocol ops per transport bench
    seed: int = 0

    @classmethod
    def quick(cls, **overrides) -> "BenchConfig":
        """Reduced-scale config for CI smoke runs and schema tests."""
        base = cls(
            hnsw_n=1_500, n_queries=50, cache_ops=8_000, cache_capacity=400,
            key_space=1_500, epoch_samples=300, epochs=1, transport_ops=1_000,
        )
        return replace(base, **overrides)


def _clustered_vectors(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """Cluster-structured vectors (the regime HNSW actually serves)."""
    n_centers = max(8, n // 250)
    centers = rng.normal(0.0, 4.0, (n_centers, dim))
    return centers[rng.integers(n_centers, size=n)] + rng.normal(0.0, 1.0, (n, dim))


class _SeedNode:
    """Dict-of-objects node storage, as in the seed implementation."""

    __slots__ = ("vector", "neighbors")

    def __init__(self, vector: np.ndarray, neighbors: List[List[int]]) -> None:
        self.vector = vector
        self.neighbors = neighbors


class _SeedPathHNSW:
    """Faithful replica of the seed's query path on an already-built graph.

    The pre-vectorization implementation kept one Python object per node
    (vector + per-layer neighbor-id lists) and re-stacked each hop's
    neighbor vectors into a fresh matrix before scoring (``np.stack`` +
    the generic ``l2_distances`` kernel, norms recomputed every hop).
    :meth:`graft` copies a built index's graph into that storage layout and
    runs the seed's own greedy-descend / beam-search code verbatim, so the
    committed speedup is a measured ratio of the two implementations over
    the identical graph — not a guess. Never used for construction.
    """

    def __init__(
        self,
        nodes: Dict[int, _SeedNode],
        entry: Optional[int],
        max_level: int,
        ef_search: int,
    ) -> None:
        self._nodes = nodes
        self._entry = entry
        self._max_level = max_level
        self.ef_search = ef_search

    @classmethod
    def graft(cls, index: HNSWIndex) -> "_SeedPathHNSW":
        """Copy ``index``'s graph into seed-style per-node storage."""
        nodes: Dict[int, _SeedNode] = {}
        for item_id, row in index._row_of.items():
            level = index._levels[row]
            neighbors = [
                [index._id_of[r] for r in index._out[row][layer]]
                for layer in range(level + 1)
            ]
            nodes[item_id] = _SeedNode(index._vectors[row].copy(), neighbors)
        return cls(nodes, index._entry, index.max_level, index.ef_search)

    def _dist(self, query: np.ndarray, item_id: int) -> float:
        v = self._nodes[item_id].vector
        d = query - v
        return float(math.sqrt(d @ d))

    def _dists(self, query: np.ndarray, item_ids: List[int]) -> np.ndarray:
        mat = np.stack([self._nodes[i].vector for i in item_ids])
        return l2_distances(query, mat)

    def _greedy_descend(
        self, query: np.ndarray, start: int, top: int, stop: int
    ) -> int:
        current = start
        cur_dist = self._dist(query, current)
        for layer in range(top, stop, -1):
            improved = True
            while improved:
                improved = False
                neigh = self._nodes[current].neighbors[layer]
                if not neigh:
                    continue
                dists = self._dists(query, neigh)
                best = int(np.argmin(dists))
                if dists[best] < cur_dist:
                    cur_dist = float(dists[best])
                    current = neigh[best]
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entry: int, ef: int, layer: int
    ) -> List[Tuple[float, int]]:
        entry_dist = self._dist(query, entry)
        visited = {entry}
        candidates: List[Tuple[float, int]] = [(entry_dist, entry)]
        results: List[Tuple[float, int]] = [(-entry_dist, entry)]
        while candidates:
            cand_dist, cand = heapq.heappop(candidates)
            if cand_dist > -results[0][0] and len(results) >= ef:
                break
            neigh = [
                n for n in self._nodes[cand].neighbors[layer] if n not in visited
            ]
            if not neigh:
                continue
            visited.update(neigh)
            dists = self._dists(query, neigh)
            worst = -results[0][0]
            for nid, nd in zip(neigh, dists):
                nd = float(nd)
                if len(results) < ef or nd < worst:
                    heapq.heappush(candidates, (nd, nid))
                    heapq.heappush(results, (-nd, nid))
                    if len(results) > ef:
                        heapq.heappop(results)
                    worst = -results[0][0]
        out = [(-d, i) for d, i in results]
        out.sort()
        return out

    def search(
        self, query: np.ndarray, k: int, ef: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN exactly as the seed implementation ran it."""
        if self._entry is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        query = np.asarray(query, dtype=np.float64).ravel()
        ef = max(int(ef if ef is not None else self.ef_search), k)
        entry = self._greedy_descend(query, self._entry, self._max_level, 0)
        results = self._search_layer(query, entry, ef, 0)
        k = min(int(k), len(results))
        ids = [i for _, i in results[:k]]
        dists = [d for d, _ in results[:k]]
        return np.asarray(ids, dtype=np.int64), np.asarray(dists)


def bench_cache(cfg: BenchConfig, rng: np.random.Generator) -> Dict[str, float]:
    """LRU get/put and SemanticCache fetch throughput."""
    from repro.cache.lru import LRUCache
    from repro.core.semantic_cache import SemanticCache

    # Zipf-ish skewed keys: heavy reuse with a long tail, like epoch replays.
    keys = rng.zipf(1.3, size=cfg.cache_ops) % cfg.key_space

    lru = LRUCache(cfg.cache_capacity)
    t0 = time.perf_counter()
    for k in keys:
        k = int(k)
        if lru.get(k) is None:
            lru.put(k, k)
    lru_elapsed = time.perf_counter() - t0

    cache = SemanticCache(cfg.cache_capacity, imp_ratio=0.9)
    scores = rng.random(cfg.cache_ops)
    t0 = time.perf_counter()
    for k, s in zip(keys, scores):
        cache.fetch(int(k), float(s), lambda i: i)
    sem_elapsed = time.perf_counter() - t0

    return {
        "cache_get_put_ops_per_s": cfg.cache_ops / max(lru_elapsed, 1e-9),
        "semantic_cache_fetch_ops_per_s": cfg.cache_ops / max(sem_elapsed, 1e-9),
    }


def bench_hnsw(cfg: BenchConfig, rng: np.random.Generator) -> Dict[str, float]:
    """HNSW build/query throughput, recall floor, and seed-path speedup."""
    data = _clustered_vectors(cfg.hnsw_n, cfg.dim, rng)
    # Queries are perturbed indexed samples — the graph scorer's workload
    # (a drifted sample embedding probing its own neighborhood).
    picks = rng.integers(cfg.hnsw_n, size=cfg.n_queries)
    queries = data[picks] + rng.normal(0.0, 0.25, (cfg.n_queries, cfg.dim))

    idx = HNSWIndex(
        cfg.dim, M=cfg.M, ef_construction=cfg.ef_construction,
        ef_search=cfg.ef_search, rng=cfg.seed, capacity=cfg.hnsw_n,
    )
    t0 = time.perf_counter()
    idx.add_batch(np.arange(cfg.hnsw_n), data)
    build_s = time.perf_counter() - t0

    brute = BruteForceIndex(cfg.dim, capacity=cfg.hnsw_n)
    brute.add_batch(np.arange(cfg.hnsw_n), data)

    # Correctness floor before any timing: layer-0 recall@k vs exact.
    recalls = []
    for q in queries:
        h_ids, _ = idx.search(q, k=cfg.k)
        b_ids, _ = brute.search(q, k=cfg.k)
        recalls.append(len(set(h_ids) & set(b_ids)) / cfg.k)
    recall = float(np.mean(recalls))

    def _best_of(fn, reps: int = 3) -> float:
        """Best-of-N wall time — damps scheduler noise in the ratio."""
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def _run_single():
        for q in queries:
            idx.search(q, k=cfg.k)

    query_s = _best_of(_run_single)
    batch_s = _best_of(lambda: idx.search_batch(queries, k=cfg.k))

    seed_view = _SeedPathHNSW.graft(idx)

    def _run_seed():
        for q in queries:
            seed_view.search(q, k=cfg.k)

    seed_s = _best_of(_run_seed)

    return {
        "hnsw_build_vecs_per_s": cfg.hnsw_n / max(build_s, 1e-9),
        "hnsw_query_qps": cfg.n_queries / max(query_s, 1e-9),
        "hnsw_batch_query_qps": cfg.n_queries / max(batch_s, 1e-9),
        "hnsw_seed_query_qps": cfg.n_queries / max(seed_s, 1e-9),
        # The headline ratio: the lockstep batched layer-0 path (the
        # tentpole's vectorized query API) vs the seed implementation
        # replayed verbatim on the identical graph and query set.
        "hnsw_query_speedup_vs_seed": seed_s / max(batch_s, 1e-9),
        "hnsw_recall_at_10": recall,
    }


def bench_epoch(cfg: BenchConfig) -> Dict[str, float]:
    """Wall-clock (and simulated) seconds per epoch, end to end."""
    from repro.core.policy import SpiderCachePolicy
    from repro.data.registry import make_dataset
    from repro.data.synthetic import train_test_split
    from repro.nn.models import build_model
    from repro.train.trainer import Trainer, TrainerConfig

    data = make_dataset("cifar10-like", rng=cfg.seed, n_samples=cfg.epoch_samples)
    train, test = train_test_split(data, test_fraction=0.25, rng=cfg.seed + 1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=cfg.seed + 2)
    policy = SpiderCachePolicy(cache_fraction=0.2, rng=cfg.seed + 3)
    trainer = Trainer(
        model, train, test, policy,
        TrainerConfig(epochs=cfg.epochs, batch_size=cfg.batch_size),
    )
    t0 = time.perf_counter()
    result = trainer.run()
    wall = time.perf_counter() - t0
    return {
        "epoch_time_s": wall / cfg.epochs,
        "epoch_time_simulated_s": result.total_time_s / cfg.epochs,
    }


def _drive_shard_client(client, n_ops: int, key_space: int, seed: int) -> float:
    """Mixed admit/fetch/homophily workload; returns wall seconds."""
    import numpy as _np

    rng = _np.random.default_rng(seed)
    keys = (rng.zipf(1.2, size=n_ops) % key_space).astype(int)
    scores = rng.random(n_ops)
    dim = 8

    def remote(i: int):
        return _np.full(dim, i, dtype=_np.float32)

    t0 = time.perf_counter()
    for i in range(n_ops):
        k = int(keys[i])
        op = i % 4
        if op == 0:
            client.importance.admit(k, remote(k), float(scores[i]))
        elif op == 3:
            client.update_homophily(k, remote(k), [k, (k + 1) % key_space])
        else:
            client.fetch(k, float(scores[i]), remote)
    return time.perf_counter() - t0


def bench_transport(cfg: BenchConfig) -> Dict[str, float]:
    """Sim-vs-real transport throughput, plus a wall-clock sharded epoch.

    ``transport_sim_rpc_ops_per_s`` measures the in-process simulated
    channel (wall time of the *simulation*, not simulated time);
    ``transport_real_rpc_ops_per_s`` drives the same workload through
    shard servers in real worker processes — honest IPC round-trips.
    ``transport_real_epoch_time_s`` is a 2-worker shared-cache
    data-parallel epoch over the real transport, wall-measured.
    """
    from repro.core.policy import SpiderCachePolicy
    from repro.data.registry import make_dataset
    from repro.data.synthetic import train_test_split
    from repro.dist.client import ShardedCacheClient
    from repro.dist.retry import RetryPolicy
    from repro.nn.models import build_model
    from repro.train.data_parallel import DataParallelTrainer
    from repro.train.trainer import TrainerConfig

    capacity = max(64, cfg.cache_capacity // 2)
    key_space = max(capacity * 2, 256)
    out: Dict[str, float] = {}
    for mode in ("sim", "real"):
        client = ShardedCacheClient(
            capacity,
            imp_ratio=0.8,
            n_shards=2,
            transport=mode,
            deadline_s=5.0,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
        )
        try:
            elapsed = _drive_shard_client(
                client, cfg.transport_ops, key_space, cfg.seed
            )
        finally:
            client.close()
        out[f"transport_{mode}_rpc_ops_per_s"] = (
            cfg.transport_ops / max(elapsed, 1e-9)
        )

    data = make_dataset(
        "cifar10-like", rng=cfg.seed, n_samples=cfg.epoch_samples
    )
    train, test = train_test_split(data, test_fraction=0.25, rng=cfg.seed + 1)

    def model_factory():
        return build_model(
            "resnet18", train.dim, train.num_classes, rng=cfg.seed + 2
        )

    def policy_factory(rank: int):
        return SpiderCachePolicy(cache_fraction=0.2, rng=cfg.seed + 3)

    trainer = DataParallelTrainer(
        model_factory, train, test, policy_factory,
        world_size=2,
        config=TrainerConfig(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            clock_mode="real",
            shared_cache=True,
            cache_shards=2,
            rpc_deadline_s=1.0,
        ),
        rng=cfg.seed + 4,
    )
    t0 = time.perf_counter()
    trainer.run()
    wall = time.perf_counter() - t0
    out["transport_real_epoch_time_s"] = wall / cfg.epochs
    return out


def run_trajectory(
    cfg: Optional[BenchConfig] = None,
    out_dir: Optional[Path] = None,
    date: Optional[str] = None,
) -> Tuple[dict, Optional[Path]]:
    """Run all groups; write ``BENCH_<date>.json`` unless ``out_dir=None``.

    Returns ``(report, path_or_None)``.
    """
    cfg = cfg or BenchConfig()
    rng = np.random.default_rng(cfg.seed)
    metrics: Dict[str, float] = {}
    metrics.update(bench_cache(cfg, rng))
    metrics.update(bench_hnsw(cfg, rng))
    metrics.update(bench_epoch(cfg))
    metrics.update(bench_transport(cfg))
    if date is None:
        date = time.strftime("%Y-%m-%d")
    report = {
        "schema_version": SCHEMA_VERSION,
        "date": date,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": asdict(cfg),
        "metrics": metrics,
    }
    path = None
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"BENCH_{date}.json"
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report, path


def validate_report(report: dict) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version {report.get('schema_version')!r} != {SCHEMA_VERSION}"
        )
    for key in ("date", "host", "config", "metrics"):
        if key not in report:
            problems.append(f"missing top-level key {key!r}")
    metrics = report.get("metrics", {})
    if not isinstance(metrics, dict):
        problems.append("metrics is not an object")
        metrics = {}
    for name in REQUIRED_METRICS:
        val = metrics.get(name)
        if not isinstance(val, (int, float)) or not np.isfinite(val):
            problems.append(f"metric {name!r} missing or non-finite: {val!r}")
        elif val < 0:
            problems.append(f"metric {name!r} negative: {val!r}")
    config = report.get("config", {})
    if isinstance(config, dict):
        for field in SCALE_FIELDS:
            if field not in config:
                problems.append(f"config missing field {field!r}")
    else:
        problems.append("config is not an object")
    return problems


def latest_baseline(
    root: Path, exclude: Optional[Path] = None
) -> Optional[Path]:
    """Newest committed ``BENCH_*.json`` under ``root`` (by filename date)."""
    root = Path(root)
    candidates = sorted(p for p in root.glob(BENCH_GLOB) if p.is_file())
    if exclude is not None:
        exclude = Path(exclude).resolve()
        candidates = [p for p in candidates if p.resolve() != exclude]
    return candidates[-1] if candidates else None


def compare_reports(
    current: dict, baseline: dict, threshold: float = 0.2
) -> List[str]:
    """Soft-gate comparison; returns human-readable regression warnings.

    Throughput metrics warn when they fall more than ``threshold`` below
    the baseline; time metrics warn when they rise more than ``threshold``
    above it. Quality metrics (recall, speedup) warn on any absolute drop
    below the baseline minus 0.05. Reports with different workload scales
    are declared incomparable (one note, no metric warnings).
    """
    cur_cfg = current.get("config", {})
    base_cfg = baseline.get("config", {})
    mismatched = [
        f for f in SCALE_FIELDS if cur_cfg.get(f) != base_cfg.get(f)
    ]
    if mismatched:
        return [
            "baseline workload scale differs "
            f"({', '.join(mismatched)}); skipping metric comparison"
        ]
    warnings: List[str] = []
    cur_m = current.get("metrics", {})
    base_m = baseline.get("metrics", {})
    for name in REQUIRED_METRICS:
        cur = cur_m.get(name)
        base = base_m.get(name)
        if cur is None or base is None or base <= 0:
            continue
        if name in QUALITY_METRICS:
            if cur < base - 0.05:
                warnings.append(
                    f"{name}: {cur:.3f} vs baseline {base:.3f} (quality drop)"
                )
        elif name in LOWER_IS_BETTER:
            if cur > base * (1.0 + threshold):
                warnings.append(
                    f"{name}: {cur:.4g}s vs baseline {base:.4g}s "
                    f"(+{(cur / base - 1) * 100:.0f}%, threshold "
                    f"{threshold * 100:.0f}%)"
                )
        else:
            if cur < base * (1.0 - threshold):
                warnings.append(
                    f"{name}: {cur:.4g} vs baseline {base:.4g} "
                    f"(-{(1 - cur / base) * 100:.0f}%, threshold "
                    f"{threshold * 100:.0f}%)"
                )
    return warnings


def format_report(report: dict) -> str:
    """Render one report as an aligned text table."""
    lines = [f"perf trajectory — {report['date']} "
             f"(schema v{report['schema_version']})"]
    metrics = report["metrics"]
    width = max(len(k) for k in metrics)
    for name in sorted(metrics):
        val = metrics[name]
        if name in LOWER_IS_BETTER:
            shown = f"{val:.3f} s"
        elif name in QUALITY_METRICS:
            shown = f"{val:.3f}"
        else:
            shown = f"{val:,.0f} /s"
        lines.append(f"  {name:<{width}}  {shown}")
    return "\n".join(lines)
