"""Trend statistics: slopes, growth rates, rolling dispersion."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["slope", "mean_growth_rate", "rolling_std"]


def slope(y: Sequence[float]) -> float:
    """Least-squares slope of a series against its index."""
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape[0] < 2:
        raise ValueError("need at least two points for a slope")
    x = np.arange(y.shape[0], dtype=np.float64)
    x -= x.mean()
    return float(x @ (y - y.mean()) / (x @ x))


def mean_growth_rate(y: Sequence[float], window: int = 5) -> float:
    """Paper Eq. 6: mean first difference over the trailing ``window``.

    ``(1/m) * sum(y[t-m+i+1] - y[t-m+i])`` telescopes to
    ``(y[t] - y[t-m]) / m``; computed that way for clarity and stability.
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    if window < 1:
        raise ValueError("window must be >= 1")
    if y.shape[0] < window + 1:
        raise ValueError(f"need at least {window + 1} points")
    return float((y[-1] - y[-1 - window]) / window)


def rolling_std(y: Sequence[float], window: int) -> np.ndarray:
    """Rolling standard deviation; positions with incomplete windows are NaN."""
    y = np.asarray(y, dtype=np.float64).ravel()
    n = y.shape[0]
    if window < 1:
        raise ValueError("window must be >= 1")
    out = np.full(n, np.nan)
    if n < window:
        return out
    # Vectorized via sliding windows.
    windows = np.lib.stride_tricks.sliding_window_view(y, window)
    out[window - 1 :] = windows.std(axis=1)
    return out
