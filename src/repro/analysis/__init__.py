"""Signal-analysis helpers for the Elastic Cache Manager's monitors."""

from repro.analysis.export import (
    render_gantt,
    result_to_csv,
    results_to_csv,
    write_rows_csv,
)
from repro.analysis.savgol import savgol_coefficients, savgol_smooth
from repro.analysis.stats import MeanCI, mean_ci, paired_bootstrap_pvalue
from repro.analysis.trends import mean_growth_rate, rolling_std, slope

__all__ = [
    "savgol_smooth",
    "savgol_coefficients",
    "slope",
    "mean_growth_rate",
    "rolling_std",
    "result_to_csv",
    "results_to_csv",
    "write_rows_csv",
    "render_gantt",
    "MeanCI",
    "mean_ci",
    "paired_bootstrap_pvalue",
]
