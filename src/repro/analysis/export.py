"""Result exporters: CSV figure data and ASCII pipeline Gantt charts.

The benchmarks print human-readable tables; this module produces
machine-readable artifacts for plotting (each figure's series as CSV) and
a terminal rendering of the §5 pipeline schedules (Fig. 12).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.train.metrics import TrainResult
from repro.train.pipeline import ScheduledInterval

__all__ = ["result_to_csv", "results_to_csv", "render_gantt", "write_rows_csv"]


def result_to_csv(result: TrainResult, path: Union[str, Path, None] = None) -> str:
    """Serialize a run's per-epoch metrics to CSV; returns the CSV text.

    Writes to ``path`` when given (parent directories created).
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow([
        "policy", "model", "dataset", "epoch", "train_loss", "val_accuracy",
        "hit_ratio", "exact_hit_ratio", "substitute_ratio",
        "data_load_s", "compute_s", "is_visible_s", "epoch_time_s",
        "imp_ratio", "score_std",
    ])
    for e in result.epochs:
        writer.writerow([
            result.policy_name, result.model_name, result.dataset_name,
            e.epoch, f"{e.train_loss:.6f}", f"{e.val_accuracy:.6f}",
            f"{e.hit_ratio:.6f}", f"{e.exact_hit_ratio:.6f}",
            f"{e.substitute_ratio:.6f}",
            f"{e.data_load_s:.6f}", f"{e.compute_s:.6f}",
            f"{e.is_visible_s:.6f}", f"{e.epoch_time_s:.6f}",
            "" if e.imp_ratio is None else f"{e.imp_ratio:.6f}",
            "" if e.score_std is None else f"{e.score_std:.6f}",
        ])
    text = buf.getvalue()
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return text


def results_to_csv(
    results: Sequence[TrainResult], path: Union[str, Path, None] = None
) -> str:
    """Concatenate several runs into one long-format CSV."""
    if not results:
        raise ValueError("no results to export")
    parts = [result_to_csv(results[0])]
    for r in results[1:]:
        # Strip the header from subsequent runs.
        parts.append(result_to_csv(r).split("\n", 1)[1])
    text = "".join(parts)
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return text


def write_rows_csv(
    header: Sequence[str], rows: Sequence[Sequence], path: Union[str, Path]
) -> Path:
    """Write a benchmark's printed table rows as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.writer(f, lineterminator="\n")
        writer.writerow(list(header))
        for r in rows:
            writer.writerow(list(r))
    return path


_STAGE_CHARS = {"stage1": "1", "stage2": "2", "is": "#"}


def render_gantt(
    schedule: Sequence[ScheduledInterval],
    width: int = 78,
    max_batches: Optional[int] = None,
) -> str:
    """Render a pipeline schedule as an ASCII Gantt chart (Fig.-12 style).

    One row per (batch, stream): the main stream shows Stage1/Stage2 as
    ``1``/``2`` runs; the IS side-stream shows ``#``. Time scales to
    ``width`` characters.
    """
    if not schedule:
        return "(empty schedule)"
    intervals = list(schedule)
    if max_batches is not None:
        intervals = [iv for iv in intervals if iv.batch < max_batches]
    end = max(iv.end_ms for iv in intervals)
    scale = (width - 1) / end if end > 0 else 1.0

    def span(iv: ScheduledInterval) -> tuple:
        a = int(round(iv.start_ms * scale))
        b = max(a + 1, int(round(iv.end_ms * scale)))
        return a, b

    lines: List[str] = [f"time: 0 .. {end:.0f} ms ({'1'}=stage1 {'2'}=stage2 #=IS)"]
    batches = sorted({iv.batch for iv in intervals})
    for b in batches:
        main = [" "] * width
        side = [" "] * width
        for iv in intervals:
            if iv.batch != b:
                continue
            a, z = span(iv)
            row = side if iv.stage == "is" else main
            ch = _STAGE_CHARS[iv.stage]
            for i in range(a, min(z, width)):
                row[i] = ch
        lines.append(f"b{b:<3}|" + "".join(main))
        lines.append(f"  IS|" + "".join(side))
    return "\n".join(lines)
