"""Savitzky-Golay smoothing filter (Savitzky & Golay, 1964).

The Accuracy Monitor (paper Eq. 6) smooths the noisy per-epoch accuracy
series with this filter before differencing. Implemented from first
principles — coefficients come from the least-squares polynomial-fit
projection ``A (A^T A)^{-1} A^T`` evaluated at the window center — and
cross-checked against ``scipy.signal.savgol_filter`` in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["savgol_coefficients", "savgol_smooth"]


def savgol_coefficients(window: int, polyorder: int, deriv: int = 0) -> np.ndarray:
    """Convolution coefficients for a centered Savitzky-Golay filter.

    ``window`` must be odd and > ``polyorder``. ``deriv`` selects the
    smoothed ``deriv``-th derivative (0 = smoothing).
    """
    if window % 2 == 0 or window < 1:
        raise ValueError("window must be a positive odd integer")
    if polyorder >= window:
        raise ValueError("polyorder must be less than window")
    if deriv > polyorder:
        raise ValueError("deriv must not exceed polyorder")
    half = window // 2
    # Vandermonde of offsets -half..half.
    x = np.arange(-half, half + 1, dtype=np.float64)
    A = np.vander(x, polyorder + 1, increasing=True)  # (window, polyorder+1)
    # Least-squares fit evaluated at 0: coefficients are row `deriv` of the
    # pseudo-inverse times deriv!.
    pinv = np.linalg.pinv(A)
    from math import factorial

    return pinv[deriv] * factorial(deriv)


def savgol_smooth(
    y: np.ndarray, window: int = 5, polyorder: int = 2, deriv: int = 0
) -> np.ndarray:
    """Apply a Savitzky-Golay filter along a 1-D series.

    Edges use polynomial fits over the first/last window (same strategy as
    scipy's ``mode='interp'``), so output length equals input length. Series
    shorter than ``window`` are fit with a single polynomial.
    """
    y = np.asarray(y, dtype=np.float64).ravel()
    n = y.shape[0]
    if n == 0:
        return y.copy()
    if n < window:
        # Degenerate: single global polynomial fit of reduced order.
        order = min(polyorder, n - 1)
        x = np.arange(n, dtype=np.float64)
        coeffs = np.polynomial.polynomial.polyfit(x, y, order)
        if deriv > 0:
            coeffs = np.polynomial.polynomial.polyder(coeffs, deriv)
        return np.polynomial.polynomial.polyval(x, coeffs)

    kernel = savgol_coefficients(window, polyorder, deriv)
    half = window // 2
    # Interior: correlation with the center-evaluated kernel (correlate does
    # NOT flip its second argument, so kernel[k] multiplies y[n+k] — the
    # offset ordering the coefficients were derived in).
    out = np.empty(n)
    interior = np.correlate(y, kernel, mode="valid")  # length n-window+1
    out[half : n - half] = interior

    # Edges: fit one polynomial to each terminal window and evaluate it.
    x_win = np.arange(window, dtype=np.float64)
    for sl, offset in ((slice(0, window), 0), (slice(n - window, n), n - window)):
        coeffs = np.polynomial.polynomial.polyfit(x_win, y[sl], polyorder)
        if deriv > 0:
            coeffs = np.polynomial.polynomial.polyder(coeffs, deriv)
        if offset == 0:
            out[:half] = np.polynomial.polynomial.polyval(x_win[:half], coeffs)
        else:
            out[n - half :] = np.polynomial.polynomial.polyval(
                x_win[window - half :], coeffs
            )
    return out
