"""Multi-seed experiment statistics.

The benchmarks average a handful of seeds; these helpers make the
uncertainty explicit: means with bootstrap confidence intervals, and a
paired-comparison test for "is policy A really better than policy B on the
same seeds?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = ["MeanCI", "mean_ci", "paired_bootstrap_pvalue"]


@dataclass(frozen=True)
class MeanCI:
    """A mean with a bootstrap confidence interval."""

    mean: float
    low: float
    high: float
    level: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} [{self.low:.3f}, {self.high:.3f}]"

    def overlaps(self, other: "MeanCI") -> bool:
        """True if the two intervals overlap (difference not resolved)."""
        return self.low <= other.high and other.low <= self.high


def mean_ci(
    values: Sequence[float],
    level: float = 0.95,
    n_boot: int = 2000,
    rng: RngLike = 0,
) -> MeanCI:
    """Bootstrap percentile CI for the mean of ``values``.

    With a single value the interval degenerates to a point.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    m = float(vals.mean())
    if vals.size == 1:
        return MeanCI(m, m, m, level)
    gen = resolve_rng(rng)
    idx = gen.integers(0, vals.size, size=(n_boot, vals.size))
    boots = vals[idx].mean(axis=1)
    alpha = (1.0 - level) / 2
    return MeanCI(
        m,
        float(np.quantile(boots, alpha)),
        float(np.quantile(boots, 1 - alpha)),
        level,
    )


def paired_bootstrap_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_boot: int = 5000,
    rng: RngLike = 0,
) -> float:
    """One-sided paired bootstrap p-value for ``mean(a) > mean(b)``.

    ``a`` and ``b`` must be paired (same seeds, same order). Returns the
    bootstrap probability that the mean difference is <= 0 — small values
    mean "A reliably beats B on these seeds".
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("a and b must be equal-length, non-empty")
    diff = a - b
    if a.size == 1:
        return 0.0 if diff[0] > 0 else 1.0
    gen = resolve_rng(rng)
    idx = gen.integers(0, diff.size, size=(n_boot, diff.size))
    boots = diff[idx].mean(axis=1)
    return float(np.mean(boots <= 0))
