"""Global importance-score table.

The paper's central claim (Motivation 1) is that cache management needs
importance scores comparable *globally* — across batches and epochs — which
loss-based IS cannot provide. This table is that global state: one score per
sample, updated whenever a sample is processed, with enough history to feed
the Elastic Cache Manager's Importance Monitor (the std-dev trajectory of
Fig. 6(c)).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["GlobalScoreTable"]


class GlobalScoreTable:
    """Per-sample importance scores with staleness stamps.

    Scores start at ``initial_score`` (> 0 so unseen samples still get
    sampled; the paper's IS "does not update every sample's score in each
    epoch"). ``snapshot_std`` records the dispersion of the current scores —
    called once per epoch, this produces the Fig. 6(c) std trajectory.
    """

    def __init__(self, n_samples: int, initial_score: float = 1.0) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if initial_score <= 0:
            raise ValueError("initial_score must be positive for sampling")
        self.n_samples = int(n_samples)
        self._scores = np.full(n_samples, float(initial_score))
        self._last_update_epoch = np.full(n_samples, -1, dtype=np.int64)
        self._ever_updated = np.zeros(n_samples, dtype=bool)
        self.std_history: List[float] = []

    def __len__(self) -> int:
        return self.n_samples

    @property
    def scores(self) -> np.ndarray:
        """Read-only view of current scores."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    def get(self, index: int) -> float:
        """Current score of one sample."""
        return float(self._scores[index])

    def update(self, indices: np.ndarray, scores: np.ndarray, epoch: int = 0) -> None:
        """Write new scores for the given samples."""
        indices = np.asarray(indices, dtype=np.int64)
        scores = np.asarray(scores, dtype=np.float64)
        if indices.shape != scores.shape:
            raise ValueError("indices and scores must align")
        if np.any(scores < 0):
            raise ValueError("importance scores must be non-negative")
        self._scores[indices] = scores
        self._last_update_epoch[indices] = epoch
        self._ever_updated[indices] = True

    def staleness(self, epoch: int) -> np.ndarray:
        """Epochs since each sample's score was last refreshed.

        Never-updated samples report ``epoch + 1``.
        """
        return epoch - self._last_update_epoch

    @property
    def coverage(self) -> float:
        """Fraction of samples whose score has ever been computed."""
        return float(self._ever_updated.mean())

    def sampling_weights(self, floor: float = 1e-6) -> np.ndarray:
        """Normalized multinomial weights (floored so no sample starves)."""
        w = np.maximum(self._scores, floor)
        return w / w.sum()

    def snapshot_std(self) -> float:
        """Record and return the current score standard deviation.

        Only scores that have been computed at least once enter the
        statistic; before any update it falls back to all scores (zero std).
        """
        if self._ever_updated.any():
            std = float(self._scores[self._ever_updated].std())
        else:
            std = float(self._scores.std())
        self.std_history.append(std)
        return std

    def state_dict(self) -> dict:
        """Exact snapshot of scores, staleness stamps, and std history."""
        return {
            "scores": self._scores.copy(),
            "last_update_epoch": self._last_update_epoch.copy(),
            "ever_updated": self._ever_updated.copy(),
            "std_history": list(self.std_history),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        scores = np.asarray(state["scores"], dtype=np.float64)
        if scores.shape[0] != self.n_samples:
            raise ValueError("score snapshot does not match table size")
        self._scores = scores.copy()
        self._last_update_epoch = np.asarray(
            state["last_update_epoch"], dtype=np.int64
        ).copy()
        self._ever_updated = np.asarray(state["ever_updated"], dtype=bool).copy()
        self.std_history = [float(s) for s in state["std_history"]]

    def recent_std_slope(self, window: int = 5) -> Optional[float]:
        """Least-squares slope over the last ``window`` std snapshots.

        Returns ``None`` until enough history exists. This is the
        d(sigma)/dt the Importance Monitor thresholds (Eq. 5).
        """
        if window < 2:
            raise ValueError("window must be >= 2")
        h = self.std_history
        if len(h) < window:
            return None
        y = np.asarray(h[-window:])
        x = np.arange(window, dtype=np.float64)
        x -= x.mean()
        denom = float(x @ x)
        return float(x @ (y - y.mean()) / denom)
