"""SpiderCachePolicy: Algorithm 1 end to end.

Ties together the graph-based IS algorithm (§4.1), the semantic-aware
two-layer cache (§4.2), and the elastic cache manager (§4.3) behind the
trainer's policy protocol:

* ``epoch_order`` — multinomial draw over global importance scores
  (Alg. 1's ``torch.multinomial`` sampling);
* ``fetch`` — importance cache → homophily neighbor lists → remote
  (Alg. 1 lines 4-12);
* ``after_batch`` — update the ANN index with fresh embeddings, recompute
  scores, refresh the importance heap, insert the batch's top-degree node
  into the homophily cache (lines 15-22);
* ``after_epoch`` — snapshot score dispersion and let the elastic manager
  re-split the cache (line 24).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cache.base import CacheStats
from repro.core.elastic import ElasticCacheManager
from repro.core.graph_is import GraphImportanceScorer
from repro.core.sampler import MultinomialSampler
from repro.core.scores import GlobalScoreTable
from repro.core.semantic_cache import FetchOutcome, SemanticCache
from repro.train.policy_base import PolicyContext, TrainingPolicy
from repro.utils.rng import RngLike

__all__ = ["SpiderCachePolicy"]


class SpiderCachePolicy(TrainingPolicy):
    """The full SpiderCache strategy.

    Parameters
    ----------
    cache_fraction:
        Total cache budget as a fraction of the dataset (paper uses 10-75%).
        ``0`` disables caching entirely (the Fig. 13 IS-only configuration).
    lam, alpha, neighbormax:
        Graph-construction hyperparameters (Eq. 2-4).
    r_start, r_end:
        Elastic imp-ratio endpoints; paper recommends 0.9 -> 0.8. Setting
        ``elastic=False`` pins the ratio at ``r_start`` (the static
        "Imp-Ratio 90%" configuration of §6.5).
    backend:
        Neighbor-search backend, ``"exact"`` or ``"hnsw"``.
    """

    name = "spidercache"

    #: §6.5: "the Imp-Ratio is adjustable, allowing users to prioritize
    #: accuracy with a higher ratio or speed with a lower one."
    GOALS = {
        "accuracy": dict(r_start=0.9, r_end=0.9, elastic=False,
                         hom_neighbor_limit=8, hom_radius_scale=0.5),
        "balanced": dict(r_start=0.9, r_end=0.8, elastic=True),
        "speed": dict(r_start=0.9, r_end=0.5, elastic=True,
                      hom_neighbor_limit=32, hom_radius_scale=0.9),
    }

    @classmethod
    def from_goal(cls, goal: str, cache_fraction: float = 0.2,
                  rng: RngLike = None, **overrides) -> "SpiderCachePolicy":
        """Build a policy tuned for a user goal.

        ``goal`` is ``"accuracy"`` (static high imp-ratio, conservative
        substitution), ``"balanced"`` (the paper's recommended 90%->80%
        annealing), or ``"speed"`` (aggressive 90%->50% annealing with a
        larger, looser homophily section). Keyword overrides win over the
        preset.
        """
        if goal not in cls.GOALS:
            raise KeyError(f"unknown goal {goal!r}; choose from {sorted(cls.GOALS)}")
        kwargs = dict(cls.GOALS[goal])
        kwargs.update(overrides)
        return cls(cache_fraction=cache_fraction, rng=rng, **kwargs)

    def __init__(
        self,
        cache_fraction: float = 0.2,
        lam: float = 1.0,
        alpha: float = 0.1,
        neighbormax: int = 500,
        r_start: float = 0.9,
        r_end: float = 0.8,
        elastic: bool = True,
        gamma: float = 0.01,
        backend: str = "exact",
        hom_neighbor_limit: int = 16,
        hom_same_class_only: bool = True,
        hom_radius_scale: float = 0.75,
        uniform_mix: float = 0.1,
        score_floor: float = 0.1,
        prefetch_fraction: float = 0.0,
        degraded_mode: bool = False,
        cache_factory=None,
        rng: RngLike = None,
    ) -> None:
        super().__init__(rng=rng)
        if not 0.0 <= cache_fraction <= 1.0:
            raise ValueError("cache_fraction must be in [0, 1]")
        if hom_neighbor_limit < 1:
            raise ValueError("hom_neighbor_limit must be >= 1")
        if not 0.0 <= uniform_mix <= 1.0:
            raise ValueError("uniform_mix must be in [0, 1]")
        self.cache_fraction = float(cache_fraction)
        if not 0.0 < hom_radius_scale <= 1.0:
            raise ValueError("hom_radius_scale must be in (0, 1]")
        # Substitution safety: a Homophily entry only covers its *closest*
        # ``hom_neighbor_limit`` neighbors, only same-class ones (by
        # default), and only those within ``hom_radius_scale`` of the edge
        # radius — "replacing them with similar counterparts" (§4.2) means
        # near-duplicates, not everything the IS graph connects. Loose
        # settings trade accuracy for hit ratio (ablation A3).
        self.hom_neighbor_limit = int(hom_neighbor_limit)
        self.hom_same_class_only = bool(hom_same_class_only)
        self.hom_radius_scale = float(hom_radius_scale)
        # Sampling temper: p = uniform_mix * uniform + (1-mix) * score-
        # weighted. Keeps per-epoch coverage high so importance sampling's
        # focus on hard samples doesn't starve the easy majority (standard
        # IS variance-control practice; the paper's torch.multinomial call
        # leaves the weighting to the scores, which Eq. 4's log already
        # tempers on the 50k-sample datasets it was tuned for).
        self.uniform_mix = float(uniform_mix)
        if not 0.0 <= score_floor <= 1.0:
            raise ValueError("score_floor must be in [0, 1]")
        self.score_floor = float(score_floor)
        # Prefetching (paper §4.2: "Eviction and prefetching are driven by
        # sample importance scores"): at each epoch start, up to this
        # fraction of the Importance Cache's capacity is refilled with the
        # top-scored uncached samples. The fetch latency is charged like any
        # other remote read (prefetches are real I/O).
        if not 0.0 <= prefetch_fraction <= 1.0:
            raise ValueError("prefetch_fraction must be in [0, 1]")
        self.prefetch_fraction = float(prefetch_fraction)
        self.prefetch_count = 0
        # Degraded-mode serving (resilience layer): when the remote tier is
        # down — circuit breaker open, or a fetch fails outright — serve a
        # widened substitute / skip the sample instead of crashing the run.
        self.degraded_mode = bool(degraded_mode)
        self.lam = lam
        self.alpha = alpha
        self.neighbormax = neighbormax
        self.r_start = r_start
        self.r_end = r_end
        self.elastic = elastic
        self.gamma = gamma
        self.backend = backend
        # Cache construction hook: ``cache_factory(capacity, imp_ratio)``
        # may return any SemanticCache-compatible tier — the data-parallel
        # trainer injects a shared ShardedCacheClient here so every worker
        # policy drives one logical cache. ``None`` builds the in-process
        # monolithic cache.
        self.cache_factory = cache_factory
        # Built in setup():
        self.scorer: Optional[GraphImportanceScorer] = None
        self.score_table: Optional[GlobalScoreTable] = None
        self.cache: Optional[SemanticCache] = None
        self.manager: Optional[ElasticCacheManager] = None
        self.sampler: Optional[MultinomialSampler] = None

    # ------------------------------------------------------------------
    def setup(self, ctx: PolicyContext) -> None:
        super().setup(ctx)
        n = ctx.num_samples
        self.score_table = GlobalScoreTable(n)
        self.scorer = GraphImportanceScorer(
            dim=ctx.embedding_dim,
            labels=ctx.dataset.y,
            lam=self.lam,
            alpha=self.alpha,
            neighbormax=self.neighbormax,
            backend=self.backend,
        )
        capacity = int(round(self.cache_fraction * n))
        if self.cache_factory is not None:
            self.cache = self.cache_factory(capacity, self.r_start)
        else:
            self.cache = SemanticCache(capacity, imp_ratio=self.r_start)
        if self.degraded_mode:
            self.cache.enable_degraded_mode()
        self.manager = ElasticCacheManager(
            total_epochs=ctx.total_epochs,
            r_start=self.r_start,
            r_end=self.r_end,
            gamma=self.gamma,
        )
        self.sampler = MultinomialSampler(
            n, weight_fn=self._mixed_weights, rng=self._rng
        )

    def attach_observer(self, observer) -> None:
        """Cascade the run observer into the cache layers and the elastic
        manager (call after ``setup``)."""
        super().attach_observer(observer)
        if self.cache is not None:
            self.cache.attach_observer(observer)
        if self.manager is not None:
            self.manager.attach_observer(observer)

    def _mixed_weights(self) -> np.ndarray:
        assert self.score_table is not None
        # Relative floor bounds the oversampling ratio: no sample is drawn
        # less than score_floor x as often as the current maximum. Plays the
        # same variance-control role as SHADE's rank floor.
        scores = np.asarray(self.score_table.scores, dtype=np.float64)
        floored = np.maximum(scores, self.score_floor * scores.max())
        total = floored.sum()
        if not np.isfinite(total) or total <= 0:
            # Every score is zero (possible with score_floor=0 after a
            # degenerate update): dividing would yield NaN weights and
            # poison the multinomial draw. Fall back to uniform.
            return np.full(scores.shape[0], 1.0 / scores.shape[0])
        w = floored / total
        return self.uniform_mix / w.shape[0] + (1.0 - self.uniform_mix) * w

    # ------------------------------------------------------------------
    def before_epoch(self, epoch: int) -> None:
        """Importance-driven prefetch into the Importance Cache."""
        if self.prefetch_fraction == 0.0 or epoch == 0:
            return  # no scores yet at epoch 0
        assert self.cache is not None and self.score_table is not None
        ctx = self._require_ctx()
        imp = self.cache.importance
        budget = int(self.prefetch_fraction * imp.capacity)
        if budget <= 0:
            return
        order = np.argsort(self.score_table.scores)[::-1]
        fetched = 0
        for idx in order:
            if fetched >= budget:
                break
            idx = int(idx)
            if idx in imp:
                continue
            score = self.score_table.get(idx)
            floor = imp.min_score()
            if len(imp) >= imp.capacity and floor is not None and score <= floor:
                break  # remaining candidates score even lower
            try:
                payload = ctx.store.get(idx)  # real I/O, charges latency
            except self.cache.degrade_on:
                # Remote tier down mid-prefetch: stop topping up the cache
                # rather than aborting the epoch. Training proceeds with
                # whatever is already resident.
                self.cache.degraded.errors_absorbed += 1
                break
            admitted = imp.admit(idx, payload, score)
            if self._obs.active:
                self._obs.on_prefetch(idx, admitted)
            if admitted:
                fetched += 1
                self.prefetch_count += 1
            else:
                break

    def epoch_order(self, epoch: int) -> np.ndarray:
        assert self.sampler is not None
        return self.sampler.epoch_order(epoch)

    def fetch(self, index: int) -> FetchOutcome:
        assert self.cache is not None and self.score_table is not None
        ctx = self._require_ctx()
        return self.cache.fetch(
            int(index), self.score_table.get(int(index)), ctx.store.get
        )

    def after_batch(
        self,
        requested: np.ndarray,
        served: np.ndarray,
        losses: np.ndarray,
        embeddings: np.ndarray,
        epoch: int,
    ) -> None:
        assert self.scorer is not None and self.score_table is not None
        assert self.cache is not None
        ctx = self._require_ctx()
        # Embeddings describe the samples actually trained on (homophily
        # substitutions replace the payload, so index under the served id).
        # With-replacement sampling can repeat an id within a batch; keep the
        # last occurrence of each.
        served = np.asarray(served, dtype=np.int64)
        _, last_pos = np.unique(served[::-1], return_index=True)
        pos = len(served) - 1 - last_pos
        uniq_ids = served[pos]
        node_scores = self.scorer.score_batch(uniq_ids, embeddings[pos])

        ids = np.asarray([ns.index for ns in node_scores])
        scores = np.asarray([ns.score for ns in node_scores])
        self.score_table.update(ids, scores, epoch=epoch)
        for ns in node_scores:
            self.cache.update_score(ns.index, ns.score)

        top = self.scorer.top_degree_node(node_scores)
        if top is not None and top.degree > 0 and top.index not in self.cache.homophily:
            neigh = top.neighbor_ids
            # Near-duplicates only: inside a fraction of the edge radius...
            keep = top.neighbor_dists <= self.hom_radius_scale * self.scorer.radius
            neigh = neigh[keep]
            # ...and same-class (substitutes must not change the label).
            if self.hom_same_class_only:
                neigh = neigh[ctx.dataset.y[neigh] == ctx.dataset.y[top.index]]
            neigh = neigh[: self.hom_neighbor_limit]  # range results are sorted
            if neigh.size:
                # ``embeddings`` rows are activations; the cache must hold
                # the *input* payload. The sample was resident in memory this
                # batch, so reading it charges no simulated latency (peek).
                payload = ctx.store.peek(top.index)
                self.cache.update_homophily(top.index, payload, neigh.tolist())

    def after_epoch(self, epoch: int, val_accuracy: float) -> None:
        assert self.score_table is not None and self.manager is not None
        assert self.cache is not None
        std = self.score_table.snapshot_std()
        if self.elastic:
            self.manager.coordinate(epoch, std, val_accuracy, [self.cache])

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full checkpointable policy state (Alg. 1's cross-epoch memory).

        Covers everything biased sampling and cache admission depend on:
        the global score table, both cache layers, the elastic manager's
        latched monitors, the scorer's ANN index + calibration EMA, and the
        sampling RNG stream. Restoring this after a preemption keeps the
        importance-sampling distribution exactly on the uninterrupted
        trajectory.
        """
        assert self.cache is not None and self.score_table is not None
        assert self.manager is not None and self.scorer is not None
        state = super().state_dict()
        state.update(
            score_table=self.score_table.state_dict(),
            cache=self.cache.state_dict(),
            manager=self.manager.state_dict(),
            scorer=self.scorer.state_dict(),
            prefetch_count=self.prefetch_count,
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (call after ``setup``)."""
        assert self.cache is not None and self.score_table is not None
        assert self.manager is not None and self.scorer is not None
        super().load_state_dict(state)
        self.score_table.load_state_dict(state["score_table"])
        self.cache.load_state_dict(state["cache"])
        self.manager.load_state_dict(state["manager"])
        self.scorer.load_state_dict(state["scorer"])
        self.prefetch_count = int(state["prefetch_count"])

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        assert self.cache is not None
        return self.cache.stats

    @property
    def is_ms_per_batch(self) -> Optional[float]:
        """Graph-based IS cost scales with the model's embedding dimension
        (Table 1); ``None`` defers to the model spec's value."""
        return None

    @property
    def imp_ratio(self) -> Optional[float]:
        if self.cache is None:
            return None
        return self.cache.imp_ratio
