"""Graph-based importance scoring (paper §4.1, Eq. 1-4).

Each sample is a graph node; an edge connects samples whose embedding
similarity ``sim(x,y) = exp(-lambda * ||x-y||)`` exceeds threshold ``alpha``.
Equivalently — and this is how we search — an edge exists iff the Euclidean
distance is below ``radius = -ln(alpha) / lambda``, so neighbor enumeration
is a single range query against the ANN index.

For node x with ``x_same`` same-class and ``x_other`` other-class neighbors:

    score(x) = ln(1/x_same + x_other/neighbormax + 1)            (Eq. 4)

Part 1 rewards intra-class rarity (isolated samples), Part 2 rewards
inter-class proximity (boundary/misclassified samples); the log smooths the
distribution. The graph itself is transient (paper §5): only the scores and
the current batch's top-degree node's neighbor list survive scoring.

Edge case the paper leaves implicit: ``x_same = 0`` makes Part 1 infinite.
We cap it at ``zero_same_part1`` (default 2.0, strictly above the
``x_same = 1`` value of 1.0) so fully isolated samples rank above
one-neighbor samples without producing infinities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ann.brute import BruteForceIndex
from repro.ann.hnsw import HNSWIndex

__all__ = ["GraphImportanceScorer", "NodeScore", "importance_score", "edge_radius"]

IndexBackend = Union[BruteForceIndex, HNSWIndex]


def edge_radius(lam: float, alpha: float) -> float:
    """Distance threshold equivalent to the similarity threshold.

    ``sim > alpha`` with ``sim = exp(-lam * d)`` iff ``d < -ln(alpha)/lam``.
    """
    if lam <= 0:
        raise ValueError("lambda must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    return -math.log(alpha) / lam


def importance_score(
    x_same: np.ndarray,
    x_other: np.ndarray,
    neighbormax: int = 500,
    zero_same_part1: float = 2.0,
) -> np.ndarray:
    """Vectorized Eq. 4 over arrays of neighbor counts."""
    x_same = np.asarray(x_same, dtype=np.float64)
    x_other = np.asarray(x_other, dtype=np.float64)
    if np.any(x_same < 0) or np.any(x_other < 0):
        raise ValueError("neighbor counts must be non-negative")
    with np.errstate(divide="ignore"):
        part1 = np.where(x_same > 0, 1.0 / np.maximum(x_same, 1e-300), zero_same_part1)
    part2 = x_other / float(neighbormax)
    return np.log(part1 + part2 + 1.0)


@dataclass
class NodeScore:
    """Scoring result for one sample in a batch."""

    index: int
    score: float
    x_same: int
    x_other: int
    neighbor_ids: np.ndarray  # edge-connected neighbors (for homophily cache)
    neighbor_dists: np.ndarray  # matching distances, ascending

    @property
    def degree(self) -> int:
        return self.x_same + self.x_other


class GraphImportanceScorer:
    """Maintains the ANN index over embeddings and scores batches.

    Parameters
    ----------
    num_classes-agnostic ``labels``:
        Full label array; neighbor class comparison is a lookup into it.
    lam, alpha:
        Similarity decay and edge threshold (Eq. 2-3).
    neighbormax:
        Part-2 normalizer; "usually set to 500 in the HNSW default setting".
        Also caps how many neighbors a range query may return.
    backend:
        ``"exact"`` (vectorized brute force; default for simulator-scale
        datasets) or ``"hnsw"`` (the paper's index; sublinear at scale).
    """

    def __init__(
        self,
        dim: int,
        labels: np.ndarray,
        lam: float = 1.0,
        alpha: float = 0.1,
        neighbormax: int = 500,
        backend: str = "exact",
        zero_same_part1: float = 2.0,
        auto_calibrate: bool = True,
        radius_scale: float = 0.85,
        ema_decay: float = 0.9,
        hnsw_kwargs: Optional[dict] = None,
    ) -> None:
        self.labels = np.asarray(labels, dtype=np.int64)
        self.lam = float(lam)
        self.alpha = float(alpha)
        self._fixed_radius = edge_radius(lam, alpha)
        # Auto-calibration: the paper tunes lambda offline per model/dataset
        # so the edge radius sits inside the intra-class distance scale.
        # Embedding norms here vary with architecture and training progress,
        # so by default we track the batch *median* pairwise distance with an
        # EMA and set radius = radius_scale * median. The median-relative
        # radius is deliberately non-stationary: an untrained net's distances
        # concentrate tightly around the median, so a half-median radius
        # captures almost no pairs (near-edgeless graph, near-uniform scores
        # — the low-dispersion start of Fig. 6(c)); as class structure forms,
        # within-cluster pairs fall under the radius and score dispersion
        # rises, then falls again at convergence.
        # ``auto_calibrate=False`` restores strict fixed-lambda Eq. 2-3.
        self.auto_calibrate = bool(auto_calibrate)
        self.radius_scale = float(radius_scale)
        self.ema_decay = float(ema_decay)
        self._dist_ema: Optional[float] = None
        self.neighbormax = int(neighbormax)
        self.zero_same_part1 = float(zero_same_part1)
        if backend == "exact":
            self.index: IndexBackend = BruteForceIndex(dim, capacity=len(self.labels))
        elif backend == "hnsw":
            kw = dict(hnsw_kwargs or {})
            # Pre-size the flat vector matrix to the dataset so the index
            # never pays doubling-regrowth copies mid-training.
            kw.setdefault("capacity", max(len(self.labels), 64))
            self.index = HNSWIndex(dim, **kw)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend

    # ------------------------------------------------------------------
    @property
    def radius(self) -> float:
        """Current edge radius (fixed, or EMA-calibrated to the embedding
        scale before the first batch arrives falls back to the fixed one)."""
        if self.auto_calibrate and self._dist_ema is not None:
            return self.radius_scale * self._dist_ema
        return self._fixed_radius

    @property
    def effective_lam(self) -> float:
        """The lambda implied by the current radius (Eq. 2-3 equivalence)."""
        return -math.log(self.alpha) / self.radius

    def _observe_scale(
        self, embeddings: np.ndarray, batch_labels: Optional[np.ndarray] = None
    ) -> None:
        """Update the distance-scale EMA from one batch's embeddings.

        The scale is the median *same-class* pairwise distance when batch
        labels are available (falling back to the overall median): the edge
        radius should track the intra-class neighborhood size, which shrinks
        relative to the overall median as training clusters the classes —
        and coincides with it before any structure exists (preserving the
        near-edgeless start of the Fig. 6(c) trajectory).
        """
        n = embeddings.shape[0]
        if n < 2:
            return
        from repro.ann.distance import pairwise_l2

        d = pairwise_l2(embeddings)
        iu = np.triu_indices(n, k=1)
        vals = d[iu]
        if batch_labels is not None:
            same = (batch_labels[:, None] == batch_labels[None, :])[iu]
            if same.sum() >= 4:
                vals = vals[same]
        scale = float(np.median(vals))
        if scale <= 0:
            return
        if self._dist_ema is None:
            self._dist_ema = scale
        else:
            self._dist_ema = (
                self.ema_decay * self._dist_ema + (1 - self.ema_decay) * scale
            )

    def similarity(self, d: np.ndarray) -> np.ndarray:
        """Eq. 2: exponential-decay similarity from distances, using the
        effective (possibly auto-calibrated) lambda."""
        return np.exp(-self.effective_lam * np.asarray(d, dtype=np.float64))

    def update_embeddings(self, indices: Sequence[int], embeddings: np.ndarray) -> None:
        """Algorithm 1 line 15: push the batch's fresh embeddings into the
        ANN index (insert or overwrite)."""
        embeddings = np.atleast_2d(embeddings)
        if self.backend == "exact":
            self.index.add_batch(np.asarray(indices), embeddings)
        else:
            for i, e in zip(indices, embeddings):
                self.index.update(int(i), e)

    def _neighbor_lists(
        self, indices: np.ndarray, embeddings: np.ndarray
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Range-query each batch sample, excluding the sample itself.

        Both backends expose the same batched range-query API; the HNSW
        backend shares its vectorized row-distance kernel across every hop
        of every query in the batch.
        """
        return self.index.neighbors_within_batch(
            embeddings, self.radius, exclude=indices, max_neighbors=self.neighbormax
        )

    def score_batch(
        self, indices: Sequence[int], embeddings: np.ndarray
    ) -> List[NodeScore]:
        """Score one batch (Algorithm 1 lines 15-21).

        Updates the index with the new embeddings first, then computes each
        sample's neighbor counts and Eq.-4 score. Returns per-sample
        :class:`NodeScore` records including neighbor lists (callers keep
        only the top-degree node's list, discarding the transient graph).
        """
        indices = np.asarray(indices, dtype=np.int64)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if indices.shape[0] != embeddings.shape[0]:
            raise ValueError("indices and embeddings must align")
        if self.auto_calibrate:
            self._observe_scale(embeddings, self.labels[indices])
        self.update_embeddings(indices, embeddings)
        neigh = self._neighbor_lists(indices, embeddings)

        # Neighbor counts per sample (ragged lists force the small loop),
        # then one vectorized Eq.-4 call over the whole batch.
        n = indices.shape[0]
        x_same = np.zeros(n, dtype=np.int64)
        x_other = np.zeros(n, dtype=np.int64)
        for j, (nid, _) in enumerate(neigh):
            if nid.size:
                same = int(np.sum(self.labels[nid] == self.labels[indices[j]]))
                x_same[j] = same
                x_other[j] = nid.size - same
        scores = importance_score(
            x_same, x_other, self.neighbormax, self.zero_same_part1
        )

        results: List[NodeScore] = []
        for j in range(n):
            nid, nd = neigh[j]
            results.append(
                NodeScore(
                    index=int(indices[j]), score=float(scores[j]),
                    x_same=int(x_same[j]), x_other=int(x_other[j]),
                    neighbor_ids=nid.astype(np.int64),
                    neighbor_dists=np.asarray(nd, dtype=np.float64),
                )
            )
        return results

    @staticmethod
    def top_degree_node(scores: Sequence[NodeScore]) -> Optional[NodeScore]:
        """Algorithm 1 lines 18-20: the batch's highest-degree node."""
        best: Optional[NodeScore] = None
        for ns in scores:
            if best is None or ns.degree > best.degree:
                best = ns
        return best

    @property
    def indexed_count(self) -> int:
        return len(self.index)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Exact snapshot: calibration EMA plus indexed embeddings.

        Only the ``"exact"`` backend supports this — an HNSW graph's layout
        depends on its insertion-time level draws, so it cannot be restored
        bit-identically from vectors alone.
        """
        if not isinstance(self.index, BruteForceIndex):
            raise NotImplementedError(
                "exact scorer checkpointing requires backend='exact'; "
                "the HNSW graph is not bit-reproducible from a snapshot"
            )
        return {
            "dist_ema": self._dist_ema,
            "index": self.index.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        if not isinstance(self.index, BruteForceIndex):
            raise NotImplementedError(
                "exact scorer checkpointing requires backend='exact'"
            )
        ema = state["dist_ema"]
        self._dist_ema = None if ema is None else float(ema)
        self.index.load_state_dict(state["index"])
