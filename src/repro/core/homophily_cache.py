"""Homophily Cache (paper §4.2-2).

Stores high-degree graph nodes together with their neighbor-ID lists. A
request for sample ``i`` that appears in some cached node's neighbor list is
served that node's payload *as a substitute* — semantically similar samples
"generally have similar effects on model accuracy", so the substitution
saves a remote fetch at negligible accuracy cost.

Updates are FIFO and happen once per batch with the batch's highest-degree
node ("this ensures that all samples are regularly replaced, thereby
fostering greater diversity in the training data").
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cache.base import CacheStats
from repro.obs.observer import NULL_OBSERVER, Observer

__all__ = ["HomophilyCache"]


class HomophilyCache:
    """FIFO cache of (high-degree node, payload, neighbor-ID list).

    Thread-safe: one re-entrant lock (this layer's stripe of the
    :class:`~repro.core.semantic_cache.SemanticCache` lock set) keeps the
    FIFO order, the neighbor cover map, and the layer stats mutually
    consistent under concurrent loader workers. Exposed as :attr:`lock`
    so the elastic resize can hold it across several calls.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        # key -> (payload, neighbor id tuple); OrderedDict gives FIFO order.
        self._entries: OrderedDict[int, Tuple[Any, Tuple[int, ...]]] = OrderedDict()
        # neighbor id -> set of cached node keys listing it.
        self._neighbor_of: Dict[int, Set[int]] = {}
        self.stats = CacheStats()
        self._obs = NULL_OBSERVER
        self.lock = threading.RLock()

    def attach_observer(self, observer: Observer) -> None:
        """Publish insert/evict activity to ``observer``."""
        self._obs = observer

    def __len__(self) -> int:
        with self.lock:
            return len(self._entries)

    def __contains__(self, key: int) -> bool:
        with self.lock:
            return key in self._entries

    # ------------------------------------------------------------------
    def covers(self, index: int) -> bool:
        """True if ``index`` appears in any cached node's neighbor list
        (Alg. 1 line 7: ``neighbor_list.contains(index)``)."""
        with self.lock:
            return index in self._neighbor_of or index in self._entries

    def lookup(self, index: int) -> Optional[Tuple[int, Any]]:
        """Serve ``index`` by substitution (Fig. 9 case 3).

        Returns ``(node_key, payload)`` of the covering high-degree node —
        the *most recently inserted* cover, whose embedding neighborhood is
        freshest — or ``None``. Records a substitute hit or miss.
        """
        with self.lock:
            if index in self._entries:
                # The high-degree node itself was requested: an exact hit.
                self.stats.hits += 1
                return index, self._entries[index][0]
            covers = self._neighbor_of.get(index)
            if not covers:
                self.stats.misses += 1
                return None
            # Most recent insert among the covering nodes.
            for key in reversed(self._entries):
                if key in covers:
                    self.stats.substitute_hits += 1
                    if self._obs.active:
                        self._obs.on_audit(
                            "substitute", key, "homophily",
                            requested_id=index, reason="neighbor_cover",
                        )
                    return key, self._entries[key][0]
            raise AssertionError("neighbor map out of sync with entries")

    # ------------------------------------------------------------------
    def update(self, key: int, payload: Any, neighbor_ids: List[int]) -> bool:
        """Insert the batch's top-degree node (Alg. 1 line 22), FIFO-evicting.

        A node already cached is skipped (the paper only inserts nodes "not
        previously in the Homophily Cache"). Returns True if inserted.
        """
        with self.lock:
            if self.capacity == 0:
                return False
            key = int(key)
            if key in self._entries:
                return False
            while len(self._entries) >= self.capacity:
                self._evict_oldest("fifo")
            neigh = tuple(int(n) for n in neighbor_ids)
            self._entries[key] = (payload, neigh)
            for n in neigh:
                self._neighbor_of.setdefault(n, set()).add(key)
            self.stats.insertions += 1
            if self._obs.active:
                self._obs.on_homophily_insert(key, len(neigh))
            return True

    def _evict_oldest(self, reason: str = "fifo") -> int:
        # Callers hold self.lock (re-entrant).
        key, (_, neigh) = self._entries.popitem(last=False)
        for n in neigh:
            owners = self._neighbor_of.get(n)
            if owners is not None:
                owners.discard(key)
                if not owners:
                    del self._neighbor_of[n]
        self.stats.evictions += 1
        if self._obs.active:
            self._obs.on_evict("homophily", key, reason)
        return key

    def shrink_to(self, capacity: int) -> List[int]:
        """Reduce capacity, evicting oldest entries first."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        evicted = []
        with self.lock:
            while len(self._entries) > capacity:
                evicted.append(self._evict_oldest("shrink"))
            self.capacity = capacity
        return evicted

    def grow_to(self, capacity: int) -> None:
        """Raise capacity (no eviction needed)."""
        with self.lock:
            if capacity < self.capacity:
                raise ValueError("grow_to cannot shrink; use shrink_to")
            self.capacity = capacity

    # ------------------------------------------------------------------
    def keys(self) -> List[int]:
        """Cached high-degree node ids in FIFO order."""
        with self.lock:
            return list(self._entries.keys())

    def neighbor_list(self, key: int) -> Tuple[int, ...]:
        """Neighbor IDs stored with a cached node (KeyError if absent)."""
        with self.lock:
            return self._entries[key][1]

    @property
    def covered_count(self) -> int:
        """Number of distinct sample ids currently servable (nodes + neighbors)."""
        with self.lock:
            covered = set(self._neighbor_of)
            covered.update(self._entries)
            return len(covered)

    def newest_entry(self) -> Optional[Tuple[int, Any]]:
        """(key, payload) of the most recently inserted node, or ``None``.

        The freshest node's embedding neighborhood is the best available
        stand-in when degraded mode must serve *something* for an uncovered
        request.
        """
        with self.lock:
            if not self._entries:
                return None
            key = next(reversed(self._entries))
            return key, self._entries[key][0]

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Exact snapshot: FIFO order, payloads, neighbor lists, stats."""
        with self.lock:
            keys = list(self._entries.keys())
            if keys:
                payloads = np.stack(
                    [np.asarray(self._entries[k][0]) for k in keys]
                )
            else:
                payloads = np.empty((0,))
            return {
                "capacity": self.capacity,
                "keys": np.asarray(keys, dtype=np.int64),
                "payloads": payloads,
                "neighbors": [list(self._entries[k][1]) for k in keys],
                "stats": self.stats.state_dict(),
            }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (rebuilds the cover map)."""
        with self.lock:
            self.capacity = int(state["capacity"])
            keys = np.asarray(state["keys"], dtype=np.int64)
            payloads = state["payloads"]
            neighbors = state["neighbors"]
            if len(keys) != len(neighbors):
                raise ValueError("homophily snapshot keys/neighbors mismatch")
            self._entries = OrderedDict()
            self._neighbor_of = {}
            for i, k in enumerate(keys):
                neigh = tuple(int(n) for n in neighbors[i])
                self._entries[int(k)] = (np.asarray(payloads[i]), neigh)
                for n in neigh:
                    self._neighbor_of.setdefault(n, set()).add(int(k))
            self.stats.load_state_dict(state["stats"])
