"""Elastic Cache Manager (paper §4.3, Eq. 5-8).

Three components observe training once per epoch and steer the split
between the Importance and Homophily caches:

* **Importance Monitor** — watches the slope of the std-dev of importance
  scores; once it turns negative (scores converging, fewer "important"
  samples) it latches the activation factor ``beta = 1`` (Eq. 5).
* **Accuracy Monitor** — Savitzky-Golay-smooths the accuracy series, takes
  the trailing mean growth rate ``Delta_t`` (Eq. 6, window m = 5), and maps
  it to the penalty ``u = Delta_t / (gamma + Delta_t)`` (Eq. 7): fast
  accuracy growth keeps ``u`` near 1 (adjust slowly); a plateau drives
  ``u`` to 0 (adjust fast).
* **Ratio Controller** — Eq. 8:
  ``imp_ratio(t) = r_start - beta (r_start - r_end) (t/T)^(1+u)``.

The paper recommends ``r_start = 0.9``, ``r_end = 0.8``; both are exposed so
users can trade accuracy (higher ratio) for hit rate (lower).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analysis.savgol import savgol_smooth
from repro.analysis.trends import mean_growth_rate, slope
from repro.obs.observer import NULL_OBSERVER, Observer

__all__ = [
    "ImportanceMonitor",
    "AccuracyMonitor",
    "RatioController",
    "ElasticCacheManager",
]


class ImportanceMonitor:
    """Eq. 5: activation factor from the importance-score std trajectory.

    ``beta`` latches at 1 the first time the recent slope of the std series
    is negative (the Fig. 6(c) peak has passed) and stays 1 — the paper's
    annealing never reverses.
    """

    def __init__(self, slope_window: int = 5) -> None:
        if slope_window < 2:
            raise ValueError("slope_window must be >= 2")
        self.slope_window = slope_window
        self.std_history: List[float] = []
        self._activated = False
        self.activation_epoch: Optional[int] = None

    def observe(self, std: float) -> int:
        """Record one epoch's score std; returns the current beta."""
        if std < 0:
            raise ValueError("standard deviation cannot be negative")
        self.std_history.append(float(std))
        if not self._activated and len(self.std_history) >= self.slope_window:
            recent = self.std_history[-self.slope_window :]
            if slope(recent) < 0:
                self._activated = True
                self.activation_epoch = len(self.std_history) - 1
        return self.beta

    @property
    def beta(self) -> int:
        return 1 if self._activated else 0


class AccuracyMonitor:
    """Eq. 6-7: penalty factor from the smoothed accuracy growth rate."""

    def __init__(
        self,
        m: int = 5,
        gamma: float = 0.01,
        savgol_window: int = 5,
        savgol_polyorder: int = 2,
    ) -> None:
        if m < 1:
            raise ValueError("m must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        # Validate the filter configuration up front: an even window (or a
        # polyorder >= window) used to slip through construction and only
        # blow up inside savgol_coefficients at the first growth_rate()
        # call — epoch m+1, mid-training.
        if savgol_window % 2 == 0 or savgol_window < 1:
            raise ValueError("savgol_window must be a positive odd integer")
        if savgol_polyorder < 0:
            raise ValueError("savgol_polyorder must be non-negative")
        if savgol_polyorder >= savgol_window:
            raise ValueError("savgol_polyorder must be less than savgol_window")
        self.m = m
        self.gamma = gamma
        self.savgol_window = savgol_window
        self.savgol_polyorder = savgol_polyorder
        self.accuracy_history: List[float] = []

    def observe(self, accuracy: float) -> float:
        """Record one epoch's accuracy; returns the current penalty ``u``."""
        self.accuracy_history.append(float(accuracy))
        return self.penalty()

    def growth_rate(self) -> float:
        """Delta_t over the smoothed series; 0 before enough history."""
        if len(self.accuracy_history) < self.m + 1:
            return 0.0
        smoothed = savgol_smooth(
            np.asarray(self.accuracy_history),
            window=self.savgol_window,
            polyorder=self.savgol_polyorder,
        )
        return mean_growth_rate(smoothed, window=self.m)

    def penalty(self) -> float:
        """Eq. 7, clamped to [0, 1].

        Negative growth (accuracy regressing) maps to ``u = 0`` — there is
        no reason to slow the cache shift when accuracy is not improving.
        """
        delta = self.growth_rate()
        if delta <= 0:
            return 0.0
        return float(delta / (self.gamma + delta))


class RatioController:
    """Eq. 8: annealed importance-cache ratio."""

    def __init__(self, r_start: float = 0.9, r_end: float = 0.8, total_epochs: int = 100) -> None:
        if not 0.0 <= r_end <= r_start <= 1.0:
            raise ValueError("need 0 <= r_end <= r_start <= 1")
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.r_start = float(r_start)
        self.r_end = float(r_end)
        self.total_epochs = int(total_epochs)

    def ratio(self, t: int, beta: int, u: float) -> float:
        """imp_ratio at epoch ``t`` (clamped to ``[r_end, r_start]``)."""
        if beta not in (0, 1):
            raise ValueError("beta must be 0 or 1")
        if not 0.0 <= u <= 1.0:
            raise ValueError("u must be in [0, 1]")
        frac = min(max(t, 0), self.total_epochs) / self.total_epochs
        r = self.r_start - beta * (self.r_start - self.r_end) * frac ** (1.0 + u)
        return float(min(max(r, self.r_end), self.r_start))


@dataclass
class ElasticDecision:
    """One epoch's manager output (for logging/plots)."""

    epoch: int
    beta: int
    u: float
    imp_ratio: float


class ElasticCacheManager:
    """Combines the three components into a per-epoch controller.

    Call :meth:`step` once per epoch with the current score std and model
    accuracy; it returns the imp-ratio to apply. ``history`` keeps every
    decision for the Fig. 11 / Fig. 16 plots.
    """

    def __init__(
        self,
        total_epochs: int,
        r_start: float = 0.9,
        r_end: float = 0.8,
        gamma: float = 0.01,
        m: int = 5,
        slope_window: int = 5,
    ) -> None:
        self.importance_monitor = ImportanceMonitor(slope_window=slope_window)
        self.accuracy_monitor = AccuracyMonitor(m=m, gamma=gamma)
        self.controller = RatioController(r_start, r_end, total_epochs)
        self.history: List[ElasticDecision] = []
        # Annealing time starts when beta activates, not at epoch 0: Eq. 8's
        # t/T measures progress through the *adjustment* phase.
        self._t0: Optional[int] = None
        self._obs = NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Publish each :class:`ElasticDecision` to ``observer``."""
        self._obs = observer

    def step(self, epoch: int, score_std: float, accuracy: float) -> float:
        """Observe one epoch and return the new imp-ratio.

        The ratio is clamped to be non-increasing: Eq. 8 with a *varying*
        ``u`` can momentarily rise again when accuracy growth resumes, but
        re-growing the Importance Cache would churn evictions for no
        benefit — the annealing is one-way, like the paper's Fig. 11 curves.
        """
        beta = self.importance_monitor.observe(score_std)
        u = self.accuracy_monitor.observe(accuracy)
        if beta == 1 and self._t0 is None:
            self._t0 = epoch
        t = epoch - self._t0 if self._t0 is not None else 0
        ratio = self.controller.ratio(t, beta, u)
        if self.history:
            ratio = min(ratio, self.history[-1].imp_ratio)
        self.history.append(ElasticDecision(epoch, beta, u, ratio))
        if self._obs.active:
            self._obs.on_elastic(epoch, beta, u, ratio)
        return ratio

    @property
    def current_ratio(self) -> float:
        if not self.history:
            return self.controller.r_start
        return self.history[-1].imp_ratio

    def coordinate(self, epoch: int, score_std: float, accuracy: float,
                   caches) -> float:
        """One global split decision applied to every cache tier.

        In the sharded service exactly one worker owns the manager: the
        ratio is computed once from the *global* score/accuracy signals
        and pushed to each cache (monolithic or
        :class:`~repro.dist.client.ShardedCacheClient`), so all shards
        re-split in lockstep instead of each worker annealing its own
        copy against local noise.
        """
        ratio = self.step(epoch, score_std, accuracy)
        for cache in caches:
            cache.set_imp_ratio(ratio)
        return ratio

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Exact snapshot of all three components plus decision history.

        Needed across preemptions: ``beta`` latches on the score-std
        *trajectory* and the annealing clock starts at activation, so a
        restart that dropped this state would re-anneal from scratch.
        """
        im = self.importance_monitor
        return {
            "std_history": list(im.std_history),
            "activated": im._activated,
            "activation_epoch": im.activation_epoch,
            "accuracy_history": list(self.accuracy_monitor.accuracy_history),
            "decisions": [
                [d.epoch, d.beta, d.u, d.imp_ratio] for d in self.history
            ],
            "t0": self._t0,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        im = self.importance_monitor
        im.std_history = [float(s) for s in state["std_history"]]
        im._activated = bool(state["activated"])
        im.activation_epoch = (
            None if state["activation_epoch"] is None
            else int(state["activation_epoch"])
        )
        self.accuracy_monitor.accuracy_history = [
            float(a) for a in state["accuracy_history"]
        ]
        self.history = [
            ElasticDecision(int(e), int(b), float(u), float(r))
            for e, b, u, r in state["decisions"]
        ]
        self._t0 = None if state["t0"] is None else int(state["t0"])
