"""Importance Cache (paper §4.2-1).

"A min-heap manages the cache, evicting the least important samples when
full." Admission happens only after a full miss (paper: "The Importance
Cache is updated only when a sample misses both caches and is fetched from
remote storage"): the incoming sample enters iff the cache has room, or its
score beats the current minimum (Fig. 9 cases 2 vs 4).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cache.base import CacheStats
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.utils.heap import IndexedMinHeap

__all__ = ["ImportanceCache"]


class ImportanceCache:
    """Score-ordered cache over an indexed min-heap.

    Thread-safe: one re-entrant lock (this layer's stripe of the
    :class:`~repro.core.semantic_cache.SemanticCache` lock set) guards the
    heap, the payload dict, and the layer stats, so concurrent loader
    workers can never observe a heap/dict mismatch or overfill the
    capacity. The lock is exposed as :attr:`lock` so compound operations
    (the elastic resize) can hold it across several calls.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._heap = IndexedMinHeap()
        self._values: Dict[int, Any] = {}
        self.stats = CacheStats()
        self._obs = NULL_OBSERVER
        self.lock = threading.RLock()

    def attach_observer(self, observer: Observer) -> None:
        """Publish admission/rejection/eviction activity to ``observer``."""
        self._obs = observer

    def __len__(self) -> int:
        with self.lock:
            return len(self._values)

    def __contains__(self, key: int) -> bool:
        with self.lock:
            return key in self._values

    def get(self, key: int) -> Optional[Any]:
        """Cached payload or ``None`` (records hit/miss)."""
        with self.lock:
            value = self._values.get(key)
            if value is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return value

    def min_score(self) -> Optional[float]:
        """Score of the least-important resident, or ``None`` when empty."""
        with self.lock:
            if not self._heap:
                return None
            return self._heap.min_priority()

    def admit(self, key: int, value: Any, score: float) -> bool:
        """Offer a freshly fetched sample (Fig. 9 cases 2/4).

        Returns True if the sample was cached (possibly evicting the current
        minimum), False if rejected for scoring below the minimum.
        """
        obs = self._obs
        with self.lock:
            if self.capacity == 0:
                return False
            if key in self._values:
                # Already resident: refresh payload and score.
                self._values[key] = value
                self._heap.update(key, score)
                return True
            if len(self._values) < self.capacity:
                self._heap.push(key, score)
                self._values[key] = value
                self.stats.insertions += 1
                if obs.active:
                    obs.on_admit(key, score, True, None)
                return True
            if score <= self._heap.min_priority():
                if obs.active:
                    obs.on_admit(key, score, False, None)
                    obs.on_audit(
                        "drop", key, "importance", score=score,
                        threshold=self._heap.min_priority(),
                        reason="below_min_score",
                    )
                return False
            ev_score, evicted = self._heap.pop()
            del self._values[evicted]
            self.stats.evictions += 1
            self._heap.push(key, score)
            self._values[key] = value
            self.stats.insertions += 1
            if obs.active:
                obs.on_admit(key, score, True, evicted)
                obs.on_audit(
                    "evict", evicted, "importance", score=ev_score,
                    threshold=score, requested_id=key, reason="displaced",
                )
            return True

    def update_score(self, key: int, score: float) -> None:
        """Refresh a resident's priority after a global-score update.

        No-op for absent keys (scores update for many samples per batch,
        only some of which are cached).
        """
        with self.lock:
            if key in self._values:
                self._heap.update(key, score)

    def shrink_to(self, capacity: int) -> List[int]:
        """Reduce capacity, evicting least-important residents first.

        Returns evicted keys (the Elastic Cache Manager reallocates their
        space to the Homophily Cache).
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        obs = self._obs
        evicted = []
        with self.lock:
            while len(self._values) > capacity:
                _, key = self._heap.pop()
                del self._values[key]
                self.stats.evictions += 1
                if obs.active:
                    obs.on_evict("importance", key, "shrink")
                evicted.append(key)
            self.capacity = capacity
        return evicted

    def grow_to(self, capacity: int) -> None:
        """Raise capacity (no eviction needed)."""
        with self.lock:
            if capacity < self.capacity:
                raise ValueError("grow_to cannot shrink; use shrink_to")
            self.capacity = capacity

    def keys(self) -> List[int]:
        """Resident sample ids (arbitrary order)."""
        with self.lock:
            return list(self._values.keys())

    def scores_snapshot(self) -> List[Tuple[int, float]]:
        """(key, score) for all residents (diagnostics)."""
        with self.lock:
            return [(k, self._heap.priority(k)) for k in self._values]

    def peek_min(self) -> Optional[Tuple[int, Any]]:
        """(key, payload) of the least-important resident, or ``None``.

        Degraded-mode serving uses this as a deterministic last-resort
        substitute source when the remote tier is down.
        """
        with self.lock:
            if not self._heap:
                return None
            _, key = self._heap.peek()
            return key, self._values[key]

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Exact snapshot: payloads, heap layout, stats.

        Residents are recorded in dict-insertion order; the heap snapshot
        keeps its array layout and tie-break counters so eviction order
        after a restore matches an uninterrupted run bit-for-bit.
        """
        with self.lock:
            keys = list(self._values.keys())
            if keys:
                payloads = np.stack([np.asarray(self._values[k]) for k in keys])
            else:
                payloads = np.empty((0,))
            return {
                "capacity": self.capacity,
                "keys": np.asarray(keys, dtype=np.int64),
                "payloads": payloads,
                "heap": self._heap.state_dict(),
                "stats": self.stats.state_dict(),
            }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        with self.lock:
            self.capacity = int(state["capacity"])
            keys = np.asarray(state["keys"], dtype=np.int64)
            payloads = state["payloads"]
            self._values = {
                int(k): np.asarray(payloads[i]) for i, k in enumerate(keys)
            }
            self._heap.load_state_dict(state["heap"])
            if set(self._heap.keys()) != set(self._values):
                raise ValueError("importance-cache snapshot heap/value mismatch")
            self.stats.load_state_dict(state["stats"])
