"""Importance Cache (paper §4.2-1).

"A min-heap manages the cache, evicting the least important samples when
full." Admission happens only after a full miss (paper: "The Importance
Cache is updated only when a sample misses both caches and is fetched from
remote storage"): the incoming sample enters iff the cache has room, or its
score beats the current minimum (Fig. 9 cases 2 vs 4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cache.base import CacheStats
from repro.utils.heap import IndexedMinHeap

__all__ = ["ImportanceCache"]


class ImportanceCache:
    """Score-ordered cache over an indexed min-heap."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._heap = IndexedMinHeap()
        self._values: Dict[int, Any] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: int) -> bool:
        return key in self._values

    def get(self, key: int) -> Optional[Any]:
        """Cached payload or ``None`` (records hit/miss)."""
        value = self._values.get(key)
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return value

    def min_score(self) -> Optional[float]:
        """Score of the least-important resident, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap.min_priority()

    def admit(self, key: int, value: Any, score: float) -> bool:
        """Offer a freshly fetched sample (Fig. 9 cases 2/4).

        Returns True if the sample was cached (possibly evicting the current
        minimum), False if rejected for scoring below the minimum.
        """
        if self.capacity == 0:
            return False
        if key in self._values:
            # Already resident: refresh payload and score.
            self._values[key] = value
            self._heap.update(key, score)
            return True
        if len(self._values) < self.capacity:
            self._heap.push(key, score)
            self._values[key] = value
            self.stats.insertions += 1
            return True
        if score <= self._heap.min_priority():
            return False
        _, evicted = self._heap.pop()
        del self._values[evicted]
        self.stats.evictions += 1
        self._heap.push(key, score)
        self._values[key] = value
        self.stats.insertions += 1
        return True

    def update_score(self, key: int, score: float) -> None:
        """Refresh a resident's priority after a global-score update.

        No-op for absent keys (scores update for many samples per batch,
        only some of which are cached).
        """
        if key in self._values:
            self._heap.update(key, score)

    def shrink_to(self, capacity: int) -> List[int]:
        """Reduce capacity, evicting least-important residents first.

        Returns evicted keys (the Elastic Cache Manager reallocates their
        space to the Homophily Cache).
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        evicted = []
        while len(self._values) > capacity:
            _, key = self._heap.pop()
            del self._values[key]
            self.stats.evictions += 1
            evicted.append(key)
        self.capacity = capacity
        return evicted

    def grow_to(self, capacity: int) -> None:
        """Raise capacity (no eviction needed)."""
        if capacity < self.capacity:
            raise ValueError("grow_to cannot shrink; use shrink_to")
        self.capacity = capacity

    def keys(self) -> List[int]:
        """Resident sample ids (arbitrary order)."""
        return list(self._values.keys())

    def scores_snapshot(self) -> List[Tuple[int, float]]:
        """(key, score) for all residents (diagnostics)."""
        return [(k, self._heap.priority(k)) for k in self._values]
