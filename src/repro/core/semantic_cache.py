"""Semantic-aware Cache Mechanism (paper §4.2, Fig. 9).

Composes the Importance Cache and the Homophily Cache behind one fetch
protocol. The two layers are exclusive — no data exchange between them —
and lookups follow Fig. 9(b):

1. probe the Importance Cache (case 1: exact hit);
2. probe the Homophily Cache neighbor lists (case 3: substitute hit);
3. fetch from remote storage, then offer the sample to the Importance
   Cache, which admits it iff its importance beats the current minimum
   (cases 2 and 4).

The Homophily Cache is refreshed separately, once per batch, with the
batch's top-degree node (:meth:`update_homophily`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from math import floor
from typing import Any, Callable, List, Optional, Tuple, Type

from repro.cache.base import CacheStats
from repro.core.homophily_cache import HomophilyCache
from repro.core.importance_cache import ImportanceCache
from repro.obs.observer import NULL_OBSERVER, Observer

__all__ = ["SemanticCache", "FetchSource", "FetchOutcome", "DegradedStats", "split_capacity"]


def split_capacity(total: int, ratio: float) -> int:
    """Importance-layer share of ``total`` at ``ratio``.

    Uses ``floor(total * ratio + 0.5)`` — round-half-up — rather than
    ``round()``: banker's rounding makes the split non-monotone in the
    ratio at .5 boundaries (``round(10 * 0.85) == 8`` but
    ``round(10 * 0.75) == 8`` too), which turned elastic annealing sweeps
    into a sawtooth. Half-up is deterministic and monotone.
    """
    return int(floor(total * ratio + 0.5))


class FetchSource(str, Enum):
    """Where a request was served from."""

    IMPORTANCE = "importance"
    HOMOPHILY = "homophily"
    REMOTE = "remote"
    #: Degraded-mode substitute: the remote tier was down and the request
    #: missed both layers, so a *widened* substitution served whatever
    #: semantically-nearby payload was resident.
    DEGRADED = "degraded"
    #: Degraded-mode skip: remote down and nothing cached at all; the
    #: sample is dropped from its batch instead of crashing the run.
    SKIPPED = "skipped"


@dataclass
class DegradedStats:
    """Counters for degraded-mode serving (remote tier unavailable)."""

    substituted_homophily: int = 0  # widened homophily substitutions
    substituted_importance: int = 0  # last-resort importance-cache serves
    skipped: int = 0  # nothing resident; sample dropped
    errors_absorbed: int = 0  # remote failures converted to degraded serves

    @property
    def substituted(self) -> int:
        return self.substituted_homophily + self.substituted_importance

    @property
    def total(self) -> int:
        return self.substituted + self.skipped

    def reset(self) -> None:
        """Zero all degraded-mode counters."""
        self.substituted_homophily = 0
        self.substituted_importance = 0
        self.skipped = 0
        self.errors_absorbed = 0

    def state_dict(self) -> dict:
        """Serializable snapshot of the counters."""
        return {
            "substituted_homophily": self.substituted_homophily,
            "substituted_importance": self.substituted_importance,
            "skipped": self.skipped,
            "errors_absorbed": self.errors_absorbed,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.substituted_homophily = int(state["substituted_homophily"])
        self.substituted_importance = int(state["substituted_importance"])
        self.skipped = int(state["skipped"])
        self.errors_absorbed = int(state["errors_absorbed"])


@dataclass
class FetchOutcome:
    """Result of one sample fetch through the cache hierarchy.

    ``served_id`` differs from ``requested_id`` only on homophily
    substitutions (case 3).
    """

    requested_id: int
    served_id: int
    payload: Any
    source: FetchSource

    @property
    def substituted(self) -> bool:
        return self.served_id != self.requested_id


class SemanticCache:
    """Two-layer semantic cache with a total item budget.

    ``imp_ratio`` splits ``total_capacity`` between the layers; the Elastic
    Cache Manager adjusts it at runtime via :meth:`set_imp_ratio`.

    Thread-safety is lock-striped: each layer owns a re-entrant lock
    guarding its heap/FIFO and per-layer stats, and this composite adds a
    third stripe for the aggregate counters (``stats``/``degraded``). A
    fetch never holds two stripes at once; the elastic resize acquires
    both layer stripes in a fixed order (importance → homophily), so the
    lock graph is acyclic and deadlock-free.
    """

    def __init__(self, total_capacity: int, imp_ratio: float = 0.9) -> None:
        if total_capacity < 0:
            raise ValueError("total_capacity must be non-negative")
        if not 0.0 <= imp_ratio <= 1.0:
            raise ValueError("imp_ratio must be in [0, 1]")
        self.total_capacity = int(total_capacity)
        self._imp_ratio = float(imp_ratio)
        imp_cap = split_capacity(self.total_capacity, imp_ratio)
        self.importance = ImportanceCache(imp_cap)
        self.homophily = HomophilyCache(self.total_capacity - imp_cap)
        self.stats = CacheStats()  # aggregate over both layers
        self._stats_lock = threading.Lock()  # aggregate-counter stripe
        # Degraded-mode serving: exception types from ``remote_get`` that
        # trigger widened substitution instead of propagating. Empty by
        # default — plain runs keep strict fail-on-error semantics.
        self.degrade_on: Tuple[Type[BaseException], ...] = ()
        self.degraded = DegradedStats()
        self._obs = NULL_OBSERVER

    def attach_observer(self, observer: Observer) -> None:
        """Publish fetch/admission/eviction activity to ``observer``.

        Cascades to both layers. Observer wiring is runtime-only state —
        it is never part of :meth:`state_dict`.
        """
        self._obs = observer
        self.importance.attach_observer(observer)
        self.homophily.attach_observer(observer)

    # ------------------------------------------------------------------
    @property
    def imp_ratio(self) -> float:
        return self._imp_ratio

    def set_imp_ratio(self, ratio: float) -> None:
        """Rebalance layer capacities to a new importance fraction.

        Shrinks whichever layer lost budget (evicting per its own policy)
        before growing the other, keeping the total budget constant.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("imp_ratio must be in [0, 1]")
        # Hold both layer stripes (fixed order) so a concurrent fetch never
        # observes the split mid-move and the capacities always sum to the
        # total budget.
        with self.importance.lock, self.homophily.lock:
            self._imp_ratio = float(ratio)
            imp_cap = split_capacity(self.total_capacity, ratio)
            hom_cap = self.total_capacity - imp_cap
            if imp_cap < self.importance.capacity:
                self.importance.shrink_to(imp_cap)
                self.homophily.grow_to(hom_cap)
            elif imp_cap > self.importance.capacity:
                self.homophily.shrink_to(hom_cap)
                self.importance.grow_to(imp_cap)

    # ------------------------------------------------------------------
    def fetch(
        self,
        index: int,
        score: float,
        remote_get: Callable[[int], Any],
    ) -> FetchOutcome:
        """Serve one sample request per the Fig. 9 protocol.

        ``score`` is the requester's current global importance score, used
        for the admission decision on a full miss. ``remote_get`` is invoked
        only on a miss in both layers.
        """
        obs = self._obs
        payload = self.importance.get(index)
        if payload is not None:
            with self._stats_lock:
                self.stats.hits += 1
            if obs.active:
                obs.on_fetch(index, index, FetchSource.IMPORTANCE)
            return FetchOutcome(index, index, payload, FetchSource.IMPORTANCE)

        sub = self.homophily.lookup(index)
        if sub is not None:
            node_key, node_payload = sub
            with self._stats_lock:
                if node_key == index:
                    self.stats.hits += 1
                else:
                    self.stats.substitute_hits += 1
            if obs.active:
                obs.on_fetch(index, node_key, FetchSource.HOMOPHILY)
            return FetchOutcome(index, node_key, node_payload, FetchSource.HOMOPHILY)

        try:
            payload = remote_get(index)
        except self.degrade_on:
            with self._stats_lock:
                self.degraded.errors_absorbed += 1
            return self._degraded_fetch(index)
        with self._stats_lock:
            self.stats.misses += 1
        if obs.active:
            obs.on_fetch(index, index, FetchSource.REMOTE)
        self.importance.admit(index, payload, score)
        return FetchOutcome(index, index, payload, FetchSource.REMOTE)

    # ------------------------------------------------------------------
    def enable_degraded_mode(
        self, errors: Optional[Tuple[Type[BaseException], ...]] = None
    ) -> None:
        """Serve degraded instead of raising when ``remote_get`` fails.

        ``errors`` are the exception types to absorb; the default covers
        breaker rejections (:class:`~repro.resilience.errors.DegradedModeError`)
        and raw transient fetch failures, so an un-broken flaky store
        degrades too rather than crashing the epoch.
        """
        if errors is None:
            from repro.resilience.errors import DegradedModeError
            from repro.storage.flaky import TransientFetchError

            errors = (DegradedModeError, TransientFetchError)
        self.degrade_on = tuple(errors)

    def disable_degraded_mode(self) -> None:
        """Restore strict fail-on-error fetch semantics."""
        self.degrade_on = ()

    def _degraded_fetch(self, index: int) -> FetchOutcome:
        """Close-enough-beats-nothing serving while the remote tier is down.

        Substitution is *widened* beyond the Fig. 9 protocol: any resident
        homophily node (freshest first) may stand in for the request, and
        failing that, the least-important Importance-Cache resident. Only
        when both layers are empty is the sample skipped — the loader drops
        it from the batch rather than aborting training.

        Accounting: degraded serves go to :class:`DegradedStats` and the
        dedicated ``stats.degraded_serves`` counter only. They do *not*
        count as ``substitute_hits`` — folding them in silently inflated
        ``hit_ratio``/``exact_hit_ratio`` during outages, making
        fault-campaign hit ratios incomparable to clean runs.
        """
        obs = self._obs
        node = self.homophily.newest_entry()
        if node is not None:
            key, payload = node
            with self._stats_lock:
                self.stats.degraded_serves += 1
                self.degraded.substituted_homophily += 1
            if obs.active:
                obs.on_degraded(index, key)
                obs.on_fetch(index, key, FetchSource.DEGRADED)
                obs.on_audit(
                    "substitute", key, "homophily",
                    requested_id=index, reason="degraded",
                )
            return FetchOutcome(index, key, payload, FetchSource.DEGRADED)
        resident = self.importance.peek_min()
        if resident is not None:
            key, payload = resident
            with self._stats_lock:
                self.stats.degraded_serves += 1
                self.degraded.substituted_importance += 1
            if obs.active:
                obs.on_degraded(index, key)
                obs.on_fetch(index, key, FetchSource.DEGRADED)
                obs.on_audit(
                    "substitute", key, "importance",
                    score=self.importance.min_score(),
                    requested_id=index, reason="degraded",
                )
            return FetchOutcome(index, key, payload, FetchSource.DEGRADED)
        with self._stats_lock:
            self.stats.misses += 1
            self.degraded.skipped += 1
        if obs.active:
            obs.on_degraded(index, None)
            obs.on_fetch(index, index, FetchSource.SKIPPED)
        return FetchOutcome(index, index, None, FetchSource.SKIPPED)

    def update_homophily(
        self, node_key: int, payload: Any, neighbor_ids: List[int]
    ) -> bool:
        """Per-batch Homophily Cache refresh with the top-degree node."""
        return self.homophily.update(node_key, payload, neighbor_ids)

    def update_score(self, index: int, score: float) -> None:
        """Propagate a global-score change to the Importance Cache heap."""
        self.importance.update_score(index, score)

    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        """Total hit ratio including homophily substitutions."""
        return self.stats.hit_ratio

    def __len__(self) -> int:
        return len(self.importance) + len(self.homophily)

    def reset_stats(self) -> None:
        """Zero the aggregate and per-layer counters."""
        self.stats.reset()
        self.degraded.reset()
        self.importance.stats.reset()
        self.homophily.stats.reset()

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Exact snapshot of both layers, the split, and all counters."""
        return {
            "total_capacity": self.total_capacity,
            "imp_ratio": self._imp_ratio,
            "stats": self.stats.state_dict(),
            "degraded": self.degraded.state_dict(),
            "importance": self.importance.state_dict(),
            "homophily": self.homophily.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        The layer capacities come from the snapshot (the elastic manager
        may have re-split the cache since construction).
        """
        if int(state["total_capacity"]) != self.total_capacity:
            raise ValueError("semantic-cache snapshot capacity mismatch")
        self._imp_ratio = float(state["imp_ratio"])
        self.stats.load_state_dict(state["stats"])
        self.degraded.load_state_dict(state["degraded"])
        self.importance.load_state_dict(state["importance"])
        self.homophily.load_state_dict(state["homophily"])
