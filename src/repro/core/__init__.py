"""SpiderCache's contribution: graph-based importance sampling, the
semantic-aware two-layer cache, and the elastic cache manager."""

from repro.core.elastic import (
    AccuracyMonitor,
    ElasticCacheManager,
    ImportanceMonitor,
    RatioController,
)
from repro.core.graph_is import GraphImportanceScorer, NodeScore, importance_score
from repro.core.homophily_cache import HomophilyCache
from repro.core.importance_cache import ImportanceCache
from repro.core.policy import SpiderCachePolicy
from repro.core.sampler import MultinomialSampler, SequentialSampler, UniformSampler
from repro.core.scores import GlobalScoreTable
from repro.core.semantic_cache import FetchSource, SemanticCache

__all__ = [
    "GraphImportanceScorer",
    "NodeScore",
    "importance_score",
    "GlobalScoreTable",
    "ImportanceCache",
    "HomophilyCache",
    "SemanticCache",
    "FetchSource",
    "ImportanceMonitor",
    "AccuracyMonitor",
    "RatioController",
    "ElasticCacheManager",
    "UniformSampler",
    "SequentialSampler",
    "MultinomialSampler",
    "SpiderCachePolicy",
]
