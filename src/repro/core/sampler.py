"""Epoch samplers.

``MultinomialSampler`` is the paper's biased draw ("using the biased
sampling method torch.multinomial from PyTorch", §4.1): each epoch draws
``n`` sample ids *with replacement*, weighted by importance — so important
samples repeat within an epoch (the Fig.-5 frequency skew that makes
importance-aware caching work). ``UniformSampler`` is the random-shuffle
default; ``SequentialSampler`` is for deterministic tests.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = ["UniformSampler", "SequentialSampler", "MultinomialSampler"]


class UniformSampler:
    """Random permutation per epoch (PyTorch's default shuffle)."""

    def __init__(self, n_samples: int, rng: RngLike = None) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = int(n_samples)
        self._rng = resolve_rng(rng)

    def epoch_order(self, epoch: int) -> np.ndarray:
        """Fresh random permutation of all sample ids."""
        return self._rng.permutation(self.n_samples)


class SequentialSampler:
    """Identity order every epoch."""

    def __init__(self, n_samples: int) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = int(n_samples)

    def epoch_order(self, epoch: int) -> np.ndarray:
        """Identity order ``0..n-1``."""
        return np.arange(self.n_samples)


class MultinomialSampler:
    """Weighted with-replacement epoch sampler.

    ``weight_fn`` is called once per epoch and must return an unnormalized
    non-negative weight vector of length ``n_samples`` (e.g.
    :meth:`GlobalScoreTable.sampling_weights`). ``epoch_size`` defaults to
    the dataset size, matching one-pass epochs.
    """

    def __init__(
        self,
        n_samples: int,
        weight_fn: Callable[[], np.ndarray],
        epoch_size: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        self.n_samples = int(n_samples)
        self.epoch_size = int(epoch_size) if epoch_size else int(n_samples)
        self.weight_fn = weight_fn
        self._rng = resolve_rng(rng)

    def epoch_order(self, epoch: int) -> np.ndarray:
        """Draw ``epoch_size`` ids with replacement, weighted."""
        w = np.asarray(self.weight_fn(), dtype=np.float64)
        if w.shape[0] != self.n_samples:
            raise ValueError("weight_fn returned wrong length")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            # Degenerate weights: fall back to uniform.
            p = np.full(self.n_samples, 1.0 / self.n_samples)
        else:
            p = w / total
        return self._rng.choice(self.n_samples, size=self.epoch_size, replace=True, p=p)
