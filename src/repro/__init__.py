"""SpiderCache reproduction.

A from-scratch Python implementation of *SpiderCache: Semantic-Aware
Caching Strategy for DNN Training* (ICPP '25) and every substrate its
evaluation depends on: a NumPy DNN training stack, an HNSW ANN index with
Product Quantization, a remote-storage simulator, classic cache policies,
and the SHADE / iCache / CoorDL comparator systems.

Quickstart::

    from repro import SpiderCachePolicy, Trainer, TrainerConfig
    from repro.data import make_dataset, train_test_split
    from repro.nn import build_model

    data = make_dataset("cifar10-like", rng=0)
    train, test = train_test_split(data, rng=1)
    model = build_model("resnet18", train.dim, train.num_classes, rng=2)
    policy = SpiderCachePolicy(cache_fraction=0.2, rng=3)
    result = Trainer(model, train, test, policy,
                     TrainerConfig(epochs=20)).run()
    print(result.summary())
"""

from repro.core.policy import SpiderCachePolicy
from repro.train.metrics import EpochMetrics, TrainResult
from repro.train.trainer import Trainer, TrainerConfig

__version__ = "1.0.0"

__all__ = [
    "SpiderCachePolicy",
    "Trainer",
    "TrainerConfig",
    "TrainResult",
    "EpochMetrics",
    "__version__",
]
