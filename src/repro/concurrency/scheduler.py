"""Deterministic-interleaving scheduler for concurrency tests.

Real thread schedules are nondeterministic: a race that fires once per
thousand runs cannot anchor a regression test. This module trades real
threads for *logical workers* — Python generators whose every ``yield`` is
an explicit preemption point — stepped by a seeded scheduler. The
interleaving is then a pure function of the seed, so:

* a property test can sweep seeds until one exposes a race, and
* that seed becomes a permanent, deterministic regression test.

Workers communicate through ordinary shared Python objects. Two yield
protocols exist:

* ``yield`` — a plain preemption point; any runnable worker may run next;
* ``yield lock`` — acquire a :class:`CooperativeLock`; the worker blocks
  until the scheduler can grant the lock, and must call
  ``lock.release()`` when done.

This mirrors how controlled-concurrency testing frameworks (CHESS, loom,
dejafu) model shared-memory programs: the code under test is expressed
with its shared-state accesses separated by preemption points, and the
scheduler exhaustively or randomly explores interleavings.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, List, Optional, Tuple

__all__ = ["DeterministicScheduler", "CooperativeLock", "SchedulerDeadlock"]


class SchedulerDeadlock(RuntimeError):
    """No worker is runnable but some are still blocked on locks."""


class CooperativeLock:
    """Mutual exclusion between logical workers.

    Acquired by ``yield lock`` inside a worker generator, released with
    :meth:`release`. Granting happens in the scheduler's step loop, so
    which waiter wins contention is part of the seeded interleaving.
    """

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self._holder: Optional[int] = None  # worker id or None

    @property
    def held(self) -> bool:
        return self._holder is not None

    def release(self) -> None:
        """Release the lock (the holding worker calls this between yields)."""
        if self._holder is None:
            raise RuntimeError(f"{self.name} released while not held")
        self._holder = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CooperativeLock({self.name!r}, holder={self._holder})"


class _Worker:
    RUNNABLE = "runnable"
    BLOCKED = "blocked"  # waiting on self.wants (a CooperativeLock)
    DONE = "done"

    def __init__(self, wid: int, name: str, gen: Generator) -> None:
        self.wid = wid
        self.name = name
        self.gen = gen
        self.state = _Worker.RUNNABLE
        self.wants: Optional[CooperativeLock] = None


class DeterministicScheduler:
    """Seeded round-based scheduler over generator workers.

    Parameters
    ----------
    seed:
        Interleaving seed. Equal seeds (with equal spawn sequences)
        produce bit-identical step traces; the trace is recorded in
        :attr:`trace` as ``(step, worker_name)`` pairs so tests can
        assert reproducibility directly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._workers: List[_Worker] = []
        self.steps = 0
        self.trace: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    def spawn(
        self,
        fn: Callable[..., Generator],
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> str:
        """Register a worker from a generator function; returns its name."""
        wid = len(self._workers)
        wname = name if name is not None else f"w{wid}"
        gen = fn(*args, **kwargs)
        if not hasattr(gen, "send"):
            raise TypeError("spawn() needs a generator function (use `yield`)")
        self._workers.append(_Worker(wid, wname, gen))
        return wname

    def lock(self, name: str = "lock") -> CooperativeLock:
        """A fresh cooperative lock for workers of this scheduler."""
        return CooperativeLock(name)

    # ------------------------------------------------------------------
    def _eligible(self) -> List[_Worker]:
        """Workers the next step may legally run.

        A blocked worker becomes eligible the moment its wanted lock is
        free — stepping it first *grants* the lock (atomically, from the
        worker's perspective), then resumes the generator.
        """
        out = []
        for w in self._workers:
            if w.state == _Worker.RUNNABLE:
                out.append(w)
            elif w.state == _Worker.BLOCKED and not w.wants.held:
                out.append(w)
        return out

    def step(self) -> Optional[str]:
        """Run one preemption-point-to-preemption-point slice.

        Returns the stepped worker's name, or ``None`` when every worker
        is done. Raises :class:`SchedulerDeadlock` if workers remain but
        none can run.
        """
        eligible = self._eligible()
        if not eligible:
            if any(w.state != _Worker.DONE for w in self._workers):
                blocked = [w.name for w in self._workers
                           if w.state == _Worker.BLOCKED]
                raise SchedulerDeadlock(
                    f"workers blocked forever on locks: {blocked}"
                )
            return None
        w = self._rng.choice(eligible)
        if w.state == _Worker.BLOCKED:
            # Grant the lock it was waiting for, then resume.
            w.wants._holder = w.wid
            w.wants = None
            w.state = _Worker.RUNNABLE
        try:
            yielded = next(w.gen)
        except StopIteration:
            w.state = _Worker.DONE
            yielded = None
        else:
            if isinstance(yielded, CooperativeLock):
                if yielded.held:
                    w.state = _Worker.BLOCKED
                    w.wants = yielded
                else:
                    yielded._holder = w.wid  # uncontended: grant immediately
        self.steps += 1
        self.trace.append((self.steps, w.name))
        return w.name

    def run(self, max_steps: int = 1_000_000) -> List[Tuple[int, str]]:
        """Step until all workers finish; returns the interleaving trace."""
        while self.step() is not None:
            if self.steps >= max_steps:
                raise RuntimeError(f"scheduler exceeded {max_steps} steps")
        return self.trace

    @property
    def done(self) -> bool:
        return all(w.state == _Worker.DONE for w in self._workers)
