"""Slot executors: how a prefetch batch's fetch tasks actually run.

:class:`~repro.data.prefetch.PrefetchingDataLoader` hands each batch to a
*slot executor* as a list of thunks, one per sampler slot, whose side
effects (cache probes, stat counters, clock charges) must be committed in
slot order. Two executors implement that contract:

* :class:`ThreadedSlotExecutor` — wall-clock mode: a real
  :class:`~concurrent.futures.ThreadPoolExecutor` overlaps the waiting
  while a :class:`~repro.concurrency.sequencer.Sequencer` serializes the
  commits in slot order;
* :class:`DeterministicSlotExecutor` — test/oracle mode: the seeded
  :class:`~repro.concurrency.scheduler.DeterministicScheduler` replaces
  real threads with logical workers, so the interleaving (and therefore
  the whole run) is a pure function of the seed — no OS scheduler in the
  loop, no flake surface.

Both yield bit-identical outcomes for the same slots — the commit order
is the contract, the executor only chooses what overlaps while each slot
waits its turn. Error semantics are shared too: the first (lowest-slot)
failure is raised and **later slots never execute** — exactly the serial
loader's abort shape.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.concurrency.scheduler import DeterministicScheduler
from repro.concurrency.sequencer import Sequencer, SequencerAborted

__all__ = [
    "SlotExecutor",
    "ThreadedSlotExecutor",
    "DeterministicSlotExecutor",
    "make_slot_executor",
]


class SlotExecutor:
    """Runs one batch's slot thunks with in-order commit semantics."""

    #: Mode tag surfaced on loaders and spans ("threads"/"deterministic").
    kind: str = "?"

    def run(self, thunks: Sequence[Callable[[], None]]) -> None:
        """Execute every thunk, committing side effects in slot order.

        On failure, the lowest failing slot's exception is raised and no
        later slot's thunk runs.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (idempotent)."""


class ThreadedSlotExecutor(SlotExecutor):
    """Real worker threads + sequencer-ordered commits (wall-clock mode).

    The pool is built lazily and rebuilt after :meth:`close`, so a closed
    executor transparently accepts more work (the loader's documented
    close-then-reuse behavior).
    """

    kind = "threads"

    def __init__(self, workers: int,
                 thread_name_prefix: str = "repro-prefetch") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._prefix = thread_name_prefix
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=self._prefix,
                )
            return self._pool

    def run(self, thunks: Sequence[Callable[[], None]]) -> None:
        seq = Sequencer()

        def slot(i: int) -> None:
            # The pool overlaps the *waiting*; the thunk's side effects
            # run inside the sequencer turn, one slot at a time, in
            # sampler order — the bit-exactness guarantee.
            with seq.turn(i):
                thunks[i]()

        pool = self._ensure_pool()
        futures = [pool.submit(slot, i) for i in range(len(thunks))]
        error: Optional[BaseException] = None
        for f in futures:
            try:
                f.result()
            except SequencerAborted:
                pass  # a lower slot failed; that error is the one to raise
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class DeterministicSlotExecutor(SlotExecutor):
    """Logical workers under a seeded scheduler (test/oracle mode).

    Each slot is a generator worker that spins on a turn counter; the
    scheduler's seeded choice of *which waiter advances when* stands in
    for thread-timing nondeterminism, while the turn counter enforces the
    same slot-order commits the sequencer gives the threaded executor.
    Every batch uses a fresh scheduler seeded from ``(seed, batch_no)``
    so interleavings vary across batches but never across runs.
    """

    kind = "deterministic"

    #: Step bound per batch: n workers each spin at most n turns (O(n^2))
    #: — a generous multiple catches accidental non-termination.
    _STEP_SLACK = 16

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._batches = 0
        self.last_trace: List[Tuple[int, str]] = []

    def run(self, thunks: Sequence[Callable[[], None]]) -> None:
        n = len(thunks)
        if n == 0:
            return
        sched = DeterministicScheduler(
            seed=self.seed * 1_000_003 + self._batches
        )
        self._batches += 1
        state = {"turn": 0, "error": None}

        def worker(slot: int):
            while state["turn"] != slot:
                if state["error"] is not None:
                    return  # aborted: later slots never fetch
                yield
            try:
                thunks[slot]()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                state["error"] = exc
                return  # turn never advances; waiters see the abort
            state["turn"] = slot + 1

        for i in range(n):
            sched.spawn(worker, i, name=f"slot{i}")
        sched.run(max_steps=max(n * n * self._STEP_SLACK, 1024))
        self.last_trace = sched.trace
        if state["error"] is not None:
            raise state["error"]


def make_slot_executor(
    executor: Union[str, SlotExecutor], workers: int, seed: int = 0
) -> SlotExecutor:
    """Resolve the loader's ``executor`` knob to an instance.

    ``"threads"`` → :class:`ThreadedSlotExecutor` (wall-clock),
    ``"deterministic"`` → :class:`DeterministicSlotExecutor` (seeded);
    an existing :class:`SlotExecutor` passes through.
    """
    if isinstance(executor, SlotExecutor):
        return executor
    if executor == "threads":
        return ThreadedSlotExecutor(workers)
    if executor == "deterministic":
        return DeterministicSlotExecutor(seed)
    raise ValueError(
        f"unknown executor {executor!r}; expected 'threads', "
        "'deterministic', or a SlotExecutor instance"
    )
