"""Ticket-order commit protocol for worker pools.

The prefetching loader overlaps fetch *work* across threads but must apply
fetch *effects* — cache probes/admissions, stat increments, simulated-clock
charges — in sampler order, or results stop being bit-identical to the
serial loader. :class:`Sequencer` provides that guarantee: each unit of
work owns a slot number, and :meth:`turn` blocks until every lower slot
has committed. The critical sections execute one at a time, in slot
order, regardless of how the OS schedules the threads around them.

A failed slot aborts the sequence: later slots raise
:class:`SequencerAborted` instead of running, mirroring how the serial
loop would never have reached them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["Sequencer", "SequencerAborted"]


class SequencerAborted(RuntimeError):
    """An earlier slot failed, so this slot's turn never comes."""


class Sequencer:
    """Serializes critical sections into ascending slot order."""

    def __init__(self, start: int = 0) -> None:
        self._cond = threading.Condition()
        self._next = int(start)
        self._aborted_at: Optional[int] = None

    @property
    def next_slot(self) -> int:
        with self._cond:
            return self._next

    @property
    def aborted(self) -> bool:
        with self._cond:
            return self._aborted_at is not None

    @contextmanager
    def turn(self, slot: int) -> Iterator[None]:
        """Run the body when ``slot`` is next in line.

        Raises :class:`SequencerAborted` (without running the body) when a
        lower slot aborted. If the body itself raises, the sequence aborts
        and the exception propagates.
        """
        with self._cond:
            while self._next != slot and self._aborted_at is None:
                self._cond.wait()
            if self._aborted_at is not None and self._aborted_at <= slot:
                raise SequencerAborted(
                    f"slot {self._aborted_at} failed before slot {slot}"
                )
        try:
            yield
        except BaseException:
            with self._cond:
                self._aborted_at = slot
                self._cond.notify_all()
            raise
        else:
            with self._cond:
                self._next = slot + 1
                self._cond.notify_all()
