"""Concurrency runtime and test harness (``repro.concurrency``).

Two halves, one goal — making concurrent data loading safe to ship:

* :mod:`~repro.concurrency.sequencer` is the *production* primitive: a
  ticket-order commit protocol that lets a pool of worker threads overlap
  their work while their side effects on shared state (the semantic cache,
  the simulated clock, fetch counters) are applied in one deterministic
  order. :class:`~repro.data.prefetch.PrefetchingDataLoader` builds on it.
* :mod:`~repro.concurrency.scheduler` is the *test* harness: a seeded,
  step-controlled scheduler that runs N logical workers (generators whose
  every ``yield`` is an explicit preemption point) under a reproducible
  interleaving. Any race found in the wild can be replayed as a failing
  test by pinning the seed.

:mod:`~repro.concurrency.executor` bridges the two: the loader's slot
tasks run either on real threads (wall-clock mode) or under the
deterministic scheduler (test/oracle mode) behind one
:class:`~repro.concurrency.executor.SlotExecutor` contract, selected by
the run's ``clock_mode``.
"""

from repro.concurrency.executor import (
    DeterministicSlotExecutor,
    SlotExecutor,
    ThreadedSlotExecutor,
    make_slot_executor,
)
from repro.concurrency.scheduler import (
    CooperativeLock,
    DeterministicScheduler,
    SchedulerDeadlock,
)
from repro.concurrency.sequencer import Sequencer, SequencerAborted

__all__ = [
    "DeterministicScheduler",
    "CooperativeLock",
    "SchedulerDeadlock",
    "Sequencer",
    "SequencerAborted",
    "SlotExecutor",
    "ThreadedSlotExecutor",
    "DeterministicSlotExecutor",
    "make_slot_executor",
]
