"""DataLoader: turns a policy's epoch order into collated batches.

Mirrors the paper's modified PyTorch DataLoader (§5): the sampler decides
*which* ids to visit, each id is fetched *through the policy's cache
hierarchy* (possibly served a substitute sample), and payloads are collated
into arrays for the model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.core.semantic_cache import FetchOutcome, FetchSource

__all__ = ["Batch", "DataLoader"]


@dataclass
class Batch:
    """One collated mini-batch."""

    requested: np.ndarray  # ids the sampler asked for
    served: np.ndarray  # ids actually delivered (substitutions differ)
    X: np.ndarray  # payload rows, stacked
    y: np.ndarray  # labels of the *served* samples
    sources: List[FetchSource]

    def __len__(self) -> int:
        return self.requested.shape[0]

    @property
    def substitution_count(self) -> int:
        return int(np.sum(self.requested != self.served))


class DataLoader:
    """Batches an epoch order through a fetch function.

    Parameters
    ----------
    labels:
        Full label array; served ids are labeled from it (a substitute
        sample trains under its *own* label).
    fetch_fn:
        ``index -> FetchOutcome`` (a policy's ``fetch``).
    batch_size:
        Mini-batch size; the final short batch is kept (not dropped).
    """

    def __init__(self, labels: np.ndarray, fetch_fn, batch_size: int = 128) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.labels = np.asarray(labels, dtype=np.int64)
        self.fetch_fn = fetch_fn
        self.batch_size = int(batch_size)
        # Samples dropped by degraded-mode serving (payload-less outcomes
        # with source SKIPPED); batches shrink rather than the run crashing.
        # The ``+=`` below is a read-modify-write — guarded so concurrent
        # collates (prefetch workers) can't lose updates.
        self.skipped_count = 0
        self._skip_lock = threading.Lock()

    def collate(self, ids: np.ndarray) -> Optional[Batch]:
        """Fetch and collate one batch worth of sample ids.

        Outcomes without a payload (degraded-mode skips) are dropped; a
        batch whose every sample was skipped collates to ``None``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        outcomes = [self.fetch_fn(int(i)) for i in ids]
        return self._collate_outcomes(outcomes)

    def _collate_outcomes(self, outcomes: Sequence["FetchOutcome"]) -> Optional[Batch]:
        """Drop payload-less outcomes, count skips, stack the rest."""
        kept = [o for o in outcomes if o.payload is not None]
        skipped = len(outcomes) - len(kept)
        if skipped:
            with self._skip_lock:
                self.skipped_count += skipped
        if not kept:
            return None
        served = np.asarray([o.served_id for o in kept], dtype=np.int64)
        X = np.stack([np.asarray(o.payload) for o in kept])
        return Batch(
            requested=np.asarray([o.requested_id for o in kept], dtype=np.int64),
            served=served,
            X=X,
            y=self.labels[served],
            sources=[o.source for o in kept],
        )

    def n_batches(self, order: np.ndarray) -> int:
        """Batch-slot count for one epoch order (skips still occupy slots)."""
        n = np.asarray(order).shape[0]
        return (n + self.batch_size - 1) // self.batch_size

    def batch_ids(self, order: np.ndarray, batch: int) -> np.ndarray:
        """The sample ids occupying batch slot ``batch`` of ``order``."""
        order = np.asarray(order, dtype=np.int64)
        start = batch * self.batch_size
        return order[start : start + self.batch_size]

    def iter_epoch(self, order: np.ndarray) -> Iterator[Batch]:
        """Yield collated batches for one epoch's sample order."""
        order = np.asarray(order, dtype=np.int64)
        for start in range(0, order.shape[0], self.batch_size):
            batch = self.collate(order[start : start + self.batch_size])
            if batch is not None:
                yield batch
