"""Clustered-embedding dataset generator.

DNN training drives same-class embeddings together and different classes
apart (paper Fig. 8). The graph-based IS algorithm keys off that geometry:
a sample's importance depends on how many same-class vs other-class
neighbors surround it. This generator produces raw feature vectors whose
geometry *already contains* the four sample states of Fig. 8(b), so a small
model trained on them exhibits the same importance-score dynamics the paper
measures on CIFAR/ImageNet:

* **well-classified** — points near their class center,
* **boundary** — points between two class centers (labeled as either),
* **isolated** — far-shell points of their own class,
* **mislabeled** — points drawn from another class's cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = [
    "SyntheticDataset",
    "make_clustered_dataset",
    "train_test_split",
    "KIND_WELL",
    "KIND_BOUNDARY",
    "KIND_ISOLATED",
    "KIND_MISLABELED",
    "KIND_NAMES",
]

KIND_WELL = 0
KIND_BOUNDARY = 1
KIND_ISOLATED = 2
KIND_MISLABELED = 3
KIND_NAMES = {
    KIND_WELL: "well",
    KIND_BOUNDARY: "boundary",
    KIND_ISOLATED: "isolated",
    KIND_MISLABELED: "mislabeled",
}


@dataclass
class SyntheticDataset:
    """In-memory dataset of feature vectors with ground-truth sample kinds.

    ``item_nbytes`` is the *simulated* on-storage size per sample (a raw
    CIFAR image is ~3 KB, an ImageNet JPEG ~110 KB); the storage simulator
    uses it for transfer-time modeling.
    """

    name: str
    X: np.ndarray  # (n, dim) float64
    y: np.ndarray  # (n,) int64
    kinds: np.ndarray  # (n,) int64, KIND_* values
    centers: np.ndarray  # (num_classes, dim)
    item_nbytes: int = 3 * 1024
    meta: Dict[str, float] = field(default_factory=dict)
    # 0 = class's majority mode, 1 = rare minority mode. Minority-mode
    # samples are the ones importance sampling genuinely helps: uniform
    # sampling underserves them, so prioritizing them raises test accuracy.
    modes: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = self.X.shape[0]
        if self.y.shape[0] != n or self.kinds.shape[0] != n:
            raise ValueError("X, y, kinds must have the same length")

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def dim(self) -> int:
        return self.X.shape[1]

    @property
    def num_classes(self) -> int:
        return self.centers.shape[0]

    def get_item(self, index: int) -> Tuple[np.ndarray, int]:
        """One sample as ``(features, label)``."""
        return self.X[index], int(self.y[index])

    def kind_fractions(self) -> Dict[str, float]:
        """Observed fraction of each sample kind."""
        n = len(self)
        return {
            name: float(np.mean(self.kinds == k)) for k, name in KIND_NAMES.items()
        }

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "SyntheticDataset":
        """New dataset restricted to ``indices`` (copies)."""
        idx = np.asarray(indices)
        return SyntheticDataset(
            name=name or f"{self.name}-subset",
            X=self.X[idx].copy(),
            y=self.y[idx].copy(),
            kinds=self.kinds[idx].copy(),
            centers=self.centers,
            item_nbytes=self.item_nbytes,
            meta=dict(self.meta),
            modes=self.modes[idx].copy() if self.modes is not None else None,
        )


def make_clustered_dataset(
    n_samples: int,
    n_classes: int = 10,
    dim: int = 32,
    frac_boundary: float = 0.15,
    frac_isolated: float = 0.05,
    frac_mislabeled: float = 0.02,
    frac_minority: float = 0.15,
    minority_offset: float = 4.0,
    boundary_w_range: Tuple[float, float] = (0.55, 0.7),
    class_skew: float = 0.0,
    cluster_std: float = 1.0,
    center_separation: float = 6.0,
    nuisance_dims: int = 0,
    nuisance_std: float = 0.0,
    item_nbytes: int = 3 * 1024,
    name: str = "synthetic",
    rng: RngLike = None,
) -> SyntheticDataset:
    """Generate a clustered dataset with the Fig.-8 sample taxonomy.

    Class centers are placed at distance ~``center_separation * cluster_std``
    apart (random directions, deterministic given the seed). Fractions must
    sum to < 1; the remainder are well-classified core points.

    ``frac_minority`` of the *well-classified* samples are drawn from a
    rare secondary mode per class, offset ``minority_offset * cluster_std``
    from the main center. These model the long-tail intra-class variation of
    real image datasets: uniform sampling underserves them, so importance
    sampling that prioritizes them genuinely improves test accuracy — the
    mechanism behind the paper's Fig. 13/Table 3 accuracy gains.

    ``class_skew`` > 0 makes class frequencies long-tailed (Zipf-like:
    class c receives weight ``(c+1)**-class_skew``). Long-tail data is the
    regime where importance sampling genuinely beats uniform sampling —
    uniform batches are dominated by head classes, so tail classes are
    undertrained at a fixed budget, while IS re-prioritizes them.

    ``nuisance_dims``/``nuisance_std`` add class-independent noise along a
    few shared random directions with variance large enough to dominate raw
    L2 distances. This models raw image pixels, where nearest neighbors are
    driven by lighting/background rather than class: an untrained feature
    extractor sees no class clusters, and the cluster structure only emerges
    as training learns to project the nuisance out — which is what makes the
    importance-score dispersion *rise then fall* (paper Fig. 6(c)).
    """
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    hard_total = frac_boundary + frac_isolated + frac_mislabeled
    if hard_total >= 1.0:
        raise ValueError("hard-sample fractions must sum to < 1")
    gen = resolve_rng(rng)

    if not 0.0 <= frac_minority < 1.0:
        raise ValueError("frac_minority must be in [0, 1)")

    # Class centers: random gaussian directions scaled for separation. In
    # high dimension, iid gaussian centers are near-orthogonal, giving
    # near-uniform pairwise separation.
    centers = gen.normal(0.0, 1.0, size=(n_classes, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    centers *= center_separation * cluster_std

    # Rare secondary mode per class: a random offset direction from the
    # main center, scaled to sit inside the class's own region.
    minority_dirs = gen.normal(0.0, 1.0, size=(n_classes, dim))
    minority_dirs /= np.linalg.norm(minority_dirs, axis=1, keepdims=True)
    minority_centers = centers + minority_dirs * minority_offset * cluster_std

    if class_skew < 0:
        raise ValueError("class_skew must be non-negative")
    if class_skew > 0:
        # Zipf-like long tail, with every class guaranteed >= 2 samples.
        weights = (np.arange(1, n_classes + 1, dtype=np.float64)) ** -class_skew
        weights /= weights.sum()
        counts = np.maximum(2, np.round(weights * n_samples).astype(int))
        # Trim/extend the head class to hit n_samples exactly.
        counts[0] += n_samples - counts.sum()
        if counts[0] < 2:
            raise ValueError("class_skew too extreme for this sample count")
        labels = np.repeat(np.arange(n_classes), counts)
    else:
        labels = np.tile(np.arange(n_classes), n_samples // n_classes + 1)[:n_samples]
    gen.shuffle(labels)

    n_boundary = int(round(frac_boundary * n_samples))
    n_isolated = int(round(frac_isolated * n_samples))
    n_mislabeled = int(round(frac_mislabeled * n_samples))
    kinds = np.full(n_samples, KIND_WELL, dtype=np.int64)
    special = gen.permutation(n_samples)[: n_boundary + n_isolated + n_mislabeled]
    kinds[special[:n_boundary]] = KIND_BOUNDARY
    kinds[special[n_boundary : n_boundary + n_isolated]] = KIND_ISOLATED
    kinds[special[n_boundary + n_isolated :]] = KIND_MISLABELED

    # Minority-mode assignment among well-classified samples.
    modes = np.zeros(n_samples, dtype=np.int64)
    well_idx = np.flatnonzero(kinds == KIND_WELL)
    n_minor = int(round(frac_minority * well_idx.size))
    if n_minor:
        modes[gen.choice(well_idx, size=n_minor, replace=False)] = 1

    X = np.empty((n_samples, dim))
    noise = gen.normal(0.0, cluster_std, size=(n_samples, dim))

    for i in range(n_samples):
        c = labels[i]
        kind = kinds[i]
        if kind == KIND_WELL:
            base = minority_centers[c] if modes[i] else centers[c]
            X[i] = base + noise[i]
        elif kind == KIND_BOUNDARY:
            other = int(gen.integers(n_classes - 1))
            if other >= c:
                other += 1
            # Default range keeps boundary samples on their own side of the
            # midpoint (w > 0.5): hard but genuinely learnable. Passing a
            # range straddling 0.5 (e.g. (0.4, 0.6)) makes them ambiguous —
            # slow-to-learn mass whose losses converge late, which is what
            # stretches the Fig. 6(c) dispersion peak across epochs.
            w = gen.uniform(*boundary_w_range)
            X[i] = w * centers[c] + (1 - w) * centers[other] + 0.5 * noise[i]
        elif kind == KIND_ISOLATED:
            direction = noise[i]
            nrm = np.linalg.norm(direction)
            if nrm == 0:
                direction = np.ones(dim) / np.sqrt(dim)
                nrm = 1.0
            radius = gen.uniform(3.0, 5.0) * cluster_std * np.sqrt(dim)
            X[i] = centers[c] + direction / nrm * radius
        else:  # KIND_MISLABELED: body from another class, label kept as c.
            other = int(gen.integers(n_classes - 1))
            if other >= c:
                other += 1
            X[i] = centers[other] + noise[i]

    if nuisance_dims > 0 and nuisance_std > 0:
        if nuisance_dims > dim:
            raise ValueError("nuisance_dims cannot exceed dim")
        # Shared random orthonormal directions carrying class-independent
        # high-variance noise (QR of a random matrix gives orthonormal cols).
        basis, _ = np.linalg.qr(gen.normal(size=(dim, nuisance_dims)))
        coeffs = gen.normal(0.0, nuisance_std * cluster_std, size=(n_samples, nuisance_dims))
        X += coeffs @ basis.T

    return SyntheticDataset(
        name=name,
        X=X,
        y=labels.astype(np.int64),
        kinds=kinds,
        centers=centers,
        item_nbytes=item_nbytes,
        meta={
            "cluster_std": cluster_std,
            "center_separation": center_separation,
            "frac_boundary": frac_boundary,
            "frac_isolated": frac_isolated,
            "frac_mislabeled": frac_mislabeled,
            "frac_minority": frac_minority,
            "minority_offset": minority_offset,
            "boundary_w_low": boundary_w_range[0],
            "boundary_w_high": boundary_w_range[1],
            "nuisance_dims": nuisance_dims,
            "nuisance_std": nuisance_std,
        },
        modes=modes,
    )


def train_test_split(
    dataset: SyntheticDataset, test_fraction: float = 0.2, rng: RngLike = None
) -> Tuple[SyntheticDataset, SyntheticDataset]:
    """Random split preserving per-sample kinds."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    gen = resolve_rng(rng)
    n = len(dataset)
    perm = gen.permutation(n)
    n_test = int(round(test_fraction * n))
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return (
        dataset.subset(train_idx, name=f"{dataset.name}-train"),
        dataset.subset(test_idx, name=f"{dataset.name}-test"),
    )
