"""Dataset substrate.

Stands in for CIFAR-10/100 and ImageNet (see DESIGN.md). The synthetic
generator realizes exactly the sample taxonomy the paper's Fig. 8 builds the
IS algorithm around: well-classified core points, boundary points, isolated
points, and mislabeled points, in controllable proportions.
"""

from repro.data.images import ProceduralImageDataset, make_image_dataset
from repro.data.loader import Batch, DataLoader
from repro.data.prefetch import PrefetchingDataLoader
from repro.data.registry import DATASET_PRESETS, make_dataset
from repro.data.transforms import (
    Compose,
    FeatureDropout,
    GaussianNoise,
    HorizontalFlipImage,
    Normalize,
    RandomScale,
    RandomShiftImage,
    Transform,
)
from repro.data.synthetic import (
    KIND_BOUNDARY,
    KIND_ISOLATED,
    KIND_MISLABELED,
    KIND_WELL,
    SyntheticDataset,
    make_clustered_dataset,
    train_test_split,
)

__all__ = [
    "SyntheticDataset",
    "make_clustered_dataset",
    "train_test_split",
    "ProceduralImageDataset",
    "make_image_dataset",
    "DATASET_PRESETS",
    "make_dataset",
    "DataLoader",
    "PrefetchingDataLoader",
    "Batch",
    "KIND_WELL",
    "KIND_BOUNDARY",
    "KIND_ISOLATED",
    "KIND_MISLABELED",
    "Transform",
    "Compose",
    "Normalize",
    "GaussianNoise",
    "FeatureDropout",
    "RandomScale",
    "RandomShiftImage",
    "HorizontalFlipImage",
]
