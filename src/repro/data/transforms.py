"""Preprocessing transforms (the Fig.-2 Preprocessing stage).

The paper's pipeline is Data Loading -> Preprocessing -> Computation; the
preprocessing stage "handles decoding and collation" and is "typically
lightweight". These transforms operate on collated batches of feature
vectors or images, each declaring a per-item simulated cost so the trainer
can charge the preprocessing stage (paper Fig. 3(a) shows it <5% of time).

Transforms compose with :class:`Compose` and can be deterministic (eval) or
stochastic (train-time augmentation). Augmentation matters to the caching
study in one way: it is the reason cached *tensors* must be re-augmented
per epoch, so caches store the decoded-but-unaugmented sample (exactly what
our payload caches hold).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = [
    "Transform",
    "Compose",
    "Normalize",
    "GaussianNoise",
    "FeatureDropout",
    "RandomScale",
    "RandomShiftImage",
    "HorizontalFlipImage",
]


class Transform:
    """Base batch transform.

    ``cost_us_per_item`` is the simulated preprocessing cost (decode,
    colour conversion, etc.) charged per sample by the trainer.
    """

    cost_us_per_item: float = 1.0

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError


class Compose(Transform):
    """Apply transforms in order; cost is the sum of parts."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    @property
    def cost_us_per_item(self) -> float:  # type: ignore[override]
        return sum(t.cost_us_per_item for t in self.transforms)

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        for t in self.transforms:
            batch = t(batch, training=training)
        return batch


class Normalize(Transform):
    """Standardize features with fixed statistics (deterministic)."""

    cost_us_per_item = 2.0

    def __init__(self, mean: np.ndarray, std: np.ndarray) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std <= 0):
            raise ValueError("std must be positive")

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        return (batch - self.mean) / self.std

    @classmethod
    def fit(cls, data: np.ndarray) -> "Normalize":
        """Estimate statistics from a dataset (per-feature)."""
        data = np.asarray(data, dtype=np.float64)
        std = data.std(axis=0)
        std[std == 0] = 1.0
        return cls(data.mean(axis=0), std)


class GaussianNoise(Transform):
    """Additive noise augmentation (train-time only)."""

    cost_us_per_item = 3.0

    def __init__(self, sigma: float = 0.1, rng: RngLike = None) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)
        self._rng = resolve_rng(rng)

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.sigma == 0:
            return batch
        return batch + self._rng.normal(0.0, self.sigma, size=batch.shape)


class FeatureDropout(Transform):
    """Randomly zero a fraction of features per sample (train-time)."""

    cost_us_per_item = 2.0

    def __init__(self, p: float = 0.1, rng: RngLike = None) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("p must be in [0, 1)")
        self.p = float(p)
        self._rng = resolve_rng(rng)

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0:
            return batch
        mask = self._rng.random(batch.shape) >= self.p
        return batch * mask


class RandomScale(Transform):
    """Multiply each sample by a random scalar near 1 (train-time)."""

    cost_us_per_item = 1.0

    def __init__(self, low: float = 0.9, high: float = 1.1, rng: RngLike = None) -> None:
        if not 0 < low <= high:
            raise ValueError("need 0 < low <= high")
        self.low, self.high = float(low), float(high)
        self._rng = resolve_rng(rng)

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        if not training:
            return batch
        scales = self._rng.uniform(self.low, self.high, size=(batch.shape[0],))
        shape = (batch.shape[0],) + (1,) * (batch.ndim - 1)
        return batch * scales.reshape(shape)


class RandomShiftImage(Transform):
    """Circularly shift (n, c, h, w) images by up to ``max_shift`` pixels."""

    cost_us_per_item = 5.0

    def __init__(self, max_shift: int = 2, rng: RngLike = None) -> None:
        if max_shift < 0:
            raise ValueError("max_shift must be non-negative")
        self.max_shift = int(max_shift)
        self._rng = resolve_rng(rng)

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.max_shift == 0:
            return batch
        if batch.ndim != 4:
            raise ValueError("expected (n, c, h, w) images")
        out = np.empty_like(batch)
        shifts = self._rng.integers(-self.max_shift, self.max_shift + 1,
                                    size=(batch.shape[0], 2))
        for i in range(batch.shape[0]):
            out[i] = np.roll(batch[i], (int(shifts[i, 0]), int(shifts[i, 1])),
                             axis=(1, 2))
        return out


class HorizontalFlipImage(Transform):
    """Flip (n, c, h, w) images left-right with probability ``p``."""

    cost_us_per_item = 2.0

    def __init__(self, p: float = 0.5, rng: RngLike = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = float(p)
        self._rng = resolve_rng(rng)

    def __call__(self, batch: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.p == 0:
            return batch
        if batch.ndim != 4:
            raise ValueError("expected (n, c, h, w) images")
        out = batch.copy()
        flip = self._rng.random(batch.shape[0]) < self.p
        out[flip] = out[flip, :, :, ::-1]
        return out
