"""Procedural image dataset for the CNN models.

Each class gets a smooth low-frequency template (a random mixture of 2-D
sinusoids); samples are shifted, noised copies. This gives the CNN path a
real image-classification task without shipping datasets: classes are
separable, but noise/shift levels create genuinely hard samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.utils.rng import RngLike, resolve_rng

__all__ = ["ProceduralImageDataset", "make_image_dataset"]


@dataclass
class ProceduralImageDataset:
    """Images of shape ``(n, c, h, w)`` with integer labels."""

    name: str
    X: np.ndarray
    y: np.ndarray
    templates: np.ndarray  # (num_classes, c, h, w)
    item_nbytes: int = 3 * 1024

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.X.shape[1:])  # type: ignore[return-value]

    @property
    def num_classes(self) -> int:
        return self.templates.shape[0]

    def get_item(self, index: int) -> Tuple[np.ndarray, int]:
        """One sample as ``(image, label)``."""
        return self.X[index], int(self.y[index])


def _class_template(
    c: int, h: int, w: int, gen: np.random.Generator, n_waves: int = 4
) -> np.ndarray:
    """Random smooth template: sum of low-frequency 2-D sinusoids."""
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    template = np.zeros((c, h, w))
    for ch in range(c):
        img = np.zeros((h, w))
        for _ in range(n_waves):
            fy, fx = gen.uniform(0.5, 3.0, size=2)
            phase = gen.uniform(0, 2 * np.pi)
            amp = gen.uniform(0.5, 1.0)
            img += amp * np.sin(2 * np.pi * (fy * yy + fx * xx) + phase)
        template[ch] = img / n_waves
    return template


def make_image_dataset(
    n_samples: int,
    n_classes: int = 10,
    image_size: int = 12,
    channels: int = 1,
    noise_std: float = 0.35,
    max_shift: int = 2,
    name: str = "proc-images",
    rng: RngLike = None,
) -> ProceduralImageDataset:
    """Generate ``n_samples`` images from per-class templates.

    Each sample is its class template circularly shifted by up to
    ``max_shift`` pixels plus Gaussian pixel noise.
    """
    if image_size < 4:
        raise ValueError("image_size must be >= 4")
    gen = resolve_rng(rng)
    templates = np.stack(
        [_class_template(channels, image_size, image_size, gen) for _ in range(n_classes)]
    )
    labels = np.tile(np.arange(n_classes), n_samples // n_classes + 1)[:n_samples]
    gen.shuffle(labels)
    X = np.empty((n_samples, channels, image_size, image_size))
    shifts = gen.integers(-max_shift, max_shift + 1, size=(n_samples, 2))
    noise = gen.normal(0.0, noise_std, size=X.shape)
    for i in range(n_samples):
        img = templates[labels[i]]
        img = np.roll(img, shift=(int(shifts[i, 0]), int(shifts[i, 1])), axis=(1, 2))
        X[i] = img + noise[i]
    return ProceduralImageDataset(
        name=name,
        X=X,
        y=labels.astype(np.int64),
        templates=templates,
        item_nbytes=channels * image_size * image_size * 8,
    )
