"""Dataset presets standing in for the paper's three benchmarks.

The paper evaluates on CIFAR-10 (50k/10 classes), CIFAR-100 (50k/100
classes) and ImageNet (1.2M/1000 classes). These presets keep the *relative*
structure — class count ratios, per-item storage size, and hardness mix —
at sizes a single CPU can sweep through many policies and epochs:

* ``cifar10-like``  — 10 classes, small items (~3 KB)
* ``cifar100-like`` — 10x the classes of cifar10-like at the same sample
  count (so per-class data is 10x scarcer, matching why CIFAR-100 accuracy
  is far lower in Table 3)
* ``imagenet-like`` — many classes, many samples, large items (~110 KB)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.data.synthetic import SyntheticDataset, make_clustered_dataset
from repro.utils.rng import RngLike

__all__ = ["DATASET_PRESETS", "make_dataset"]

DATASET_PRESETS: Dict[str, Dict] = {
    "cifar10-like": dict(
        n_samples=4000,
        n_classes=10,
        dim=32,
        frac_boundary=0.15,
        frac_isolated=0.05,
        frac_mislabeled=0.005,
        frac_minority=0.2,
        nuisance_dims=8,
        nuisance_std=6.0,
        item_nbytes=3 * 1024,
    ),
    "cifar100-like": dict(
        n_samples=4000,
        n_classes=100,
        dim=32,
        frac_boundary=0.20,
        frac_isolated=0.05,
        frac_mislabeled=0.005,
        frac_minority=0.2,
        nuisance_dims=8,
        nuisance_std=6.0,
        item_nbytes=3 * 1024,
    ),
    "imagenet-like": dict(
        n_samples=8000,
        n_classes=100,
        dim=48,
        frac_boundary=0.15,
        frac_isolated=0.05,
        frac_mislabeled=0.005,
        frac_minority=0.2,
        nuisance_dims=12,
        nuisance_std=6.0,
        item_nbytes=110 * 1024,
    ),
}


def make_dataset(
    preset: str,
    rng: RngLike = None,
    n_samples: Optional[int] = None,
    **overrides,
) -> SyntheticDataset:
    """Instantiate a preset; keyword overrides adjust any generator knob.

    ``n_samples`` is exposed explicitly because benchmarks routinely scale
    it down for fast sweeps.
    """
    if preset not in DATASET_PRESETS:
        raise KeyError(
            f"unknown preset {preset!r}; available: {sorted(DATASET_PRESETS)}"
        )
    params = dict(DATASET_PRESETS[preset])
    if n_samples is not None:
        params["n_samples"] = n_samples
    params.update(overrides)
    return make_clustered_dataset(name=preset, rng=rng, **params)
