"""Concurrent prefetching data loader (paper §5, Fig. 12).

The serial :class:`~repro.data.loader.DataLoader` fetches every sample
one after another and the clock pays the *sum* of their latencies. The
paper's modified PyTorch loader instead overlaps fetches with compute and
with each other, so a window of concurrent fetches costs its *maximum*
latency. :class:`PrefetchingDataLoader` reproduces that overlap shape:

* a :class:`~repro.concurrency.executor.SlotExecutor` runs the batch's
  fetch tasks — real worker threads plus a
  :class:`~repro.concurrency.sequencer.Sequencer` in wall-clock mode, or
  the seeded
  :class:`~repro.concurrency.scheduler.DeterministicScheduler` in
  test/oracle mode — committing each fetch's side effects — cache
  probes/admissions, stat counters, store counters, clock charges — in
  **sampler order**, so batches, substitutions, and
  :class:`~repro.cache.base.CacheStats` are bit-identical to the serial
  loader's (and across executors);
* each fetch's clock charge is captured via
  :meth:`~repro.storage.clock.SimClock.deferred` and the window of
  ``workers`` consecutive fetches is re-charged as one
  :meth:`~repro.storage.clock.SimClock.advance_parallel` call —
  ``max(durations)`` instead of ``sum(durations)``.

The window never spans a batch: :meth:`collate` drains every outstanding
fetch before returning, which is what keeps mid-epoch checkpoint/resume
bit-exact — a checkpoint can only be written between batch slots, when no
fetch is in flight.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.concurrency.executor import SlotExecutor, make_slot_executor
from repro.data.loader import Batch, DataLoader
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.storage.clock import SimClock

__all__ = ["PrefetchingDataLoader"]


class PrefetchingDataLoader(DataLoader):
    """Fetches batches through a worker pool with sampler-order commits.

    Parameters
    ----------
    labels, fetch_fn, batch_size:
        As for :class:`~repro.data.loader.DataLoader`.
    workers:
        Worker-thread count; also the overlap-window width used for the
        max-of-window clock accounting. ``1`` degenerates to the serial
        loader (no pool, no re-accounting).
    clock:
        The run's :class:`~repro.storage.clock.SimClock`. When given,
        per-fetch charges to ``stage`` are captured and re-charged as
        overlapped windows; without it, fetches charge whatever they
        charge (no overlap modelling).
    stage:
        Clock stage the overlap accounting applies to (the remote store's
        ``data_load`` stage).
    observer:
        Run observer; receives one ``on_prefetch_window`` per window.
    executor:
        ``"threads"`` (default, wall-clock mode) runs slots on a real
        thread pool; ``"deterministic"`` (test/oracle mode) runs them as
        logical workers under a seeded
        :class:`~repro.concurrency.scheduler.DeterministicScheduler` —
        same batches, same stats, no OS-scheduler nondeterminism. A
        :class:`~repro.concurrency.executor.SlotExecutor` instance is
        also accepted.
    seed:
        Interleaving seed for the deterministic executor.
    """

    def __init__(
        self,
        labels: np.ndarray,
        fetch_fn,
        batch_size: int = 128,
        workers: int = 4,
        clock: Optional[SimClock] = None,
        stage: str = "data_load",
        observer: Optional[Observer] = None,
        executor: Union[str, SlotExecutor] = "threads",
        seed: int = 0,
    ) -> None:
        super().__init__(labels, fetch_fn, batch_size=batch_size)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.clock = clock
        self.stage = stage
        self._obs = observer if observer is not None else NULL_OBSERVER
        self._executor = make_slot_executor(executor, self.workers, seed)
        #: Simulated seconds saved by overlap (serial sum - charged max),
        #: accumulated across all windows this loader served.
        self.overlap_saved_s = 0.0
        self.windows_committed = 0

    # ------------------------------------------------------------------
    def attach_observer(self, observer: Observer) -> None:
        """Point window events at ``observer`` (runtime-only wiring)."""
        self._obs = observer

    @property
    def executor_kind(self) -> str:
        """``"threads"`` or ``"deterministic"``."""
        return self._executor.kind

    # ------------------------------------------------------------------
    def collate(self, ids: np.ndarray) -> Optional[Batch]:
        """Fetch one batch through the pool, committing in sampler order."""
        ids = np.asarray(ids, dtype=np.int64)
        n = int(ids.shape[0])
        if n == 0:
            return None
        if self.workers == 1:
            return super().collate(ids)
        # n == 1 still goes through the window path (a window of one) so
        # every remote charge in a prefetch run is window-accounted — the
        # trace aggregator relies on that invariant.

        outcomes: List[Optional[object]] = [None] * n
        durations = [0.0] * n

        def make_thunk(slot: int):
            def fetch_slot() -> None:
                # The executor guarantees slot-order commits; the
                # cache/store/clock side effects here run one slot at a
                # time, in sampler order — the bit-exactness guarantee.
                if self.clock is not None:
                    with self.clock.deferred(self.stage) as cell:
                        outcomes[slot] = self.fetch_fn(int(ids[slot]))
                    durations[slot] = cell.seconds
                else:
                    outcomes[slot] = self.fetch_fn(int(ids[slot]))
            return fetch_slot

        self._executor.run([make_thunk(i) for i in range(n)])

        self._commit_windows(durations)
        return self._collate_outcomes(outcomes)

    def _commit_windows(self, durations: List[float]) -> None:
        """Re-charge captured per-fetch costs as overlapped windows."""
        if self.clock is None:
            return
        obs = self._obs
        for start in range(0, len(durations), self.workers):
            window = durations[start : start + self.workers]
            t0 = self.clock.total_seconds if obs.active else 0.0
            charged = self.clock.advance_parallel(self.stage, window)
            saved = sum(window) - charged
            self.overlap_saved_s += saved
            self.windows_committed += 1
            if obs.active:
                obs.on_prefetch_window(len(window), sum(window), charged)
                if charged > 0:
                    obs.span_record(
                        "prefetch_window", t0, t0 + charged,
                        fetches=len(window), saved_s=saved,
                    )

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Wait until no fetch is in flight.

        :meth:`collate` already drains before returning, so between batch
        slots this is a no-op — it exists as the explicit contract point
        the checkpoint path calls before snapshotting state.
        """

    def close(self) -> None:
        """Shut down the slot executor (idempotent; the threaded
        executor lazily rebuilds its pool if used again)."""
        self._executor.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
