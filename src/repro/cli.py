"""Command-line interface: run reproduction experiments without writing code.

Usage::

    python -m repro info
    python -m repro train --policy spidercache --preset cifar10-like \\
        --epochs 10 --cache-fraction 0.2
    python -m repro compare --policies spidercache shade baseline \\
        --epochs 8
    python -m repro trace --policy spidercache --epochs 6 --capacity 0.2
    python -m repro train --policy spidercache --trace-dir runs/demo
    python -m repro report runs/demo
    python -m repro bench --check
    python -m repro load --requests 100000 --arrivals bursty \\
        --trace-dir runs/load-demo

``train`` runs one policy and prints per-epoch metrics (with
``--trace-dir`` it also records a structured event trace and exports the
run artifacts); ``compare`` runs several policies on the identical
dataset/model and prints the Fig.-1 triangle (hit ratio / accuracy /
time); ``trace`` records the policy's access trace and reports LRU /
MinIO / Belady-OPT hit ratios on it; ``report`` renders the tables for
an exported run directory; ``load`` replays a seeded synthetic request
trace against the sharded cache tier, with windowed tail-latency / SLO
stats and an optional autoscaler growing and shrinking the ring live.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.baselines.baseline import LFUPolicy, LRUBaselinePolicy
from repro.baselines.coordl import CoorDLPolicy
from repro.baselines.gradnorm import GradNormISPolicy
from repro.baselines.icache import ICacheFullPolicy, ICacheImpPolicy
from repro.baselines.shade import ShadePolicy
from repro.cache.lru import LRUCache
from repro.cache.minio import MinIOCache
from repro.cache.trace import AccessTrace, belady_hit_ratio, replay
from repro.core.policy import SpiderCachePolicy
from repro.data.registry import DATASET_PRESETS, make_dataset
from repro.data.synthetic import train_test_split
from repro.nn.models import MODEL_ZOO, build_model
from repro.train.trainer import Trainer, TrainerConfig

__all__ = ["main", "POLICIES"]

POLICIES = {
    "spidercache": lambda frac, rng: SpiderCachePolicy(cache_fraction=frac, rng=rng),
    "spidercache-imp": lambda frac, rng: SpiderCachePolicy(
        cache_fraction=frac, r_start=1.0, r_end=1.0, elastic=False, rng=rng
    ),
    "shade": lambda frac, rng: ShadePolicy(cache_fraction=frac, rng=rng),
    "gradnorm": lambda frac, rng: GradNormISPolicy(cache_fraction=frac, rng=rng),
    "icache": lambda frac, rng: ICacheFullPolicy(cache_fraction=frac, rng=rng),
    "icache-imp": lambda frac, rng: ICacheImpPolicy(cache_fraction=frac, rng=rng),
    "coordl": lambda frac, rng: CoorDLPolicy(cache_fraction=frac, rng=rng),
    "baseline": lambda frac, rng: LRUBaselinePolicy(cache_fraction=frac, rng=rng),
    "lfu": lambda frac, rng: LFUPolicy(cache_fraction=frac, rng=rng),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SpiderCache reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list presets, models, and policies")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--preset", default="cifar10-like",
                       choices=sorted(DATASET_PRESETS))
        p.add_argument("--model", default="resnet18", choices=sorted(MODEL_ZOO))
        p.add_argument("--samples", type=int, default=1200)
        p.add_argument("--epochs", type=int, default=10)
        p.add_argument("--batch-size", type=int, default=64)
        p.add_argument("--cache-fraction", type=float, default=0.2)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--prefetch-workers", type=int, default=0,
            help="prefetching loader threads (0 = serial loader); results "
                 "are bit-identical, only data-load time overlaps",
        )

    train_p = sub.add_parser("train", help="run one policy")
    train_p.add_argument("--policy", default="spidercache",
                         choices=sorted(POLICIES))
    train_p.add_argument(
        "--trace-dir", default=None,
        help="record a structured trace and export run artifacts "
             "(trace.jsonl, epochs.jsonl, summary.json) to this directory",
    )
    train_p.add_argument(
        "--world-size", type=int, default=1,
        help="data-parallel worker count (>1 uses DataParallelTrainer)",
    )
    train_p.add_argument(
        "--shared-cache", action="store_true",
        help="multi-worker runs share ONE logical cache instead of "
             "per-worker caches",
    )
    train_p.add_argument(
        "--cache-shards", type=int, default=0,
        help="partition the shared cache across this many shard servers "
             "behind simulated RPC (requires --shared-cache)",
    )
    train_p.add_argument(
        "--resize-shards-at", default=None, metavar="EPOCH:COUNT",
        help="live-resize the shard ring to COUNT shards at the start of "
             "EPOCH, migrating cached keys over the RPC channel "
             "(requires --cache-shards)",
    )
    train_p.add_argument(
        "--transport", choices=("sim", "real"), default="sim",
        help="execution mode: 'sim' (deterministic — simulated RPC tier and "
             "seeded-scheduler prefetching; default) or 'real' (wall-clock — "
             "shard servers in worker processes, prefetching on real "
             "threads; timings are measured, not modelled)",
    )
    train_p.add_argument(
        "--rpc-deadline-ms", type=float, default=None,
        help="per-call deadline for cache-protocol RPCs (sharded service); "
             "default 10 with --transport sim, 1000 with --transport real "
             "(real IPC has genuine latency jitter)",
    )
    train_p.add_argument(
        "--rpc-retry-budget", type=int, default=3,
        help="total attempts per cache-protocol request, first included "
             "(1 disables retries)",
    )
    add_common(train_p)

    report_p = sub.add_parser(
        "report", help="render the report for an exported run directory"
    )
    report_p.add_argument(
        "run_dir", help="directory written by `repro train --trace-dir`"
    )

    metrics_p = sub.add_parser(
        "metrics",
        help="export a run directory's metrics snapshot as Prometheus "
             "text-format exposition",
    )
    metrics_p.add_argument(
        "run_dir",
        help="directory written by `repro train --trace-dir` or "
             "`repro load --trace-dir`",
    )
    metrics_p.add_argument(
        "--prefix", default="repro_",
        help="metric-name prefix (default: repro_)",
    )

    cmp_p = sub.add_parser("compare", help="run several policies")
    cmp_p.add_argument("--policies", nargs="+", default=
                       ["spidercache", "shade", "icache", "coordl", "baseline"],
                       choices=sorted(POLICIES))
    add_common(cmp_p)

    trace_p = sub.add_parser("trace", help="record a trace, report OPT bound")
    trace_p.add_argument("--policy", default="spidercache",
                         choices=sorted(POLICIES))
    trace_p.add_argument("--capacity", type=float, default=0.2,
                         help="replay-cache capacity as a dataset fraction")
    add_common(trace_p)

    bench_p = sub.add_parser(
        "bench",
        help="run the perf trajectory, write BENCH_<date>.json, "
             "optionally soft-gate against the last committed baseline",
    )
    bench_p.add_argument(
        "--out-dir", default=".",
        help="where BENCH_<date>.json is written (default: repo root)",
    )
    bench_p.add_argument(
        "--baseline-root", default=".",
        help="directory searched for the committed baseline BENCH_*.json",
    )
    bench_p.add_argument(
        "--quick", action="store_true",
        help="reduced workload sizes (CI smoke; not comparable to the "
             "committed full-scale baseline)",
    )
    bench_p.add_argument(
        "--check", action="store_true",
        help="compare against the newest committed BENCH_*.json and warn "
             "on regressions past the threshold (soft gate: exit 0)",
    )
    bench_p.add_argument(
        "--strict", action="store_true",
        help="with --check: exit nonzero when a regression is detected",
    )
    bench_p.add_argument(
        "--threshold", type=float, default=0.2,
        help="relative regression tolerance for the soft gate (default 0.2)",
    )
    bench_p.add_argument(
        "--no-write", action="store_true",
        help="measure and report without writing a BENCH file",
    )
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument(
        "--hnsw-n", type=int, default=None,
        help="override HNSW micro-benchmark vector count",
    )
    bench_p.add_argument(
        "--queries", type=int, default=None,
        help="override HNSW query count",
    )
    bench_p.add_argument(
        "--cache-ops", type=int, default=None,
        help="override cache op count",
    )
    bench_p.add_argument(
        "--samples", type=int, default=None,
        help="override end-to-end epoch sample count",
    )
    bench_p.add_argument(
        "--epochs", type=int, default=None,
        help="override end-to-end epoch count",
    )

    load_p = sub.add_parser(
        "load",
        help="replay a synthetic request trace against the sharded tier "
             "with tail-latency/SLO reporting and optional autoscaling",
    )
    load_p.add_argument("--requests", type=int, default=100000,
                        help="trace length in requests")
    load_p.add_argument("--keys", type=int, default=2000,
                        help="keyspace size (sample ids)")
    load_p.add_argument("--zipf-skew", type=float, default=1.1,
                        help="zipfian popularity exponent (0 = uniform)")
    load_p.add_argument("--put-fraction", type=float, default=0.05,
                        help="fraction of requests that are homophily PUTs")
    load_p.add_argument(
        "--arrivals", default="bursty",
        choices=["constant", "bursty", "diurnal", "bursty-diurnal"],
        help="arrival-process shape",
    )
    load_p.add_argument("--base-rate", type=float, default=1200.0,
                        help="baseline arrival rate (req/s; bursty off-rate)")
    load_p.add_argument("--burst-rate", type=float, default=7000.0,
                        help="bursty on-phase arrival rate (req/s)")
    load_p.add_argument("--mean-on-s", type=float, default=1.5,
                        help="mean burst duration (s)")
    load_p.add_argument("--mean-off-s", type=float, default=3.0,
                        help="mean quiet-phase duration (s)")
    load_p.add_argument("--diurnal-amplitude", type=float, default=0.6,
                        help="diurnal modulation amplitude in [0, 1)")
    load_p.add_argument("--diurnal-period-s", type=float, default=30.0,
                        help="diurnal modulation period (s)")
    load_p.add_argument("--capacity", type=int, default=512,
                        help="total cache capacity across shards (keys)")
    load_p.add_argument("--imp-ratio", type=float, default=0.8,
                        help="importance-tier fraction of capacity")
    load_p.add_argument("--shards", type=int, default=2,
                        help="initial shard count")
    load_p.add_argument("--window", type=int, default=1000,
                        help="requests per stats/autoscaler window")
    load_p.add_argument("--slo-ms", type=float, default=20.0,
                        help="SLO latency target (ms)")
    load_p.add_argument("--slo-goal", type=float, default=0.99,
                        help="SLO attainment goal in (0, 1]")
    load_p.add_argument("--service-rate", type=float, default=2000.0,
                        help="per-shard service capacity (req/s) for the "
                             "congestion model")
    load_p.add_argument("--miss-ms", type=float, default=1.0,
                        help="backing-store fetch latency on a miss (ms)")
    load_p.add_argument("--no-autoscale", action="store_true",
                        help="replay at the fixed initial shard count")
    load_p.add_argument("--min-shards", type=int, default=1)
    load_p.add_argument("--max-shards", type=int, default=8)
    load_p.add_argument("--p99-high-ms", type=float, default=8.0,
                        help="grow when windowed p99 exceeds this (ms)")
    load_p.add_argument("--p99-low-ms", type=float, default=3.0,
                        help="shrink only when windowed p99 is under this (ms)")
    load_p.add_argument("--util-high", type=float, default=0.85,
                        help="grow when utilization exceeds this")
    load_p.add_argument("--util-low", type=float, default=0.30,
                        help="shrink only when utilization is under this")
    load_p.add_argument("--breach-windows", type=int, default=2,
                        help="consecutive breach windows before acting")
    load_p.add_argument("--cooldown-windows", type=int, default=3,
                        help="windows to sleep after any scaling decision")
    load_p.add_argument("--growth-factor", type=float, default=2.0,
                        help="multiplicative grow/shrink step (> 1)")
    load_p.add_argument(
        "--transport", choices=("sim", "real"), default="sim",
        help="'sim' (default): simulated clock + congestion model, paced "
             "open-loop from the trace timeline; 'real': shard servers in "
             "worker processes, driven closed-loop at wall-clock speed "
             "(measured latencies, congestion model bypassed)",
    )
    load_p.add_argument("--seed", type=int, default=0)
    load_p.add_argument(
        "--trace-dir", default=None,
        help="write load.json (+ structured trace.jsonl) here; view with "
             "`repro report <dir>`",
    )

    faults_p = sub.add_parser(
        "faults", help="sweep fault scenarios (outage/brownout/preemption)"
    )
    faults_p.add_argument("--policy", default="spidercache",
                          choices=sorted(POLICIES))
    faults_p.add_argument(
        "--scenarios", nargs="+", default=None,
        help="scenario names to run (default: all built-in scenarios)",
    )
    faults_p.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for checkpoint archives (default: a temp dir)",
    )
    faults_p.add_argument(
        "--checkpoint-every", type=int, default=10,
        help="auto-checkpoint cadence in batches",
    )
    add_common(faults_p)
    return parser


def _make_run(args, policy_name: str, observer=None):
    data = make_dataset(args.preset, rng=args.seed, n_samples=args.samples)
    train, test = train_test_split(data, test_fraction=0.25, rng=args.seed + 1)
    model = build_model(args.model, train.dim, train.num_classes,
                        rng=args.seed + 2)
    policy = POLICIES[policy_name](args.cache_fraction, args.seed + 3)
    trainer = Trainer(
        model, train, test, policy,
        TrainerConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            prefetch_workers=getattr(args, "prefetch_workers", 0),
            clock_mode=getattr(args, "transport", "sim"),
        ),
        observer=observer,
    )
    return trainer, policy, train


def _cmd_info(args) -> int:
    print("dataset presets:")
    for name, p in DATASET_PRESETS.items():
        print(f"  {name}: n={p['n_samples']}, classes={p['n_classes']}, "
              f"dim={p['dim']}, item={p['item_nbytes'] // 1024}KB")
    print("models:")
    for name, spec in MODEL_ZOO.items():
        print(f"  {name}: embedding={spec.embedding_dim}, "
              f"stage1={spec.stage1_ms}ms stage2={spec.stage2_ms}ms "
              f"IS={spec.is_ms}ms")
    print("policies:")
    for name in sorted(POLICIES):
        print(f"  {name}")
    return 0


def _make_dp_run(args, policy_name: str, observer=None):
    """Build a DataParallelTrainer for ``--world-size > 1`` (or
    ``--shared-cache``) train invocations."""
    from repro.train.data_parallel import DataParallelTrainer

    data = make_dataset(args.preset, rng=args.seed, n_samples=args.samples)
    train, test = train_test_split(data, test_fraction=0.25, rng=args.seed + 1)

    def model_factory():
        # Fresh rng per call: every replica starts from identical weights.
        return build_model(args.model, train.dim, train.num_classes,
                           rng=args.seed + 2)

    def policy_factory(rank: int):
        seed = args.seed + 3 if args.shared_cache else args.seed + 3 + rank
        return POLICIES[policy_name](args.cache_fraction, seed)

    return DataParallelTrainer(
        model_factory, train, test, policy_factory,
        world_size=args.world_size,
        config=TrainerConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            prefetch_workers=getattr(args, "prefetch_workers", 0),
            clock_mode=args.transport,
            shared_cache=args.shared_cache,
            cache_shards=args.cache_shards,
            rpc_deadline_s=args.rpc_deadline_ms / 1e3,
            rpc_retry_budget=args.rpc_retry_budget,
            resize_shards_at=_parse_resize_at(args.resize_shards_at),
        ),
        observer=observer,
        rng=args.seed + 4,
    )


def _parse_resize_at(spec):
    """``EPOCH:COUNT`` -> (epoch, count), or None."""
    if spec is None:
        return None
    try:
        epoch_s, count_s = str(spec).split(":", 1)
        epoch, count = int(epoch_s), int(count_s)
    except ValueError:
        print(f"--resize-shards-at expects EPOCH:COUNT (got {spec!r})",
              file=sys.stderr)
        raise SystemExit(2)
    if epoch < 0 or count < 1:
        print("--resize-shards-at needs EPOCH >= 0 and COUNT >= 1",
              file=sys.stderr)
        raise SystemExit(2)
    return epoch, count


def _cmd_train(args) -> int:
    if args.cache_shards and not args.shared_cache:
        print("--cache-shards requires --shared-cache", file=sys.stderr)
        return 2
    if args.shared_cache and args.world_size < 2:
        print("--shared-cache requires --world-size >= 2", file=sys.stderr)
        return 2
    if args.resize_shards_at is not None and not args.cache_shards:
        print("--resize-shards-at requires --cache-shards", file=sys.stderr)
        return 2
    if args.rpc_deadline_ms is None:
        # Real IPC needs a far looser budget than the simulated channel.
        args.rpc_deadline_ms = 1000.0 if args.transport == "real" else 10.0
    if args.rpc_deadline_ms <= 0:
        print("--rpc-deadline-ms must be positive", file=sys.stderr)
        return 2
    if args.rpc_retry_budget < 1:
        print("--rpc-retry-budget must be >= 1", file=sys.stderr)
        return 2
    observer = None
    recorder = None
    registry = None
    if args.trace_dir is not None:
        from pathlib import Path

        from repro.obs import JsonlRecorder, MetricsRegistry, Observer
        from repro.obs.report import TRACE_FILE

        out = Path(args.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        # Fresh run: drop any stale journal (the recorder appends so a
        # checkpoint-resumed run can extend it; a new run must not).
        (out / TRACE_FILE).unlink(missing_ok=True)
        recorder = JsonlRecorder(out / TRACE_FILE)
        registry = MetricsRegistry()
        observer = Observer(
            recorder=recorder, metrics=registry, span_seed=args.seed
        )
    if args.world_size > 1:
        trainer = _make_dp_run(args, args.policy, observer=observer)
    else:
        trainer, policy, _ = _make_run(args, args.policy, observer=observer)
    result = trainer.run()
    print(f"{'epoch':>5} {'acc':>7} {'hit':>6} {'subst':>6} {'time':>7}")
    for e in result.epochs:
        print(f"{e.epoch:>5} {e.val_accuracy:>7.3f} {e.hit_ratio:>6.3f} "
              f"{e.substitute_ratio:>6.3f} {e.epoch_time_s:>6.2f}s")
    s = result.summary()
    print(f"\n{args.policy}: accuracy {s['final_accuracy']:.3f}, "
          f"mean hit {s['mean_hit_ratio']:.3f}, "
          f"simulated time {s['total_time_s']:.1f}s")
    if observer is not None:
        from repro.obs import write_run_artifacts

        recorder.close()
        write_run_artifacts(
            result,
            args.trace_dir,
            metrics_snapshot=registry.snapshot(),
            meta={
                "policy": args.policy,
                "preset": args.preset,
                "model": args.model,
                "seed": args.seed,
                "samples": args.samples,
                "epochs": args.epochs,
                "batch_size": args.batch_size,
                "cache_fraction": args.cache_fraction,
                "world_size": args.world_size,
                "shared_cache": args.shared_cache,
                "cache_shards": args.cache_shards,
                "transport": args.transport,
            },
        )
        print(f"run artifacts written to {args.trace_dir}/ "
              f"(view with `repro report {args.trace_dir}`)")
    return 0


def _cmd_report(args) -> int:
    from repro.obs import render_report

    try:
        print(render_report(args.run_dir))
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_metrics(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import render_prometheus
    from repro.obs.report import LOAD_FILE, SUMMARY_FILE

    run_dir = Path(args.run_dir)
    snapshot = None
    for name in (SUMMARY_FILE, LOAD_FILE):
        path = run_dir / name
        if path.is_file():
            snapshot = json.loads(path.read_text()).get("metrics")
            if snapshot is not None:
                break
    if snapshot is None:
        print(
            f"no metrics snapshot found under {run_dir}/ — run "
            "`repro train --trace-dir` or `repro load --trace-dir` first",
            file=sys.stderr,
        )
        return 2
    sys.stdout.write(render_prometheus(snapshot, prefix=args.prefix))
    return 0


def _cmd_compare(args) -> int:
    results = []
    for name in args.policies:
        trainer, _, _ = _make_run(args, name)
        results.append((name, trainer.run()))
        print(f"finished {name}", file=sys.stderr)
    baseline_t = max(r.total_time_s for _, r in results)
    print(f"{'policy':<16} {'hit':>6} {'acc':>7} {'time':>8} {'speedup':>8}")
    for name, r in results:
        print(f"{name:<16} {r.mean_hit_ratio:>6.3f} "
              f"{r.final_accuracy:>7.3f} {r.total_time_s:>7.1f}s "
              f"{baseline_t / r.total_time_s:>7.2f}x")
    return 0


def _cmd_trace(args) -> int:
    trainer, policy, train = _make_run(args, args.policy)
    # Train first so importance-driven policies reach their steady-state
    # sampling distribution; the recorded trace then reflects real access
    # behaviour rather than the cold uniform start.
    trainer.run()
    orders = []
    for epoch in range(args.epochs):
        orders.append(np.asarray(policy.epoch_order(epoch), dtype=np.int64))
    trace = AccessTrace(
        np.concatenate(orders), list(np.cumsum([len(o) for o in orders]))
    )
    cap = int(args.capacity * len(train))
    lru = replay(trace, LRUCache(cap)).hit_ratio
    minio = replay(trace, MinIOCache(cap)).hit_ratio
    opt = belady_hit_ratio(trace, cap)
    print(f"trace: {len(trace)} requests over {trace.n_epochs} epochs, "
          f"{trace.unique_count} unique of {len(train)} samples")
    print(f"replay at capacity {cap} ({args.capacity:.0%}):")
    print(f"  LRU        {lru:.3f}")
    print(f"  MinIO      {minio:.3f}")
    print(f"  Belady OPT {opt:.3f}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.bench.trajectory import (
        BenchConfig,
        compare_reports,
        format_report,
        latest_baseline,
        run_trajectory,
        validate_report,
    )

    overrides = {}
    for arg_name, field in [
        ("hnsw_n", "hnsw_n"), ("queries", "n_queries"),
        ("cache_ops", "cache_ops"), ("samples", "epoch_samples"),
        ("epochs", "epochs"),
    ]:
        val = getattr(args, arg_name)
        if val is not None:
            if val < 1:
                print(f"--{arg_name.replace('_', '-')} must be >= 1",
                      file=sys.stderr)
                return 2
            overrides[field] = val
    overrides["seed"] = args.seed
    cfg = BenchConfig.quick(**overrides) if args.quick else BenchConfig(**overrides)

    # Resolve the baseline *before* writing, so a fresh BENCH file in the
    # same directory can't become its own baseline.
    baseline_path = latest_baseline(Path(args.baseline_root))

    out_dir = None if args.no_write else args.out_dir
    report, path = run_trajectory(cfg, out_dir=out_dir)
    problems = validate_report(report)
    if problems:  # pragma: no cover - harness bug guard
        for p in problems:
            print(f"schema problem: {p}", file=sys.stderr)
        return 1
    print(format_report(report))
    if path is not None:
        print(f"\nwrote {path}")

    if args.check:
        if baseline_path is None:
            print("soft gate: no committed BENCH_*.json baseline found; "
                  "nothing to compare against")
            return 0
        import json as _json

        baseline = _json.loads(baseline_path.read_text())
        warnings = compare_reports(report, baseline,
                                   threshold=args.threshold)
        if not warnings:
            print(f"soft gate: OK vs {baseline_path.name} "
                  f"(threshold {args.threshold:.0%})")
        else:
            for w in warnings:
                print(f"soft gate WARNING vs {baseline_path.name}: {w}",
                      file=sys.stderr)
            if args.strict:
                return 1
    return 0


def _build_arrivals(args):
    """Map the ``--arrivals`` flag (plus rate knobs) to an ArrivalProcess."""
    from repro.load import (
        BurstyArrivals,
        ConstantArrivals,
        DiurnalArrivals,
        ModulatedArrivals,
    )

    if args.arrivals == "constant":
        return ConstantArrivals(rate=args.base_rate)
    if args.arrivals == "diurnal":
        return DiurnalArrivals(
            base_rate=args.base_rate,
            amplitude=args.diurnal_amplitude,
            period_s=args.diurnal_period_s,
        )
    bursty = BurstyArrivals(
        rate_low=args.base_rate,
        rate_high=args.burst_rate,
        mean_on_s=args.mean_on_s,
        mean_off_s=args.mean_off_s,
    )
    if args.arrivals == "bursty-diurnal":
        return ModulatedArrivals(
            bursty,
            amplitude=args.diurnal_amplitude,
            period_s=args.diurnal_period_s,
        )
    return bursty


def _cmd_load(args) -> int:
    # Validate up front with clear messages (exit 2, like other commands).
    checks = [
        (args.requests < 1, "--requests must be >= 1"),
        (args.keys < 8, "--keys must be >= 8"),
        (args.zipf_skew < 0, "--zipf-skew must be >= 0"),
        (not 0.0 <= args.put_fraction <= 1.0,
         "--put-fraction must be in [0, 1]"),
        (args.base_rate <= 0, "--base-rate must be positive"),
        (args.burst_rate <= 0, "--burst-rate must be positive"),
        (args.mean_on_s <= 0 or args.mean_off_s <= 0,
         "--mean-on-s and --mean-off-s must be positive"),
        (not 0.0 <= args.diurnal_amplitude < 1.0,
         "--diurnal-amplitude must be in [0, 1)"),
        (args.diurnal_period_s <= 0, "--diurnal-period-s must be positive"),
        (args.capacity < 1, "--capacity must be >= 1"),
        (not 0.0 <= args.imp_ratio <= 1.0, "--imp-ratio must be in [0, 1]"),
        (args.shards < 1, "--shards must be >= 1"),
        (args.window < 1, "--window must be >= 1"),
        (args.slo_ms <= 0, "--slo-ms must be positive"),
        (not 0.0 < args.slo_goal <= 1.0, "--slo-goal must be in (0, 1]"),
        (args.service_rate <= 0, "--service-rate must be positive"),
        (args.miss_ms < 0, "--miss-ms must be >= 0"),
        (args.min_shards < 1 or args.max_shards < args.min_shards,
         "need 1 <= --min-shards <= --max-shards"),
        (args.p99_low_ms <= 0 or args.p99_high_ms <= args.p99_low_ms,
         "need 0 < --p99-low-ms < --p99-high-ms (hysteresis band)"),
        (args.util_low < 0 or args.util_high <= args.util_low,
         "need 0 <= --util-low < --util-high (hysteresis band)"),
        (args.breach_windows < 1, "--breach-windows must be >= 1"),
        (args.cooldown_windows < 0, "--cooldown-windows must be >= 0"),
        (args.growth_factor <= 1.0, "--growth-factor must be > 1"),
    ]
    for bad, msg in checks:
        if bad:
            print(msg, file=sys.stderr)
            return 2

    from repro.load import (
        Autoscaler,
        AutoscalerConfig,
        ReplayConfig,
        ReplayHarness,
        SloPolicy,
        TraceConfig,
        make_trace,
        write_load_artifacts,
    )

    trace = make_trace(
        TraceConfig(
            n_requests=args.requests,
            n_keys=args.keys,
            zipf_exponent=args.zipf_skew,
            put_fraction=args.put_fraction,
        ),
        _build_arrivals(args),
        seed=args.seed,
    )
    print(f"trace: {len(trace)} requests over {trace.duration_s:.2f}s "
          f"({trace.offered_rps:.1f} req/s, {args.arrivals} arrivals, "
          f"zipf {args.zipf_skew:g}, checksum {trace.checksum()})",
          file=sys.stderr)

    observer = None
    recorder = None
    registry = None
    if args.trace_dir is not None:
        from pathlib import Path

        from repro.obs import JsonlRecorder, MetricsRegistry, Observer
        from repro.obs.report import TRACE_FILE

        out = Path(args.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / TRACE_FILE).unlink(missing_ok=True)
        recorder = JsonlRecorder(out / TRACE_FILE)
        registry = MetricsRegistry()
        observer = Observer(
            recorder=recorder, metrics=registry, span_seed=args.seed
        )

    autoscaler = None
    if not args.no_autoscale:
        autoscaler = Autoscaler(AutoscalerConfig(
            min_shards=args.min_shards,
            max_shards=args.max_shards,
            p99_high_s=args.p99_high_ms / 1e3,
            p99_low_s=args.p99_low_ms / 1e3,
            util_high=args.util_high,
            util_low=args.util_low,
            breach_windows=args.breach_windows,
            cooldown_windows=args.cooldown_windows,
            growth_factor=args.growth_factor,
        ))
    harness = ReplayHarness(
        ReplayConfig(
            total_capacity=args.capacity,
            imp_ratio=args.imp_ratio,
            n_shards=args.shards,
            transport=args.transport,
            window_requests=args.window,
            slo=SloPolicy(target_s=args.slo_ms / 1e3, goal=args.slo_goal),
            miss_latency_s=args.miss_ms / 1e3,
            service_rate_per_shard=args.service_rate,
            seed=args.seed,
        ),
        autoscaler=autoscaler,
        observer=observer,
    )
    try:
        result = harness.run(trace)
    finally:
        harness.close()
    if recorder is not None:
        recorder.close()

    lat = result.overall
    print(f"replayed {result.n_requests} requests: "
          f"p50 {lat.p50_s * 1e3:.3f}ms  p99 {lat.p99_s * 1e3:.3f}ms  "
          f"p999 {lat.p999_s * 1e3:.3f}ms  max {lat.max_s * 1e3:.3f}ms")
    verdict = "MET" if result.slo_met else "MISSED"
    print(f"SLO: {result.attainment * 100:.3f}% within {args.slo_ms:g}ms "
          f"(goal {args.slo_goal * 100:g}%) -> {verdict}")
    print(f"cache: hit_ratio {result.cache['hit_ratio']:.3f}  "
          f"dropped {result.cache['dropped_admits']}  "
          f"degraded {result.cache['degraded_lookups']}")
    print(f"autoscaler: {result.grows} grow(s), {result.shrinks} shrink(s); "
          f"shards {result.initial_shards} -> {result.final_shards} "
          f"({result.resizes_verified} resize(s) verified, "
          f"{result.moved_keys} key(s) moved)")
    for d in result.decisions:
        print(f"  window {d.window:>4}: {d.action:<6} {d.old_n} -> {d.new_n}"
              f"  ({d.reason})")
    alerts = result.alerts
    firing = alerts.get("firing", [])
    events = alerts.get("events", [])
    status = "FIRING: " + ", ".join(firing) if firing else "none firing"
    print(f"burn-rate alerts: {status} "
          f"({len(events)} transition(s))")
    for ev in events:
        print(f"  window {ev['window']:>4}: {ev['rule']:<5} "
              f"{ev['state']:<9} burn short={ev['burn_short']:.2f}x "
              f"long={ev['burn_long']:.2f}x (thr {ev['threshold']:g}x)")
    print(f"digest: {result.digest()}")
    if args.trace_dir is not None:
        write_load_artifacts(
            result, args.trace_dir,
            metrics_snapshot=(
                registry.snapshot() if registry is not None else None
            ),
        )
        print(f"run artifacts written to {args.trace_dir}/ "
              f"(view with `repro report {args.trace_dir}`)")
    return 0


def _cmd_faults(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.resilience.campaign import DEFAULT_SCENARIOS, FaultCampaign
    from repro.resilience.trainer import ResilientTrainer

    scenarios = DEFAULT_SCENARIOS
    if args.scenarios:
        by_name = {s.name: s for s in DEFAULT_SCENARIOS}
        unknown = [n for n in args.scenarios if n not in by_name]
        if unknown:
            print(f"unknown scenarios: {', '.join(unknown)} "
                  f"(available: {', '.join(sorted(by_name))})", file=sys.stderr)
            return 2
        scenarios = [by_name[n] for n in args.scenarios]

    root = Path(args.checkpoint_dir) if args.checkpoint_dir else Path(
        tempfile.mkdtemp(prefix="repro-faults-")
    )

    def make_trainer(checkpoint_dir, preemptions, restart_penalty_s):
        data = make_dataset(args.preset, rng=args.seed, n_samples=args.samples)
        train, test = train_test_split(data, test_fraction=0.25,
                                       rng=args.seed + 1)
        model = build_model(args.model, train.dim, train.num_classes,
                            rng=args.seed + 2)
        policy = POLICIES[args.policy](args.cache_fraction, args.seed + 3)
        return ResilientTrainer(
            model, train, test, policy,
            TrainerConfig(
                epochs=args.epochs,
                batch_size=args.batch_size,
                prefetch_workers=getattr(args, "prefetch_workers", 0),
            ),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every_batches=args.checkpoint_every,
            preemptions=preemptions,
            restart_penalty_s=restart_penalty_s,
        )

    campaign = FaultCampaign(make_trainer, root, scenarios)
    result = campaign.run(verbose=True,
                          log=lambda m: print(m, file=sys.stderr))
    print(result.format_table())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return {
        "info": _cmd_info,
        "train": _cmd_train,
        "compare": _cmd_compare,
        "trace": _cmd_trace,
        "load": _cmd_load,
        "faults": _cmd_faults,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "bench": _cmd_bench,
    }[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
