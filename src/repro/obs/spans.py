"""Hierarchical span tracing over the JSONL trace stream.

A *span* is a named interval on the simulated clock with a parent — the
unit every distributed tracer (Dapper, Jaeger, OpenTelemetry) uses to
answer "why was this request slow?". The repo's flat events say *that* a
fetch missed or an RPC failed; spans say *where inside which request*:

    run -> epoch -> batch -> data_load            (training topology)
    run -> window -> fetch -> rpc -> rpc_attempt  (load-harness topology)

Design constraints, in order:

* **Determinism.** Trace and span IDs are minted from the run seed via
  the same splitmix64 finalizer the consistent-hash ring uses, so two
  runs of the same configuration emit byte-identical span events. A
  sequential counter feeds the single-threaded paths; call sites inside
  worker threads pass a stable ``key`` (e.g. the sample index) so IDs
  never depend on thread interleaving.
* **Zero cost when off.** The tracker only exists when the observer was
  built with a ``span_seed``; ``NULL_OBSERVER`` and metrics-only
  observers allocate no span objects at all (asserted by tests).
* **One event per span.** A span is emitted as a single ``kind="span"``
  event when it *finishes* (parents therefore appear after their
  children in the file); reconstruction links ``parent`` -> ``id``
  after reading the whole trace, so ordering never matters.

Span event schema (see README "Observability" for the full table)::

    {"kind": "span", "trace": <16-hex>, "id": <16-hex>,
     "parent": <16-hex or null>, "name": str,
     "t0_s": float, "t1_s": float, ...kind-specific attrs}

:class:`SpanTracker` also stamps the ambient span onto every *flat*
event the observer emits (``trace``/``span`` fields), which is what
correlates breaker trips, audit decisions, and RPC counters back to the
request that caused them.

Reconstruction helpers (:func:`build_span_forest`, :func:`find_spans`,
:func:`format_span_tree`) turn a trace back into navigable trees; the
critical-path analyzer in :mod:`repro.obs.critpath` consumes them.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanTracker",
    "SpanNode",
    "build_span_forest",
    "find_spans",
    "format_span_tree",
    "span_seed_from",
]

_MASK = (1 << 64) - 1

#: Salt separating the trace-ID domain from the ring's vnode hashes
#: (both use splitmix64 over small integers).
_TRACE_SALT = 0x5350414E_54524143  # "SPANTRAC"
_KEY_SALT = 0x6B65795F_73616C74  # "key_salt"


def _splitmix64(x: int) -> int:
    """splitmix64 finalizer (mirrors ``repro.dist.ring.splitmix64``).

    Duplicated rather than imported: ``repro.obs`` is the bottom of the
    dependency stack and must not pull in ``repro.dist`` (whose modules
    import the observer).
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


def span_seed_from(seed: int) -> int:
    """Fold an arbitrary run seed into the 64-bit trace-ID domain."""
    return _splitmix64((int(seed) ^ _TRACE_SALT) & _MASK)


class Span:
    """One open interval: identity plus start time plus static attrs.

    Plain mutable object (``__slots__``, no dataclass machinery) because
    one is allocated per traced operation on the hot path.
    """

    __slots__ = ("span_id", "parent_id", "name", "t0_s", "attrs")

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        t0_s: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t0_s = t0_s
        self.attrs = attrs


class SpanTracker:
    """Mints deterministic span IDs and tracks the per-thread open stack.

    Parameters
    ----------
    seed:
        Run seed; the 16-hex ``trace_id`` and every span ID derive from
        it (same seed, same configuration => byte-identical span events).
    emit:
        Sink for finished span events — normally ``Observer.emit``-shaped
        ``(kind, **fields)``; injected to avoid an import cycle.
    """

    def __init__(self, seed: int, emit: Callable[..., None]) -> None:
        self._trace_seed = span_seed_from(seed)
        self.trace_id = format(self._trace_seed, "016x")
        self._emit = emit
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._local = threading.local()

    # -- identity ------------------------------------------------------
    def _mint(self, key: Optional[int]) -> str:
        """A 16-hex span ID: counter-based, or stable under ``key``.

        Counter IDs are deterministic only on single-threaded paths;
        worker-pool call sites must pass a stable ``key`` (the IDs then
        depend on the keys alone, not on thread interleaving).
        """
        if key is not None:
            h = _splitmix64(self._trace_seed ^ _splitmix64(int(key) ^ _KEY_SALT))
        else:
            with self._seq_lock:
                self._seq += 1
                h = _splitmix64(self._trace_seed ^ self._seq)
        return format(h, "016x")

    def _stack(self) -> List[Span]:
        """This thread's open-span stack (created on first use)."""
        st = getattr(self._local, "stack", None)
        if st is None:
            st = self._local.stack = []
        return st

    def current_id(self) -> Optional[str]:
        """The innermost open span's ID on this thread, or ``None``."""
        st = getattr(self._local, "stack", None)
        return st[-1].span_id if st else None

    # -- lifecycle -----------------------------------------------------
    def start(
        self,
        name: str,
        t0_s: float,
        key: Optional[int] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span as a child of this thread's innermost open span."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(self._mint(key), parent, name, float(t0_s), attrs)
        stack.append(span)
        return span

    def finish(self, span: Span, t1_s: float, **attrs: Any) -> None:
        """Close a span and emit its single ``kind="span"`` event.

        Closing out of order is tolerated (any still-open descendants
        are closed at the same instant) so error paths can finish an
        outer span without unwinding inner bookkeeping first.
        """
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
            self._emit_span(top, float(t1_s))
        self._emit_span(span, float(t1_s), **attrs)

    def record(
        self,
        name: str,
        t0_s: float,
        t1_s: float,
        key: Optional[int] = None,
        **attrs: Any,
    ) -> None:
        """Emit an already-finished span (no Span allocation, no stack).

        The cheap form for leaf intervals measured inline — RPC
        attempts, backoff sleeps, anti-entropy flushes.
        """
        stack = getattr(self._local, "stack", None)
        parent = stack[-1].span_id if stack else None
        self._emit(
            "span",
            trace=self.trace_id,
            id=self._mint(key),
            parent=parent,
            name=name,
            t0_s=float(t0_s),
            t1_s=float(t1_s),
            **attrs,
        )

    def _emit_span(self, span: Span, t1_s: float, **extra: Any) -> None:
        fields: Dict[str, Any] = dict(span.attrs)
        fields.update(extra)
        self._emit(
            "span",
            trace=self.trace_id,
            id=span.span_id,
            parent=span.parent_id,
            name=span.name,
            t0_s=span.t0_s,
            t1_s=t1_s,
            **fields,
        )


# ----------------------------------------------------------------------
# Reconstruction: trace events -> span trees
# ----------------------------------------------------------------------

class SpanNode:
    """One reconstructed span with links to its children.

    ``event`` is the raw trace dict; convenience properties expose the
    schema fields. Children are sorted by start time.
    """

    __slots__ = ("event", "children")

    def __init__(self, event: Dict[str, Any]) -> None:
        self.event = event
        self.children: List["SpanNode"] = []

    @property
    def span_id(self) -> str:
        return self.event["id"]

    @property
    def parent_id(self) -> Optional[str]:
        return self.event.get("parent")

    @property
    def name(self) -> str:
        return self.event.get("name", "?")

    @property
    def t0_s(self) -> float:
        return float(self.event.get("t0_s", 0.0))

    @property
    def t1_s(self) -> float:
        return float(self.event.get("t1_s", self.t0_s))

    @property
    def dur_s(self) -> float:
        return max(0.0, self.t1_s - self.t0_s)

    def attrs(self) -> Dict[str, Any]:
        """Kind-specific attributes (everything outside the schema core)."""
        core = {"kind", "epoch", "trace", "id", "parent", "name", "t0_s", "t1_s"}
        return {k: v for k, v in self.event.items() if k not in core}

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_forest(
    events: Iterable[Dict[str, Any]],
) -> Tuple[List[SpanNode], Dict[str, SpanNode]]:
    """Link ``kind="span"`` events into trees.

    Returns ``(roots, by_id)``. Roots are spans with no parent *or*
    whose parent never closed (a crashed writer loses open ancestors —
    their finished descendants still reconstruct as orphan roots).
    Event order in the file is irrelevant.
    """
    by_id: Dict[str, SpanNode] = {}
    for ev in events:
        if ev.get("kind") == "span":
            by_id[ev["id"]] = SpanNode(ev)
    roots: List[SpanNode] = []
    for node in by_id.values():
        parent = by_id.get(node.parent_id) if node.parent_id else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in by_id.values():
        node.children.sort(key=lambda n: (n.t0_s, n.t1_s, n.span_id))
    roots.sort(key=lambda n: (n.t0_s, n.t1_s, n.span_id))
    return roots, by_id


def find_spans(
    roots: Iterable[SpanNode],
    name: Optional[str] = None,
    **attrs: Any,
) -> List[SpanNode]:
    """All spans (from the given roots down) matching name and attrs.

    ``attrs`` match against the raw event dict, so e.g.
    ``find_spans(roots, "fetch", requested_id=17)`` pinpoints one
    request's tree in a load run.
    """
    out: List[SpanNode] = []
    for root in roots:
        for node in root.walk():
            if name is not None and node.name != name:
                continue
            if all(node.event.get(k) == v for k, v in attrs.items()):
                out.append(node)
    return out


def format_span_tree(node: SpanNode, max_attrs: int = 4) -> str:
    """Render one span tree as an indented text block.

    The human-readable form of the acceptance criterion: a request's
    full causal story (every stage, every RPC attempt, its error) as a
    tree.
    """
    lines: List[str] = []

    def fmt(n: SpanNode, depth: int) -> None:
        attrs = n.attrs()
        shown = sorted(attrs.items())[:max_attrs]
        suffix = (
            " [" + " ".join(f"{k}={v}" for k, v in shown) + "]" if shown else ""
        )
        lines.append(
            "%s%s %.6fs (t=%.6f..%.6f)%s"
            % ("  " * depth, n.name, n.dur_s, n.t0_s, n.t1_s, suffix)
        )
        for child in n.children:
            fmt(child, depth + 1)

    fmt(node, 0)
    return "\n".join(lines)
