"""The Observer: one object binding a trace recorder and a metrics registry.

Instrumented components (:class:`~repro.core.semantic_cache.SemanticCache`,
the cache layers, :class:`~repro.storage.backends.RemoteStore`, the elastic
manager, the circuit breaker, both trainers) hold an ``Observer`` reference
— :data:`NULL_OBSERVER` by default — and guard every hook call with
``if obs.active:``. The null observer's ``active`` is False, so an
un-instrumented run pays one attribute read per operation and nothing
else; no events are built, no metrics are touched.

A live observer does two things per hook:

* increments/updates the relevant :class:`~repro.obs.metrics.MetricsRegistry`
  instruments (always, when active);
* emits a structured trace event (only when its recorder is enabled).

The observer also carries the little cross-component context the event
schema needs: the trainer's current epoch, the configured cache-hit
latency, and the simulated latency of the most recent remote store fetch
(consumed by the enclosing cache-fetch event).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import SPAN_BUCKETS_S, MetricsRegistry
from repro.obs.spans import Span, SpanTracker
from repro.obs.trace import NullRecorder, TraceRecorder

__all__ = ["Observer", "NULL_OBSERVER"]


class Observer:
    """Bundles a :class:`TraceRecorder` and a :class:`MetricsRegistry`.

    Parameters
    ----------
    recorder:
        Trace sink; defaults to a :class:`NullRecorder` (metrics-only
        observation).
    metrics:
        Registry to publish into; defaults to a fresh one.
    active:
        Master switch. ``False`` builds the shared null observer —
        instrumented sites check this before calling any hook.
    span_seed:
        When given, attaches a :class:`~repro.obs.spans.SpanTracker`
        minting deterministic trace/span IDs from this seed; span hooks
        become live and every emitted event gains ``trace``/``span``
        correlation fields. ``None`` (the default) allocates no span
        machinery at all.
    """

    def __init__(
        self,
        recorder: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        active: bool = True,
        span_seed: Optional[int] = None,
    ) -> None:
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.active = bool(active)
        self.epoch = -1  # current trainer epoch; -1 outside a run
        self.hit_latency_s = 0.0  # set by the trainer from its config
        self._pending_store_latency_s = 0.0
        self.spans: Optional[SpanTracker] = None
        if span_seed is not None:
            self.enable_spans(span_seed)

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Emit one trace event stamped with the current epoch.

        With span tracing enabled, every event is additionally stamped
        with the trace ID and the innermost open span on the calling
        thread — the correlation that ties breaker trips, audit
        decisions, and window stats back to the request causing them.
        """
        if self.recorder.enabled:
            event: Dict[str, Any] = {"kind": kind, "epoch": self.epoch}
            tracker = self.spans
            if tracker is not None and kind != "span":
                event["trace"] = tracker.trace_id
                current = tracker.current_id()
                if current is not None:
                    event["span"] = current
            event.update(fields)
            self.recorder.emit(event)

    def set_epoch(self, epoch: int) -> None:
        """Advance the epoch stamp applied to subsequent events."""
        self.epoch = int(epoch)

    def close(self) -> None:
        """Close the underlying recorder (flushes JSONL sinks)."""
        self.recorder.close()

    # -- spans ----------------------------------------------------------
    def enable_spans(self, seed: int) -> SpanTracker:
        """Attach a deterministic span tracker (idempotent per seed)."""
        self.spans = SpanTracker(seed, self.emit)
        return self.spans

    def span_start(self, name: str, t0_s: float,
                   key: Optional[int] = None, **attrs: Any) -> Optional[Span]:
        """Open a child span; ``None`` when span tracing is disabled.

        Call sites keep the uniform shape
        ``span = obs.span_start(...) if obs.active else None`` and later
        ``obs.span_end(span, t)`` — both collapse to no-ops (and no
        allocations) without a tracker.
        """
        tracker = self.spans
        if tracker is None:
            return None
        return tracker.start(name, t0_s, key=key, **attrs)

    def span_end(self, span: Optional[Span], t1_s: float,
                 **attrs: Any) -> None:
        """Close a span from :meth:`span_start` (no-op on ``None``)."""
        tracker = self.spans
        if tracker is None or span is None:
            return
        tracker.finish(span, t1_s, **attrs)
        self.metrics.histogram(
            f"span.{span.name}_s", bounds=SPAN_BUCKETS_S
        ).observe(max(0.0, float(t1_s) - span.t0_s))

    def span_record(self, name: str, t0_s: float, t1_s: float,
                    key: Optional[int] = None, **attrs: Any) -> None:
        """Emit an already-measured leaf span (no-op when disabled)."""
        tracker = self.spans
        if tracker is None:
            return
        tracker.record(name, t0_s, t1_s, key=key, **attrs)
        self.metrics.histogram(
            f"span.{name}_s", bounds=SPAN_BUCKETS_S
        ).observe(max(0.0, float(t1_s) - float(t0_s)))

    # -- store ----------------------------------------------------------
    def on_store_fetch(self, index: int, nbytes: int, latency_s: float) -> None:
        """A remote-store fetch completed (real simulated I/O).

        The latency accumulates until the enclosing cache fetch (or
        prefetch) consumes it, so retry stacks charging multiple inner
        fetches per logical request aggregate correctly.
        """
        m = self.metrics
        m.counter("store.fetches").inc()
        m.counter("store.bytes_fetched").inc(nbytes)
        m.histogram("store.fetch_latency_s").observe(latency_s)
        self._pending_store_latency_s += latency_s

    def take_store_latency(self) -> float:
        """Consume (and zero) the accumulated remote-fetch latency."""
        lat = self._pending_store_latency_s
        self._pending_store_latency_s = 0.0
        return lat

    # -- cache hierarchy -------------------------------------------------
    def on_fetch(self, requested_id: int, served_id: int, source: Any) -> None:
        """One request went through ``SemanticCache.fetch``.

        ``source`` is a :class:`~repro.core.semantic_cache.FetchSource`;
        remote fetches attach the store latency accumulated since the
        last consume, cache serves attach the configured hit latency.
        """
        src = getattr(source, "value", str(source))
        if src == "remote":
            latency_s = self.take_store_latency()
        elif src == "skipped":
            latency_s = 0.0
        else:
            latency_s = self.hit_latency_s
        m = self.metrics
        m.counter("cache.fetches").inc()
        m.counter(f"cache.fetch.{src}").inc()
        m.histogram("cache.fetch_latency_s").observe(latency_s)
        self.emit(
            "fetch",
            requested_id=int(requested_id),
            served_id=int(served_id),
            source=src,
            latency_s=latency_s,
        )

    def on_prefetch(self, index: int, admitted: bool) -> None:
        """An importance-driven prefetch fetched (and possibly admitted)."""
        latency_s = self.take_store_latency()
        self.metrics.counter("cache.prefetches").inc()
        self.emit(
            "prefetch", index=int(index), admitted=bool(admitted),
            latency_s=latency_s,
        )

    def on_prefetch_window(
        self, size: int, sum_s: float, charged_s: float
    ) -> None:
        """The prefetching loader committed one overlapped fetch window.

        ``sum_s`` is what the window's fetches would have cost serially;
        ``charged_s`` (the max) is what the clock actually paid. The gap
        is the overlap saving (Fig. 12's pipelining win).
        """
        m = self.metrics
        m.counter("prefetch.windows").inc()
        m.counter("prefetch.overlap_saved_s").inc(sum_s - charged_s)
        m.gauge("prefetch.window_size").set(size)
        self.emit(
            "prefetch_window",
            size=int(size),
            sum_s=float(sum_s),
            charged_s=float(charged_s),
            saved_s=float(sum_s - charged_s),
        )

    def on_admit(
        self,
        key: int,
        score: float,
        admitted: bool,
        evicted_key: Optional[int],
    ) -> None:
        """The Importance Cache decided on a freshly fetched sample."""
        m = self.metrics
        m.counter("importance.admitted" if admitted else "importance.rejected").inc()
        if evicted_key is not None:
            m.counter("importance.evictions").inc()
        self.emit(
            "importance_admit",
            key=int(key),
            score=float(score),
            admitted=bool(admitted),
            evicted_key=None if evicted_key is None else int(evicted_key),
        )

    def on_evict(self, layer: str, key: int, reason: str) -> None:
        """A cache layer evicted a resident outside the admit path
        (FIFO turnover, elastic shrink)."""
        self.metrics.counter(f"{layer}.evictions").inc()
        self.emit("evict", layer=layer, key=int(key), reason=reason)

    def on_homophily_insert(self, key: int, n_neighbors: int) -> None:
        """The Homophily Cache inserted a batch's top-degree node."""
        self.metrics.counter("homophily.insertions").inc()
        self.emit(
            "homophily_insert", key=int(key), n_neighbors=int(n_neighbors)
        )

    def on_degraded(self, requested_id: int, served_id: Optional[int]) -> None:
        """Degraded mode served a widened substitute (or skipped)."""
        m = self.metrics
        if served_id is None:
            m.counter("degraded.skipped").inc()
        else:
            m.counter("degraded.substituted").inc()

    def on_audit(
        self,
        action: str,
        key: int,
        layer: str,
        score: Optional[float] = None,
        threshold: Optional[float] = None,
        requested_id: Optional[int] = None,
        reason: Optional[str] = None,
    ) -> None:
        """A cache made an auditable per-entry decision.

        The audit family records *why*, not just *that*: ``action`` is
        ``"evict"`` / ``"substitute"`` / ``"drop"``, with the ``score``
        the entry held and the ``threshold`` it was measured against
        (e.g. the importance heap's current minimum). With span tracing
        on, events carry the trace/span of the request that forced the
        decision — the per-decision dataset the calibrated-substitution
        work (ROADMAP item 3) consumes.
        """
        m = self.metrics
        m.counter(f"audit.{action}").inc()
        fields: Dict[str, Any] = {
            "action": action, "key": int(key), "layer": layer,
        }
        if score is not None:
            fields["score"] = float(score)
        if threshold is not None:
            fields["threshold"] = float(threshold)
        if requested_id is not None:
            fields["requested_id"] = int(requested_id)
        if reason is not None:
            fields["reason"] = reason
        self.emit("audit", **fields)

    # -- elastic manager -------------------------------------------------
    def on_elastic(self, epoch: int, beta: int, u: float, imp_ratio: float) -> None:
        """The Elastic Cache Manager produced one epoch's decision."""
        m = self.metrics
        m.gauge("elastic.beta").set(beta)
        m.gauge("elastic.u").set(u)
        m.gauge("elastic.imp_ratio").set(imp_ratio)
        self.emit(
            "elastic", decision_epoch=int(epoch), beta=int(beta),
            u=float(u), imp_ratio=float(imp_ratio),
        )

    # -- sharded cache service -------------------------------------------
    def on_rpc(
        self,
        shard: int,
        method: str,
        latency_s: float,
        ok: bool = True,
        error: Optional[str] = None,
    ) -> None:
        """One cache-protocol RPC attempt finished (metrics only: flat
        per-call trace events would dwarf the fetch stream — with span
        tracing enabled the channel records per-attempt ``rpc_attempt``
        spans instead, which carry the same classification plus causal
        context).

        ``ok=False`` marks a failed attempt; ``error`` carries its
        classification (``"outage"`` — the call never executed — or
        ``"timeout"`` — ambiguous, it may have executed server-side).
        """
        m = self.metrics
        m.counter("rpc.calls").inc()
        m.counter(f"rpc.shard{int(shard)}.calls").inc()
        if not ok:
            m.counter("rpc.failures").inc()
            m.counter(f"rpc.shard{int(shard)}.failures").inc()
            if error:
                m.counter(f"rpc.errors.{error}").inc()
        m.histogram(
            "rpc.latency_s", bounds=(1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
        ).observe(float(latency_s))

    def on_resize(self, old_n: int, new_n: int, planned_moves: int) -> None:
        """A live ring resize began (key migration planned)."""
        m = self.metrics
        m.counter("resize.started").inc()
        m.counter("resize.planned_moves").inc(planned_moves)
        m.gauge("resize.n_shards").set(new_n)
        self.emit(
            "resize", old_n_shards=int(old_n), new_n_shards=int(new_n),
            planned_moves=int(planned_moves),
        )

    def on_shards(self, snapshots: List[Dict[str, Any]]) -> None:
        """Per-epoch shard-service snapshot (occupancy, stats, breakers)."""
        m = self.metrics
        for snap in snapshots:
            sid = int(snap["shard"])
            m.gauge(f"shard{sid}.imp_len").set(snap["imp_len"])
            m.gauge(f"shard{sid}.hom_len").set(snap["hom_len"])
        self.emit("shards", shards=list(snapshots))

    # -- load harness ----------------------------------------------------
    def on_load_window(
        self,
        window: int,
        n: int,
        p50_s: float,
        p99_s: float,
        p999_s: float,
        attainment: float,
        offered_rps: float,
        utilization: float,
        n_shards: int,
    ) -> None:
        """The replay harness closed one request window."""
        m = self.metrics
        m.counter("load.windows").inc()
        m.counter("load.requests").inc(n)
        m.gauge("load.p99_s").set(p99_s)
        m.gauge("load.attainment").set(attainment)
        m.gauge("load.utilization").set(utilization)
        m.gauge("load.n_shards").set(n_shards)
        self.emit(
            "load_window",
            window=int(window),
            n=int(n),
            p50_s=float(p50_s),
            p99_s=float(p99_s),
            p999_s=float(p999_s),
            attainment=float(attainment),
            offered_rps=float(offered_rps),
            utilization=float(utilization),
            n_shards=int(n_shards),
        )

    def on_autoscale(
        self,
        action: str,
        old_n: int,
        new_n: int,
        window: int,
        reason: str,
        p99_s: float,
        utilization: float,
    ) -> None:
        """The autoscaler issued a grow/shrink decision during replay."""
        m = self.metrics
        m.counter("autoscale.decisions").inc()
        m.counter(f"autoscale.{action}").inc()
        m.gauge("autoscale.n_shards").set(new_n)
        self.emit(
            "autoscale",
            action=action,
            old_n_shards=int(old_n),
            new_n_shards=int(new_n),
            window=int(window),
            reason=reason,
            p99_s=float(p99_s),
            utilization=float(utilization),
        )

    def on_alert(
        self,
        rule: str,
        state: str,
        window: int,
        burn_short: float,
        burn_long: float,
        threshold: float,
    ) -> None:
        """A burn-rate alert rule changed state during load replay.

        ``state`` is ``"firing"`` or ``"resolved"``; the burn rates are
        the short- and long-lookback error-budget consumption multiples
        that crossed (or fell back under) the rule's threshold.
        """
        m = self.metrics
        m.counter("alerts.transitions").inc()
        if state == "firing":
            m.counter(f"alerts.{rule}.firing").inc()
        m.gauge(f"alerts.{rule}.burn_short").set(burn_short)
        m.gauge(f"alerts.{rule}.burn_long").set(burn_long)
        self.emit(
            "alert",
            rule=rule,
            state=state,
            window=int(window),
            burn_short=float(burn_short),
            burn_long=float(burn_long),
            threshold=float(threshold),
        )

    # -- resilience ------------------------------------------------------
    def on_breaker(
        self, old: str, new: str, at_s: float, where: Optional[str] = None
    ) -> None:
        """The circuit breaker changed state.

        ``where`` names the guarded resource (e.g. ``"shard3"``) when
        the owner labeled its breaker; with span tracing on, the emitted
        event's trace/span stamp ties the trip to the RPC that caused it.
        """
        m = self.metrics
        m.counter("breaker.transitions").inc()
        if new == "open":
            m.counter("breaker.opens").inc()
        if where is None:
            self.emit("breaker", old=old, new=new, at_s=float(at_s))
        else:
            self.emit(
                "breaker", old=old, new=new, at_s=float(at_s), where=where
            )

    def on_checkpoint(self, path: str, epoch: int, batch: int) -> None:
        """A checkpoint archive was written."""
        self.metrics.counter("checkpoint.written").inc()
        self.emit("checkpoint", path=path, at_epoch=int(epoch), batch=int(batch))

    def on_restore(self, path: str, epoch: int, batch: int) -> None:
        """Training state was restored from a checkpoint archive.

        Fetch/batch events between this event and the preceding
        checkpoint event are replays — aggregators counting a faulted
        run's trace must deduplicate on (epoch, batch) or treat the
        journal as history, not tally.
        """
        self.metrics.counter("checkpoint.restored").inc()
        self.emit("restore", path=path, at_epoch=int(epoch), batch=int(batch))

    # -- trainer ---------------------------------------------------------
    def on_run_start(self, meta: Dict[str, Any]) -> None:
        """A training run began; ``meta`` records its configuration."""
        self.emit("run_start", **meta)

    def on_batch(
        self,
        slot: int,
        size: int,
        trained_fraction: float,
        compute_s: float,
        preprocess_s: float,
        is_visible_s: float,
    ) -> None:
        """One (non-empty) batch finished training."""
        m = self.metrics
        m.counter("train.batches").inc()
        m.counter("train.samples").inc(size)
        self.emit(
            "batch",
            slot=int(slot),
            size=int(size),
            trained_fraction=float(trained_fraction),
            compute_s=float(compute_s),
            preprocess_s=float(preprocess_s),
            is_visible_s=float(is_visible_s),
        )

    def on_epoch_metrics(self, metrics: Dict[str, Any]) -> None:
        """An epoch completed; ``metrics`` is the EpochMetrics as a dict."""
        m = self.metrics
        m.histogram(
            "train.epoch_time_s", bounds=(0.1, 1.0, 10.0, 60.0, 600.0, 3600.0)
        ).observe(float(metrics.get("epoch_time_s", 0.0)))
        for key in ("val_accuracy", "hit_ratio", "train_loss"):
            if metrics.get(key) is not None:
                m.gauge(f"train.{key}").set(float(metrics[key]))
        self.emit("epoch", **metrics)


#: Shared inert observer; ``active`` is False so instrumented sites skip
#: every hook. Components default to this — never mutate it.
NULL_OBSERVER = Observer(active=False)
