"""Run reporting: trace aggregation, artifact export, table rendering.

Three layers:

* :func:`aggregate_trace` folds a trace's ``fetch``/``prefetch``/``batch``
  events into per-epoch totals that reproduce the trainer's
  :class:`~repro.train.metrics.EpochMetrics` numbers exactly (hit ratios
  from fetch sources; stage times from per-batch costs plus the run's
  ``io_workers``/``hit_latency_s`` recorded in the ``run_start`` event);
* :func:`write_run_artifacts` exports a finished run as ``epochs.jsonl``
  (one JSON object per epoch) and ``summary.json`` (run summary + metrics
  registry snapshot + provenance metadata) next to the optional
  ``trace.jsonl``;
* :func:`render_report` reads those artifacts back and renders the
  hit-rate / substitution / stage-time / elastic-ratio tables the
  ``repro report`` CLI prints — including a trace-vs-metrics consistency
  check when a trace is present.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.critpath import critpath_lines
from repro.obs.trace import SEGMENT_KIND, read_jsonl
from repro.train.metrics import TrainResult

__all__ = [
    "EpochAggregate",
    "aggregate_trace",
    "write_run_artifacts",
    "render_report",
    "TRACE_FILE",
    "EPOCHS_FILE",
    "SUMMARY_FILE",
    "LOAD_FILE",
]

TRACE_FILE = "trace.jsonl"
EPOCHS_FILE = "epochs.jsonl"
SUMMARY_FILE = "summary.json"
LOAD_FILE = "load.json"  # written by repro.load.replay.write_load_artifacts


@dataclass
class EpochAggregate:
    """Per-epoch totals reconstructed from a trace.

    Mirrors the accounting in ``Trainer._run_epoch``: degraded serves are
    tracked separately and excluded from ``requests``/``hit_ratio`` (they
    are availability events, not cache performance).
    """

    epoch: int
    exact_hits: int = 0
    substitute_hits: int = 0
    misses: int = 0
    degraded_serves: int = 0
    skipped: int = 0
    prefetches: int = 0
    n_batches: int = 0
    n_samples: int = 0
    remote_latency_s: float = 0.0
    prefetch_latency_s: float = 0.0  # importance-prefetch slice of the above
    prefetch_windows: int = 0  # overlapped windows (prefetching loader)
    overlap_charged_s: float = 0.0  # max-of-window charges actually paid
    overlap_saved_s: float = 0.0  # serial sum minus charged
    hit_serves: int = 0  # serves charged the in-memory hit latency
    compute_s: float = 0.0
    preprocess_s: float = 0.0
    is_visible_s: float = 0.0
    data_load_s: float = 0.0  # derived; needs io_workers + hit latency

    @property
    def requests(self) -> int:
        """Cache requests entering the hit-ratio denominator."""
        return self.exact_hits + self.substitute_hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Total hit ratio including substitutions (degraded excluded)."""
        req = self.requests
        return (self.exact_hits + self.substitute_hits) / req if req else 0.0

    @property
    def exact_hit_ratio(self) -> float:
        """Exact-hit fraction of requests."""
        req = self.requests
        return self.exact_hits / req if req else 0.0

    @property
    def substitute_ratio(self) -> float:
        """Substitution fraction of requests."""
        req = self.requests
        return self.substitute_hits / req if req else 0.0

    @property
    def epoch_time_s(self) -> float:
        """Fig.-2 stage sum (matches ``EpochMetrics.epoch_time_s``)."""
        return self.data_load_s + self.compute_s + self.is_visible_s + self.preprocess_s


def aggregate_trace(
    events: Union[str, Path, Iterable[Dict[str, Any]]],
    io_workers: Optional[int] = None,
    hit_latency_s: Optional[float] = None,
) -> List[EpochAggregate]:
    """Fold trace events into per-epoch aggregates, ordered by epoch.

    ``io_workers``/``hit_latency_s`` default to the values in the trace's
    ``run_start`` event (and to ``1``/``0.0`` if neither source has
    them). Traces containing ``restore`` events re-count replayed batches
    — aggregate clean runs, or dedupe first.
    """
    if isinstance(events, (str, Path)):
        events = read_jsonl(events)
    per_epoch: Dict[int, EpochAggregate] = {}
    prefetch_workers = 0

    def agg(epoch: int) -> EpochAggregate:
        a = per_epoch.get(epoch)
        if a is None:
            a = per_epoch[epoch] = EpochAggregate(epoch=epoch)
        return a

    for ev in events:
        kind = ev.get("kind")
        if kind == "run_start":
            if io_workers is None and "io_workers" in ev:
                io_workers = int(ev["io_workers"])
            if hit_latency_s is None and "hit_latency_s" in ev:
                hit_latency_s = float(ev["hit_latency_s"])
            if "prefetch_workers" in ev:
                prefetch_workers = int(ev["prefetch_workers"])
            continue
        a = agg(int(ev.get("epoch", -1)))
        if kind == "fetch":
            src = ev["source"]
            if src == "importance":
                a.exact_hits += 1
                a.hit_serves += 1
            elif src == "homophily":
                if ev["served_id"] == ev["requested_id"]:
                    a.exact_hits += 1
                else:
                    a.substitute_hits += 1
                a.hit_serves += 1
            elif src == "remote":
                a.misses += 1
                a.remote_latency_s += float(ev.get("latency_s", 0.0))
            elif src == "degraded":
                a.degraded_serves += 1
                a.hit_serves += 1
            elif src == "skipped":
                a.misses += 1
                a.skipped += 1
        elif kind == "prefetch":
            a.prefetches += 1
            a.remote_latency_s += float(ev.get("latency_s", 0.0))
            a.prefetch_latency_s += float(ev.get("latency_s", 0.0))
        elif kind == "prefetch_window":
            a.prefetch_windows += 1
            a.overlap_charged_s += float(ev.get("charged_s", 0.0))
            a.overlap_saved_s += float(ev.get("saved_s", 0.0))
        elif kind == "batch":
            a.n_batches += 1
            a.n_samples += int(ev.get("size", 0))
            a.compute_s += float(ev.get("compute_s", 0.0))
            a.preprocess_s += float(ev.get("preprocess_s", 0.0))
            a.is_visible_s += float(ev.get("is_visible_s", 0.0))

    # Prefetch runs replace the io_workers divisor with max-of-window
    # accounting (mirrors Trainer._run_epoch's load_div); the raw stage
    # total those runs paid is the windows' charged time plus whatever
    # was charged outside a window (importance prefetches).
    workers = 1 if prefetch_workers > 0 else (io_workers if io_workers else 1)
    hit_lat = hit_latency_s if hit_latency_s is not None else 0.0
    out = [per_epoch[e] for e in sorted(per_epoch) if e >= 0]
    for a in out:
        if a.prefetch_windows:
            raw = a.overlap_charged_s + a.prefetch_latency_s
        else:
            raw = a.remote_latency_s / workers
        a.data_load_s = raw + a.hit_serves * hit_lat
    return out


# ----------------------------------------------------------------------
def write_run_artifacts(
    result: TrainResult,
    out_dir: Union[str, Path],
    metrics_snapshot: Optional[Dict[str, Any]] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Export a run as ``epochs.jsonl`` + ``summary.json`` under ``out_dir``.

    Returns the output directory. ``metrics_snapshot`` is a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`; ``meta`` holds
    provenance (seed, argv, preset) for the reproducibility report.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    run_info = {
        "policy": result.policy_name,
        "model": result.model_name,
        "dataset": result.dataset_name,
    }
    with (out / EPOCHS_FILE).open("w") as fh:
        for e in result.epochs:
            row = dict(run_info)
            row.update(dataclasses.asdict(e))
            json.dump(row, fh, separators=(",", ":"))
            fh.write("\n")
    summary = dict(run_info)
    summary["summary"] = result.summary() if result.epochs else {}
    if metrics_snapshot is not None:
        summary["metrics"] = metrics_snapshot
    if meta is not None:
        summary["meta"] = meta
    (out / SUMMARY_FILE).write_text(json.dumps(summary, indent=2, sort_keys=True))
    return out


# ----------------------------------------------------------------------
def _fmt(value: Any, spec: str) -> str:
    """Format one table cell, mapping ``None`` to a dash."""
    if value is None:
        return "-"
    return format(value, spec)


def _epoch_rows(epochs: List[Dict[str, Any]]) -> List[str]:
    """Render the per-epoch hit-rate / stage-time table."""
    header = (
        f"{'epoch':>5} {'acc':>7} {'hit':>6} {'exact':>6} {'subst':>6} "
        f"{'load_s':>8} {'comp_s':>8} {'is_s':>7} {'prep_s':>7} "
        f"{'time_s':>8} {'imp_r':>6}"
    )
    lines = [header, "-" * len(header)]
    for e in epochs:
        lines.append(
            f"{e['epoch']:>5} {_fmt(e.get('val_accuracy'), '.3f'):>7} "
            f"{_fmt(e.get('hit_ratio'), '.3f'):>6} "
            f"{_fmt(e.get('exact_hit_ratio'), '.3f'):>6} "
            f"{_fmt(e.get('substitute_ratio'), '.3f'):>6} "
            f"{_fmt(e.get('data_load_s'), '.3f'):>8} "
            f"{_fmt(e.get('compute_s'), '.3f'):>8} "
            f"{_fmt(e.get('is_visible_s'), '.3f'):>7} "
            f"{_fmt(e.get('preprocess_s', 0.0), '.3f'):>7} "
            f"{_fmt(e.get('epoch_time_s'), '.3f'):>8} "
            f"{_fmt(e.get('imp_ratio'), '.3f'):>6}"
        )
    return lines


def _trace_section(trace_path: Path, epochs: List[Dict[str, Any]]) -> List[str]:
    """Render trace-derived tables plus the consistency check."""
    events, truncated = read_jsonl(trace_path, return_truncated=True)
    lines: List[str] = []
    by_kind: Dict[str, int] = {}
    for ev in events:
        by_kind[ev.get("kind", "?")] = by_kind.get(ev.get("kind", "?"), 0) + 1
    lines.append(f"trace: {len(events)} events "
                 f"({', '.join(f'{k}={v}' for k, v in sorted(by_kind.items()))})")
    segments = by_kind.get(SEGMENT_KIND, 0)
    if segments > 1:
        lines.append(
            f"  stitched from {segments} segments (resumed/appended run)"
        )
    if truncated:
        lines.append(
            "  note: final trace line was truncated mid-write and dropped"
        )

    elastic = [e for e in events if e.get("kind") == "elastic"]
    if elastic:
        lines.append("elastic decisions (epoch beta u imp_ratio):")
        for ev in elastic:
            lines.append(
                f"  {ev['decision_epoch']:>4} {ev['beta']:>2} "
                f"{ev['u']:>6.3f} {ev['imp_ratio']:>6.3f}"
            )
    breaker = [e for e in events if e.get("kind") == "breaker"]
    if breaker:
        lines.append("breaker transitions:")
        for ev in breaker:
            lines.append(f"  t={ev['at_s']:>9.3f}s {ev['old']} -> {ev['new']}")
    # RPC spans tag which carrier served each attempt (sim oracle vs real
    # worker processes), so a trace is self-describing about its mode.
    rpc_by_transport: Dict[str, int] = {}
    for ev in events:
        if ev.get("kind") == "span" and "transport" in ev \
                and str(ev.get("name", "")).startswith("rpc"):
            t = str(ev["transport"])
            rpc_by_transport[t] = rpc_by_transport.get(t, 0) + 1
    if rpc_by_transport:
        lines.append(
            "rpc transport: "
            + "  ".join(f"{k}={v} attempt(s)"
                        for k, v in sorted(rpc_by_transport.items()))
        )
    degraded = sum(
        1 for e in events
        if e.get("kind") == "fetch" and e.get("source") == "degraded"
    )
    skipped = sum(
        1 for e in events
        if e.get("kind") == "fetch" and e.get("source") == "skipped"
    )
    if degraded or skipped:
        lines.append(f"degraded serving: {degraded} substituted, {skipped} skipped "
                     "(excluded from hit ratios)")
    windows = [e for e in events if e.get("kind") == "prefetch_window"]
    if windows:
        charged = sum(float(e.get("charged_s", 0.0)) for e in windows)
        saved = sum(float(e.get("saved_s", 0.0)) for e in windows)
        lines.append(
            f"prefetch overlap: {len(windows)} window(s), "
            f"charged {charged:.3f}s, saved {saved:.3f}s"
        )

    audits = [e for e in events if e.get("kind") == "audit"]
    if audits:
        by_action: Dict[str, int] = {}
        for ev in audits:
            k = f"{ev.get('action', '?')}/{ev.get('layer', '?')}"
            by_action[k] = by_action.get(k, 0) + 1
        lines.append(
            "cache decisions (audit): "
            + "  ".join(f"{k}={v}" for k, v in sorted(by_action.items()))
        )

    cp = critpath_lines(events)
    if cp:
        lines.append("critical path (per-group self-time):")
        lines.extend(cp)

    resizes = [e for e in events if e.get("kind") == "resize"]
    if resizes:
        lines.append("ring resizes:")
        for ev in resizes:
            lines.append(
                f"  epoch {ev.get('epoch', '?'):>3}: "
                f"{ev['old_n_shards']} -> {ev['new_n_shards']} shards "
                f"({ev['planned_moves']} key move(s) planned)"
            )

    shard_events = [e for e in events if e.get("kind") == "shards"]
    if shard_events:
        # Per-epoch snapshots are cumulative; the last one is the run's
        # final shard-service state.
        final = shard_events[-1].get("shards", [])
        header = (
            f"  {'shard':>5} {'imp':>5} {'hom':>5} {'imp_hit':>8} "
            f"{'hom_hit':>8} {'subst':>6} {'rpc':>7} {'fail':>5} "
            f"{'drops':>5} {'breaker':>9}"
        )
        lines.append("shards (final state):")
        lines.append(header)
        for s in final:
            lines.append(
                f"  {s.get('shard', '?'):>5} {s.get('imp_len', 0):>5} "
                f"{s.get('hom_len', 0):>5} {s.get('imp_hits', 0):>8} "
                f"{s.get('hom_hits', 0):>8} {s.get('hom_substitute_hits', 0):>6} "
                f"{s.get('rpc_calls', 0):>7} "
                f"{s.get('rpc_failures', 0) + s.get('rpc_fast_failures', 0):>5} "
                f"{s.get('dropped_admits', 0):>5} "
                f"{s.get('breaker', '?'):>9}"
            )

    if not epochs:
        # Load-only run directory: no per-epoch metrics to check against.
        return lines

    restores = by_kind.get("restore", 0)
    if restores:
        lines.append(f"consistency check skipped: {restores} restore event(s) — "
                     "replayed batches appear twice in the journal")
        return lines

    run_start = next((e for e in events if e.get("kind") == "run_start"), None)
    if run_start is not None and int(run_start.get("world_size", 1)) > 1:
        lines.append(
            "consistency check skipped: multi-worker run — stage times are "
            "divided across workers, not derivable from the flat fetch stream"
        )
        return lines

    aggs = {a.epoch: a for a in aggregate_trace(events)}
    worst = 0.0
    checked = 0
    for e in epochs:
        a = aggs.get(e["epoch"])
        if a is None:
            continue
        checked += 1
        for got, want in (
            (a.hit_ratio, e.get("hit_ratio")),
            (a.substitute_ratio, e.get("substitute_ratio")),
            (a.data_load_s, e.get("data_load_s")),
            (a.compute_s, e.get("compute_s")),
            (a.is_visible_s, e.get("is_visible_s")),
            (a.epoch_time_s, e.get("epoch_time_s")),
        ):
            if want is not None:
                worst = max(worst, abs(got - float(want)))
    status = "OK" if worst < 1e-6 else f"MISMATCH (max abs err {worst:.3e})"
    lines.append(
        f"trace vs per-epoch metrics: {status} over {checked} epoch(s)"
    )
    return lines


def _load_section(doc: Dict[str, Any]) -> List[str]:
    """Render the load / SLO section from a ``load.json`` document.

    Pure dict-in, lines-out — the report never imports ``repro.load``
    (which itself imports this module for the artifact filename).
    """
    lines = ["load / SLO:"]
    trace = doc.get("trace", {})
    shape = trace.get("arrivals", trace.get("kind", "?"))
    if isinstance(shape, dict):
        shape = shape.get("kind", "?")
    lines.append(
        f"  workload: {doc.get('requests', 0)} requests over "
        f"{doc.get('duration_s', 0.0):.2f}s "
        f"({doc.get('offered_rps', 0.0):.1f} req/s offered, "
        f"arrivals={shape})"
    )
    lat = doc.get("latency", {})
    lines.append(
        "  latency: "
        f"p50={lat.get('p50_s', 0.0) * 1e3:.3f}ms "
        f"p99={lat.get('p99_s', 0.0) * 1e3:.3f}ms "
        f"p999={lat.get('p999_s', 0.0) * 1e3:.3f}ms "
        f"max={lat.get('max_s', 0.0) * 1e3:.3f}ms "
        f"mean={lat.get('mean_s', 0.0) * 1e3:.3f}ms"
    )
    slo = doc.get("slo", {})
    verdict = "MET" if slo.get("met") else "MISSED"
    lines.append(
        f"  SLO: {slo.get('attainment', 0.0) * 100:.3f}% within "
        f"{slo.get('target_s', 0.0) * 1e3:.1f}ms "
        f"(goal {slo.get('goal', 0.0) * 100:.1f}%) -> {verdict}"
    )
    cache = doc.get("cache", {})
    if cache:
        lines.append(
            f"  cache: hit_ratio={cache.get('hit_ratio', 0.0):.3f} "
            f"hits={cache.get('hits', 0)} "
            f"subst={cache.get('substitute_hits', 0)} "
            f"misses={cache.get('misses', 0)} "
            f"dropped={cache.get('dropped_admits', 0)} "
            f"degraded={cache.get('degraded_lookups', 0)} "
            f"retries={cache.get('rpc_retries', 0)}"
        )
    alerts = doc.get("alerts")
    if alerts:
        firing = alerts.get("firing", [])
        status = (
            "FIRING: " + ", ".join(firing) if firing else "none firing"
        )
        lines.append(
            f"  burn-rate alerts (goal "
            f"{alerts.get('goal', 0.0) * 100:.1f}%): {status}"
        )
        max_burn = alerts.get("max_burn", {})
        for rule in alerts.get("rules", []):
            name = rule.get("name", "?")
            lines.append(
                f"    rule {name}: >= {rule.get('threshold', 0.0):g}x over "
                f"{rule.get('long_windows', '?')}w/"
                f"{rule.get('short_windows', '?')}w, "
                f"max burn {max_burn.get(name, 0.0):.2f}x"
            )
        for ev in alerts.get("events", []):
            lines.append(
                f"    window {ev.get('window', '?'):>4}: "
                f"{ev.get('rule', '?'):<5} {ev.get('state', '?'):<9} "
                f"burn short={ev.get('burn_short', 0.0):.2f}x "
                f"long={ev.get('burn_long', 0.0):.2f}x "
                f"(thr {ev.get('threshold', 0.0):g}x)"
            )
    auto = doc.get("autoscaler", {})
    decisions = auto.get("decisions", [])
    lines.append(
        f"  autoscaler: {auto.get('grows', 0)} grow(s), "
        f"{auto.get('shrinks', 0)} shrink(s); shards "
        f"{auto.get('initial_shards', '?')} -> {auto.get('final_shards', '?')} "
        f"({auto.get('resizes_verified', 0)} resize(s) verified, "
        f"{auto.get('moved_keys', 0)} key(s) moved)"
    )
    for d in decisions:
        lines.append(
            f"    window {d.get('window', '?'):>4}: {d.get('action', '?'):<6} "
            f"{d.get('old_n', '?')} -> {d.get('new_n', '?')}  "
            f"({d.get('reason', '')})"
        )
    windows = doc.get("windows", [])
    if windows:
        worst = max(windows, key=lambda w: w.get("latency", {}).get("p99_s", 0.0))
        lines.append(
            f"  windows: {len(windows)} "
            f"(worst p99 {worst.get('latency', {}).get('p99_s', 0.0) * 1e3:.3f}ms "
            f"in window {worst.get('window', '?')} at "
            f"util {worst.get('utilization', 0.0):.2f})"
        )
    return lines


def render_report(run_dir: Union[str, Path]) -> str:
    """Render the full ``repro report`` text for one run directory.

    Expects ``epochs.jsonl`` (from a training run) and/or ``load.json``
    (from a ``repro load`` replay) plus optional ``summary.json`` and
    ``trace.jsonl`` as written by :func:`write_run_artifacts` and a
    :class:`~repro.obs.trace.JsonlRecorder`.
    """
    run_dir = Path(run_dir)
    epochs_path = run_dir / EPOCHS_FILE
    load_path = run_dir / LOAD_FILE
    if not epochs_path.is_file():
        if load_path.is_file():
            # Load-only run directory: no training epochs to tabulate.
            lines = _load_section(json.loads(load_path.read_text()))
            trace_path = run_dir / TRACE_FILE
            if trace_path.is_file():
                lines.extend(_trace_section(trace_path, []))
            return "\n".join(lines)
        raise FileNotFoundError(
            f"{epochs_path} not found — export a run with "
            "`repro train --trace-dir` or write_run_artifacts()"
        )
    epochs = read_jsonl(epochs_path)
    lines: List[str] = []
    if epochs:
        head = epochs[0]
        lines.append(
            f"run: policy={head.get('policy', '?')} model={head.get('model', '?')} "
            f"dataset={head.get('dataset', '?')} epochs={len(epochs)}"
        )
    lines.extend(_epoch_rows(epochs))

    totals = {
        k: sum(float(e.get(k, 0.0) or 0.0) for e in epochs)
        for k in ("data_load_s", "compute_s", "is_visible_s", "preprocess_s",
                  "epoch_time_s")
    }
    lines.append(
        "stage totals: "
        + "  ".join(f"{k}={v:.3f}" for k, v in totals.items())
    )

    summary_path = run_dir / SUMMARY_FILE
    if summary_path.is_file():
        summary = json.loads(summary_path.read_text())
        counters = summary.get("metrics", {}).get("counters", {})
        if counters:
            interesting = {
                k: v for k, v in counters.items()
                if not k.startswith("cache.fetch.") or v
            }
            lines.append(
                "counters: "
                + "  ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            )
        meta = summary.get("meta")
        if meta:
            lines.append(
                "repro: "
                + "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
            )

    if load_path.is_file():
        lines.extend(_load_section(json.loads(load_path.read_text())))

    trace_path = run_dir / TRACE_FILE
    if trace_path.is_file():
        lines.extend(_trace_section(trace_path, epochs))
    return "\n".join(lines)
