"""Critical-path analysis over reconstructed span trees.

Answers "what actually bounds epoch (or window) time?". For each root
span, walk backwards from its end: the child that finishes last before
the cursor is on the critical path; recurse into it, then continue from
its start. Intervals not covered by any child are the parent's *self
time* — for a batch span that's scheduling overhead, for an rpc span
it's retry backoff. The result is a set of segments that exactly tile
``[t0, t1]`` of the root, each attributed to the deepest span active on
the bounding chain, which aggregates into the per-stage breakdown
``repro report`` renders.

This is the standard trace-analysis algorithm (Jaeger's "critical path"
tab); with the repo's simulated clock the tiling is exact rather than
approximate, so segment sums are asserted, not eyeballed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.obs.spans import SpanNode, build_span_forest

__all__ = [
    "Segment",
    "critical_path",
    "self_time_breakdown",
    "critpath_lines",
]

#: One critical-path segment: (span, seg_start_s, seg_end_s). The span is
#: the deepest node whose own execution bounds that interval.
Segment = Tuple[SpanNode, float, float]


def critical_path(root: SpanNode) -> List[Segment]:
    """Segments tiling ``[root.t0_s, root.t1_s]``, earliest first.

    Children extending past their parent (possible only with clipped /
    corrupt traces) are clipped to the parent's interval; zero-length
    spans contribute no segments.
    """
    segments: List[Segment] = []
    _walk(root, root.t0_s, root.t1_s, segments)
    segments.reverse()  # _walk appends latest-first
    return segments


def _walk(node: SpanNode, lo: float, hi: float, out: List[Segment]) -> None:
    """Attribute ``[lo, hi]`` to ``node``'s children and self, latest first."""
    cursor = hi
    # Last-finishing child first; ties broken by later start then id so
    # the path is deterministic for back-to-back zero-length spans.
    for child in sorted(
        node.children,
        key=lambda c: (c.t1_s, c.t0_s, c.span_id),
        reverse=True,
    ):
        c_end = min(child.t1_s, cursor)
        c_start = max(child.t0_s, lo)
        if c_end <= c_start:
            continue  # shadowed by a later sibling, or outside the clip
        if c_end < cursor:
            out.append((node, c_end, cursor))  # parent self time (gap)
        _walk(child, c_start, c_end, out)
        cursor = c_start
        if cursor <= lo:
            return
    if cursor > lo:
        out.append((node, lo, cursor))


def self_time_breakdown(segments: Iterable[Segment]) -> Dict[str, float]:
    """Total critical-path self time per span name, descending."""
    totals: Dict[str, float] = {}
    for node, lo, hi in segments:
        totals[node.name] = totals.get(node.name, 0.0) + (hi - lo)
    return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))


def _fmt_breakdown(total: float, breakdown: Dict[str, float], top: int) -> str:
    parts = []
    for name, secs in list(breakdown.items())[:top]:
        pct = 100.0 * secs / total if total > 0 else 0.0
        parts.append("%s %.4fs (%.0f%%)" % (name, secs, pct))
    rest = list(breakdown.items())[top:]
    if rest:
        parts.append("+%d more" % len(rest))
    return ", ".join(parts) if parts else "(empty)"


def critpath_lines(
    events: Iterable[Dict],
    group_names: Tuple[str, ...] = ("epoch", "window"),
    top: int = 4,
    max_rows: int = 8,
) -> List[str]:
    """The ``repro report`` critical-path section body (no header).

    Groups by the first name in ``group_names`` that occurs in the trace
    (epochs for training runs, windows for load runs); one row per group
    plus an all-groups aggregate. Returns ``[]`` when the trace has no
    span events — the report omits the section for pre-span traces.
    """
    roots, by_id = build_span_forest(events)
    if not by_id:
        return []
    group_name = next(
        (g for g in group_names
         if any(n.name == g for n in by_id.values())),
        None,
    )
    if group_name is None:
        groups = roots  # no epoch/window tier: analyze the roots directly
    else:
        groups = sorted(
            (n for n in by_id.values() if n.name == group_name),
            key=lambda n: (n.t0_s, n.span_id),
        )
    lines: List[str] = []
    combined: Dict[str, float] = {}
    combined_total = 0.0
    n_shown = len(groups) if len(groups) <= max_rows else max_rows
    for i, g in enumerate(groups):
        segs = critical_path(g)
        breakdown = self_time_breakdown(segs)
        combined_total += g.dur_s
        for name, secs in breakdown.items():
            combined[name] = combined.get(name, 0.0) + secs
        if i < n_shown:
            idx = g.event.get(g.name, i)  # e.g. {"epoch": 0} / {"window": 3}
            lines.append(
                "  %s %-3s %.4fs: %s"
                % (g.name, idx, g.dur_s, _fmt_breakdown(g.dur_s, breakdown, top))
            )
    if len(groups) > n_shown:
        lines.append("  ... %d more" % (len(groups) - n_shown))
    if len(groups) > 1:
        ordered = dict(sorted(combined.items(), key=lambda kv: (-kv[1], kv[0])))
        lines.append(
            "  total %d %s(s) %.4fs: %s"
            % (
                len(groups),
                group_name or "root",
                combined_total,
                _fmt_breakdown(combined_total, ordered, top),
            )
        )
    return lines
