"""Run-wide observability: tracing, metrics, and reporting (``repro.obs``).

Zero-overhead-when-disabled instrumentation for the whole stack. An
:class:`~repro.obs.observer.Observer` binds a trace recorder (null /
in-memory / JSONL) to a metrics registry; the trainer threads it through
the semantic cache, both cache layers, the remote store, the elastic
manager, the circuit breaker, and the checkpoint machinery. The
:mod:`~repro.obs.report` layer aggregates exported traces back into the
per-epoch numbers the trainer reported — the consistency check behind
``repro report``.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.report import (
    EpochAggregate,
    aggregate_trace,
    render_report,
    write_run_artifacts,
)
from repro.obs.trace import (
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    TraceRecorder,
    read_jsonl,
)

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "TraceRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "JsonlRecorder",
    "read_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "EpochAggregate",
    "aggregate_trace",
    "write_run_artifacts",
    "render_report",
]
