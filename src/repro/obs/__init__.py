"""Run-wide observability: tracing, metrics, and reporting (``repro.obs``).

Zero-overhead-when-disabled instrumentation for the whole stack. An
:class:`~repro.obs.observer.Observer` binds a trace recorder (null /
in-memory / JSONL) to a metrics registry; the trainer threads it through
the semantic cache, both cache layers, the remote store, the elastic
manager, the circuit breaker, and the checkpoint machinery. The
:mod:`~repro.obs.report` layer aggregates exported traces back into the
per-epoch numbers the trainer reported — the consistency check behind
``repro report``.
"""

from repro.obs.critpath import (
    critical_path,
    critpath_lines,
    self_time_breakdown,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SPAN_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_prometheus,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.report import (
    EpochAggregate,
    aggregate_trace,
    render_report,
    write_run_artifacts,
)
from repro.obs.spans import (
    Span,
    SpanNode,
    SpanTracker,
    build_span_forest,
    find_spans,
    format_span_tree,
)
from repro.obs.trace import (
    SEGMENT_KIND,
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    TraceRecorder,
    read_jsonl,
)

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "TraceRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "JsonlRecorder",
    "SEGMENT_KIND",
    "read_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "SPAN_BUCKETS_S",
    "log_buckets",
    "render_prometheus",
    "Span",
    "SpanNode",
    "SpanTracker",
    "build_span_forest",
    "find_spans",
    "format_span_tree",
    "critical_path",
    "critpath_lines",
    "self_time_breakdown",
    "EpochAggregate",
    "aggregate_trace",
    "write_run_artifacts",
    "render_report",
]
