"""Lightweight metrics registry: counters, gauges, fixed-bucket histograms.

The Prometheus-shaped trio, sized for a simulation harness: no labels, no
locks, no background export — just named instruments a component publishes
into and a :meth:`MetricsRegistry.snapshot` that serializes everything for
``summary.json`` / ``repro report``. Instruments are get-or-create by
name, so publishers and readers never need to coordinate registration
order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
]

#: Default histogram buckets for simulated I/O latencies (seconds):
#: 20 us (in-memory hit) up through multi-second degraded fetches.
LATENCY_BUCKETS_S = (
    20e-6, 50e-6, 100e-6, 500e-6,
    1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
    1.0, 5.0,
)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-written value (e.g. the current elastic imp-ratio)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with cumulative-style bucket counts.

    ``bounds`` are the inclusive upper edges of each bucket; observations
    above the last bound land in the implicit overflow bucket. Tracks
    ``count``/``total`` so means are recoverable without the raw stream.
    """

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.bounds: List[float] = [float(b) for b in bounds]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket counts.

        Returns the upper bound of the bucket containing the quantile
        rank (the overflow bucket reports the largest finite bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]


class MetricsRegistry:
    """Name-keyed collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        """The histogram named ``name``, created on first use.

        ``bounds`` only applies at creation; later calls return the
        existing instrument regardless.
        """
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """JSON-serializable dump of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": h.bounds,
                    "counts": h.counts,
                    "count": h.count,
                    "total": h.total,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh registry)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
