"""Lightweight metrics registry: counters, gauges, fixed-bucket histograms.

The Prometheus-shaped trio, sized for a simulation harness: no labels, no
locks, no background export — just named instruments a component publishes
into and a :meth:`MetricsRegistry.snapshot` that serializes everything for
``summary.json`` / ``repro report``. Instruments are get-or-create by
name, so publishers and readers never need to coordinate registration
order.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "SPAN_BUCKETS_S",
    "log_buckets",
    "render_prometheus",
]

#: Default histogram buckets for simulated I/O latencies (seconds):
#: 20 us (in-memory hit) up through multi-second degraded fetches.
LATENCY_BUCKETS_S = (
    20e-6, 50e-6, 100e-6, 500e-6,
    1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 500e-3,
    1.0, 5.0,
)


def log_buckets(
    lo: float, hi: float, per_decade: int = 3
) -> Tuple[float, ...]:
    """Geometric histogram bounds from ``lo`` up to (at least) ``hi``.

    ``per_decade`` bounds per factor of 10, so relative quantile error
    is uniform across six-plus orders of magnitude — the right shape
    for span durations, where a 2 us cache hit and a 50 ms degraded
    fetch share one instrument. Bounds are rounded to 6 significant
    digits so exported ``le`` labels are stable and readable.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    step = 10.0 ** (1.0 / per_decade)
    n = int(math.ceil(math.log(hi / lo) / math.log(step))) + 1
    out: List[float] = []
    for i in range(n):
        b = float("%.6g" % (lo * step ** i))
        if not out or b > out[-1]:
            out.append(b)
    return tuple(out)


#: Default bounds for span-duration histograms: 1 us .. 100 s at three
#: buckets per decade (25 buckets + overflow).
SPAN_BUCKETS_S = log_buckets(1e-6, 100.0, per_decade=3)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """Last-written value (e.g. the current elastic imp-ratio)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with cumulative-style bucket counts.

    ``bounds`` are the inclusive upper edges of each bucket; observations
    above the last bound land in the implicit overflow bucket. Tracks
    ``count``/``total`` so means are recoverable without the raw stream.
    """

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.name = name
        self.bounds: List[float] = [float(b) for b in bounds]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the bucket counts.

        Returns the upper bound of the bucket containing the quantile
        rank (the overflow bucket reports the largest finite bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]


class MetricsRegistry:
    """Name-keyed collection of instruments with get-or-create access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        """The histogram named ``name``, created on first use.

        ``bounds`` only applies at creation; later calls return the
        existing instrument regardless.
        """
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds)
        return h

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """JSON-serializable dump of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "bounds": h.bounds,
                    "counts": h.counts,
                    "count": h.count,
                    "total": h.total,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh registry)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """Map a dotted instrument name into the Prometheus grammar."""
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _prom_num(value: float) -> str:
    """A float in exposition-format shape (ints stay integral)."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return "%.9g" % f


def render_prometheus(snapshot: Dict[str, Dict], prefix: str = "repro_") -> str:
    """A :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Works from the snapshot dict (not the live registry) so ``repro
    metrics`` can re-export the ``summary.json`` of a finished run.
    Counters gain the conventional ``_total`` suffix; histograms render
    cumulative ``_bucket{le=...}`` series with the mandatory ``+Inf``
    bucket plus ``_sum``/``_count``; unset gauges are skipped. Ends with
    a trailing newline as the exposition format requires.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        pn = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {pn} counter")
        lines.append(f"{pn} {_prom_num(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} gauge")
        lines.append(f"{pn} {_prom_num(value)}")
    for name, h in snapshot.get("histograms", {}).items():
        pn = _prom_name(name, prefix)
        lines.append(f"# TYPE {pn} histogram")
        cum = 0
        for bound, n in zip(h["bounds"], h["counts"]):
            cum += n
            lines.append('%s_bucket{le="%s"} %d' % (pn, "%.9g" % bound, cum))
        lines.append('%s_bucket{le="+Inf"} %d' % (pn, h["count"]))
        lines.append(f"{pn}_sum {_prom_num(h['total'])}")
        lines.append(f"{pn}_count {h['count']}")
    return "\n".join(lines) + "\n"
