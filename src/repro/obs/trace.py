"""Structured trace recorders (the event-sink half of ``repro.obs``).

A *trace* is an append-only journal of structured events — one dict per
event — emitted by the cache hierarchy, the stores, the elastic manager,
the circuit breaker, and the trainer as a run executes. Three sinks:

* :class:`NullRecorder` — the default everywhere; ``enabled`` is False so
  instrumented call sites skip event construction entirely (zero
  overhead when tracing is off).
* :class:`InMemoryRecorder` — keeps events in a list; tests and
  interactive analysis.
* :class:`JsonlRecorder` — streams each event as one JSON line to a file;
  the format ``repro report`` and :mod:`repro.obs.report` consume.

Every event carries at least ``kind`` (the event type, e.g. ``"fetch"``)
and ``epoch`` (the trainer's current epoch, ``-1`` outside a run). The
remaining fields are kind-specific; see the README "Observability"
section for the full schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

__all__ = [
    "TraceRecorder",
    "NullRecorder",
    "InMemoryRecorder",
    "JsonlRecorder",
    "read_jsonl",
]


class TraceRecorder:
    """Protocol for trace sinks.

    Subclasses set ``enabled`` and implement :meth:`emit`. Call sites are
    expected to guard event construction with ``if recorder.enabled:`` so
    a disabled recorder costs one attribute read per instrumented op.
    """

    #: Whether :meth:`emit` does anything; call sites guard on this.
    enabled: bool = True

    def emit(self, event: Dict[str, Any]) -> None:
        """Record one structured event (a flat JSON-serializable dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (default: no-op)."""


class NullRecorder(TraceRecorder):
    """Discards everything; ``enabled`` is False so emitters skip work."""

    enabled = False

    def emit(self, event: Dict[str, Any]) -> None:
        """Drop the event."""


class InMemoryRecorder(TraceRecorder):
    """Accumulates events in ``self.events`` (a plain list of dicts)."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        """Append the event to the in-memory list."""
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e.get("kind") == kind]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()


class JsonlRecorder(TraceRecorder):
    """Streams events to ``path``, one JSON object per line.

    The file is opened lazily on the first event and every line is
    flushed, so a crashed (or preempted) run leaves a readable trace up
    to its last completed operation. Use as a context manager or call
    :meth:`close` explicitly.
    """

    enabled = True

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        self.emitted = 0

    def emit(self, event: Dict[str, Any]) -> None:
        """Serialize the event as one JSON line (flushed immediately)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
        json.dump(event, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self._fh.flush()
        self.emitted += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlRecorder":
        """Context-manager entry: returns self."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: closes the file."""
        self.close()


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into a list of event dicts.

    Blank lines are skipped; a truncated final line (crashed writer)
    raises ``json.JSONDecodeError`` — pass the file through
    ``itertools.islice`` style pre-filtering if partial reads are needed.
    """
    events: List[Dict[str, Any]] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
